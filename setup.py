from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Gillian, Part I (PLDI 2020): a multi-language platform for "
        "symbolic execution - Python reproduction"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    license="BSD-3-Clause",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
