PYTHON ?= python
export PYTHONPATH := src:.

.PHONY: help test verify fuzz fuzz-faults fuzz-cross fuzz-summaries lint bench bench-solver bench-strategies bench-parallel bench-interp bench-memory bench-service bench-summaries bench-gate fingerprint fingerprint-check clean

help:
	@echo "Targets:"
	@echo "  test             tier-1 test suite (pytest -x -q)"
	@echo "  verify           tier-1 tests + lint + strategy/parallel smoke benches + fuzz/fault smoke"
	@echo "  fuzz             differential fuzzer long mode (slow-marked soak tests)"
	@echo "  fuzz-faults      fault-injection suites: recovery paths + fault-injecting fuzz arm"
	@echo "  fuzz-cross       cross-target corpus: one shape lowered to all four targets, cross-checked"
	@echo "  fuzz-summaries   summaries fuzz arm long mode: on/off equality on call-heavy programs"
	@echo "  lint             byte-compile src/benchmarks/tests; docstring coverage; forbid print() and bare except in src/"
	@echo "  bench            all benchmark harnesses (regenerates tables/reports)"
	@echo "  bench-solver     solver benchmark + ablation (BENCH_solver.json)"
	@echo "  bench-strategies strategy benchmark + invariance (BENCH_strategies.json)"
	@echo "  bench-parallel   parallel-exploration benchmark + determinism (BENCH_parallel.json)"
	@echo "  bench-interp     compiled-vs-interpreted benchmark (BENCH_interp.json)"
	@echo "  bench-memory     memory-model action dispatch benchmark (BENCH_memory.json)"
	@echo "  bench-service    analysis-service burst/replay/crash-storm benchmark (BENCH_service.json)"
	@echo "  bench-summaries  compositional-execution benchmark + identity grid (BENCH_summaries.json)"
	@echo "  bench-gate       smoke throughput gate: fail below the recorded paths/sec floor"
	@echo "  fingerprint      regenerate the differential-fuzz fingerprints (baseline + heap + rust)"
	@echo "  fingerprint-check verify memory-model branch structure is byte-identical to the baselines"
	@echo "  clean            remove caches and build artefacts"

test:
	$(PYTHON) -m pytest -x -q

verify: test lint
	$(MAKE) fingerprint-check
	$(PYTHON) -m repro.obs.smoke
	$(PYTHON) benchmarks/bench_strategies.py --smoke
	$(PYTHON) benchmarks/bench_parallel.py --smoke
	$(PYTHON) benchmarks/bench_memory.py --smoke
	$(PYTHON) benchmarks/bench_service.py --smoke
	$(PYTHON) benchmarks/bench_summaries.py --smoke
	$(MAKE) bench-gate
	$(PYTHON) -m pytest -x -q tests/engine/test_fuzz_differential.py tests/engine/test_fuzz_summaries.py -m "not slow"
	$(MAKE) fuzz-faults
	$(MAKE) fuzz-cross

fuzz:
	$(PYTHON) -m pytest -q tests/engine/test_fuzz_differential.py -m slow

fuzz-faults:
	$(PYTHON) -m pytest -x -q tests/engine/test_faults.py \
		"tests/engine/test_fuzz_differential.py::TestFaultInjectionFuzz" -m "not slow"

fuzz-cross:
	$(PYTHON) -m pytest -x -q tests/engine/test_fuzz_cross.py

fuzz-summaries:
	$(PYTHON) -m pytest -q tests/engine/test_fuzz_summaries.py -m slow

lint:
	$(PYTHON) -m compileall -q src benchmarks tests
	$(PYTHON) tools/check_excepts.py src/repro
	$(PYTHON) tools/check_docstrings.py src/repro
	@if grep -rnE '(^|[^[:alnum:]_.])print\(' src; then \
		echo "lint: print() is forbidden in src/ (use the event bus or return values)"; \
		exit 1; \
	fi
	@echo "lint: ok"

bench: bench-solver bench-strategies bench-parallel bench-interp bench-memory bench-service bench-summaries
	$(PYTHON) -m pytest benchmarks -q

bench-solver:
	$(PYTHON) benchmarks/bench_solver.py

bench-strategies:
	$(PYTHON) benchmarks/bench_strategies.py

bench-parallel:
	$(PYTHON) benchmarks/bench_parallel.py

bench-interp:
	$(PYTHON) benchmarks/bench_interp.py

bench-memory:
	$(PYTHON) benchmarks/bench_memory.py

bench-service:
	$(PYTHON) benchmarks/bench_service.py

bench-summaries:
	$(PYTHON) benchmarks/bench_summaries.py

bench-gate:
	$(PYTHON) benchmarks/bench_interp.py --smoke --gate

fingerprint:
	$(PYTHON) tools/fingerprint.py --out tests/fingerprints/baseline.json
	$(PYTHON) tools/fingerprint.py --arms heap --out tests/fingerprints/heap.json
	$(PYTHON) tools/fingerprint.py --arms rust --out tests/fingerprints/rust.json

fingerprint-check:
	$(PYTHON) tools/fingerprint.py --check tests/fingerprints/baseline.json
	$(PYTHON) tools/fingerprint.py --arms heap --check tests/fingerprints/heap.json
	$(PYTHON) tools/fingerprint.py --arms rust --check tests/fingerprints/rust.json

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache src/*.egg-info
