PYTHON ?= python
export PYTHONPATH := src:.

.PHONY: test bench bench-solver clean

test:
	$(PYTHON) -m pytest -x -q

bench: bench-solver
	$(PYTHON) -m pytest benchmarks -q

bench-solver:
	$(PYTHON) benchmarks/bench_solver.py

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache src/*.egg-info
