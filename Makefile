PYTHON ?= python
export PYTHONPATH := src:.

.PHONY: help test verify fuzz lint bench bench-solver bench-strategies bench-parallel clean

help:
	@echo "Targets:"
	@echo "  test             tier-1 test suite (pytest -x -q)"
	@echo "  verify           tier-1 tests + strategy/parallel smoke benches + fuzz smoke"
	@echo "  fuzz             differential fuzzer long mode (slow-marked soak tests)"
	@echo "  lint             byte-compile src/benchmarks/tests; forbid print() in src/"
	@echo "  bench            all benchmark harnesses (regenerates tables/reports)"
	@echo "  bench-solver     solver benchmark + ablation (BENCH_solver.json)"
	@echo "  bench-strategies strategy benchmark + invariance (BENCH_strategies.json)"
	@echo "  bench-parallel   parallel-exploration benchmark + determinism (BENCH_parallel.json)"
	@echo "  clean            remove caches and build artefacts"

test:
	$(PYTHON) -m pytest -x -q

verify: test
	$(PYTHON) benchmarks/bench_strategies.py --smoke
	$(PYTHON) benchmarks/bench_parallel.py --smoke
	$(PYTHON) -m pytest -x -q tests/engine/test_fuzz_differential.py -m "not slow"

fuzz:
	$(PYTHON) -m pytest -q tests/engine/test_fuzz_differential.py -m slow

lint:
	$(PYTHON) -m compileall -q src benchmarks tests
	@if grep -rnE '(^|[^[:alnum:]_.])print\(' src; then \
		echo "lint: print() is forbidden in src/ (use the event bus or return values)"; \
		exit 1; \
	fi
	@echo "lint: ok"

bench: bench-solver bench-strategies bench-parallel
	$(PYTHON) -m pytest benchmarks -q

bench-solver:
	$(PYTHON) benchmarks/bench_solver.py

bench-strategies:
	$(PYTHON) benchmarks/bench_strategies.py

bench-parallel:
	$(PYTHON) benchmarks/bench_parallel.py

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache src/*.egg-info
