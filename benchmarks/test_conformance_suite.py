"""E5 — compiler trustworthiness: differential conformance throughput.

The paper's compilers are "trusted" because they are differentially
tested (Test262 for Gillian-JS; CompCert's own verification for C).  The
conformance corpora live in ``tests/targets/*/test_conformance.py``; this
benchmark measures how fast a representative concrete differential run
is for each instantiation — concrete GIL execution of the compiled
program vs the source-level reference interpreter.
"""

import pytest

from repro.engine.explorer import Explorer
from repro.state.concrete import ConcreteStateModel


def _run_while():
    from repro.targets.while_lang import WhileLanguage
    from repro.targets.while_lang.interpreter import WhileInterpreter
    from repro.targets.while_lang.parser import parse_program

    source = """
    proc fib(n) {
      if (n < 2) { return n; }
      a := fib(n - 1); b := fib(n - 2);
      return a + b;
    }
    proc main() {
      o := { memo: 0 };
      r := fib(12);
      o.memo := r;
      v := o.memo;
      return v;
    }
    """
    language = WhileLanguage()
    ref = WhileInterpreter().run(parse_program(source), "main")
    prog = language.compile(source)
    sm = ConcreteStateModel(language.concrete_memory())
    out = Explorer(prog, sm).run("main").sole_outcome
    assert ref.value == out.value == 144
    return out.value


def _run_minijs():
    from repro.targets.js_like import MiniJSLanguage
    from repro.targets.js_like.interpreter import JSInterpreter
    from repro.targets.js_like.parser import parse_program

    source = """
    function sum_array(a) {
      var total = 0;
      for (var i = 0; i < a.length; i++) { total = total + a[i]; }
      return total;
    }
    function main() {
      var a = [1, 2, 3, 4, 5];
      a[5] = 6; a.length = 6;
      return sum_array(a);
    }
    """
    language = MiniJSLanguage()
    ref = JSInterpreter().run(parse_program(source), "main")
    prog = language.compile(source)
    sm = ConcreteStateModel(language.concrete_memory())
    out = Explorer(prog, sm).run("main").sole_outcome
    assert ref.value == out.value == 21
    return out.value


def _run_minic():
    from repro.targets.c_like import RUNTIME, MiniCLanguage
    from repro.targets.c_like.interpreter import CInterpreter
    from repro.targets.c_like.parser import parse_program

    source = """
    struct Node { int value; struct Node *next; };
    int main() {
      struct Node *head = NULL;
      for (int i = 0; i < 10; i++) {
        struct Node *n = (struct Node *) malloc(sizeof(struct Node));
        n->value = i;
        n->next = head;
        head = n;
      }
      int total = 0;
      struct Node *cur = head;
      while (cur != NULL) {
        total = total + cur->value;
        cur = cur->next;
      }
      return total;
    }
    """
    language = MiniCLanguage()
    ref = CInterpreter().run(parse_program(RUNTIME + source), "main")
    prog = language.compile(source)
    sm = ConcreteStateModel(language.concrete_memory())
    out = Explorer(prog, sm).run("main").sole_outcome
    assert ref.value == out.value == 45
    return out.value


@pytest.mark.parametrize(
    "runner", [_run_while, _run_minijs, _run_minic],
    ids=["while", "minijs", "minic"],
)
def test_conformance_throughput(runner, benchmark):
    benchmark(runner)
