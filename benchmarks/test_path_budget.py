"""Ablation: path/step budgets and branch dropping (paper §3.1).

Relaxed trace composition "gives us permission to arbitrarily drop paths
in the analysis by need, a technique commonly used for achieving better
scalability of symbolic execution tools."  This ablation runs a
combinatorially-branching symbolic test under shrinking step budgets and
reports paths finished vs dropped — the scalability/coverage trade the
paper's soundness story licenses.
"""

import pytest

from repro.engine.config import EngineConfig
from repro.targets.while_lang import WhileLanguage
from repro.testing.harness import SymbolicTester

LANG = WhileLanguage()

#: 2^6 = 64 paths at full exploration; taken branches are *longer* than
#: skipped ones, so path lengths vary and budgets cut a gradient.
PROGRAM = """
proc main() {
  count := 0;
  b1 := symb_bool(); if (b1) { count := count + 1; count := count * 1; count := count + 0; }
  b2 := symb_bool(); if (b2) { count := count + 1; count := count * 1; count := count + 0; }
  b3 := symb_bool(); if (b3) { count := count + 1; count := count * 1; count := count + 0; }
  b4 := symb_bool(); if (b4) { count := count + 1; count := count * 1; count := count + 0; }
  b5 := symb_bool(); if (b5) { count := count + 1; count := count * 1; count := count + 0; }
  b6 := symb_bool(); if (b6) { count := count + 1; count := count * 1; count := count + 0; }
  assert(count <= 6);
  return count;
}
"""

BUDGETS = [10_000, 40, 34, 28]


@pytest.mark.parametrize("budget", BUDGETS)
def test_budgeted_exploration(budget, benchmark):
    config = EngineConfig(max_steps_per_path=budget)
    tester = SymbolicTester(LANG, config=config)

    result = benchmark(tester.run_source, PROGRAM, "main")
    # Dropping paths never fabricates bugs (soundness of dropping).
    assert result.passed


def test_budget_coverage_profile():
    print()
    print(f"{'budget':>8s} {'paths':>6s} {'dropped':>8s} {'commands':>9s}")
    full_paths = None
    for budget in BUDGETS:
        config = EngineConfig(max_steps_per_path=budget)
        result = SymbolicTester(LANG, config=config).run_source(PROGRAM, "main")
        if full_paths is None:
            full_paths = result.paths
        print(
            f"{budget:8d} {result.paths:6d} {result.stats.paths_dropped:8d} "
            f"{result.stats.commands_executed:9d}"
        )
        assert result.paths <= full_paths
    assert full_paths == 64
