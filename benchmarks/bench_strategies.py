"""Strategy benchmark: search-order invariance and per-strategy costs.

Runs the Table 1 (Buckets-style MiniJS) and Table 2 (Collections-C-style
MiniC) symbolic-testing workloads under every search strategy the
scheduler supports — DFS, BFS, seeded random, coverage-guided — and:

* asserts that the exhaustive runs yield **identical multisets of final
  outcomes** regardless of strategy (exploration order may change when a
  path is found, never what is found: branching is path-local and
  allocation records are threaded through states);
* reports per-strategy statistics: paths found, paths/second, executed
  GIL commands, solver time, wall time, and the stop reason;
* measures the **event-bus overhead** when a bus is attached with no
  subscriber — the scheduler's emission guard must keep it under 5% of
  wall time on a pure-stepping workload.

Emits ``BENCH_strategies.json`` next to the repository root.  The
``--smoke`` mode runs a subset (first two suites per table, fewer
overhead repeats), performs the same invariance assertion, and writes
nothing — it is the <30s CI guard wired into ``make verify``.

Run with::

    PYTHONPATH=src:. python benchmarks/bench_strategies.py [--smoke]
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import Counter
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.engine.events import EventBus
from repro.testing.io import atomic_write_json
from repro.engine.explorer import Explorer
from repro.gil.syntax import Assignment, Goto, IfGoto, Proc, Prog, Return
from repro.logic.expr import Lit, PVar
from repro.state.concrete import ConcreteStateModel
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileConcreteMemory
from repro.testing.harness import SymbolicTester

from benchmarks.tables import bench_meta

OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_strategies.json",
)

#: the four scheduler policies under test (random pinned to a seed so the
#: whole benchmark is reproducible)
STRATEGIES = ["dfs", "bfs", "random:1234", "coverage"]


def workloads(smoke: bool = False):
    """(language, suite name, source, tests) for every Table 1/2 suite."""
    from repro.targets.c_like import MiniCLanguage
    from repro.targets.c_like.collections import suites as c_suites
    from repro.targets.js_like import MiniJSLanguage
    from repro.targets.js_like.buckets import suites as js_suites

    out = []
    js = MiniJSLanguage()
    js_names = js_suites.suite_names()
    c = MiniCLanguage()
    c_names = c_suites.suite_names()
    if smoke:
        js_names, c_names = js_names[:2], c_names[:2]
    for name in js_names:
        source, tests = js_suites.suite(name)
        out.append((js, f"table1/{name}", source, tests))
    for name in c_names:
        source, tests = c_suites.suite(name)
        out.append((c, f"table2/{name}", source, tests))
    return out


def run_strategy(strategy: str, smoke: bool = False) -> Tuple[Counter, Dict]:
    """One full workload pass under ``strategy``.

    Returns the multiset of final outcomes — keyed by (suite, test,
    outcome kind, outcome value) — and the aggregated statistics.
    """
    multiset: Counter = Counter()
    agg = {
        "strategy": strategy,
        "tests": 0,
        "finals": 0,
        "commands": 0,
        "solver_queries": 0,
        "solver_time": 0.0,
        "wall_time": 0.0,
        "non_exhaustive_runs": 0,
    }
    for language, name, source, tests in workloads(smoke):
        tester = SymbolicTester(language, replay=False, strategy=strategy)
        prog = language.compile(source)
        for test in tests:
            solver = tester.make_solver()
            sm = SymbolicStateModel(language.symbolic_memory(), solver=solver)
            result = Explorer(prog, sm, tester.config, strategy=strategy).run(test)
            agg["tests"] += 1
            agg["finals"] += len(result.finals)
            agg["commands"] += result.stats.commands_executed
            agg["solver_queries"] += result.stats.solver_queries
            agg["solver_time"] += result.stats.solver_time
            agg["wall_time"] += result.stats.wall_time
            if result.stats.stop_reason != "exhausted":
                agg["non_exhaustive_runs"] += 1
            for fin in result.finals:
                multiset[(name, test, fin.kind.name, repr(fin.value))] += 1
    agg["paths_per_sec"] = round(
        agg["finals"] / agg["wall_time"] if agg["wall_time"] else 0.0, 1
    )
    agg["solver_time"] = round(agg["solver_time"], 4)
    agg["wall_time"] = round(agg["wall_time"], 4)
    return multiset, agg


def _stepping_program(iterations: int) -> Prog:
    """A branch-free counting loop: pure scheduler stepping, no solver."""
    prog = Prog()
    prog.add(
        Proc(
            "main",
            (),
            (
                Assignment("i", Lit(0)),                      # 0
                IfGoto(PVar("i").lt(Lit(iterations)), 3),     # 1
                Return(PVar("i")),                            # 2
                Assignment("i", PVar("i") + Lit(1)),          # 3
                Goto(1),                                      # 4
            ),
        )
    )
    return prog


def measure_bus_overhead(
    iterations: int = 30_000, repeats: int = 5, gate_pct: float = 5.0
) -> Dict:
    """Wall-time cost of an attached, subscriber-less event bus.

    A concrete counting loop isolates the per-step emission guard (the
    worst case: step cost is minimal, so any per-step overhead is most
    visible).  Takes the min over ``repeats`` to suppress timer noise.

    ``gate_pct`` is the pass/fail threshold.  The design target is 5%,
    which the full 30k-iteration measurement resolves reliably; smoke
    mode's short runs carry a few percent of scheduler noise on busy
    single-CPU hosts, so its gate is looser — a broken emission guard
    (the regression this protects against) costs ~30%, far above either
    threshold.
    """
    import gc

    prog = _stepping_program(iterations)

    def one_run(events) -> float:
        sm = ConcreteStateModel(WhileConcreteMemory())
        explorer = Explorer(prog, sm, events=events)
        # Keep collector pauses out of the timed region: a single GC run
        # inside one arm but not the other dwarfs the per-step guard cost
        # being measured.
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = explorer.run("main")
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        assert result.sole_outcome.value == iterations
        return elapsed

    # Alternate the arms so drifting ambient load (e.g. a test suite that
    # just finished) biases both baselines equally.
    no_bus_times, idle_bus_times = [], []
    for _ in range(repeats):
        no_bus_times.append(one_run(None))
        idle_bus_times.append(one_run(EventBus()))
    without_bus = min(no_bus_times)
    with_bus = min(idle_bus_times)
    overhead = (with_bus - without_bus) / without_bus if without_bus else 0.0
    return {
        "steps": iterations * 3 + 2,
        "repeats": repeats,
        "no_bus_sec": round(without_bus, 4),
        "idle_bus_sec": round(with_bus, 4),
        "overhead_pct": round(overhead * 100, 2),
        "gate_pct": gate_pct,
        "within_gate": overhead * 100 < gate_pct,
        "under_5pct": overhead < 0.05,
    }


def measure_metrics_overhead(
    repeats: int = 3, gate_pct: float = 20.0, smoke: bool = True
) -> Dict:
    """Wall-time cost of live metrics collection on a real workload.

    Runs the symbolic-testing workload twice per repeat — once with no
    bus, once with a :class:`repro.obs.collect.MetricsCollector`
    subscribed (so every step/branch/path/solver event is constructed,
    dispatched, and folded into a registry) — and compares min-of-repeats
    wall time.  Unlike :func:`measure_bus_overhead` this measures the
    *enabled* path: the acceptance target is that full metrics collection
    stays within ``gate_pct`` of a metrics-free run.  The arms alternate
    so ambient load drifts bias both equally.  Note the percentage moves
    whenever the metrics-free baseline does: the compiled step pipeline
    made engine steps substantially cheaper, so the same absolute
    per-event cost now reads as a low-teens percentage rather than the
    original ~5%.
    """
    import gc

    from repro.engine.events import EventBus
    from repro.obs.collect import MetricsCollector

    def one_pass(with_metrics: bool) -> float:
        wall = 0.0
        for language, _name, source, tests in workloads(smoke):
            tester = SymbolicTester(language, replay=False)
            prog = language.compile(source)
            for test in tests:
                solver = tester.make_solver()
                sm = SymbolicStateModel(language.symbolic_memory(), solver=solver)
                bus = collector = None
                if with_metrics:
                    bus = EventBus()
                    collector = MetricsCollector(bus)
                explorer = Explorer(prog, sm, tester.config, events=bus)
                gc.collect()
                start = time.perf_counter()
                explorer.run(test)
                wall += time.perf_counter() - start
                if collector is not None:
                    collector.close()
        return wall

    disabled_times, enabled_times = [], []
    for _ in range(repeats):
        disabled_times.append(one_pass(False))
        enabled_times.append(one_pass(True))
    disabled = min(disabled_times)
    enabled = min(enabled_times)
    overhead = (enabled - disabled) / disabled if disabled else 0.0
    return {
        "repeats": repeats,
        "metrics_disabled_sec": round(disabled, 4),
        "metrics_enabled_sec": round(enabled, 4),
        "overhead_pct": round(overhead * 100, 2),
        "gate_pct": gate_pct,
        "within_gate": overhead * 100 < gate_pct,
    }


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    mode = "smoke" if smoke else "full"
    print(f"== bench_strategies ({mode}) ==")

    reference: Counter = Counter()
    per_strategy: Dict[str, Dict] = {}
    invariant = True
    for i, strategy in enumerate(STRATEGIES):
        multiset, agg = run_strategy(strategy, smoke=smoke)
        per_strategy[strategy] = agg
        if i == 0:
            reference = multiset
        elif multiset != reference:
            invariant = False
            missing = reference - multiset
            extra = multiset - reference
            print(f"!! {strategy}: finals multiset differs from {STRATEGIES[0]}")
            for key in list(missing)[:5]:
                print(f"   missing: {key}")
            for key in list(extra)[:5]:
                print(f"   extra:   {key}")
        print(
            f"{strategy:12s} finals={agg['finals']:5d} "
            f"paths/sec={agg['paths_per_sec']:8.1f} "
            f"solver={agg['solver_time']:6.2f}s wall={agg['wall_time']:6.2f}s"
        )

    exhaustive = all(
        agg["non_exhaustive_runs"] == 0 for agg in per_strategy.values()
    )
    # Smoke mode's short runs carry irreducible timer noise (a few
    # percent even at min-of-9 on busy 1-CPU hosts), so its gate is 10%
    # rather than the 5% design target the full bench enforces; see
    # measure_bus_overhead for the margin argument.
    overhead = measure_bus_overhead(
        iterations=5_000 if smoke else 30_000,
        repeats=9 if smoke else 5,
        gate_pct=10.0 if smoke else 5.0,
    )
    print(
        f"event-bus overhead (idle bus): {overhead['overhead_pct']}% "
        f"({'<' if overhead['within_gate'] else '>='}{overhead['gate_pct']:g}% gate)"
    )
    # Live metrics collection on the symbolic workload: smoke runs are
    # short enough that a few percent of noise is irreducible, so the
    # smoke gate is looser — mirroring the bus-overhead gate's argument.
    # Both gates were recalibrated when the compiled step pipeline and
    # GC batching landed: the absolute cost of folding an event stream
    # is unchanged, but the metrics-free baseline it is compared against
    # got ~25% faster, which mechanically inflates the ratio (measured
    # ~13% full, ~8-12% smoke).  The regression these gates protect
    # against — an emission guard accidentally running with no
    # subscribers, or per-event allocation on the no-bus path — costs
    # ~30%+, still far above the threshold.  Measured overhead swings
    # between ~10% and ~16% run to run on shared hosts, so both modes
    # share one 20% gate.
    metrics_overhead = measure_metrics_overhead(
        repeats=5 if smoke else 3,
        gate_pct=20.0,
        smoke=True,
    )
    print(
        f"metrics-collection overhead:   {metrics_overhead['overhead_pct']}% "
        f"({'<' if metrics_overhead['within_gate'] else '>='}"
        f"{metrics_overhead['gate_pct']:g}% gate)"
    )

    passed = (
        invariant
        and exhaustive
        and overhead["within_gate"]
        and metrics_overhead["within_gate"]
    )
    print(f"strategy invariance: {'ok' if invariant else 'FAILED'}")
    if not exhaustive:
        print("!! some runs stopped before exhausting their paths")

    if not smoke:
        report = {
            "benchmark": "bench_strategies",
            "meta": bench_meta(),
            "workload": "table1 (MiniJS/Buckets) + table2 (MiniC/Collections)",
            "strategies": per_strategy,
            "finals_multiset_size": sum(reference.values()),
            "distinct_finals": len(reference),
            "invariance": {
                "target": "identical multisets of finals across strategies",
                "identical": invariant,
                "all_exhaustive": exhaustive,
            },
            "event_bus_overhead": overhead,
            "metrics_overhead": metrics_overhead,
            "acceptance": {
                "target": (
                    "identical finals multisets under all strategies; "
                    "idle event bus < 5% wall time"
                ),
                "passed": passed,
            },
        }
        atomic_write_json(OUT_PATH, report, indent=2)
        print(f"wrote {OUT_PATH}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
