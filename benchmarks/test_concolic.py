"""Extension benchmark: concolic vs whole-program symbolic testing (§6).

The paper's future-work list includes concolic execution; this benchmark
runs the DART-style driver (`repro.engine.concolic`) against the
whole-path symbolic tester on the same bug-finding task and reports both.
Shape: both find the bug; concolic pays per-iteration concrete runs,
symbolic pays path enumeration.
"""

import pytest

from repro.engine.concolic import ConcolicTester
from repro.targets.while_lang import WhileLanguage
from repro.testing.harness import SymbolicTester

LANG = WhileLanguage()

PROGRAM = """
proc main() {
  x := symb_int();
  y := symb_int();
  if (x = 2 * y) {
    if (10 < x - y) {
      assert(false);
    }
  }
  return 0;
}
"""


def _run_symbolic():
    result = SymbolicTester(LANG).run_source(PROGRAM, "main")
    assert result.verdict == "bug"
    return result


def _run_concolic():
    prog = LANG.compile(PROGRAM)
    report = ConcolicTester(LANG).run(prog, "main")
    assert report.found_bug
    return report


@pytest.mark.parametrize(
    "runner", [_run_symbolic, _run_concolic], ids=["symbolic", "concolic"]
)
def test_bug_finding_modes(runner, benchmark):
    benchmark(runner)
