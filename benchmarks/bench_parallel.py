"""Parallel-exploration benchmark: determinism and scaling.

Runs the Table 1 (Buckets-style MiniJS) and Table 2 (Collections-C-style
MiniC) symbolic-testing workloads through the
:class:`~repro.engine.parallel.ParallelExplorer` at 1, 2, and 4 workers
and:

* asserts that every worker count yields an **identical multiset of
  final outcomes** — the parallel explorer's core guarantee: sharding
  the BFS frontier is a partition of the path set (§3.1 trace
  composition), branching is path-local, and allocation records are
  threaded through states, so the merge is outcome-deterministic;
* reports per-worker-count statistics: finals, executed GIL commands,
  wall time, and the speedup over the sequential run;
* checks fault recovery: a transient injected worker kill must be
  retried away to the exact fault-free multiset with nothing lost.

Emits ``BENCH_parallel.json`` next to the repository root.  The
``--smoke`` mode runs a subset (first suite per table) with workers 1
and 2 only, performs the same determinism assertion, and writes nothing
— it is the CI guard wired into ``make verify``.

Acceptance: identical finals multisets at every worker count, and — on
hosts that actually have multiple CPUs — a ≥1.5× wall-clock speedup at
4 workers on the heaviest workload.  The speedup criterion is recorded
but *waived* when ``os.cpu_count() < 2``: process-level parallelism
cannot beat sequential execution on a single hardware thread, so a
1-CPU container reports the measured (≈1×, often slightly below due to
fork/pickle overhead) speedup honestly instead of failing a physically
impossible target.

Run with::

    PYTHONPATH=src:. python benchmarks/bench_parallel.py [--smoke]
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import Counter
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.engine.parallel import ParallelExplorer
from repro.testing.io import atomic_write_json
from repro.state.symbolic import SymbolicStateModel
from repro.testing.harness import SymbolicTester

from benchmarks.tables import bench_meta

OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_parallel.json",
)

WORKER_COUNTS = [1, 2, 4]
SPEEDUP_TARGET = 1.5


def workloads(smoke: bool = False):
    """(language, suite name, source, tests) for Table 1/2 suites."""
    from repro.targets.c_like import MiniCLanguage
    from repro.targets.c_like.collections import suites as c_suites
    from repro.targets.js_like import MiniJSLanguage
    from repro.targets.js_like.buckets import suites as js_suites

    out = []
    js = MiniJSLanguage()
    js_names = js_suites.suite_names()
    c = MiniCLanguage()
    c_names = c_suites.suite_names()
    if smoke:
        js_names, c_names = js_names[:1], c_names[:1]
    for name in js_names:
        source, tests = js_suites.suite(name)
        out.append((js, f"table1/{name}", source, tests))
    for name in c_names:
        source, tests = c_suites.suite(name)
        out.append((c, f"table2/{name}", source, tests))
    return out


def run_workers(workers: int, smoke: bool = False) -> Tuple[Counter, Dict]:
    """One full workload pass at ``workers`` processes.

    Returns the multiset of final outcomes — keyed by (suite, test,
    outcome kind, outcome value) — and aggregated statistics.
    """
    multiset: Counter = Counter()
    agg = {
        "workers": workers,
        "tests": 0,
        "finals": 0,
        "commands": 0,
        "wall_time": 0.0,
        "non_exhaustive_runs": 0,
    }
    start = time.perf_counter()
    for language, name, source, tests in workloads(smoke):
        tester = SymbolicTester(language, replay=False)
        prog = language.compile(source)
        for test in tests:
            solver = tester.make_solver()
            sm = SymbolicStateModel(language.symbolic_memory(), solver=solver)
            explorer = ParallelExplorer(prog, sm, tester.config, workers=workers)
            result = explorer.run(test)
            agg["tests"] += 1
            agg["finals"] += len(result.finals)
            agg["commands"] += result.stats.commands_executed
            if result.stats.stop_reason != "exhausted":
                agg["non_exhaustive_runs"] += 1
            for fin in result.finals:
                multiset[(name, test, fin.kind.name, repr(fin.value))] += 1
    agg["wall_time"] = round(time.perf_counter() - start, 4)
    return multiset, agg


def run_fault_recovery() -> Dict:
    """Fault-recovery check on the first Table 1 suite.

    A transient kill of worker 0 at its first scheduler step must be
    retried away: the recovered run's finals multiset equals the
    fault-free run's, the retry is counted, and nothing is lost.
    """
    import dataclasses

    from repro.testing.faults import FaultPlan, WorkerKill

    language, name, source, tests = workloads(smoke=True)[0]
    tester = SymbolicTester(language, replay=False)
    prog = language.compile(source)

    def one_run(test, config):
        solver = tester.make_solver()
        sm = SymbolicStateModel(language.symbolic_memory(), solver=solver)
        result = ParallelExplorer(
            prog, sm, config, workers=2, seed_factor=1
        ).run(test)
        multiset = Counter(
            (fin.kind.name, repr(fin.value)) for fin in result.finals
        )
        return multiset, result

    plan = FaultPlan(kills=(WorkerKill(worker=0, at_step=0),))
    faulted_config = dataclasses.replace(
        tester.config, fault_plan=plan, shard_retry_backoff=0.0
    )
    # A test that finishes during BFS seeding never spawns workers, so
    # the kill has nothing to hit: probe for the first test whose
    # faulted run actually retried a shard (fallback: the last test).
    for test in tests:
        recovered_multiset, recovered = one_run(test, faulted_config)
        if recovered.stats.incompleteness.shards_retried:
            break
    clean_multiset, _ = one_run(test, tester.config)
    inc = recovered.stats.incompleteness
    return {
        "suite": name,
        "test": test,
        "identical": recovered_multiset == clean_multiset,
        "recovered_complete": recovered.report.complete,
        "shards_retried": inc.shards_retried,
        "shards_lost": inc.shards_lost,
    }


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    mode = "smoke" if smoke else "full"
    cpus = os.cpu_count() or 1
    worker_counts = WORKER_COUNTS[:2] if smoke else WORKER_COUNTS
    print(f"== bench_parallel ({mode}, {cpus} cpu{'s' if cpus != 1 else ''}) ==")

    reference: Counter = Counter()
    per_workers: Dict[str, Dict] = {}
    identical = True
    baseline_wall = None
    for i, workers in enumerate(worker_counts):
        multiset, agg = run_workers(workers, smoke=smoke)
        if i == 0:
            reference = multiset
            baseline_wall = agg["wall_time"]
        elif multiset != reference:
            identical = False
            missing = reference - multiset
            extra = multiset - reference
            print(f"!! workers={workers}: finals multiset differs from workers=1")
            for key in list(missing)[:5]:
                print(f"   missing: {key}")
            for key in list(extra)[:5]:
                print(f"   extra:   {key}")
        agg["speedup"] = round(
            baseline_wall / agg["wall_time"] if agg["wall_time"] else 0.0, 2
        )
        per_workers[str(workers)] = agg
        print(
            f"workers={workers}  finals={agg['finals']:5d} "
            f"commands={agg['commands']:7d} wall={agg['wall_time']:7.2f}s "
            f"speedup={agg['speedup']:.2f}x"
        )

    exhaustive = all(
        agg["non_exhaustive_runs"] == 0 for agg in per_workers.values()
    )
    best_speedup = max(agg["speedup"] for agg in per_workers.values())
    speedup_ok = best_speedup >= SPEEDUP_TARGET
    speedup_waived = cpus < 2
    if speedup_waived:
        print(
            f"speedup target ({SPEEDUP_TARGET}x) waived: host has {cpus} cpu — "
            f"measured best {best_speedup:.2f}x reported honestly"
        )
    else:
        print(
            f"best speedup {best_speedup:.2f}x "
            f"({'meets' if speedup_ok else 'MISSES'} {SPEEDUP_TARGET}x target)"
        )
    print(f"outcome determinism: {'ok' if identical else 'FAILED'}")
    if not exhaustive:
        print("!! some runs stopped before exhausting their paths")

    recovery = run_fault_recovery()
    recovery_ok = (
        recovery["identical"]
        and recovery["recovered_complete"]
        and recovery["shards_retried"] >= 1
        and recovery["shards_lost"] == 0
    )
    print(
        f"fault recovery ({recovery['suite']}): "
        f"{'ok' if recovery_ok else 'FAILED'} "
        f"(retried={recovery['shards_retried']}, lost={recovery['shards_lost']})"
    )

    passed = (
        identical
        and exhaustive
        and recovery_ok
        and (speedup_ok or speedup_waived)
    )
    if not smoke:
        report = {
            "benchmark": "bench_parallel",
            "meta": bench_meta(),
            "workload": "table1 (MiniJS/Buckets) + table2 (MiniC/Collections)",
            "cpus": cpus,
            "worker_counts": worker_counts,
            "per_workers": per_workers,
            "finals_multiset_size": sum(reference.values()),
            "distinct_finals": len(reference),
            "determinism": {
                "target": "identical multisets of finals at every worker count",
                "identical": identical,
                "all_exhaustive": exhaustive,
            },
            "speedup": {
                "target": f">= {SPEEDUP_TARGET}x wall-clock at 4 workers",
                "best": best_speedup,
                "met": speedup_ok,
                "waived_single_cpu": speedup_waived,
            },
            "fault_recovery": {
                "target": (
                    "a transient worker kill is retried away to the exact "
                    "fault-free multiset with nothing lost"
                ),
                "passed": recovery_ok,
                **recovery,
            },
            "acceptance": {
                "target": (
                    "identical finals multisets at 1/2/4 workers; >=1.5x "
                    "speedup where the host has >1 cpu"
                ),
                "passed": passed,
            },
        }
        atomic_write_json(OUT_PATH, report, indent=2)
        print(f"wrote {OUT_PATH}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
