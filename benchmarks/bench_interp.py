"""Interpreter benchmark: compiled step closures vs the tree walker.

Runs the Table 1 (Buckets-style MiniJS) and Table 2 (Collections-C-style
MiniC) symbolic-testing workloads through both execution pipelines in
the same process — the tree-walking interpreter
(:func:`repro.gil.semantics.step`) and the compiled per-procedure step
closures (:mod:`repro.gil.compile`) — and reports:

* throughput per arm (paths/sec and commands/sec over engine wall time);
* the compiled arm's **concrete fast-lane hit rate** (share of executed
  commands decided by the specialized concrete evaluator, never touching
  ``logic/``);
* the compiled-vs-interpreted **speedup**, measured from the same run;
* a **finals identity check**: both arms must finish the same number of
  paths on every suite (the full bit-identical multiset comparison lives
  in the differential fuzz suite; this is the cheap tripwire).

Both arms are measured *warm*: a first untimed pass populates the
per-program compile tables (cached on the ``Prog``) and the simplifier
memos, so the numbers reflect the steady-state hot path rather than
one-shot lowering cost.  The arms then alternate per repeat to spread
machine noise evenly.

Emits ``BENCH_interp.json`` next to the repository root.  ``--smoke``
runs a reduced workload (first two suites per table, one repeat) and is
what ``make bench-gate`` / ``make verify`` use; ``--gate`` additionally
fails the run if smoke throughput regresses below the recorded floor
(see :data:`SMOKE_PATHS_PER_SEC_FLOOR`).

Run with::

    PYTHONPATH=src:. python benchmarks/bench_interp.py [--smoke] [--gate]
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.engine.config import gillian
from repro.testing.io import atomic_write_json
from repro.testing.harness import SymbolicTester

from benchmarks.bench_strategies import workloads
from benchmarks.tables import bench_meta

OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_interp.json",
)

#: paths/sec the *compiled* arm must sustain on the smoke workload for
#: ``--gate`` to pass.  Deliberately far below typical throughput
#: (hundreds of paths/sec on an idle machine): the gate is a tripwire
#: for order-of-magnitude regressions — an accidentally quadratic hot
#: path, a disabled cache — not a micro-benchmark; shared CI machines
#: routinely show 2× wall-clock swings between consecutive runs.
SMOKE_PATHS_PER_SEC_FLOOR = 40.0

FULL_REPEATS = 3


def compiled_workloads(smoke: bool) -> List[tuple]:
    """(language, suite name, prog, tests) with each program compiled
    exactly once — the per-``Prog`` compile tables and the lazy command
    lowering they hold must persist across arms and repeats for the
    measurement to see the steady state."""
    return [
        (language, name, language.compile(source), tests)
        for language, name, source, tests in workloads(smoke)
    ]


def run_arm(compiled: bool, suites: List[tuple]) -> Dict:
    """One measured pass of every workload suite under one pipeline."""
    config = gillian(compiled=compiled)
    agg = {
        "paths": 0,
        "commands": 0,
        "fast_lane_steps": 0,
        "wall_time": 0.0,
        "suites": {},
    }
    for language, name, prog, tests in suites:
        tester = SymbolicTester(language, config=config, replay=False)
        suite_paths = 0
        for test in tests:
            stats = tester.run_test(prog, test).stats
            agg["paths"] += stats.paths_finished
            agg["commands"] += stats.commands_executed
            agg["fast_lane_steps"] += stats.fast_lane_steps
            agg["wall_time"] += stats.wall_time
            suite_paths += stats.paths_finished
        agg["suites"][name] = suite_paths
    return agg


def merge(runs: List[Dict]) -> Dict:
    """Fold repeated passes of one arm into a single report block."""
    total = {
        "paths": runs[0]["paths"],
        "commands": runs[0]["commands"],
        "fast_lane_steps": runs[0]["fast_lane_steps"],
        "wall_time": sum(r["wall_time"] for r in runs),
        "repeats": len(runs),
        "suites": runs[0]["suites"],
    }
    elapsed = total["wall_time"] / len(runs)
    total["paths_per_sec"] = (
        round(total["paths"] / elapsed, 1) if elapsed else 0.0
    )
    total["commands_per_sec"] = (
        round(total["commands"] / elapsed, 1) if elapsed else 0.0
    )
    total["fast_lane_rate"] = (
        round(total["fast_lane_steps"] / total["commands"], 4)
        if total["commands"]
        else 0.0
    )
    total["wall_time"] = round(total["wall_time"], 4)
    return total


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    gate = "--gate" in argv
    mode = "smoke" if smoke else "full"
    repeats = 1 if smoke else FULL_REPEATS
    print(f"== bench_interp ({mode}) ==")

    suites = compiled_workloads(smoke)
    # Warm both pipelines untimed: populates the per-Prog compile tables
    # and simplifier memos so the measured passes see the steady state.
    for compiled in (False, True):
        run_arm(compiled, suites)

    runs: Dict[str, List[Dict]] = {"interpreted": [], "compiled": []}
    for _ in range(repeats):
        runs["interpreted"].append(run_arm(False, suites))
        runs["compiled"].append(run_arm(True, suites))

    interp = merge(runs["interpreted"])
    comp = merge(runs["compiled"])
    for label, arm in (("interpreted", interp), ("compiled", comp)):
        print(
            f"{label:12s} paths/sec={arm['paths_per_sec']:8.1f} "
            f"commands/sec={arm['commands_per_sec']:10.1f} "
            f"fast-lane={arm['fast_lane_rate']:.1%}"
        )

    speedup = (
        interp["wall_time"] / comp["wall_time"] if comp["wall_time"] else 0.0
    )
    identical = interp["suites"] == comp["suites"] and (
        interp["commands"] == comp["commands"]
    )
    if not identical:
        print("!! compiled arm finished different paths/commands per suite")
    floor_met = comp["paths_per_sec"] >= SMOKE_PATHS_PER_SEC_FLOOR
    print(f"compiled-vs-interpreted speedup: {speedup:.2f}x")

    report = {
        "benchmark": "bench_interp",
        "meta": bench_meta(),
        "mode": mode,
        "workload": "table1 (MiniJS/Buckets) + table2 (MiniC/Collections)",
        "interpreted": interp,
        "compiled": comp,
        "compiled_speedup": round(speedup, 3),
        "fast_lane_rate": comp["fast_lane_rate"],
        "finals_identical": identical,
        "gate": {
            "smoke_paths_per_sec_floor": SMOKE_PATHS_PER_SEC_FLOOR,
            "floor_met": floor_met,
            "enforced": gate,
        },
    }
    atomic_write_json(OUT_PATH, report, indent=2)
    print(f"wrote {OUT_PATH}")
    if not identical:
        return 1
    if gate and not floor_met:
        print(
            f"bench-gate: compiled smoke throughput "
            f"{comp['paths_per_sec']:.1f} paths/sec is below the recorded "
            f"floor {SMOKE_PATHS_PER_SEC_FLOOR:.1f}"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
