"""E2 — Table 2: symbolic testing of the Collections-style library (§4.2).

Regenerates Table 2's rows (#T, GIL commands, time per data structure)
and checks the shape: per-row test counts match the paper (161 tests in
total) and the only failing tests are the planted §4.2 findings.
"""

import pytest

from benchmarks.tables import run_suite, run_table2
from repro.engine.config import gillian
from repro.targets.c_like import MiniCLanguage
from repro.targets.c_like.collections import suites

LANGUAGE = MiniCLanguage()
EXPECTED_T = suites.expected_test_counts()


@pytest.mark.parametrize("name", suites.suite_names())
def test_row(name, benchmark):
    source, tests = suites.suite(name)
    row = benchmark(run_suite, LANGUAGE, source, tests, name, gillian())
    assert row.tests == EXPECTED_T[name]
    assert set(row.failures) <= suites.KNOWN_BUG_TESTS
    assert row.commands > 0


def test_table2_totals():
    report = run_table2(gillian())
    total = report.total
    assert total.tests == 161  # Table 2: 161 symbolic tests
    # Four of the five findings live in Table 2 suites (the hash finding
    # is outside the table, as in the paper).
    assert set(total.failures) == suites.KNOWN_BUG_TESTS - {
        "test_hash_distinguishes_strings"
    }
    print()
    print(report.format("Table 2 — Collections-style library (Gillian-C)"))
