"""E3 — the §4.2 bug findings, one benchmark per discovered issue.

The paper's evaluation "revealed the following issues, which have been
fixed by the developers of Collections-C":

1. a buffer overflow in dynamic arrays (off-by-one index);
2. undefined behaviour: pointer comparison;
3. bugs in the concrete test suite (comparing freed pointers, ...);
4. over-allocation in the ring buffer (correct behaviour otherwise);
5. a bug in the string hashing function (performance loss only).

Each benchmark runs the symbolic test that detects one finding and
asserts the finding is (a) detected and (b) confirmed by a concrete
counter-model replay where one exists — the no-false-positives pipeline.
Plus the two known Buckets.js bugs on the JS side (§4.1).
"""

import pytest

from repro.engine.config import gillian
from repro.targets.c_like import MiniCLanguage
from repro.targets.c_like.collections import suites as c_suites
from repro.targets.js_like import MiniJSLanguage
from repro.targets.js_like.buckets import suites as js_suites
from repro.testing.harness import SymbolicTester

_C_FINDINGS = {
    "finding1_buffer_overflow": ("array", "test_array_add_triggers_expand"),
    "finding2_ub_pointer_comparison": ("slist", "test_slist_node_before_lookup"),
    "finding3_test_suite_compares_freed": ("array", "test_array_compare_freed_pointers"),
    "finding4_ringbuf_overallocation": ("rbuf", "test_rbuf_allocation_is_exact"),
    "finding5_string_hash": ("hash", "test_hash_distinguishes_strings"),
}

_JS_FINDINGS = {
    "buckets_bug_llist_reverse": ("llist", "test_llist_add_after_reverse"),
    "buckets_bug_mdict_remove": ("mdict", "test_mdict_remove_last_value_removes_key"),
}


@pytest.mark.parametrize("finding", sorted(_C_FINDINGS))
def test_collections_finding(finding, benchmark):
    suite_name, test_name = _C_FINDINGS[finding]
    language = MiniCLanguage()
    source, _ = c_suites.suite(suite_name)
    prog = language.compile(source)
    tester = SymbolicTester(language, config=gillian())

    result = benchmark(tester.run_test, prog, test_name)
    assert not result.passed, f"{finding} not detected"
    assert any(b.confirmed for b in result.bugs), f"{finding} not confirmed"


@pytest.mark.parametrize("finding", sorted(_JS_FINDINGS))
def test_buckets_finding(finding, benchmark):
    suite_name, test_name = _JS_FINDINGS[finding]
    language = MiniJSLanguage()
    source, _ = js_suites.suite(suite_name)
    prog = language.compile(source)
    tester = SymbolicTester(language, config=gillian())

    result = benchmark(tester.run_test, prog, test_name)
    assert not result.passed, f"{finding} not detected"
    assert any(b.confirmed for b in result.bugs), f"{finding} not confirmed"
