"""E6 — the trace-level soundness harness (Theorem 3.6, empirically).

Benchmarks the full soundness pipeline: symbolically execute a program,
solve every final path condition for a model, and replay each model
concretely — the operational counterpart of GIL restricted soundness
and completeness.  Shape to reproduce: every replay agrees (no false
positives) and the harness scales across the three instantiations.
"""

import pytest

from repro.soundness.differential import check_trace_soundness

_WHILE = """
proc main() {
  n := symb_int();
  assume(0 <= n and n <= 5);
  i := 0; total := 0;
  while (i < n) { total := total + i; i := i + 1; }
  o := { sum: total };
  v := o.sum;
  assert(v * 2 = n * (n - 1));
  return v;
}
"""

_MINIJS = """
function main() {
  var n = symb_int();
  assume(0 <= n && n <= 4);
  var stack = { top: null, size: 0 };
  for (var i = 0; i < n; i++) {
    stack.top = { value: i, below: stack.top };
    stack.size = stack.size + 1;
  }
  assert(stack.size === n);
  return stack.size;
}
"""

_MINIC = """
int main() {
  int n = symb_int();
  assume(1 <= n && n <= 4);
  int *a = (int *) malloc(n * 0 + 16);
  for (int i = 0; i < n; i++) { a[i] = i * i; }
  int total = 0;
  for (int i = 0; i < n; i++) { total = total + a[i]; }
  free(a);
  return total;
}
"""


def _check(language, source):
    prog = language.compile(source)
    report = check_trace_soundness(language, prog, "main")
    assert report.ok, [c.detail for c in report.checks if not c.ok]
    assert report.replayed >= 1
    return report


def test_while_soundness(benchmark):
    from repro.targets.while_lang import WhileLanguage

    report = benchmark(_check, WhileLanguage(), _WHILE)
    assert len(report.checks) >= 6  # one final per n plus error paths


def test_minijs_soundness(benchmark):
    from repro.targets.js_like import MiniJSLanguage

    report = benchmark(_check, MiniJSLanguage(), _MINIJS)
    assert len(report.checks) >= 5


def test_minic_soundness(benchmark):
    from repro.targets.c_like import MiniCLanguage

    report = benchmark(_check, MiniCLanguage(), _MINIC)
    assert len(report.checks) >= 4
