"""Analysis-service benchmark: burst throughput, idempotent replay, and
crash-storm durability.

Three measurements over the crash-safe analysis service
(:mod:`repro.service`):

* **Burst throughput** — a burst of distinct jobs is submitted and
  drained; reports jobs/sec cold (compile + explore + store) and
  jobs/sec on an identical *replayed* burst, where every submission is
  served from the content-addressed result store.
* **Warm/cold ratio** — the replayed burst must be at least
  ``WARM_RATIO_TARGET``× faster than the cold one: this is the
  idempotent-replay guarantee paying for itself.
* **Crash storm** — a subprocess daemon draining the same burst is
  SIGKILLed at checkpoint boundaries and restarted until idle (at least
  ``STORM_KILLS_TARGET`` kills mid-burst).  Acceptance: zero jobs lost,
  zero duplicated — every job exactly once in ``done/`` — and every
  finals digest identical to the calm run's.

Emits ``BENCH_service.json`` next to the repository root.  The
``--smoke`` mode runs a smaller burst, performs the same assertions,
and writes nothing — it is the CI guard wired into ``make verify``.

Run with::

    PYTHONPATH=src:. python benchmarks/bench_service.py [--smoke]
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import textwrap
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
sys.path.insert(0, SRC_ROOT)

from repro.service import AnalysisService, JobSpec
from repro.testing.io import atomic_write_json

from benchmarks.tables import bench_meta

OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_service.json",
)

WARM_RATIO_TARGET = 5.0
STORM_KILLS_TARGET = 3

STORM_CHILD = textwrap.dedent(
    """
    import json, sys
    sys.path.insert(0, sys.argv[1])
    from repro.service import AnalysisService, JobSpec
    from repro.testing.faults import CheckpointKill, FaultPlan

    plan = FaultPlan(checkpoint_kills=(CheckpointKill(1, mode="sigkill"),))
    svc = AnalysisService(
        sys.argv[2], checkpoint_interval=10, fault_plan=plan, max_attempts=3
    )
    if sys.argv[3] != "-":
        for payload in json.load(open(sys.argv[3])):
            svc.submit(JobSpec.from_dict(payload))
    svc.run_until_idle()
    print("IDLE", flush=True)
    """
)


def burst(n: int) -> List[JobSpec]:
    """``n`` distinct jobs: branching loops with a seed-dependent bug."""
    specs = []
    for i in range(n):
        bound = 3 + (i % 3)
        pivot = 2 + (i % 5)
        specs.append(
            JobSpec(
                language="while",
                source=f"""
                proc main() {{
                  x := symb_int();
                  assume(0 <= x and x <= 12);
                  s := {i};
                  i := 0;
                  while (i < {bound}) {{
                    if (x = i + {pivot}) {{ s := s + 3; }} else {{ s := s + 1; }}
                    i := i + 1;
                  }}
                  assert(not (s = {i + bound + 2}));
                  return s;
                }}
                """,
            )
        )
    return specs


def run_burst(specs: List[JobSpec]) -> Dict:
    """Cold burst + identical replayed burst on one service root."""
    root = tempfile.mkdtemp(prefix="bench-service-")
    try:
        svc = AnalysisService(root, checkpoint_interval=200)
        t0 = time.perf_counter()
        for spec in specs:
            svc.submit(spec)
        processed = svc.run_until_idle()
        cold = time.perf_counter() - t0

        t1 = time.perf_counter()
        served = 0
        for spec in specs:
            job_id, cached = svc.submit(spec)
            if job_id is None and cached is not None:
                served += 1
        warm = time.perf_counter() - t1

        counters = svc.metrics.as_dict()
        return {
            "jobs": len(specs),
            "processed": processed,
            "served_from_cache": served,
            "cold_wall": round(cold, 4),
            "warm_wall": round(warm, 4),
            "cold_jobs_per_sec": round(len(specs) / cold, 2) if cold else 0.0,
            "warm_jobs_per_sec": round(len(specs) / warm, 2) if warm else 0.0,
            "warm_ratio": round(cold / warm, 1) if warm else float("inf"),
            "gil_cache_hits": counters.get("service.cache_hit_gil", 0),
            "result_cache_hits": counters.get("service.cache_hit_result", 0),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_crash_storm(specs: List[JobSpec]) -> Dict:
    """SIGKILL a subprocess daemon mid-burst until the burst drains."""
    root = tempfile.mkdtemp(prefix="bench-service-storm-")
    try:
        calm = AnalysisService(os.path.join(root, "calm"), checkpoint_interval=10)
        for spec in specs:
            calm.submit(spec)
        calm.run_until_idle()
        truth = {s.key(): calm.result_for(s.key()).finals_digest for s in specs}

        storm_root = os.path.join(root, "storm")
        spec_file = os.path.join(root, "burst.json")
        with open(spec_file, "w") as fh:
            json.dump([s.to_dict() for s in specs], fh)

        kills = 0
        incarnations = 0
        drained = False
        t0 = time.perf_counter()
        for incarnation in range(10 * len(specs)):
            incarnations += 1
            proc = subprocess.run(
                [
                    sys.executable, "-c", STORM_CHILD,
                    SRC_ROOT, storm_root,
                    spec_file if incarnation == 0 else "-",
                ],
                capture_output=True,
                timeout=300,
            )
            if proc.returncode == -9:
                kills += 1
                continue
            if proc.returncode != 0:
                raise RuntimeError(
                    f"storm daemon failed: {proc.stderr.decode()[-2000:]}"
                )
            drained = True
            break
        wall = time.perf_counter() - t0

        svc = AnalysisService(storm_root, checkpoint_interval=10)
        done = svc.queue.done_ids()
        done_keys = sorted(svc.queue.load_done(j)["key"] for j in done)
        digests_ok = all(
            svc.result_for(s.key()) is not None
            and svc.result_for(s.key()).finals_digest == truth[s.key()]
            for s in specs
        )
        return {
            "jobs": len(specs),
            "kills": kills,
            "incarnations": incarnations,
            "drained": drained,
            "done": len(done),
            "lost": len(specs) - len(set(done_keys) & set(truth)),
            "duplicated": len(done_keys) - len(set(done_keys)),
            "pending_left": len(svc.queue.pending_ids()),
            "active_left": len(svc.queue.active_ids()),
            "quarantined": len(svc.queue.quarantined_ids()),
            "digests_match_calm_run": digests_ok,
            "wall": round(wall, 4),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    mode = "smoke" if smoke else "full"
    print(f"== bench_service ({mode}) ==")

    specs = burst(4 if smoke else 12)
    throughput = run_burst(specs)
    print(
        f"burst: {throughput['jobs']} jobs  "
        f"cold {throughput['cold_jobs_per_sec']:.1f} jobs/s  "
        f"warm {throughput['warm_jobs_per_sec']:.1f} jobs/s  "
        f"ratio {throughput['warm_ratio']}x"
    )
    ratio_ok = throughput["warm_ratio"] >= WARM_RATIO_TARGET
    replay_ok = throughput["served_from_cache"] == throughput["jobs"]
    print(
        f"idempotent replay: {throughput['served_from_cache']}/"
        f"{throughput['jobs']} served from cache "
        f"({'ok' if replay_ok else 'FAILED'}); warm/cold "
        f"{'meets' if ratio_ok else 'MISSES'} {WARM_RATIO_TARGET}x target"
    )

    storm_specs = burst(4 if smoke else 6)
    storm = run_crash_storm(storm_specs)
    storm_ok = (
        storm["drained"]
        and storm["kills"] >= STORM_KILLS_TARGET
        and storm["lost"] == 0
        and storm["duplicated"] == 0
        and storm["pending_left"] == 0
        and storm["active_left"] == 0
        and storm["digests_match_calm_run"]
    )
    print(
        f"crash storm: {storm['kills']} kills over "
        f"{storm['incarnations']} incarnations, "
        f"{storm['done']}/{storm['jobs']} done, "
        f"lost={storm['lost']} duplicated={storm['duplicated']} "
        f"({'ok' if storm_ok else 'FAILED'})"
    )

    passed = ratio_ok and replay_ok and storm_ok
    if not smoke:
        report = {
            "benchmark": "bench_service",
            "meta": bench_meta(),
            "workload": "replayed burst of seed-parametric While jobs",
            "throughput": throughput,
            "crash_storm": storm,
            "acceptance": {
                "target": (
                    f"warm/cold >= {WARM_RATIO_TARGET}x on identical "
                    f"resubmissions; >= {STORM_KILLS_TARGET} mid-burst "
                    "SIGKILLs with zero lost/duplicated jobs and "
                    "calm-run-identical digests"
                ),
                "passed": passed,
            },
        }
        atomic_write_json(OUT_PATH, report)
        print(f"wrote {OUT_PATH}")
    print("PASS" if passed else "FAIL")
    return 0 if passed else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
