"""E4 — engine ablation: Gillian vs the JaVerT 2.0-like baseline (§4.1).

The paper attributes Gillian-JS's ≈2× speed-up over JaVerT 2.0 to engine
improvements: "more efficient use of OCaml features, such as hashtables"
and "better simplifications and better caching of results" in the solver.
This benchmark runs the heaviest Buckets-style suites under both
configurations and reports the speed-up; the expected shape is that the
optimised engine wins (with the same exploration — identical command
counts and verdicts — checked by the Table 1 benchmark).
"""

import time

import pytest

from benchmarks.tables import run_suite
from repro.engine.config import gillian, javert2_baseline
from repro.targets.js_like import MiniJSLanguage
from repro.targets.js_like.buckets import suites

#: The suites with the most solver traffic.
ABLATION_SUITES = ["bst", "set", "pqueue", "heap", "bag"]

LANGUAGE = MiniJSLanguage()


@pytest.mark.parametrize("config_name", ["gillian", "javert2"])
@pytest.mark.parametrize("name", ABLATION_SUITES)
def test_config_timing(name, config_name, benchmark):
    config = gillian() if config_name == "gillian" else javert2_baseline()
    source, tests = suites.suite(name)
    row = benchmark(run_suite, LANGUAGE, source, tests, name, config)
    assert row.tests == len(tests)


def test_speedup_summary():
    """One-shot comparison: total time under both configurations."""
    total = {"gillian": 0.0, "javert2": 0.0}
    for name in ABLATION_SUITES:
        source, tests = suites.suite(name)
        for config_name, config in (
            ("gillian", gillian()),
            ("javert2", javert2_baseline()),
        ):
            start = time.perf_counter()
            run_suite(LANGUAGE, source, tests, name, config)
            total[config_name] += time.perf_counter() - start
    speedup = total["javert2"] / max(total["gillian"], 1e-9)
    print(
        f"\nAblation: gillian {total['gillian']:.2f}s, "
        f"javert2-baseline {total['javert2']:.2f}s, speed-up {speedup:.2f}x"
    )
    # Shape check: caching must not *hurt*; the paper reports ~2x, our
    # Python engine's ratio depends on suite size, so only direction is
    # asserted (with slack for timer noise).
    assert speedup > 0.9
