"""E8 — Table 3: symbolic testing of the MiniRust library.

The third target column (no table in the paper — Gillian-Rust arrived
after PLDI'20, so this extends Tables 1/2 with the ownership memory):
per-row test counts, GIL commands and time for the vec/option/list
suites, with the only failing tests being the planted ownership-fault
demonstrations.
"""

import pytest

from benchmarks.tables import run_suite, run_table3
from repro.engine.config import gillian
from repro.targets.rust_like import MiniRustLanguage
from repro.targets.rust_like.collections import suites

LANGUAGE = MiniRustLanguage()
EXPECTED_T = suites.expected_test_counts()


@pytest.mark.parametrize("name", suites.suite_names())
def test_row(name, benchmark):
    source, tests = suites.suite(name)
    row = benchmark(run_suite, LANGUAGE, source, tests, name, gillian())
    assert row.tests == EXPECTED_T[name]
    assert set(row.failures) <= suites.KNOWN_BUG_TESTS
    assert row.commands > 0


def test_table3_totals():
    report = run_table3(gillian())
    total = report.total
    assert total.tests == 18  # Table 3: 18 symbolic tests
    assert set(total.failures) == suites.KNOWN_BUG_TESTS
    print()
    print(report.format("Table 3 — MiniRust library (Gillian-Rust)"))
