"""Solver benchmark: incremental prefix solving vs the monolithic ablation.

Runs the Table 1 (Buckets-style MiniJS) and Table 2 (Collections-C-style
MiniC) symbolic-testing workloads twice in the same process — once with
the incremental layer enabled (per-prefix solver contexts, delta-only
normalisation, parent-model reuse) and once with ``solver_incremental``
ablated (every query re-solves the whole conjunction) — and reports:

* solver wall time per configuration (``SolverStats.solve_time``);
* query counts and hit rates, where a "hit" is any query answered
  without running a solve pipeline (frozenset cache hit, solved-prefix
  hit, or parent-model reuse);
* a **differential check**: every query issued during the incremental
  run is recorded and replayed through a fresh monolithic solver; the
  verdicts must be identical.

Emits ``BENCH_solver.json`` next to the repository root.  Acceptance
target (ISSUE): ≥2× reduction in solver wall time OR ≥2× higher hit
rate for the incremental configuration, with a clean differential.

The run also asserts a **cache-tier floor**: the incremental hit rate
(any query answered without running a solve pipeline) must stay at or
above ``HIT_RATE_FLOOR``.  The floor is deliberately on the combined
rate rather than on the exact ``cache_hits`` tier alone: on this
workload branch guards reach the solver pre-simplified, so the exact
normalized-delta cache (keyed on ``(parent, simplified delta)``) only
fires when the same extension arrives phrased differently — its
historical dozen whole-conjunction-permutation hits are now intercepted
earlier by the contradiction short-cut and the prefix tier, which is a
strict improvement the per-tier counters would misreport as a
regression.

Run with::

    PYTHONPATH=src:. python benchmarks/bench_solver.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.engine.config import EngineConfig, gillian
from repro.testing.io import atomic_write_json
from repro.logic.pathcond import PathCondition
from repro.logic.simplify import Simplifier
from repro.logic.solver import SatResult, Solver
from repro.testing.harness import SymbolicTester

from benchmarks.tables import bench_meta

OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_solver.json",
)

#: minimum combined hit rate (cache + prefix + model reuse over queries)
#: the incremental configuration must sustain on the Table 1/2 workload;
#: measured ~0.58 at the time the floor was recorded
HIT_RATE_FLOOR = 0.5


class RecordingTester(SymbolicTester):
    """A tester whose solvers log every (conjuncts, verdict) query."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.query_log: List[Tuple[Tuple, str]] = []
        self.solvers: List[Solver] = []

    def make_solver(self) -> Solver:
        solver = super().make_solver()
        self.solvers.append(solver)
        if self.query_log is not None:
            log = self.query_log
            orig_check = solver.check

            def check(pc):
                result = orig_check(pc)
                key = (
                    tuple(pc.conjuncts)
                    if isinstance(pc, PathCondition)
                    else tuple(pc)
                )
                log.append((key, result.name))
                return result

            solver.check = check
        return solver


def workloads():
    from repro.targets.c_like import MiniCLanguage
    from repro.targets.c_like.collections import suites as c_suites
    from repro.targets.js_like import MiniJSLanguage
    from repro.targets.js_like.buckets import suites as js_suites

    out = []
    js = MiniJSLanguage()
    for name in js_suites.suite_names():
        source, tests = js_suites.suite(name)
        out.append((js, f"table1/{name}", source, tests))
    c = MiniCLanguage()
    for name in c_suites.suite_names():
        source, tests = c_suites.suite(name)
        out.append((c, f"table2/{name}", source, tests))
    return out


def run_config(config: EngineConfig, record: bool) -> Dict:
    """Run every workload suite under ``config``; aggregate solver stats."""
    agg = {
        "queries": 0,
        "cache_hits": 0,
        "prefix_hits": 0,
        "model_reuse_hits": 0,
        "unsat_inherited": 0,
        "incremental_solves": 0,
        "monolithic_solves": 0,
        "solver_time": 0.0,
        "wall_time": 0.0,
        "commands": 0,
        "suites": {},
    }
    query_log: List[Tuple[Tuple, str]] = []
    for language, name, source, tests in workloads():
        tester = RecordingTester(language, config=config, replay=False)
        if not record:
            tester.query_log = None
        prog = language.compile(source)
        suite_time = 0.0
        for test in tests:
            result = tester.run_test(prog, test)
            agg["commands"] += result.stats.commands_executed
            agg["wall_time"] += result.stats.wall_time
            suite_time += result.stats.wall_time
        for solver in tester.solvers:
            s = solver.stats
            agg["queries"] += s.queries
            agg["cache_hits"] += s.cache_hits
            agg["prefix_hits"] += s.prefix_hits
            agg["model_reuse_hits"] += s.model_reuse_hits
            agg["unsat_inherited"] += s.unsat_inherited
            agg["incremental_solves"] += s.incremental_solves
            agg["monolithic_solves"] += s.monolithic_solves
            agg["solver_time"] += s.solve_time
        agg["suites"][name] = round(suite_time, 4)
        if record:
            query_log.extend(tester.query_log)
    hits = agg["cache_hits"] + agg["prefix_hits"] + agg["model_reuse_hits"]
    agg["hit_rate"] = round(hits / agg["queries"], 4) if agg["queries"] else 0.0
    agg["solver_time"] = round(agg["solver_time"], 4)
    agg["wall_time"] = round(agg["wall_time"], 4)
    return {"stats": agg, "query_log": query_log}


def differential(query_log: List[Tuple[Tuple, str]]) -> Dict:
    """Replay recorded queries through a fresh monolithic solver."""
    unique: Dict[Tuple, str] = {}
    for key, verdict in query_log:
        unique.setdefault(key, verdict)
    monolithic = Solver(
        simplifier=Simplifier(memoise=True),
        cache_enabled=False,
        incremental=False,
    )
    mismatches = []
    for key, verdict in unique.items():
        replayed = monolithic.check(list(key)).name
        if replayed != verdict:
            mismatches.append(
                {"pc": [repr(c) for c in key], "incremental": verdict,
                 "monolithic": replayed}
            )
    return {
        "queries_recorded": len(query_log),
        "unique_queries": len(unique),
        "mismatches": mismatches,
        "identical": not mismatches,
    }


def main() -> int:
    print("== incremental configuration ==")
    inc = run_config(gillian(), record=True)
    print(json.dumps(inc["stats"], indent=2))

    print("== ablation: solver_incremental=False ==")
    abl = run_config(gillian(solver_incremental=False), record=False)
    print(json.dumps(abl["stats"], indent=2))

    diff = differential(inc["query_log"])
    print(
        f"differential: {diff['unique_queries']} unique queries, "
        f"{len(diff['mismatches'])} mismatches"
    )

    inc_stats, abl_stats = inc["stats"], abl["stats"]
    speedup = (
        abl_stats["solver_time"] / inc_stats["solver_time"]
        if inc_stats["solver_time"]
        else float("inf")
    )
    hit_gain = (
        inc_stats["hit_rate"] / abl_stats["hit_rate"]
        if abl_stats["hit_rate"]
        else float("inf")
    )
    report = {
        "benchmark": "bench_solver",
        "meta": bench_meta(),
        "workload": "table1 (MiniJS/Buckets) + table2 (MiniC/Collections)",
        "incremental": inc_stats,
        "ablation_no_incremental": abl_stats,
        "solver_time_speedup": round(speedup, 3),
        "hit_rate_gain": round(hit_gain, 3),
        "differential": diff,
        "cache_tiers": {
            "hit_rate_floor": HIT_RATE_FLOOR,
            "floor_met": inc_stats["hit_rate"] >= HIT_RATE_FLOOR,
        },
        "acceptance": {
            "target": (
                "speedup >= 2.0 or hit_rate_gain >= 2.0, differential "
                f"identical, hit_rate >= {HIT_RATE_FLOOR}"
            ),
            "passed": (
                (speedup >= 2.0 or hit_gain >= 2.0)
                and diff["identical"]
                and inc_stats["hit_rate"] >= HIT_RATE_FLOOR
            ),
        },
    }
    atomic_write_json(OUT_PATH, report, indent=2)
    print(f"solver_time_speedup: {speedup:.2f}x   hit_rate_gain: {hit_gain:.2f}x")
    print(f"wrote {OUT_PATH}")
    return 0 if report["acceptance"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
