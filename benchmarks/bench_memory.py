"""Memory-model dispatch benchmark: combinator-built vs pre-refactor.

The memlib refactor (ROADMAP item 4) rebuilt the target memories as
composition expressions over :mod:`repro.memlib` parts.  The fingerprint
(``make fingerprint-check``) pins *what* the rebuilt models do; this
benchmark pins *how fast* they do it.  The pre-refactor While monolith —
the hand-written dispatch loop the combinators replaced — is frozen
below verbatim (``Frozen*``, copied from the last monolithic revision of
``targets/while_lang/memory.py``) and both implementations run the same
action scripts:

* **concrete arm** — a mutate/lookup/dispose script over a store of
  locations × properties, threading the returned memory;
* **symbolic arm** — the same script through the symbolic models with
  literal locations (the whole-program symbolic-testing fast path, where
  equalities fold and the loop shape dominates).

A second gate covers the MiniRust memory: the full ``RUST_PART``
product (heap × owner table) runs an ownership-lifecycle script against
hand-routed calls into the same two bare parts, and the composed
model's time must stay within ``RUST_GATE_RATIO`` — pinning what the
product combinator's routing and pair reassembly cost on the deepest
composition the repo ships.

Acceptance (the ≤10% regression gate): the combinator-built model's
best-of-N script time must be within ``GATE_RATIO`` of the frozen
monolith's on both arms.  The full run emits ``BENCH_memory.json`` with
the shared ``bench_meta`` envelope; ``--smoke`` runs fewer repetitions,
applies the same gate, and writes nothing — it is the CI guard wired
into ``make verify``.

Run with::

    PYTHONPATH=src:. python benchmarks/bench_memory.py [--smoke]
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.gil.ops import EvalError
from repro.testing.io import atomic_write_json
from repro.gil.values import Symbol, Value
from repro.logic.expr import Expr, Lit, lst
from repro.logic.pathcond import PathCondition
from repro.logic.simplify import simplify
from repro.logic.solver import Solver
from repro.state.interface import MemErr, MemOk, SymMemErr, SymMemOk
from repro.targets.rust_like.memory import (
    FRESH_OWNER_META,
    RUST_BLOCKS,
    RUST_OWNERS,
    WORD_CHUNK,
    RustConcreteMemory,
    RustSymbolicMemory,
)
from repro.targets.while_lang.memory import (
    WhileConcreteMemory,
    WhileSymbolicMemory,
)

from benchmarks.tables import bench_meta

OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_memory.json",
)

#: combinator time / frozen time must stay at or below this on each arm
GATE_RATIO = 1.10

#: full RUST_PART time / bare-part time must stay at or below this —
#: the product layer's routing and pair reassembly over hand-routed
#: calls into the same two parts
RUST_GATE_RATIO = 1.50

N_LOCS = 6
N_PROPS = 4


# -- the frozen pre-refactor monolith (dispatch baseline) ---------------------
# Copied verbatim (modulo class names) from the last monolithic revision
# of targets/while_lang/memory.py, so the comparison measures exactly the
# dispatch indirection the combinator layering added.


@dataclass(frozen=True)
class FrozenWhileMemory:
    cells: Tuple[Tuple[Tuple[Symbol, str], Value], ...] = ()

    def as_dict(self) -> Dict[Tuple[Symbol, str], Value]:
        return dict(self.cells)

    @staticmethod
    def of(cells: Dict[Tuple[Symbol, str], Value]) -> "FrozenWhileMemory":
        return FrozenWhileMemory(
            tuple(sorted(cells.items(), key=lambda kv: (kv[0][0].name, kv[0][1])))
        )


class FrozenWhileConcrete:
    """The pre-refactor concrete While dispatch loop, frozen."""

    def initial(self) -> FrozenWhileMemory:
        return FrozenWhileMemory()

    def execute(self, action: str, memory: FrozenWhileMemory, value: Value) -> List:
        cells = memory.as_dict()
        if action == "lookup":
            loc, prop = self._loc_prop(value)
            if (loc, prop) in cells:
                return [MemOk(memory, cells[(loc, prop)])]
            return [MemErr(("missing-property", loc, prop))]
        if action == "mutate":
            loc, prop, new_value = value
            self._check_loc(loc)
            cells[(loc, str(prop))] = new_value
            return [MemOk(FrozenWhileMemory.of(cells), new_value)]
        if action == "dispose":
            (loc,) = value
            self._check_loc(loc)
            remaining = {k: v for k, v in cells.items() if k[0] != loc}
            if len(remaining) == len(cells):
                return [MemErr(("missing-object", loc))]
            return [MemOk(FrozenWhileMemory.of(remaining), True)]
        raise ValueError(f"unknown While action {action!r}")

    @staticmethod
    def _loc_prop(value: Value) -> Tuple[Symbol, str]:
        loc, prop = value
        FrozenWhileConcrete._check_loc(loc)
        return loc, str(prop)

    @staticmethod
    def _check_loc(loc: Value) -> None:
        if not isinstance(loc, Symbol):
            raise EvalError(f"not an object location: {loc!r}")


@dataclass(frozen=True)
class FrozenSymWhileMemory:
    cells: Tuple[Tuple[Tuple[Expr, str], Expr], ...] = ()

    def as_dict(self) -> Dict[Tuple[Expr, str], Expr]:
        return dict(self.cells)

    @staticmethod
    def of(cells: Dict[Tuple[Expr, str], Expr]) -> "FrozenSymWhileMemory":
        return FrozenSymWhileMemory(tuple(cells.items()))

    def locations(self) -> List[Expr]:
        seen: List[Expr] = []
        for (loc, _prop), _ in self.cells:
            if loc not in seen:
                seen.append(loc)
        return seen


class FrozenWhileSymbolic:
    """The pre-refactor symbolic While dispatch loop, frozen."""

    def initial(self) -> FrozenSymWhileMemory:
        return FrozenSymWhileMemory()

    def execute(
        self, action: str, memory: FrozenSymWhileMemory, expr: Expr, pc, solver
    ) -> List:
        args = _unpack_list(expr)
        if action == "lookup":
            loc, prop = args[0], _prop_name(args[1])
            return self._lookup(memory, loc, prop, pc, solver)
        if action == "mutate":
            loc, prop, new_value = args[0], _prop_name(args[1]), args[2]
            return self._mutate(memory, loc, prop, new_value, pc, solver)
        if action == "dispose":
            return self._dispose(memory, args[0], pc, solver)
        raise ValueError(f"unknown While action {action!r}")

    def _lookup(
        self, memory: FrozenSymWhileMemory, loc: Expr, prop: str, pc, solver
    ) -> List:
        branches: List = []
        miss_conditions: List[Expr] = []
        for (cell_loc, cell_prop), cell_value in memory.cells:
            if cell_prop != prop:
                continue
            eq = simplify(loc.eq(cell_loc))
            if eq == Lit(False):
                continue
            if eq == Lit(True):
                return [SymMemOk(memory, cell_value)]
            if solver.is_sat(pc.conjoin(eq)):
                branches.append(SymMemOk(memory, cell_value, (eq,)))
            miss_conditions.append(simplify(loc.neq(cell_loc)))
        if not any(c == Lit(False) for c in miss_conditions):
            miss = tuple(c for c in miss_conditions if c != Lit(True))
            if solver.is_sat(pc.conjoin_all(miss)):
                branches.append(
                    SymMemErr(lst("missing-property", loc, prop), miss)
                )
        return branches

    def _mutate(
        self, memory: FrozenSymWhileMemory, loc: Expr, prop: str,
        new_value: Expr, pc, solver,
    ) -> List:
        branches: List = []
        absent_conditions: List[Expr] = []
        for (cell_loc, cell_prop), _ in memory.cells:
            if cell_prop != prop:
                continue
            eq = simplify(loc.eq(cell_loc))
            if eq == Lit(False):
                continue
            cells = memory.as_dict()
            cells[(cell_loc, prop)] = new_value
            updated = FrozenSymWhileMemory.of(cells)
            if eq == Lit(True):
                return [SymMemOk(updated, new_value)]
            if solver.is_sat(pc.conjoin(eq)):
                branches.append(SymMemOk(updated, new_value, (eq,)))
            absent_conditions.append(simplify(loc.neq(cell_loc)))
        if not any(c == Lit(False) for c in absent_conditions):
            learned = tuple(c for c in absent_conditions if c != Lit(True))
            if solver.is_sat(pc.conjoin_all(learned)):
                cells = memory.as_dict()
                cells[(loc, prop)] = new_value
                branches.append(
                    SymMemOk(FrozenSymWhileMemory.of(cells), new_value, learned)
                )
        return branches

    def _dispose(
        self, memory: FrozenSymWhileMemory, loc: Expr, pc, solver
    ) -> List:
        cases: List = [(memory.as_dict(), [], False)]
        for known_loc in memory.locations():
            eq = simplify(loc.eq(known_loc))
            next_cases: List = []
            for cells, learned, matched in cases:
                if eq == Lit(True):
                    removed = {c: v for c, v in cells.items() if c[0] != known_loc}
                    next_cases.append((removed, learned, True))
                    continue
                if eq == Lit(False):
                    next_cases.append((cells, learned, matched))
                    continue
                alias_learned = learned + [eq]
                if solver.is_sat(pc.conjoin_all(alias_learned)):
                    removed = {c: v for c, v in cells.items() if c[0] != known_loc}
                    next_cases.append((removed, alias_learned, True))
                diseq = simplify(loc.neq(known_loc))
                noalias_learned = learned + [diseq]
                if solver.is_sat(pc.conjoin_all(noalias_learned)):
                    next_cases.append((cells, noalias_learned, matched))
            cases = next_cases
        branches: List = []
        for cells, learned, matched in cases:
            learned_t = tuple(c for c in learned if c != Lit(True))
            if matched:
                branches.append(
                    SymMemOk(FrozenSymWhileMemory.of(cells), Lit(True), learned_t)
                )
            else:
                branches.append(
                    SymMemErr(lst("missing-object", loc), learned_t)
                )
        return branches


def _unpack_list(expr: Expr) -> List[Expr]:
    from repro.logic.expr import EList

    if isinstance(expr, EList):
        return list(expr.items)
    if isinstance(expr, Lit) and isinstance(expr.value, tuple):
        return [Lit(v) for v in expr.value]
    raise EvalError(f"action argument is not a list: {expr!r}")


def _prop_name(expr: Expr) -> str:
    if isinstance(expr, Lit) and isinstance(expr.value, str):
        return expr.value
    raise EvalError(f"While property names must be concrete strings: {expr!r}")


# -- the workload -------------------------------------------------------------


def action_script() -> List[Tuple[str, Tuple]]:
    """A deterministic mutate/lookup/dispose script over the store.

    Populates every (location, property) cell, reads each back (plus a
    few misses), then disposes half the locations and re-reads — the
    action mix one exploration path of a generated fuzz program performs.
    """
    locs = [Symbol(f"l{i}") for i in range(N_LOCS)]
    props = [f"p{j}" for j in range(N_PROPS)]
    script: List[Tuple[str, Tuple]] = []
    for i, loc in enumerate(locs):
        for j, prop in enumerate(props):
            script.append(("mutate", (loc, prop, i * N_PROPS + j)))
    for loc in locs:
        for prop in props:
            script.append(("lookup", (loc, prop)))
        script.append(("lookup", (loc, "absent")))
    for loc in locs[::2]:
        script.append(("dispose", (loc,)))
        script.append(("lookup", (loc, props[0])))
        script.append(("mutate", (loc, props[0], -1)))
    return script


def run_concrete(model, script) -> int:
    """Thread the script through a concrete model; count branches."""
    memory = model.initial()
    branches = 0
    for action, args in script:
        out = model.execute(action, memory, args)
        branches += len(out)
        for b in out:
            if isinstance(b, (MemOk,)) or hasattr(b, "memory"):
                memory = b.memory
                break
    return branches


def run_symbolic(model, script, pc, solver) -> int:
    """Thread the script through a symbolic model; count branches."""
    memory = model.initial()
    branches = 0
    for action, args in script:
        expr = lst(*(Lit(a) if isinstance(a, Symbol) else a for a in args))
        out = model.execute(action, memory, expr, pc, solver)
        branches += len(out)
        for b in out:
            if hasattr(b, "memory"):
                memory = b.memory
                break
    return branches


def rust_action_script() -> List[Tuple[str, Tuple]]:
    """A deterministic owned-block lifecycle over the MiniRust memory.

    Allocates and registers owners, writes and owner-checked-reads every
    cell, runs shared and mutable borrow/release cycles, moves every
    owner (generation bump), then drops half the blocks — the action mix
    one path of a MiniRust collections test performs.
    """
    locs = [Symbol(f"r{i}") for i in range(N_LOCS)]
    script: List[Tuple[str, Tuple]] = []
    for loc in locs:
        script.append(("alloc", (loc, N_PROPS)))
        script.append(("own_new", (loc, FRESH_OWNER_META)))
    for i, loc in enumerate(locs):
        for j in range(N_PROPS):
            script.append(("own_check", (loc, 0)))
            script.append(("store", (WORD_CHUNK, (loc, j), i + j)))
    for loc in locs:
        script.append(("borrow", (loc, 0)))
        for j in range(N_PROPS):
            script.append(("load", (WORD_CHUNK, (loc, j))))
        script.append(("release", (loc,)))
        script.append(("borrow_mut", (loc, 0)))
        script.append(("release_mut", (loc,)))
        script.append(("own_move", (loc, 0)))
    for loc in locs[::2]:
        script.append(("drop_check", (loc, 1)))
        script.append(("own_drop", (loc,)))
        script.append(("free", ((loc, 0),)))
    return script


def _rust_sym_args(action: str, args: Tuple) -> Expr:
    """The symbolic (Expr) argument list mirroring a concrete tuple."""
    if action in ("store", "load"):
        chunk, (loc, off) = args[0], args[1]
        rest = [args[2]] if action == "store" else []
        return lst(Lit(chunk), lst(Lit(loc), off), *rest)
    if action == "free":
        ((loc, off),) = args
        return lst(lst(Lit(loc), off))
    if action == "own_new":
        return lst(Lit(args[0]), Lit(FRESH_OWNER_META))
    return lst(*(Lit(a) if isinstance(a, Symbol) else a for a in args))


def run_rust_bare_concrete(script) -> int:
    """Hand-route the script to the two bare parts (no product layer)."""
    block_actions = RUST_BLOCKS.actions
    blocks = RUST_BLOCKS.initial_concrete()
    owners = RUST_OWNERS.initial_concrete()
    branches = 0
    for action, args in script:
        to_blocks = action in block_actions
        part = RUST_BLOCKS if to_blocks else RUST_OWNERS
        out = part.execute_concrete(action, blocks if to_blocks else owners, args)
        branches += len(out)
        b = out[0]
        if hasattr(b, "memory"):
            if to_blocks:
                blocks = b.memory
            else:
                owners = b.memory
    return branches


def run_rust_bare_symbolic(script, pc, solver) -> int:
    """The bare-part routing through the symbolic part arms."""
    block_actions = RUST_BLOCKS.actions
    blocks = RUST_BLOCKS.initial_symbolic()
    owners = RUST_OWNERS.initial_symbolic()
    branches = 0
    for action, args in script:
        expr = _rust_sym_args(action, args)
        to_blocks = action in block_actions
        part = RUST_BLOCKS if to_blocks else RUST_OWNERS
        out = part.execute_symbolic(
            action, blocks if to_blocks else owners, expr, pc, solver
        )
        branches += len(out)
        b = out[0]
        if hasattr(b, "memory"):
            if to_blocks:
                blocks = b.memory
            else:
                owners = b.memory
    return branches


def run_rust_symbolic(model, script, pc, solver) -> int:
    """Thread the script through the full RustSymbolicMemory model."""
    memory = model.initial()
    branches = 0
    for action, args in script:
        out = model.execute(action, memory, _rust_sym_args(action, args), pc, solver)
        branches += len(out)
        b = out[0]
        if hasattr(b, "memory"):
            memory = b.memory
    return branches


def measure_rust(reps: int, iters: int) -> Dict[str, Dict]:
    """Best-of-``reps`` timings: full RUST_PART vs hand-routed parts."""
    script = rust_action_script()
    pc, solver = PathCondition(), Solver()
    full_c, full_s = RustConcreteMemory(), RustSymbolicMemory()

    def conc_full():
        return sum(run_concrete(full_c, script) for _ in range(iters))

    def conc_bare():
        return sum(run_rust_bare_concrete(script) for _ in range(iters))

    def symb_full():
        return sum(run_rust_symbolic(full_s, script, pc, solver)
                   for _ in range(iters))

    def symb_bare():
        return sum(run_rust_bare_symbolic(script, pc, solver)
                   for _ in range(iters))

    conc_full(); conc_bare(); symb_full(); symb_bare()  # warm caches

    out: Dict[str, Dict] = {}
    for arm, bare_fn, full_fn in (
        ("concrete", conc_bare, conc_full),
        ("symbolic", symb_bare, symb_full),
    ):
        bare_t, bare_branches = best_of(bare_fn, reps)
        full_t, full_branches = best_of(full_fn, reps)
        if bare_branches != full_branches:
            raise AssertionError(
                f"rust {arm}: branch counts diverge — bare {bare_branches}, "
                f"composed {full_branches}"
            )
        out[arm] = {
            "bare_time": round(bare_t, 6),
            "composed_time": round(full_t, 6),
            "ratio": round(full_t / bare_t, 4) if bare_t else 0.0,
            "branches_per_run": bare_branches,
            "actions_per_run": len(script) * iters,
        }
    return out


def best_of(fn, reps: int) -> Tuple[float, int]:
    """Best wall time of ``reps`` runs of ``fn`` and its last result."""
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure(reps: int, iters: int) -> Dict[str, Dict]:
    """Interleaved best-of-``reps`` timings for both arms."""
    script = action_script()
    pc, solver = PathCondition(), Solver()
    frozen_c, combi_c = FrozenWhileConcrete(), WhileConcreteMemory()
    frozen_s, combi_s = FrozenWhileSymbolic(), WhileSymbolicMemory()

    def conc(model):
        return lambda: sum(run_concrete(model, script) for _ in range(iters))

    def symb(model):
        return lambda: sum(
            run_symbolic(model, script, pc, solver) for _ in range(iters)
        )

    # Warm up interning/solver caches so neither side pays them.
    conc(frozen_c)(); conc(combi_c)(); symb(frozen_s)(); symb(combi_s)()

    out: Dict[str, Dict] = {}
    for arm, frozen_fn, combi_fn in (
        ("concrete", conc(frozen_c), conc(combi_c)),
        ("symbolic", symb(frozen_s), symb(combi_s)),
    ):
        frozen_t, frozen_branches = best_of(frozen_fn, reps)
        combi_t, combi_branches = best_of(combi_fn, reps)
        if frozen_branches != combi_branches:
            raise AssertionError(
                f"{arm}: branch counts diverge — frozen {frozen_branches}, "
                f"combinator {combi_branches}"
            )
        out[arm] = {
            "frozen_time": round(frozen_t, 6),
            "combinator_time": round(combi_t, 6),
            "ratio": round(combi_t / frozen_t, 4) if frozen_t else 0.0,
            "branches_per_run": frozen_branches,
            "actions_per_run": len(script) * iters,
        }
    return out


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    reps, iters = (5, 20) if smoke else (9, 60)
    print(f"== bench_memory ({'smoke' if smoke else 'full'}) ==")
    arms = measure(reps, iters)
    passed = True
    for arm, row in arms.items():
        ok = row["ratio"] <= GATE_RATIO
        passed = passed and ok
        print(
            f"{arm:9s} frozen={row['frozen_time'] * 1e3:7.2f}ms "
            f"combinator={row['combinator_time'] * 1e3:7.2f}ms "
            f"ratio={row['ratio']:.3f} "
            f"({'ok' if ok else f'EXCEEDS {GATE_RATIO}x gate'})"
        )
    rust_arms = measure_rust(reps, iters)
    for arm, row in rust_arms.items():
        ok = row["ratio"] <= RUST_GATE_RATIO
        passed = passed and ok
        print(
            f"rust-{arm:9s} bare={row['bare_time'] * 1e3:7.2f}ms "
            f"composed={row['composed_time'] * 1e3:7.2f}ms "
            f"ratio={row['ratio']:.3f} "
            f"({'ok' if ok else f'EXCEEDS {RUST_GATE_RATIO}x gate'})"
        )
    print(
        f"dispatch-overhead gates (<= {GATE_RATIO}x While, "
        f"<= {RUST_GATE_RATIO}x Rust): {'ok' if passed else 'FAILED'}"
    )
    if not smoke:
        report = {
            "benchmark": "bench_memory",
            "meta": bench_meta(),
            "workload": (
                f"{len(action_script())}-action mutate/lookup/dispose script "
                f"x{iters}, best of {reps}, While model vs frozen monolith; "
                f"{len(rust_action_script())}-action ownership lifecycle, "
                f"full RUST_PART vs hand-routed bare parts"
            ),
            "gate_ratio": GATE_RATIO,
            "rust_gate_ratio": RUST_GATE_RATIO,
            "arms": arms,
            "rust_dispatch": rust_arms,
            "passed": passed,
        }
        atomic_write_json(OUT_PATH, report, indent=1, sort_keys=True)
        print(f"wrote {OUT_PATH}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
