"""E1 — Table 1: symbolic testing of the Buckets-style library (paper §4.1).

Regenerates both timing columns of Table 1: ``Time (J2)`` is the same
engine under the JaVerT 2.0-like baseline configuration (no simplifier
memoisation, no solver cache) and ``Time (GJS)`` is the optimised Gillian
configuration.  The shape to reproduce: identical results under both
configurations, per-row #T matching the paper, and Gillian faster than
the baseline (the paper reports roughly 2×).

Also reproduces the §4.1 finding that exactly the two known library bugs
are detected ("our testing has not found any additional bugs in
Buckets.js, but was able to detect the two bugs found in our previous
work").
"""

import pytest

from benchmarks.tables import run_suite, run_table1
from repro.engine.config import gillian, javert2_baseline
from repro.targets.js_like import MiniJSLanguage
from repro.targets.js_like.buckets import suites

LANGUAGE = MiniJSLanguage()
EXPECTED_T = suites.expected_test_counts()


@pytest.mark.parametrize("name", suites.suite_names())
def test_row(name, benchmark):
    source, tests = suites.suite(name)
    row = benchmark(run_suite, LANGUAGE, source, tests, name, gillian())
    # #T matches the paper's Table 1 row.
    assert row.tests == EXPECTED_T[name]
    # Only the two known bugs fail, and only in their suites.
    assert set(row.failures) <= suites.KNOWN_BUG_TESTS
    # Work was actually done.
    assert row.commands > 0


def test_table1_totals_and_known_bugs():
    report = run_table1(gillian())
    total = report.total
    assert total.tests == 74  # Table 1: 74 symbolic tests
    assert set(total.failures) == suites.KNOWN_BUG_TESTS
    print()
    print(report.format("Table 1 — Buckets-style library (Gillian-JS)", "Time(GJS)"))


def test_table1_baseline_agrees_on_results():
    """The J2 baseline must reach identical verdicts (same analysis,
    different speed)."""
    optimised = run_table1(gillian())
    baseline = run_table1(javert2_baseline())
    for fast, slow in zip(optimised.rows, baseline.rows):
        assert fast.name == slow.name
        assert fast.tests == slow.tests
        assert fast.commands == slow.commands  # identical exploration
        assert fast.failures == slow.failures
    print()
    print(baseline.format("Table 1 — baseline column", "Time(J2)"))
