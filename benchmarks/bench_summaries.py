"""Compositional-execution benchmark: function summaries on real suites.

Runs the Table 1 (Buckets-style MiniJS) and Table 2 (Collections-C-style
MiniC) symbolic-testing workloads through the summary engine
(:mod:`repro.specs`) and reports, per suite and per table:

* **call-site reduction** — the commands an inline descent of every
  summarised call would have executed (the summary's recorded build
  cost, accumulated per replay) versus the commands replay actually
  executed (one per served call).  This is the compositional win: the
  ≥10× acceptance gate is on this ratio, aggregated per table;
* **whole-run reduction** — total commands executed by the warm run
  (including any residual build cost) versus the summaries-off run.
  Smaller, since entry-procedure commands are never summarised;
* **cold vs warm** — the first summaries-on pass pays the one-time
  summarisation cost (``summary_build_commands``); the second pass must
  replay everything from the process-wide cache with **zero** build
  commands;
* a **correctness grid** — compiled/interpreted × summaries-on/off ×
  workers 1/2/4 must agree on the per-test multiset of final outcomes
  (digested via :func:`repro.engine.results.final_sort_key`).  The grid
  runs on the smoke subset (the full-suite identity is additionally
  checked for the sequential arms in full mode);
* an **incorrectness section** — :func:`repro.specs.find_bugs` hunts
  the first suite of each table with under-approximate summaries; every
  reported bug must be confirmed true-positive by concrete
  counter-model replay (no false positives, per the ISL reading).

Emits ``BENCH_summaries.json`` next to the repository root.  The
``--smoke`` mode runs a subset (first two suites per table), performs
the same grid/identity assertions with a lower reduction floor, and
writes nothing — it is the CI guard wired into ``make verify``.

Run with::

    PYTHONPATH=src:. python benchmarks/bench_summaries.py [--smoke]
"""

from __future__ import annotations

import itertools
import os
import sys
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.engine.config import EngineConfig, gillian
from repro.engine.explorer import Explorer
from repro.engine.parallel import ParallelExplorer
from repro.engine.results import final_sort_key
from repro.logic.simplify import shared_simplifier
from repro.logic.solver import Solver
from repro.specs import find_bugs
from repro.specs.cache import clear_summary_cache
from repro.state.symbolic import SymbolicStateModel
from repro.testing.io import atomic_write_json

from benchmarks.bench_strategies import workloads
from benchmarks.tables import bench_meta

OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_summaries.json",
)

#: the acceptance gate: commands an inline descent of every summarised
#: call would execute, per command replay actually executed, aggregated
#: per table.  Command counts are deterministic, so this is exact, not
#: a timing measurement.
FULL_CALLSITE_REDUCTION_FLOOR = 10.0

#: the smoke subset (two suites per table) reaches less reuse depth than
#: the full tables; the gate there is a tripwire for a disengaged
#: engine, not the headline number.
SMOKE_CALLSITE_REDUCTION_FLOOR = 3.0


def _state_model(language, config: EngineConfig) -> SymbolicStateModel:
    """A fresh stock symbolic state model, mirroring the test harness."""
    simplifier = shared_simplifier(
        enabled=True, memoise=config.simplifier_memoisation
    )
    solver = Solver(
        simplifier=simplifier,
        cache_enabled=config.solver_cache,
        incremental=config.solver_incremental,
        step_budget=config.solver_step_budget,
    )
    return SymbolicStateModel(
        language.symbolic_memory(),
        solver=solver,
        unknown_policy=config.unknown_policy,
    )


def run_pass(
    suites: List[tuple], config: EngineConfig, workers: int = 1
) -> Tuple[Dict[str, list], Dict[str, int]]:
    """One pass of every suite test under ``config``.

    Returns per-test finals digests (keyed ``suite::test``) and the
    aggregated command/summary counters.
    """
    digests: Dict[str, list] = {}
    agg = {
        "commands": 0,
        "build_commands": 0,
        "hits": 0,
        "misses": 0,
        "replays": 0,
        "commands_saved": 0,
        "paths": 0,
    }
    for language, name, prog, tests in suites:
        for entry in tests:
            sm = _state_model(language, config)
            if workers > 1:
                explorer = ParallelExplorer(
                    prog, sm, config, workers=workers
                )
            else:
                explorer = Explorer(prog, sm, config)
            result = explorer.run(entry)
            digests[f"{name}::{entry}"] = sorted(
                final_sort_key(f) for f in result.finals
            )
            stats = result.stats
            agg["commands"] += stats.commands_executed
            agg["build_commands"] += stats.summary_build_commands
            agg["hits"] += stats.summary_hits
            agg["misses"] += stats.summary_misses
            agg["replays"] += stats.summary_replays
            agg["commands_saved"] += stats.summary_commands_saved
            agg["paths"] += stats.paths_finished
    return digests, agg


def _reductions(off: Dict[str, int], warm: Dict[str, int]) -> Dict[str, float]:
    """The two reduction ratios for one off/warm measurement pair."""
    replays = max(warm["replays"], 1)
    return {
        "callsite_reduction": round(
            (warm["commands_saved"] + warm["replays"]) / replays, 2
        ),
        "whole_run_reduction": round(
            off["commands"]
            / max(warm["commands"] + warm["build_commands"], 1),
            2,
        ),
    }


def measure_tables(suites: List[tuple]) -> Tuple[Dict, bool]:
    """off/cold/warm command counts per suite, aggregated per table.

    The summaries-off and warm digests must agree per test (the finals
    identity for the sequential compiled arm over the *whole* workload,
    not just the grid subset).
    """
    per_suite: Dict[str, Dict] = {}
    tables: Dict[str, Dict[str, Dict[str, int]]] = {}
    identical = True
    for suite in suites:
        _, name, _, _ = suite
        off_digests, off = run_pass([suite], gillian(summaries=False))
        clear_summary_cache()
        _, cold = run_pass([suite], gillian(summaries=True))
        warm_digests, warm = run_pass([suite], gillian(summaries=True))
        clear_summary_cache()
        if off_digests != warm_digests:
            identical = False
        per_suite[name] = {
            "tests": len(off_digests),
            "off_commands": off["commands"],
            "cold_commands": cold["commands"],
            "cold_build_commands": cold["build_commands"],
            "warm_commands": warm["commands"],
            "warm_build_commands": warm["build_commands"],
            "warm_replays": warm["replays"],
            "warm_commands_saved": warm["commands_saved"],
            "paths": off["paths"],
            **_reductions(off, warm),
        }
        table = name.split("/", 1)[0]
        bucket = tables.setdefault(
            table, {"off": {"commands": 0, "paths": 0},
                    "warm": {"commands": 0, "build_commands": 0,
                             "replays": 0, "commands_saved": 0}}
        )
        bucket["off"]["commands"] += off["commands"]
        bucket["off"]["paths"] += off["paths"]
        for key in bucket["warm"]:
            bucket["warm"][key] += warm[key]
    per_table = {
        table: {
            "off_commands": b["off"]["commands"],
            "warm_commands": b["warm"]["commands"],
            "warm_replays": b["warm"]["replays"],
            "warm_commands_saved": b["warm"]["commands_saved"],
            **_reductions(b["off"], b["warm"]),
        }
        for table, b in tables.items()
    }
    return {
        "suites": per_suite,
        "tables": per_table,
        "digests_identical": identical,
    }, identical


def digest_grid(suites: List[tuple]) -> Tuple[Dict, bool]:
    """Finals identity across compiled/interpreted × summaries × workers.

    Every arm runs the same workload; the per-test digests must be one
    multiset, whatever the pipeline, cache state, or worker count.
    """
    arms = []
    reference = None
    identical = True
    for compiled, summaries, workers in itertools.product(
        (True, False), (True, False), (1, 2, 4)
    ):
        clear_summary_cache()
        config = gillian(summaries=summaries, compiled=compiled)
        digests, _ = run_pass(suites, config, workers=workers)
        label = (
            f"{'compiled' if compiled else 'interp'}/"
            f"summaries={'on' if summaries else 'off'}/workers={workers}"
        )
        if reference is None:
            reference = digests
        elif digests != reference:
            identical = False
        arms.append(label)
    clear_summary_cache()
    return {
        "arms": arms,
        "tests": len(reference or {}),
        "identical": identical,
    }, identical


def incorrectness_section(suites: List[tuple]) -> Tuple[Dict, bool]:
    """Bug hunting with under-approximate summaries, first suite per table.

    Every bug the incorrectness arm reports must carry a concrete
    counter-model whose replay reproduces the error — the no-false-
    positives half of the ISL contract.
    """
    first_per_table: Dict[str, tuple] = {}
    for suite in suites:
        table = suite[1].split("/", 1)[0]
        first_per_table.setdefault(table, suite)
    section: Dict[str, Dict] = {}
    all_confirmed = True
    for table, (language, name, prog, tests) in first_per_table.items():
        clear_summary_cache()
        bugs = confirmed = replays = 0
        for entry in tests:
            report = find_bugs(language, prog, entry)
            bugs += len(report.bugs)
            confirmed += len(report.confirmed)
            replays += report.stats.summary_replays
            if not report.all_confirmed:
                all_confirmed = False
        section[name] = {
            "tests": len(tests),
            "bugs": bugs,
            "confirmed": confirmed,
            "summary_replays": replays,
            "all_confirmed": bugs == confirmed,
        }
    clear_summary_cache()
    return section, all_confirmed


def main(argv: List[str]) -> int:
    """Entry point: measure, assert the gates, emit the JSON report."""
    smoke = "--smoke" in argv
    floor = (
        SMOKE_CALLSITE_REDUCTION_FLOOR if smoke
        else FULL_CALLSITE_REDUCTION_FLOOR
    )
    suites = [
        (language, name, language.compile(source), tests)
        for language, name, source, tests in workloads(smoke)
    ]
    grid_suites = suites if smoke else [
        (language, name, prog, tests)
        for language, name, prog, tests in suites
        if name.endswith(("/array", "/bag", "/deque"))
    ]

    measurement, seq_identical = measure_tables(suites)
    grid, grid_identical = digest_grid(grid_suites)
    incorrectness, all_confirmed = incorrectness_section(suites)

    floors_ok = True
    for table, row in measurement["tables"].items():
        ok = row["callsite_reduction"] >= floor
        floors_ok = floors_ok and ok
        print(
            f"{table}: call-site reduction {row['callsite_reduction']}x "
            f"(floor {floor}x: {'ok' if ok else 'FAILED'}), "
            f"whole-run {row['whole_run_reduction']}x"
        )
    print(f"finals identity (sequential, full workload): "
          f"{'ok' if seq_identical else 'FAILED'}")
    print(f"finals identity (grid, {len(grid['arms'])} arms): "
          f"{'ok' if grid_identical else 'FAILED'}")
    print(f"incorrectness bugs all confirmed: "
          f"{'ok' if all_confirmed else 'FAILED'}")

    passed = floors_ok and seq_identical and grid_identical and all_confirmed
    if not smoke:
        report = {
            "benchmark": "bench_summaries",
            "meta": bench_meta(),
            "workload": "table1 (MiniJS/Buckets) + table2 (MiniC/Collections)",
            "measurement": measurement,
            "grid": grid,
            "incorrectness": incorrectness,
            "acceptance": {
                "target": (
                    f"call-site reduction >= {floor}x per table; identical "
                    f"finals digests across compiled/interpreted x "
                    f"summaries-on/off x workers 1/2/4; every "
                    f"incorrectness bug confirmed by concrete replay"
                ),
                "passed": passed,
            },
        }
        atomic_write_json(OUT_PATH, report, indent=2)
        print(f"wrote {OUT_PATH}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
