"""Shared harness for regenerating the paper's tables.

Runs a symbolic test suite for a language instantiation under a given
engine configuration and collects the columns the paper reports: number
of symbolic tests (#T), executed GIL commands, and wall-clock time.

Also home of :func:`bench_meta`, the provenance stamp every
``BENCH_*.json`` emitter embeds (see ``docs/benchmarks.md`` for the
file format).
"""

from __future__ import annotations

import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.config import EngineConfig, gillian, javert2_baseline
from repro.targets.language import Language
from repro.testing.harness import SymbolicTester, TestResult

#: version of the shared BENCH_*.json envelope (the ``meta`` block plus
#: the ``benchmark``/``workload``/``acceptance`` keys every report
#: carries).  Bump when that shared shape changes incompatibly;
#: benchmark-specific payload keys may evolve without a bump.  History
#: documented in ``docs/benchmarks.md``.
BENCH_SCHEMA_VERSION = 1


def git_revision() -> str:
    """The repository's short HEAD revision, or ``"unknown"``.

    ``"-dirty"`` is appended when the working tree has uncommitted
    changes, so a bench report can always be traced to the exact code
    that produced it (or flagged as untraceable).
    """
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=repo_root, timeout=10,
        )
        if rev.returncode != 0 or not rev.stdout.strip():
            return "unknown"
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, cwd=repo_root, timeout=10,
        )
        suffix = "-dirty" if dirty.stdout.strip() else ""
        return rev.stdout.strip() + suffix
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"


def bench_meta() -> Dict[str, object]:
    """The provenance block shared by every ``BENCH_*.json`` report."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_revision": git_revision(),
    }


@dataclass
class SuiteRow:
    """One table row: a data structure's suite results."""

    name: str
    tests: int
    commands: int
    time: float
    failures: List[str] = field(default_factory=list)


@dataclass
class TableReport:
    rows: List[SuiteRow]

    @property
    def total(self) -> SuiteRow:
        return SuiteRow(
            name="Total",
            tests=sum(r.tests for r in self.rows),
            commands=sum(r.commands for r in self.rows),
            time=sum(r.time for r in self.rows),
            failures=[f for r in self.rows for f in r.failures],
        )

    def format(self, title: str, time_label: str = "Time") -> str:
        lines = [title, ""]
        header = f"{'Name':10s} {'#T':>4s} {'GIL Cmds':>10s} {time_label:>10s}"
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows + [self.total]:
            lines.append(
                f"{row.name:10s} {row.tests:4d} {row.commands:10,d} "
                f"{row.time:9.2f}s"
            )
        return "\n".join(lines)


def run_suite(
    language: Language,
    source: str,
    tests: List[str],
    name: str,
    config: Optional[EngineConfig] = None,
    replay: bool = False,
    strategy=None,
) -> SuiteRow:
    """Run one suite (one table row) and collect its statistics.

    ``replay=False``: table timing measures the symbolic analysis itself
    (counter-model replay is covered by the soundness harness).
    ``strategy`` selects the scheduler's search order (default DFS).
    """
    prog = language.compile(source)
    tester = SymbolicTester(language, config=config, replay=replay, strategy=strategy)
    commands = 0
    elapsed = 0.0
    failures: List[str] = []
    for test in tests:
        result = tester.run_test(prog, test)
        commands += result.stats.commands_executed
        elapsed += result.stats.wall_time
        if not result.passed:
            failures.append(test)
    return SuiteRow(name, len(tests), commands, elapsed, failures)


def run_table1(
    config: Optional[EngineConfig] = None, strategy=None
) -> TableReport:
    """Table 1: the Buckets-style MiniJS suites under Gillian-JS."""
    from repro.targets.js_like import MiniJSLanguage
    from repro.targets.js_like.buckets import suites

    language = MiniJSLanguage()
    rows = []
    for name in suites.suite_names():
        source, tests = suites.suite(name)
        rows.append(run_suite(language, source, tests, name, config, strategy=strategy))
    return TableReport(rows)


def run_table2(
    config: Optional[EngineConfig] = None, strategy=None
) -> TableReport:
    """Table 2: the Collections-C-style MiniC suites under Gillian-C."""
    from repro.targets.c_like import MiniCLanguage
    from repro.targets.c_like.collections import suites

    language = MiniCLanguage()
    rows = []
    for name in suites.suite_names():
        source, tests = suites.suite(name)
        rows.append(run_suite(language, source, tests, name, config, strategy=strategy))
    return TableReport(rows)


def run_table3(
    config: Optional[EngineConfig] = None, strategy=None
) -> TableReport:
    """Table 3: the MiniRust library suites under Gillian-Rust."""
    from repro.targets.rust_like import MiniRustLanguage
    from repro.targets.rust_like.collections import suites

    language = MiniRustLanguage()
    rows = []
    for name in suites.suite_names():
        source, tests = suites.suite(name)
        rows.append(run_suite(language, source, tests, name, config, strategy=strategy))
    return TableReport(rows)
