"""Symbolic testing: harness, verdicts, counter-models, tracing, faults."""

from repro.testing.faults import (
    ActionFault,
    FaultInjector,
    FaultPlan,
    FaultyMemoryModel,
    InjectedActionError,
    InjectedCrash,
    SolverTimeout,
    WorkerKill,
    install_faults,
)
from repro.testing.harness import Bug, SuiteResult, SymbolicTester, TestResult
from repro.testing.trace import Trace, TraceRecorder, TraceStep, explain_bug

__all__ = [
    "ActionFault", "Bug", "FaultInjector", "FaultPlan",
    "FaultyMemoryModel", "InjectedActionError", "InjectedCrash",
    "SolverTimeout", "SuiteResult", "SymbolicTester", "TestResult",
    "Trace", "TraceRecorder", "TraceStep", "WorkerKill", "explain_bug",
    "install_faults",
]
