"""Symbolic testing: harness, verdicts, counter-models, tracing."""

from repro.testing.harness import Bug, SuiteResult, SymbolicTester, TestResult
from repro.testing.trace import Trace, TraceRecorder, TraceStep, explain_bug

__all__ = [
    "Bug", "SuiteResult", "SymbolicTester", "TestResult", "Trace",
    "TraceRecorder", "TraceStep", "explain_bug",
]
