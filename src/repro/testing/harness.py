"""Whole-program symbolic testing (paper §1, §4).

Gillian's user-facing analysis: run a symbolic test — a TL procedure with
symbolic inputs and first-order ``assume``/``assert`` annotations — over
all paths up to a bound, and report either *bounded verification* (no
reachable error) or bugs.  Each reported bug comes with the final path
condition; the harness asks the solver for a model ε (the "true
counter-model" of §1) and *replays it concretely*: a confirmed bug is one
whose scripted concrete execution reproduces the error.  This realises
the paper's no-false-positives guarantee (Theorem 3.6) operationally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.engine.parallel import ParallelExplorer, resolve_workers
from repro.engine.results import ExecutionStats, RunReport
from repro.gil.semantics import Final, OutcomeKind
from repro.gil.syntax import Prog
from repro.gil.values import Value
from repro.logic.expr import Expr
from repro.logic.simplify import shared_simplifier
from repro.logic.solver import Solver
from repro.state.allocator import ConcreteAllocator
from repro.state.concrete import ConcreteStateModel
from repro.state.symbolic import SymbolicStateModel
from repro.targets.language import Language


@dataclass
class Bug:
    """A reported violation on one symbolic path."""

    value: object                      # the error value (symbolic)
    path_condition: object             # PathCondition at the error
    model: Optional[Dict[str, Value]]  # counter-model ε, if found
    confirmed: bool                    # concrete replay reproduced the error
    concrete_value: object = None      # error value observed on replay

    def __repr__(self) -> str:
        status = "confirmed" if self.confirmed else (
            "counter-model" if self.model else "potential"
        )
        return f"Bug({self.value!r}, {status})"


@dataclass
class TestResult:
    """The outcome of one symbolic test."""

    __test__ = False  # not a pytest class, despite the name

    name: str
    bugs: List[Bug]
    stats: ExecutionStats
    paths: int
    #: why exploration stopped and what it could not decide (see
    #: :class:`repro.engine.results.RunReport`); None for legacy callers
    report: Optional[RunReport] = None

    @property
    def passed(self) -> bool:
        return not self.bugs

    @property
    def verdict(self) -> str:
        """``"bounded-verified"`` requires a *complete* run: every path
        explored to its bound with no degraded decisions.  A bug-free
        run that timed out queries, assumed/pruned UNKNOWN branches, or
        lost a shard is only ``"bounded-verified-incomplete"`` — the
        engine cannot honestly claim the bound was covered."""
        if self.passed:
            if self.report is not None and not (
                self.report.stop_reason == "exhausted"
                and self.report.incompleteness.clean
            ):
                return "bounded-verified-incomplete"
            return "bounded-verified"
        if any(b.confirmed for b in self.bugs):
            return "bug"
        return "potential-bug"


@dataclass
class SuiteResult:
    """Aggregated results over a test suite (one Table row)."""

    name: str
    results: List[TestResult] = field(default_factory=list)

    @property
    def tests(self) -> int:
        return len(self.results)

    @property
    def commands(self) -> int:
        return sum(r.stats.commands_executed for r in self.results)

    @property
    def time(self) -> float:
        return sum(r.stats.wall_time for r in self.results)

    @property
    def failures(self) -> List[TestResult]:
        return [r for r in self.results if not r.passed]


class SymbolicTester:
    """Runs symbolic tests for a language instantiation.

    ``strategy`` and ``events`` are handed to the scheduler unchanged
    (see :class:`repro.engine.explorer.Explorer`): the harness drives the
    same scheduler loop as every other engine client, so search order,
    budgets, and instrumentation behave identically here.  ``workers``
    (default: ``config.workers``) routes exploration through
    :class:`repro.engine.parallel.ParallelExplorer` when above 1; the
    multiset of outcomes — and hence every verdict — is identical to the
    sequential run.
    """

    def __init__(
        self,
        language: Language,
        config: Optional[EngineConfig] = None,
        replay: bool = True,
        strategy=None,
        events=None,
        workers=None,
    ) -> None:
        self.language = language
        self.config = config if config is not None else EngineConfig()
        self.replay = replay
        self.strategy = strategy
        self.events = events
        self.workers = resolve_workers(
            workers if workers is not None else self.config.workers
        )

    def make_solver(self) -> Solver:
        # The shared per-flavour simplifier: pure, so results match a
        # private instance exactly, but its memo stays warm across the
        # suite's tests instead of being rebuilt for every entry point.
        simplifier = shared_simplifier(
            enabled=True, memoise=self.config.simplifier_memoisation
        )
        return Solver(
            simplifier=simplifier,
            cache_enabled=self.config.solver_cache,
            incremental=self.config.solver_incremental,
            step_budget=self.config.solver_step_budget,
            profile_phases=self.config.profile_solver_phases,
        )

    def run_test(
        self,
        prog: Prog,
        entry: str,
        name: Optional[str] = None,
        args: Sequence[Expr] = (),
    ) -> TestResult:
        """Symbolically execute ``entry`` and report bugs with models."""
        solver = self.make_solver()
        sm = SymbolicStateModel(
            self.language.symbolic_memory(),
            solver=solver,
            unknown_policy=self.config.unknown_policy,
        )
        if self.workers > 1:
            explorer = ParallelExplorer(
                prog, sm, self.config,
                strategy=self.strategy, events=self.events,
                workers=self.workers,
            )
        else:
            explorer = Explorer(
                prog, sm, self.config, strategy=self.strategy, events=self.events
            )
        start = time.perf_counter()
        result = explorer.run(entry, args)
        bugs = [self._diagnose(prog, entry, fin, solver) for fin in result.errors]
        result.stats.wall_time = time.perf_counter() - start
        return TestResult(
            name=name or entry,
            bugs=bugs,
            stats=result.stats,
            paths=result.stats.paths_finished,
            report=result.report,
        )

    def run_source(self, source: str, entry: str, name: Optional[str] = None) -> TestResult:
        start = time.perf_counter()
        prog = self.language.compile(source)
        if self.events:
            from repro.engine.events import SpanEnd

            self.events.emit(SpanEnd("compile", time.perf_counter() - start, 0))
        return self.run_test(prog, entry, name)

    # -- counter-models and replay ------------------------------------------

    def _diagnose(self, prog: Prog, entry: str, fin: Final, solver: Solver) -> Bug:
        pc = fin.state.pc
        # Pass the PathCondition itself: the error path's prefix context is
        # usually already solved with a verified model in hand.
        model = solver.get_model(pc)
        confirmed = False
        concrete_value = None
        if model is not None and self.replay:
            concrete_value = self.replay_model(prog, entry, model)
            confirmed = concrete_value is not None
        return Bug(
            value=fin.value,
            path_condition=pc,
            model=model,
            confirmed=confirmed,
            concrete_value=concrete_value,
        )

    def enumerate_models(
        self, bug: Bug, count: int = 3
    ) -> List[Dict[str, Value]]:
        """Up to ``count`` distinct verified counter-models for a bug.

        Useful when triaging: several witnesses make the failure pattern
        visible (e.g. "any n ≥ 100 fails", not just "n = 100 fails").
        Models are enumerated by excluding previous assignments.
        """
        from repro.gil.values import is_value
        from repro.logic.expr import Lit, LVar, conj, disj

        solver = self.make_solver()
        conjuncts = list(bug.path_condition.conjuncts)
        models: List[Dict[str, Value]] = []
        while len(models) < count:
            model = solver.get_model(conjuncts)
            if model is None:
                break
            models.append(model)
            # Exclude this exact assignment: ∨_v (v ≠ model[v]).
            exclusion = disj(
                *[
                    LVar(name).neq(Lit(value))
                    for name, value in model.items()
                    if is_value(value)
                ]
            )
            from repro.logic.expr import FALSE

            if exclusion == FALSE:
                break
            conjuncts.append(exclusion)
        return models

    def replay_model(
        self, prog: Prog, entry: str, model: Dict[str, Value]
    ) -> Optional[object]:
        """Concretely re-run ``entry`` scripted by the counter-model ε.

        Returns the concrete error value if the run errors (bug
        confirmed), else None.  The script directs every ``iSym`` choice:
        the allocator names logical variables deterministically
        (``val_site_idx``), so ε keys line up with replay allocations.
        """
        allocator = ConcreteAllocator(script=dict(model))
        sm = ConcreteStateModel(self.language.concrete_memory(), allocator)
        explorer = Explorer(prog, sm, self.config)
        try:
            result = explorer.run(entry)
        except Exception:
            return None
        for fin in result.finals:
            if fin.kind is OutcomeKind.ERROR:
                return fin.value
        return None

