"""Deterministic fault injection for the fault-tolerance test harness.

The recovery machinery in :mod:`repro.engine.parallel` and the UNKNOWN
handling in :mod:`repro.logic.solver` only earn their keep if every
recovery path is exercised *reproducibly*.  This module provides a
seeded, picklable :class:`FaultPlan` that can

* kill a worker process at step K (by raising :class:`InjectedCrash`
  or by ``os._exit`` — the latter dies without flushing its result
  queue, the nastiest crash shape the parent must survive);
* force the solver to answer UNKNOWN on its Nth query (as if the
  per-query step budget fired);
* raise :class:`InjectedActionError` from inside a memory-model action;
* kill the process at a checkpoint boundary (:class:`CheckpointKill`,
  real ``SIGKILL`` included), which is how the analysis service's
  crash-resume identity suite exercises
  :mod:`repro.service.checkpoint`.

Plans travel inside :class:`~repro.engine.config.EngineConfig` (they
must pickle, since worker processes receive the config over a spawn
boundary); each process resolves the plan to its own
:class:`FaultInjector` via :meth:`FaultPlan.injector`, keyed by the
``(fault_worker, fault_attempt)`` the parent stamped into the config.
A plan with no fault for that key resolves to ``None`` — zero hooks
installed, zero overhead, and (the tests assert) bit-for-bit identical
output to a run with no plan at all.

Faults are *transient* by default (``attempts=1``): they fire on the
first attempt and stay quiet on retries, so a recovered run completes.
Raising ``attempts`` makes a fault permanent enough to exhaust the
parent's retry budget, which is how the "incomplete-run" downgrade path
is tested.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Optional, Tuple


class InjectedCrash(RuntimeError):
    """An injected worker crash (the ``mode="raise"`` kill shape)."""


class InjectedActionError(RuntimeError):
    """An injected failure inside a symbolic memory-model action."""


@dataclass(frozen=True)
class WorkerKill:
    """Kill worker ``worker`` at its ``at_step``-th scheduler step.

    ``mode="raise"`` raises :class:`InjectedCrash` (an orderly crash the
    worker's own error reporting catches and ships to the parent);
    ``mode="exit"`` calls ``os._exit(1)`` (the process dies without
    flushing queues — the parent must notice the silence).  The fault
    fires on attempts ``0 .. attempts-1`` for its worker and is quiet
    afterwards.
    """

    worker: int
    at_step: int
    mode: str = "raise"
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "exit"):
            raise ValueError(f"WorkerKill.mode must be 'raise' or 'exit', got {self.mode!r}")


@dataclass(frozen=True)
class SolverTimeout:
    """Force the ``at_query``-th solver solve (0-based, cache misses
    only) to answer UNKNOWN, as if the step budget fired.  ``worker``
    of None targets every process (including a sequential run)."""

    at_query: int
    worker: Optional[int] = None
    attempts: int = 1


@dataclass(frozen=True)
class CheckpointKill:
    """Kill the process at its ``at_checkpoint``-th checkpoint save.

    The crash-resume identity suite's fault shape: the checkpoint
    manager (:mod:`repro.service.checkpoint`) calls the injector around
    every snapshot, and this fault terminates the process exactly at a
    checkpoint boundary.  ``phase="pre"`` fires *before* any bytes are
    written (the in-flight snapshot is lost; resume falls back to the
    previous durable one) and ``phase="post"`` fires after the atomic
    rename (the snapshot survives; resume starts from it).  ``mode``
    picks the death shape: ``"sigkill"`` (default) delivers a real
    ``SIGKILL`` to the current process, ``"exit"`` calls ``os._exit(1)``,
    and ``"raise"`` raises :class:`InjectedCrash` for in-process tests.
    """

    at_checkpoint: int
    phase: str = "post"
    mode: str = "sigkill"
    worker: Optional[int] = None
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.phase not in ("pre", "post"):
            raise ValueError(
                f"CheckpointKill.phase must be 'pre' or 'post', got {self.phase!r}"
            )
        if self.mode not in ("sigkill", "exit", "raise"):
            raise ValueError(
                f"CheckpointKill.mode must be 'sigkill', 'exit' or 'raise', "
                f"got {self.mode!r}"
            )


@dataclass(frozen=True)
class ActionFault:
    """Raise :class:`InjectedActionError` from the ``at_call``-th memory
    action executed (0-based), optionally only for action ``action`` and
    only on worker ``worker``."""

    at_call: int
    worker: Optional[int] = None
    action: Optional[str] = None
    attempts: int = 1


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable schedule of faults.

    Immutable; all mutability lives in the per-process
    :class:`FaultInjector` the plan resolves to.
    """

    kills: Tuple[WorkerKill, ...] = ()
    solver_timeouts: Tuple[SolverTimeout, ...] = ()
    action_faults: Tuple[ActionFault, ...] = ()
    checkpoint_kills: Tuple[CheckpointKill, ...] = ()

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: resolves to no injector anywhere."""
        return cls()

    @classmethod
    def random(
        cls,
        seed: int,
        workers: int = 2,
        max_step: int = 40,
        kinds: Tuple[str, ...] = ("kill-raise", "kill-exit", "action"),
    ) -> "FaultPlan":
        """A small random plan, fully determined by ``seed``.

        Draws one fault; ``kinds`` restricts the shapes drawn (the fuzz
        suite excludes solver timeouts from its exactness arm, since an
        assumed-SAT branch may legitimately add finals).
        """
        rng = random.Random(seed)
        kind = rng.choice(list(kinds))
        worker = rng.randrange(max(1, workers))
        at = rng.randrange(1, max(2, max_step))
        if kind == "kill-raise":
            return cls(kills=(WorkerKill(worker, at, mode="raise"),))
        if kind == "kill-exit":
            return cls(kills=(WorkerKill(worker, at, mode="exit"),))
        if kind == "action":
            return cls(action_faults=(ActionFault(at, worker=worker),))
        if kind == "solver-timeout":
            return cls(solver_timeouts=(SolverTimeout(at, worker=worker),))
        raise ValueError(f"unknown fault kind {kind!r}")

    @property
    def empty(self) -> bool:
        return not (
            self.kills
            or self.solver_timeouts
            or self.action_faults
            or self.checkpoint_kills
        )

    def injector(
        self, worker: Optional[int], attempt: int = 0
    ) -> Optional["FaultInjector"]:
        """The injector for one process, or None if no fault targets it.

        ``worker`` is the shard's worker id (None for a sequential /
        parent-process run); ``attempt`` is the parent's retry round.
        A fault matches when its worker is None or equals ``worker``,
        and ``attempt < fault.attempts``.
        """
        kills = tuple(
            k for k in self.kills if k.worker == worker and attempt < k.attempts
        )
        timeouts = tuple(
            t
            for t in self.solver_timeouts
            if (t.worker is None or t.worker == worker) and attempt < t.attempts
        )
        actions = tuple(
            a
            for a in self.action_faults
            if (a.worker is None or a.worker == worker) and attempt < a.attempts
        )
        ckpt_kills = tuple(
            c
            for c in self.checkpoint_kills
            if (c.worker is None or c.worker == worker) and attempt < c.attempts
        )
        if not (kills or timeouts or actions or ckpt_kills):
            return None
        return FaultInjector(kills, timeouts, actions, ckpt_kills)


@dataclass
class FaultInjector:
    """The mutable per-process view of a :class:`FaultPlan`.

    Hooked into the explorer loop (:meth:`on_step`), the solver
    (:meth:`solver_timeout`, polled before each real solve), and the
    memory model (:meth:`on_action`, via :class:`FaultyMemoryModel`).
    """

    kills: Tuple[WorkerKill, ...]
    timeouts: Tuple[SolverTimeout, ...]
    actions: Tuple[ActionFault, ...]
    ckpt_kills: Tuple[CheckpointKill, ...] = ()
    steps: int = field(default=0)
    queries: int = field(default=0)
    calls: int = field(default=0)
    checkpoints: int = field(default=0)

    def on_step(self) -> None:
        """Called once per scheduler iteration, before the step runs."""
        step = self.steps
        self.steps += 1
        for kill in self.kills:
            if step == kill.at_step:
                if kill.mode == "exit":
                    os._exit(1)
                raise InjectedCrash(
                    f"injected crash at step {step} (worker {kill.worker})"
                )

    def solver_timeout(self) -> bool:
        """True iff the solve about to run should be forced to UNKNOWN."""
        query = self.queries
        self.queries += 1
        return any(query == t.at_query for t in self.timeouts)

    def on_checkpoint(self, phase: str) -> None:
        """Called by the checkpoint manager around each snapshot save.

        ``phase`` is ``"pre"`` (before any bytes are written; this is
        where the per-save counter advances) or ``"post"`` (after the
        atomic rename made the snapshot durable).  A matching
        :class:`CheckpointKill` terminates the process here.
        """
        if phase == "pre":
            current = self.checkpoints
            self.checkpoints += 1
        else:
            current = self.checkpoints - 1
        for kill in self.ckpt_kills:
            if kill.phase == phase and current == kill.at_checkpoint:
                if kill.mode == "exit":
                    os._exit(1)
                if kill.mode == "sigkill":
                    import signal

                    os.kill(os.getpid(), signal.SIGKILL)
                raise InjectedCrash(
                    f"injected crash at checkpoint {current} ({phase}-save)"
                )

    def on_action(self, action: str) -> None:
        """Called before each memory-model action executes."""
        call = self.calls
        self.calls += 1
        for fault in self.actions:
            if call == fault.at_call and (
                fault.action is None or fault.action == action
            ):
                raise InjectedActionError(
                    f"injected failure in action {action!r} at call {call}"
                )


class FaultyMemoryModel:
    """A delegating wrapper that routes each ``execute`` through the
    injector's :meth:`~FaultInjector.on_action` hook."""

    def __init__(self, inner, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    def initial(self):
        return self.inner.initial()

    def execute(self, action, memory, arg, pc, solver):
        self.injector.on_action(action)
        return self.inner.execute(action, memory, arg, pc, solver)

    def __getattr__(self, name):
        # Guard the delegation fields themselves: during unpickling the
        # instance dict is empty and a plain lookup would recurse.
        if name in ("inner", "injector"):
            raise AttributeError(name)
        return getattr(self.inner, name)


def install_faults(state_model, injector: FaultInjector) -> None:
    """Wire ``injector`` into a state model's solver and memory model.

    Idempotent per injector: re-installing over an already-faulty memory
    model replaces the wrapper rather than stacking a second one.
    """
    solver = getattr(state_model, "solver", None)
    if solver is not None:
        solver.faults = injector
    memory = getattr(state_model, "memory_model", None)
    if memory is not None:
        if isinstance(memory, FaultyMemoryModel):
            memory = memory.inner
        state_model.memory_model = FaultyMemoryModel(memory, injector)
