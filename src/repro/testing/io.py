"""Crash-safe file writes: atomic replace, fsync, and checksummed frames.

Everything durable in this repo — benchmark reports, fuzz fingerprints,
the analysis service's queue records, caches, and checkpoints — goes
through this module, so an interrupted writer can never leave a torn
file where a complete one used to be.  The discipline is the classic
*write-temp, fsync, rename* sequence:

1. the payload is written to a temporary file in the **same directory**
   as the destination (rename is only atomic within a filesystem);
2. the temporary file is flushed and ``fsync``\\ ed, so the bytes are
   durable before the name is;
3. ``os.replace`` swaps it in — a reader sees either the old complete
   file or the new complete file, never a prefix of the new one;
4. the directory is fsynced so the rename itself survives a power cut.

For payloads that must also survive *storage* corruption (bit flips,
truncation underneath the filesystem), :func:`write_checked_bytes` adds
a one-line JSON header carrying the payload length and SHA-256; readers
call :func:`read_checked_bytes`, which raises :class:`CorruptPayload`
on any mismatch so the caller can evict and recompute instead of
trusting a damaged entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional


class CorruptPayload(ValueError):
    """A checksummed frame failed validation (torn, truncated, flipped)."""


def fsync_dir(path: str) -> None:
    """Fsync the directory ``path`` so a rename inside it is durable.

    Some platforms (and some filesystems) refuse to open directories for
    fsync; failure to harden the rename is not failure to write, so
    ``OSError`` is deliberately tolerated here.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Atomically replace ``path`` with ``data`` (write-temp-fsync-rename)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        # The temp file must not survive a failed write: remove it and
        # re-raise so the caller sees the original error.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(directory)


def atomic_write_text(path: str, text: str, fsync: bool = True) -> None:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(
    path: str,
    payload: object,
    fsync: bool = True,
    indent: Optional[int] = 2,
    sort_keys: bool = False,
) -> None:
    """Atomically replace ``path`` with ``payload`` serialized as JSON.

    The file always ends with a newline, and serialization happens
    *before* any filesystem mutation — a payload that does not serialize
    leaves the old file untouched.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


# -- checksummed frames -------------------------------------------------------

_MAGIC = "repro-frame-v1"


def checked_frame(data: bytes) -> bytes:
    """Wrap ``data`` in a one-line JSON header with length + SHA-256."""
    header = json.dumps(
        {
            "magic": _MAGIC,
            "len": len(data),
            "sha256": hashlib.sha256(data).hexdigest(),
        },
        sort_keys=True,
    )
    return header.encode("ascii") + b"\n" + data


def unchecked_frame(blob: bytes) -> bytes:
    """Validate a :func:`checked_frame` blob and return its payload.

    Raises :class:`CorruptPayload` on a missing/garbled header, a length
    mismatch (truncated or extended payload), or a digest mismatch
    (flipped bits).  Never returns damaged data.
    """
    newline = blob.find(b"\n")
    if newline < 0:
        raise CorruptPayload("missing frame header")
    try:
        header = json.loads(blob[:newline].decode("ascii"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CorruptPayload(f"unreadable frame header: {exc}") from None
    if not isinstance(header, dict) or header.get("magic") != _MAGIC:
        raise CorruptPayload("bad frame magic")
    payload = blob[newline + 1 :]
    if len(payload) != header.get("len"):
        raise CorruptPayload(
            f"payload length {len(payload)} != recorded {header.get('len')}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("sha256"):
        raise CorruptPayload("payload digest mismatch")
    return payload


def write_checked_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Atomically write ``data`` wrapped in a checksummed frame."""
    atomic_write_bytes(path, checked_frame(data), fsync=fsync)


def read_checked_bytes(path: str) -> bytes:
    """Read and validate a :func:`write_checked_bytes` file.

    Raises :class:`CorruptPayload` if the frame fails validation and
    ``FileNotFoundError`` if the file does not exist.
    """
    with open(path, "rb") as fh:
        return unchecked_frame(fh.read())
