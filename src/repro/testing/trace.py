"""Execution traces and bug explanation (paper §4.3).

The paper's usability discussion: "we first have to improve its debugging
and error reporting mechanisms, as the produced logs are lengthy and the
information is not lifted back from GIL to the TL".  This module provides
the reproduction's answer:

* :class:`TraceRecorder` steps a (concrete) run command by command,
  recording procedure, index, the GIL command text, and the store delta —
  a code-stepper's view;
* :func:`explain_bug` replays a bug's counter-model under the recorder
  and renders a human-readable report: the inputs ε chose, the last
  ``n`` executed commands with their effects, and the final error;
* :class:`JsonlEventSink` subscribes to the engine's
  :class:`~repro.engine.events.EventBus` and streams every event —
  steps, branches, path ends, solver queries — as one JSON object per
  line, the machine-readable counterpart of the stepper's view;
* :func:`read_trace` parses such a file back into payload dicts — the
  input side of the trace-analysis CLI (``python -m repro.obs.report``).

The line format is documented in ``docs/events.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Sequence, Union

from repro.engine.events import EventBus, event_payload
from repro.gil.semantics import Config, Final, OutcomeKind, make_call_config, step
from repro.gil.syntax import Prog
from repro.gil.text import print_command, print_value
from repro.gil.values import Value
from repro.state.allocator import ConcreteAllocator
from repro.state.concrete import ConcreteStateModel
from repro.targets.language import Language
from repro.testing.harness import Bug


@dataclass
class TraceStep:
    """One executed GIL command and its visible effect."""

    proc: str
    idx: int
    command: str
    store_delta: Dict[str, Value] = field(default_factory=dict)

    def format(self) -> str:
        effect = ""
        if self.store_delta:
            assigns = ", ".join(
                f"{name} = {print_value(value)}"
                for name, value in self.store_delta.items()
            )
            effect = f"   ⇒ {assigns}"
        return f"[{self.proc}:{self.idx}] {self.command}{effect}"


@dataclass
class Trace:
    """A replayable path: its steps plus the final outcome."""

    steps: List[TraceStep]
    outcome: Optional[Final]

    @property
    def kind(self) -> Optional[OutcomeKind]:
        return self.outcome.kind if self.outcome is not None else None

    def format(self, last: Optional[int] = None) -> str:
        steps = self.steps if last is None else self.steps[-last:]
        lines = [s.format() for s in steps]
        if last is not None and len(self.steps) > last:
            lines.insert(0, f"... ({len(self.steps) - last} earlier steps elided)")
        if self.outcome is not None:
            lines.append(f"outcome: {self.outcome.kind.name}({self.outcome.value!r})")
        return "\n".join(lines)


class JsonlEventSink:
    """Streams engine events to a JSONL file (one JSON object per line).

    Usage::

        bus = EventBus()
        with JsonlEventSink("run.jsonl", bus) as sink:
            Explorer(prog, sm, events=bus).run("main")

    Each line is ``{"event": "<TypeName>", ...fields}``; values that are
    not JSON-serialisable (symbolic expressions, GIL values) are written
    as their ``repr``.  The sink unsubscribes on :meth:`close`, so once
    closed the bus is subscriber-less again and the engine's emission
    guard short-circuits.
    """

    def __init__(
        self,
        target: Union[str, IO[str]],
        bus: Optional[EventBus] = None,
        kinds=None,
    ) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w")
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self._bus: Optional[EventBus] = None
        self.events_written = 0
        if bus is not None:
            self.attach(bus, kinds=kinds)

    def attach(self, bus: EventBus, kinds=None) -> "JsonlEventSink":
        self._bus = bus
        bus.subscribe(self, kinds=kinds)
        return self

    def __call__(self, event) -> None:
        self._fh.write(json.dumps(event_payload(event), default=repr) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(source: Union[str, IO[str]]):
    """Yield the payload dict of every event line in a JSONL trace.

    Accepts a path or an open text stream.  Blank lines are skipped;
    lines that are not JSON objects raise ``ValueError`` with the
    offending line number (a trace file is machine-written, so garbage
    means the wrong file, not a recoverable situation).
    """
    fh = open(source) if isinstance(source, str) else source
    try:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"line {lineno}: not valid JSON ({exc})"
                ) from None
            if not isinstance(payload, dict):
                raise ValueError(
                    f"line {lineno}: expected a JSON object, "
                    f"got {type(payload).__name__}"
                )
            yield payload
    finally:
        if isinstance(source, str):
            fh.close()


class TraceRecorder:
    """Steps a deterministic run, recording every command."""

    def __init__(self, prog: Prog, state_model, max_steps: int = 100_000) -> None:
        self.prog = prog
        self.sm = state_model
        self.max_steps = max_steps

    def run(self, entry: str, args: Sequence = ()) -> Trace:
        state = self.sm.initial_state()
        cfg = make_call_config(self.sm, state, self.prog, entry, list(args))
        steps: List[TraceStep] = []
        outcome: Optional[Final] = None
        for _ in range(self.max_steps):
            proc = self.prog.procs[cfg.proc]
            cmd = proc.body[cfg.idx]
            before = dict(self.sm.get_store(cfg.state))
            successors, finals = step(self.prog, self.sm, cfg)
            if len(successors) + len(finals) != 1:
                raise ValueError(
                    "TraceRecorder requires a deterministic run "
                    f"(got {len(successors)} successors at {cfg.proc}:{cfg.idx})"
                )
            if finals:
                outcome = finals[0]
                steps.append(
                    TraceStep(cfg.proc, cfg.idx, print_command(cmd))
                )
                break
            nxt = successors[0]
            after = self.sm.get_store(nxt.state)
            delta = {
                name: value
                for name, value in after.items()
                if name not in before or before[name] != value
            }
            steps.append(
                TraceStep(cfg.proc, cfg.idx, print_command(cmd), delta)
            )
            cfg = nxt
        return Trace(steps, outcome)


def explain_bug(
    language: Language,
    prog: Prog,
    entry: str,
    bug: Bug,
    last_steps: int = 15,
) -> str:
    """A human-readable report for a confirmed bug.

    Replays the counter-model ε concretely with the step recorder and
    renders the chosen inputs plus the tail of the execution trace —
    the "lifted back" log of §4.3.
    """
    if bug.model is None:
        return (
            f"potential bug (no verified counter-model)\n"
            f"violation: {bug.value!r}\n"
            f"path condition: {bug.path_condition!r}"
        )
    inputs = {
        name: value for name, value in bug.model.items() if name.startswith("val_")
    }
    allocator = ConcreteAllocator(script=dict(bug.model))
    sm = ConcreteStateModel(language.concrete_memory(), allocator)
    trace = TraceRecorder(prog, sm).run(entry)
    lines = [
        f"violation: {bug.value!r}",
        "counter-model inputs:",
    ]
    for name, value in sorted(inputs.items()):
        lines.append(f"  {name} = {print_value(value)}")
    lines.append("")
    lines.append(f"trace (last {last_steps} steps):")
    lines.append(trace.format(last=last_steps))
    return "\n".join(lines)
