"""Seeded program generators for differential fuzzing.

Two generators live here, both deterministic per seed:

* :class:`ProgramBuilder` / :func:`generate_program` — the original
  GIL-level generator (promoted verbatim from the engine fuzz suite):
  small While-memory GIL programs with interpreted-symbol inputs,
  bounded arithmetic, forward branches, bounded loops and object
  lifecycle actions, used by the concrete-vs-symbolic /
  parallel-vs-sequential / compiled-vs-interpreted / fault-recovery
  arms in ``tests/engine/test_fuzz_differential.py``.

* :class:`CrossProgram` / :func:`generate_cross_program` — the
  cross-target corpus: one *target-agnostic* program shape per seed,
  lowered to equivalent MiniWhile, MiniJS, MiniC and MiniRust sources.
  The shape sticks to the semantic intersection of the four targets —
  bounded integer arithmetic (no division), comparisons, ``if``/bounded
  ``while``, one- or two-field objects (record props ``p``/``q`` in
  While/JS, word cells ``0``/``1`` in C/Rust), explicit disposal and
  optional use-after-dispose reads, ``assume``/``assert`` — so every
  lowering must produce the *same* normalised outcome for the same
  inputs.  :func:`concrete_outcome` runs one lowering concretely on a
  scripted input tuple and :func:`input_grid` enumerates the whole
  (small) input space, giving the cross-target oracle in
  ``tests/engine/test_fuzz_cross.py`` something exhaustive to compare.

Seed ranges are overridable via the ``REPRO_FUZZ_SEEDS`` environment
variable: ``REPRO_FUZZ_SEEDS=20`` shrinks the quick range to 20 seeds
(long defaults to 4x quick), ``REPRO_FUZZ_SEEDS=20:100`` pins both.
"""

from __future__ import annotations

import itertools
import os
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.gil.semantics import OutcomeKind
from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
)
from repro.logic.expr import Expr, Lit, PVar, lst
from repro.state.allocator import ConcreteAllocator, isym_name
from repro.state.concrete import ConcreteStateModel
from repro.targets.language import Language

#: bounds keeping every generated program's path count small enough to
#: explore exhaustively (inputs and branches both split paths)
MAX_INPUTS = 3
MAX_STMTS = 8
MAX_LOOP_ITERS = 3

#: engine configuration shared by all fuzz arms
CONFIG = EngineConfig(max_paths=2_000, max_total_steps=50_000)


def _parse_count(token: str, raw: str) -> int:
    """One seed-count token as a non-negative int, with a clear error.

    The environment variable is typed by humans in CI configs; a typo
    must name the bad token and the expected shape, not surface as a
    bare ``ValueError: invalid literal`` at import time.
    """
    try:
        count = int(token, 10)
    except ValueError:
        raise ValueError(
            f"REPRO_FUZZ_SEEDS={raw!r}: bad count {token!r} "
            f"(expected 'N' or 'N:M' with decimal integers, e.g. '20' or '20:100')"
        ) from None
    if count < 0:
        raise ValueError(
            f"REPRO_FUZZ_SEEDS={raw!r}: count {token!r} must be >= 0"
        )
    return count


def _seed_counts() -> Tuple[int, int]:
    """The (quick, long) seed counts, honouring ``REPRO_FUZZ_SEEDS``.

    Accepted shapes: ``"N"`` (quick = N, long = 4N) and ``"N:M"``
    (both pinned); an empty token keeps that position's default.
    Anything else — extra colons, non-integers, negatives — raises a
    ``ValueError`` naming the offending token.
    """
    raw = os.environ.get("REPRO_FUZZ_SEEDS", "").strip()
    if not raw:
        return 50, 200
    parts = raw.split(":")
    if len(parts) > 2:
        raise ValueError(
            f"REPRO_FUZZ_SEEDS={raw!r}: too many ':' separators "
            f"(expected 'N' or 'N:M')"
        )
    quick = _parse_count(parts[0], raw) if parts[0] else 50
    if len(parts) > 1 and parts[1]:
        long_ = _parse_count(parts[1], raw)
    else:
        long_ = quick * 4
    return quick, max(long_, quick)


_QUICK_COUNT, _LONG_COUNT = _seed_counts()

QUICK_SEEDS = range(_QUICK_COUNT)
LONG_SEEDS = range(_LONG_COUNT)

#: cross-target seeds: each costs 4 targets x (grid + engine arms), so
#: the corpus runs an eighth of the quick range (at least 4 seeds)
CROSS_QUICK_SEEDS = range(max(_QUICK_COUNT // 8, 4))


# -- the GIL-level generator ---------------------------------------------------


class ProgramBuilder:
    """Emits one random-but-seeded GIL ``main`` procedure.

    Commands are appended linearly; branch targets are backpatched, and
    every jump except the bounded-loop back-edge goes forward, so all
    generated programs terminate.
    """

    def __init__(self, rng: random.Random) -> None:
        """Wrap the seeded ``rng`` driving every generation choice."""
        self.rng = rng
        self.cmds = []
        self.int_vars = []
        self.loc_vars = []
        self.site = 0
        self.tmp = 0

    def fresh_site(self) -> int:
        """The next allocation-site number."""
        self.site += 1
        return self.site - 1

    def fresh_var(self, prefix: str) -> str:
        """A fresh program variable name."""
        self.tmp += 1
        return f"{prefix}{self.tmp}"

    def int_expr(self, depth: int = 0) -> Expr:
        """A random bounded integer expression over the usable vars."""
        roll = self.rng.random()
        if roll < 0.35 or depth >= 2 or not self.int_vars:
            return Lit(self.rng.randint(-10, 10))
        if roll < 0.7:
            return PVar(self.rng.choice(self.int_vars))
        op = self.rng.choice(["+", "-", "*"])
        left, right = self.int_expr(depth + 1), self.int_expr(depth + 1)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        return left * right

    def condition(self) -> Expr:
        """A random comparison between two integer expressions."""
        kind = self.rng.choice(["lt", "eq", "neq"])
        left, right = self.int_expr(), self.int_expr()
        return getattr(left, kind)(right)

    # -- statement emitters (each appends commands; jumps backpatched) ----

    def emit_input(self) -> None:
        """An interpreted-symbol input."""
        var = self.fresh_var("in")
        self.cmds.append(ISym(var, self.fresh_site()))
        self.int_vars.append(var)

    def emit_assign(self) -> None:
        """A fresh integer assignment."""
        var = self.fresh_var("v")
        self.cmds.append(Assignment(var, self.int_expr()))
        self.int_vars.append(var)

    def emit_alloc(self) -> None:
        """Allocate an object and initialise property ``p``."""
        var = self.fresh_var("obj")
        self.cmds.append(USym(var, self.fresh_site()))
        self.loc_vars.append(var)
        # Initialise a property so later lookups can succeed.
        self.cmds.append(
            ActionCall(
                self.fresh_var("t"), "mutate",
                lst(PVar(var), "p", self.int_expr()),
            )
        )

    def emit_memory_op(self) -> None:
        """A random lookup/mutate/dispose on a live object."""
        if not self.loc_vars:
            self.emit_alloc()
            return
        loc = PVar(self.rng.choice(self.loc_vars))
        action = self.rng.choice(["lookup", "mutate", "dispose"])
        prop = self.rng.choice(["p", "q"])  # "q" lookups may legitimately err
        if action == "lookup":
            var = self.fresh_var("r")
            self.cmds.append(ActionCall(var, "lookup", lst(loc, prop)))
            self.int_vars.append(var)
        elif action == "mutate":
            self.cmds.append(
                ActionCall(self.fresh_var("t"), "mutate", lst(loc, prop, self.int_expr()))
            )
        else:
            self.cmds.append(ActionCall(self.fresh_var("t"), "dispose", lst(loc)))

    def scoped_block(self, depth: int, allow_loops: bool = True) -> None:
        """Emit a block whose new variables stay local to the block.

        Straight-line GIL fails loudly on use of an unassigned variable,
        so names introduced on only one side of a branch (or inside a
        loop body) must not leak into the enclosing scope's usable-vars
        lists.
        """
        ints, locs = len(self.int_vars), len(self.loc_vars)
        self.emit_block(depth, allow_loops=allow_loops)
        del self.int_vars[ints:]
        del self.loc_vars[locs:]

    def emit_if(self, depth: int) -> None:
        """A two-armed forward branch."""
        # ifgoto cond THEN; <else>; goto END; <then>; END:
        cond_at = len(self.cmds)
        self.cmds.append(None)  # placeholder IfGoto
        cond = self.condition()
        self.scoped_block(depth + 1)
        goto_at = len(self.cmds)
        self.cmds.append(None)  # placeholder Goto
        then_at = len(self.cmds)
        self.scoped_block(depth + 1)
        end = len(self.cmds)
        self.cmds[cond_at] = IfGoto(cond, then_at)
        self.cmds[goto_at] = Goto(end)

    def emit_loop(self, depth: int) -> None:
        """A bounded counter loop."""
        # i := 0; HEAD: ifgoto i >= k END via (k <= i) ... body; i++; goto HEAD
        counter = self.fresh_var("i")
        bound = self.rng.randint(1, MAX_LOOP_ITERS)
        self.cmds.append(Assignment(counter, Lit(0)))
        head = len(self.cmds)
        exit_at = len(self.cmds)
        self.cmds.append(None)  # placeholder exit IfGoto
        self.scoped_block(depth + 1, allow_loops=False)
        self.cmds.append(Assignment(counter, PVar(counter) + Lit(1)))
        self.cmds.append(Goto(head))
        end = len(self.cmds)
        # exit when NOT (counter < bound): ifgoto (bound <= counter) end,
        # expressed as bound - 1 < counter.
        self.cmds[exit_at] = IfGoto(Lit(bound - 1).lt(PVar(counter)), end)
        self.int_vars.append(counter)

    def emit_check(self) -> None:
        """A fallible assertion: fail on one side of a random condition."""
        cond_at = len(self.cmds)
        self.cmds.append(None)
        self.cmds.append(Fail(lst("violation", self.int_expr())))
        self.cmds[cond_at] = IfGoto(self.condition(), len(self.cmds))

    def emit_block(self, depth: int, allow_loops: bool = True) -> None:
        """A run of random statements at ``depth``."""
        emitters = [self.emit_assign, self.emit_assign, self.emit_memory_op]
        if depth < 2:
            emitters.append(self.emit_if)
            if allow_loops:
                emitters.append(self.emit_loop)
        for _ in range(self.rng.randint(1, 2 if depth else MAX_STMTS)):
            emitter = self.rng.choice(emitters)
            if emitter in (self.emit_if, self.emit_loop):
                emitter(depth)
            else:
                emitter()

    def build(self) -> Prog:
        """Assemble the whole seeded ``main`` program."""
        for _ in range(self.rng.randint(1, MAX_INPUTS)):
            self.emit_input()
        self.emit_alloc()
        self.emit_block(0)
        if self.rng.random() < 0.7:
            self.emit_check()
        self.cmds.append(Return(self.int_expr()))
        prog = Prog()
        prog.add(Proc("main", (), tuple(self.cmds)))
        return prog


def generate_program(seed: int) -> Prog:
    """The fixed program for ``seed`` — same seed, same program, always."""
    return ProgramBuilder(random.Random(seed)).build()


# -- the call-heavy generator (summary fuzzing) --------------------------------


class CallProgramBuilder:
    """Emits a seeded multi-procedure program for the summary fuzz arm.

    The shape is chosen to exercise both summary tiers and the fallback
    paths: a layer of *pure* helpers (branching arithmetic over their
    parameters, optional nested static calls to earlier pure helpers,
    optional ``fail`` guards — pure-tier eligible), a layer of *impure*
    helpers (allocate and mutate an object, optionally read it back —
    exact-tier only), and a ``main`` that mixes repeated calls to both
    layers between ordinary statements.  Branch counts are deliberately
    small (at most two symbolic inputs, shallow helper bodies) so every
    seed explores exhaustively under the shared fuzz ``CONFIG`` — the
    on/off digest comparison is only meaningful for exhaustive runs.
    """

    def __init__(self, rng: random.Random) -> None:
        """Wrap the seeded ``rng`` driving every generation choice."""
        self.rng = rng
        self.pure_procs: List[Tuple[str, int]] = []    # (name, arity)
        self.impure_procs: List[Tuple[str, int]] = []  # (name, arity)
        self.procs: List[Proc] = []

    def _helper_call(self, b: ProgramBuilder, pool: List[Tuple[str, int]]) -> None:
        """Append a static call to a random helper from ``pool``."""
        name, arity = self.rng.choice(pool)
        var = b.fresh_var("c")
        b.cmds.append(
            Call(var, Lit(name), tuple(b.int_expr() for _ in range(arity)))
        )
        b.int_vars.append(var)

    def _build_pure(self, index: int) -> None:
        """One pure helper: params-only arithmetic with a branch."""
        name = f"pure{index}"
        arity = self.rng.randint(1, 2)
        params = tuple(f"p{i}" for i in range(arity))
        b = ProgramBuilder(self.rng)
        b.int_vars.extend(params)
        b.emit_assign()
        if self.pure_procs and self.rng.random() < 0.6:
            self._helper_call(b, self.pure_procs)
        if self.rng.random() < 0.3:
            # A fallible guard: fail on one side of a condition.
            guard_at = len(b.cmds)
            b.cmds.append(None)
            b.cmds.append(Fail(lst("helper-violation", b.int_expr())))
            b.cmds[guard_at] = IfGoto(b.condition(), len(b.cmds))
        # A two-way return diamond keeps every helper multi-path.
        cond_at = len(b.cmds)
        b.cmds.append(None)
        b.cmds.append(Return(b.int_expr()))
        b.cmds[cond_at] = IfGoto(b.condition(), len(b.cmds))
        b.cmds.append(Return(b.int_expr()))
        self.procs.append(Proc(name, params, tuple(b.cmds)))
        self.pure_procs.append((name, arity))

    def _build_impure(self, index: int) -> None:
        """One impure helper: allocates, writes, reads back."""
        name = f"heap{index}"
        params = ("p0",)
        b = ProgramBuilder(self.rng)
        b.int_vars.extend(params)
        b.emit_alloc()
        if self.pure_procs and self.rng.random() < 0.5:
            self._helper_call(b, self.pure_procs)
        obj = b.loc_vars[-1]
        # A read of "q" may legitimately error (missing property).
        prop = self.rng.choice(["p", "p", "q"])
        out = b.fresh_var("r")
        b.cmds.append(ActionCall(out, "lookup", lst(PVar(obj), prop)))
        b.int_vars.append(out)
        b.cmds.append(Return(b.int_expr()))
        self.procs.append(Proc(name, params, tuple(b.cmds)))
        self.impure_procs.append((name, 1))

    def build(self) -> Prog:
        """Assemble the whole seeded multi-procedure program."""
        for i in range(self.rng.randint(1, 3)):
            self._build_pure(i)
        for i in range(self.rng.randint(0, 2)):
            self._build_impure(i)
        main = ProgramBuilder(self.rng)
        for _ in range(self.rng.randint(1, 2)):
            main.emit_input()
        pools = [self.pure_procs] * 2 + (
            [self.impure_procs] if self.impure_procs else []
        )
        for _ in range(self.rng.randint(2, 5)):
            roll = self.rng.random()
            if roll < 0.6:
                self._helper_call(main, self.rng.choice(pools))
            elif roll < 0.8:
                main.emit_assign()
            else:
                main.emit_memory_op()
        if self.rng.random() < 0.5:
            main.emit_check()
        main.cmds.append(Return(main.int_expr()))
        prog = Prog()
        prog.add(Proc("main", (), tuple(main.cmds)))
        for proc in self.procs:
            prog.add(proc)
        return prog


def generate_call_program(seed: int) -> Prog:
    """The fixed call-heavy program for ``seed`` — deterministic."""
    return CallProgramBuilder(random.Random(seed ^ 0x5E0C)).build()


# -- the cross-target corpus ---------------------------------------------------

#: the target names a cross program is lowered to, in display order
CROSS_TARGETS = ("while", "js", "c", "rust")

#: every symbolic input is assumed into ``[0, INPUT_BOUND]``, so the
#: whole input space is ``(INPUT_BOUND+1)^n`` tuples (at most 64)
INPUT_BOUND = 3

#: size bounds for cross shapes (smaller than the GIL generator: every
#: seed runs 4 targets x an exhaustive concrete grid x engine arms)
CROSS_MAX_STMTS = 6
CROSS_MAX_LOOP_ITERS = 2


@dataclass(frozen=True)
class CrossProgram:
    """One seed's target-agnostic shape, lowered to all four targets."""

    seed: int
    num_inputs: int
    sources: Dict[str, str]

    def repro(self, target: str) -> str:
        """A one-liner reproducing this lowering for a failure message."""
        return (
            f"python -c \"import sys; from repro.testing.genprog import "
            f"generate_cross_program; sys.stdout.write("
            f"generate_cross_program({self.seed}).sources[{target!r}])\""
        )


class _ShapeBuilder:
    """Builds one target-agnostic statement tree from a seeded rng.

    Statements and expressions are plain tuples (a tiny IR) that the
    per-target lowering renders to concrete syntax.  Objects are
    allocated with both fields initialised, disposed only at top level,
    and read after disposal only deliberately — so the outcome class of
    every path is target-independent by construction.
    """

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.int_vars: List[str] = []
        self.objs: List[str] = []
        self.disposed: List[str] = []
        self.tmp = 0
        self.num_inputs = 0

    def fresh(self, prefix: str) -> str:
        self.tmp += 1
        return f"{prefix}{self.tmp}"

    def int_expr(self, depth: int = 0) -> tuple:
        roll = self.rng.random()
        if roll < 0.35 or depth >= 2 or not self.int_vars:
            return ("lit", self.rng.randint(-4, 4))
        if roll < 0.7:
            return ("var", self.rng.choice(self.int_vars))
        op = self.rng.choice(["+", "-", "*"])
        return ("bin", op, self.int_expr(depth + 1), self.int_expr(depth + 1))

    def cond(self) -> tuple:
        op = self.rng.choice(["<", "<=", "==", "!="])
        return ("cmp", op, self.int_expr(), self.int_expr())

    # -- statement emitters ----------------------------------------------------

    def emit_input(self, out: List[tuple]) -> None:
        var = self.fresh("in")
        out.append(("input", var))
        out.append(("assume", ("cmp", "<=", ("lit", 0), ("var", var))))
        out.append(("assume", ("cmp", "<=", ("var", var), ("lit", INPUT_BOUND))))
        self.int_vars.append(var)
        self.num_inputs += 1

    def emit_let(self, out: List[tuple]) -> None:
        var = self.fresh("v")
        out.append(("let", var, self.int_expr()))
        self.int_vars.append(var)

    def emit_set(self, out: List[tuple]) -> None:
        if not self.int_vars:
            self.emit_let(out)
            return
        out.append(("set", self.rng.choice(self.int_vars), self.int_expr()))

    def emit_alloc(self, out: List[tuple]) -> None:
        obj = self.fresh("o")
        out.append(("alloc", obj, self.int_expr(), self.int_expr()))
        self.objs.append(obj)

    def emit_obj_op(self, out: List[tuple]) -> None:
        if not self.objs:
            self.emit_alloc(out)
            return
        obj = self.rng.choice(self.objs)
        idx = self.rng.randrange(2)
        if self.rng.random() < 0.5:
            var = self.fresh("r")
            out.append(("read", var, obj, idx))
            self.int_vars.append(var)
        else:
            out.append(("write", obj, idx, self.int_expr()))

    def emit_if(self, out: List[tuple], depth: int) -> None:
        cond = self.cond()
        then_body = self.block(depth + 1)
        else_body = self.block(depth + 1)
        out.append(("if", cond, then_body, else_body))

    def emit_loop(self, out: List[tuple], depth: int) -> None:
        counter = self.fresh("i")
        bound = self.rng.randint(1, CROSS_MAX_LOOP_ITERS)
        body = self.block(depth + 1, allow_loops=False)
        out.append(("loop", counter, bound, body))
        self.int_vars.append(counter)

    def emit_assert(self, out: List[tuple]) -> None:
        out.append(("assert", self.cond()))

    def block(self, depth: int, allow_loops: bool = True) -> List[tuple]:
        """A nested block; its new names stay local to the block."""
        ints, objs = len(self.int_vars), len(self.objs)
        out: List[tuple] = []
        emitters = ["let", "let", "set", "obj"]
        if depth < 2:
            emitters.append("if")
            if allow_loops:
                emitters.append("loop")
        for _ in range(self.rng.randint(1, 2)):
            choice = self.rng.choice(emitters)
            if choice == "let":
                self.emit_let(out)
            elif choice == "set":
                self.emit_set(out)
            elif choice == "obj":
                self.emit_obj_op(out)
            elif choice == "if":
                self.emit_if(out, depth)
            else:
                self.emit_loop(out, depth)
        del self.int_vars[ints:]
        del self.objs[objs:]
        return out

    def build(self) -> Tuple[List[tuple], int]:
        """The whole top-level statement list plus the input count."""
        out: List[tuple] = []
        for _ in range(self.rng.randint(1, MAX_INPUTS)):
            self.emit_input(out)
        self.emit_alloc(out)
        for _ in range(self.rng.randint(2, CROSS_MAX_STMTS)):
            choice = self.rng.choice(["let", "set", "obj", "obj", "if", "loop"])
            if choice == "let":
                self.emit_let(out)
            elif choice == "set":
                self.emit_set(out)
            elif choice == "obj":
                self.emit_obj_op(out)
            elif choice == "if":
                self.emit_if(out, 1)
            else:
                self.emit_loop(out, 1)
        if self.objs and self.rng.random() < 0.6:
            obj = self.objs.pop(self.rng.randrange(len(self.objs)))
            out.append(("dispose", obj))
            self.disposed.append(obj)
            if self.rng.random() < 0.5:
                # A deliberate use-after-dispose: every target must
                # fault here, each through its own memory model.
                var = self.fresh("r")
                out.append(("read", var, obj, self.rng.randrange(2)))
                self.int_vars.append(var)
        if self.rng.random() < 0.7:
            self.emit_assert(out)
        out.append(("return", self.int_expr()))
        return out, self.num_inputs


# -- lowering ------------------------------------------------------------------

_CMP_OPS = {
    "while": {"<": "<", "<=": "<=", "==": "=", "!=": "!="},
    "js": {"<": "<", "<=": "<=", "==": "===", "!=": "!=="},
    "c": {"<": "<", "<=": "<=", "==": "==", "!=": "!="},
    "rust": {"<": "<", "<=": "<=", "==": "==", "!=": "!="},
}

_FIELDS = ("p", "q")


def _expr_src(e: tuple, target: str) -> str:
    """Render an integer expression for ``target``."""
    if e[0] == "lit":
        n = e[1]
        return str(n) if n >= 0 else f"(0 - {-n})"
    if e[0] == "var":
        return e[1]
    _, op, left, right = e
    return f"({_expr_src(left, target)} {op} {_expr_src(right, target)})"


def _cond_src(c: tuple, target: str) -> str:
    """Render a comparison for ``target``."""
    _, op, left, right = c
    return (
        f"({_expr_src(left, target)} {_CMP_OPS[target][op]} "
        f"{_expr_src(right, target)})"
    )


def _stmt_lines(stmt: tuple, target: str, ind: str) -> List[str]:
    """Render one IR statement to ``target`` source lines."""
    kind = stmt[0]
    if kind == "input":
        name = stmt[1]
        return {
            "while": [f"{ind}{name} := symb_int();"],
            "js": [f"{ind}var {name} = symb_int();"],
            "c": [f"{ind}int {name} = symb_int();"],
            "rust": [f"{ind}let mut {name} = symb_int();"],
        }[target]
    if kind == "let":
        name, e = stmt[1], _expr_src(stmt[2], target)
        return {
            "while": [f"{ind}{name} := {e};"],
            "js": [f"{ind}var {name} = {e};"],
            "c": [f"{ind}int {name} = {e};"],
            "rust": [f"{ind}let mut {name} = {e};"],
        }[target]
    if kind == "set":
        name, e = stmt[1], _expr_src(stmt[2], target)
        if target == "while":
            return [f"{ind}{name} := {e};"]
        return [f"{ind}{name} = {e};"]
    if kind == "alloc":
        obj = stmt[1]
        ep, eq = _expr_src(stmt[2], target), _expr_src(stmt[3], target)
        return {
            "while": [f"{ind}{obj} := {{ p: {ep}, q: {eq} }};"],
            "js": [f"{ind}var {obj} = {{ p: {ep}, q: {eq} }};"],
            "c": [
                f"{ind}int *{obj} = (int *) malloc(2 * sizeof(int));",
                f"{ind}{obj}[0] = {ep};",
                f"{ind}{obj}[1] = {eq};",
            ],
            "rust": [f"{ind}let mut {obj} = [{ep}, {eq}];"],
        }[target]
    if kind == "write":
        obj, idx, e = stmt[1], stmt[2], _expr_src(stmt[3], target)
        if target == "while":
            return [f"{ind}{obj}.{_FIELDS[idx]} := {e};"]
        if target == "js":
            return [f"{ind}{obj}.{_FIELDS[idx]} = {e};"]
        return [f"{ind}{obj}[{idx}] = {e};"]
    if kind == "read":
        name, obj, idx = stmt[1], stmt[2], stmt[3]
        return {
            "while": [f"{ind}{name} := {obj}.{_FIELDS[idx]};"],
            "js": [f"{ind}var {name} = {obj}.{_FIELDS[idx]};"],
            "c": [f"{ind}int {name} = {obj}[{idx}];"],
            "rust": [f"{ind}let mut {name} = {obj}[{idx}];"],
        }[target]
    if kind == "dispose":
        obj = stmt[1]
        return {
            "while": [f"{ind}dispose({obj});"],
            "js": [f"{ind}dispose({obj});"],
            "c": [f"{ind}free({obj});"],
            "rust": [f"{ind}drop({obj});"],
        }[target]
    if kind == "if":
        cond = _cond_src(stmt[1], target)
        head = f"{ind}if {cond} {{" if target == "rust" else f"{ind}if ({cond}) {{"
        lines = [head]
        for s in stmt[2]:
            lines.extend(_stmt_lines(s, target, ind + "  "))
        lines.append(f"{ind}}} else {{")
        for s in stmt[3]:
            lines.extend(_stmt_lines(s, target, ind + "  "))
        lines.append(f"{ind}}}")
        return lines
    if kind == "loop":
        counter, bound, body = stmt[1], stmt[2], stmt[3]
        cond = _cond_src(("cmp", "<", ("var", counter), ("lit", bound)), target)
        lines = _stmt_lines(("let", counter, ("lit", 0)), target, ind)
        head = (
            f"{ind}while {cond} {{" if target == "rust"
            else f"{ind}while ({cond}) {{"
        )
        lines.append(head)
        for s in body:
            lines.extend(_stmt_lines(s, target, ind + "  "))
        bump = ("set", counter, ("bin", "+", ("var", counter), ("lit", 1)))
        lines.extend(_stmt_lines(bump, target, ind + "  "))
        lines.append(f"{ind}}}")
        return lines
    if kind == "assume":
        return [f"{ind}assume({_cond_src(stmt[1], target)});"]
    if kind == "assert":
        cond = _cond_src(stmt[1], target)
        if target == "rust":
            return [f"{ind}assert!({cond});"]
        return [f"{ind}assert({cond});"]
    if kind == "return":
        return [f"{ind}return {_expr_src(stmt[1], target)};"]
    raise ValueError(f"unknown IR statement {stmt!r}")


_HEADERS = {
    "while": "proc main() {",
    "js": "function main() {",
    "c": "int main() {",
    "rust": "fn main() -> i64 {",
}


def _lower(stmts: List[tuple], target: str) -> str:
    """Render a whole shape to one target's concrete syntax."""
    lines = [_HEADERS[target]]
    for stmt in stmts:
        lines.extend(_stmt_lines(stmt, target, "  "))
    lines.append("}")
    return "\n".join(lines) + "\n"


def generate_cross_program(seed: int) -> CrossProgram:
    """The fixed cross-target program for ``seed`` — deterministic."""
    stmts, num_inputs = _ShapeBuilder(random.Random(seed ^ 0xC805)).build()
    sources = {target: _lower(stmts, target) for target in CROSS_TARGETS}
    return CrossProgram(seed=seed, num_inputs=num_inputs, sources=sources)


# -- the concrete cross-target oracle ------------------------------------------


def cross_languages() -> Dict[str, Language]:
    """Fresh language instantiations for every cross target."""
    from repro.targets.c_like import MiniCLanguage
    from repro.targets.js_like import MiniJSLanguage
    from repro.targets.rust_like import MiniRustLanguage
    from repro.targets.while_lang import WhileLanguage

    return {
        "while": WhileLanguage(),
        "js": MiniJSLanguage(),
        "c": MiniCLanguage(),
        "rust": MiniRustLanguage(),
    }


def input_grid(num_inputs: int) -> Iterator[Tuple[int, ...]]:
    """Every input tuple in ``[0, INPUT_BOUND]^num_inputs`` (<= 64)."""
    return itertools.product(range(INPUT_BOUND + 1), repeat=num_inputs)


def isym_sites(prog: Prog) -> List[int]:
    """The program's interpreted-symbol sites, in allocation order."""
    return sorted(
        cmd.site
        for proc in prog.procs.values()
        for cmd in proc.body
        if isinstance(cmd, ISym)
    )


def concrete_outcome(
    language: Language, prog: Prog, values: Tuple[int, ...]
) -> tuple:
    """Run ``prog`` concretely on one input tuple; normalise the outcome.

    Returns ``("vanish",)``, ``("return", value)``, or
    ``("error", "assert" | "memory")`` — the target-independent outcome
    class every lowering of the same shape must agree on.
    """
    script = {isym_name(s, 0): v for s, v in zip(isym_sites(prog), values)}
    model = ConcreteStateModel(
        language.concrete_memory(), ConcreteAllocator(script=script)
    )
    result = Explorer(prog, model, CONFIG).run("main")
    if not result.finals:
        return ("vanish",)
    outcome = result.sole_outcome
    if outcome.kind is OutcomeKind.NORMAL:
        value = outcome.value
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        return ("return", value)
    tag = "assert" if "assertion-failure" in str(outcome.value) else "memory"
    return ("error", tag)
