"""The two-level summary cache: process-wide memory + durable disk.

Summaries are content-addressed (see :mod:`repro.specs.summary`), so
one process-wide dictionary can back every engine in the process — two
engines that derive the same key would record byte-equal summaries, and
a symbolic-testing suite's per-test engines warm each other exactly the
way the shared simplifier memo does.

An optional disk level (``EngineConfig.summary_dir``) persists
summaries across runs through
:class:`repro.service.store.SummaryStore`, the checksummed
content-addressed store machinery of the analysis service: entries are
written atomically inside a checked frame, and a torn or bit-flipped
entry is *evicted on read*, reported through ``on_corrupt``, and
treated as a miss — a damaged summary is recomputed, never replayed.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.specs.summary import Summary

#: the process-wide summary cache (key → Summary), shared by every
#: :class:`SummaryCache` instance — safe because keys are content hashes
_MEMORY: Dict[str, Summary] = {}


def clear_summary_cache() -> None:
    """Drop every in-memory summary (tests; disk stores are untouched)."""
    _MEMORY.clear()


class SummaryCache:
    """Key → :class:`Summary`, memory first, then the optional disk store.

    ``on_corrupt(key, reason)`` observes disk-entry evictions (wired by
    the summary engine onto the event bus and the corruption counter).
    """

    def __init__(
        self,
        root: Optional[str] = None,
        on_corrupt: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        """Open the cache; ``root`` enables the durable disk level."""
        self._store = None
        if root is not None:
            from repro.service.store import SummaryStore

            self._store = SummaryStore(root, on_corrupt=on_corrupt)

    def get(self, key: str) -> Optional[Summary]:
        """The summary under ``key``, or None.

        A disk hit is promoted into the process-wide memory level; a
        disk entry that fails its frame check (or unpickles to
        something other than a :class:`Summary`) is evicted and missed.
        """
        found = _MEMORY.get(key)
        if found is not None:
            return found
        if self._store is None:
            return None
        loaded = self._store.get(key)
        if loaded is None:
            return None
        if not isinstance(loaded, Summary):
            # Foreign payload under a summary key: treat as damage.
            self._store.delete(key)
            return None
        _MEMORY[key] = loaded
        return loaded

    def source_of(self, key: str) -> str:
        """Where :meth:`get` would find ``key``: "memory", "disk", "cold"."""
        if key in _MEMORY:
            return "memory"
        if self._store is not None and self._store.contains(key):
            return "disk"
        return "cold"

    def put(self, key: str, summary: Summary) -> None:
        """Record ``summary`` in memory and (when configured) on disk.

        Incomplete summaries are cached too: rebuilding one under the
        same budgets (which are part of the key) would deterministically
        cut at the same point, so the cached record doubles as the
        negative-cache entry that stops verify mode re-summarising a
        too-big procedure at every call site.
        """
        _MEMORY[key] = summary
        if self._store is not None:
            self._store.put(key, summary)
