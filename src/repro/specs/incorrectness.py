"""The incorrectness arm: under-approximate summaries, true-positive bugs.

*Compositional Symbolic Execution for Correctness and Incorrectness
Reasoning* (arXiv 2407.10838) observes that summaries come in two
polarities.  Verify mode (over-approximating consumers) must refuse a
summary that lost paths; **incorrectness mode** may *drop paths freely
but never widen* — every path a partial summary keeps is a genuine
execution, so any error it reaches is reachable.  Operationally that
means incomplete summaries (summarisation budget cut the path set) are
replayed instead of rejected, and the bug-finding run is allowed to
miss bugs but not to invent them.

:func:`find_bugs` runs a procedure in that mode and then *discharges*
the no-false-positive obligation per report: each error final's path
condition is handed to the solver for a model, and the model is
replayed concretely through
:func:`repro.soundness.differential.check_final` (Theorem 3.6's
counter-model replay).  A bug is ``confirmed`` only when the concrete
run reproduces the error with a matching value.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.engine.results import ExecutionStats
from repro.gil.semantics import OutcomeKind
from repro.gil.syntax import Prog
from repro.logic.simplify import shared_simplifier
from repro.logic.solver import Solver
from repro.state.symbolic import SymbolicStateModel
from repro.targets.language import Language


@dataclass
class SummaryBug:
    """One error reached through (possibly partial) summaries."""

    value: object          # the symbolic error value
    model: Optional[dict]  # counter-model ε of the error path, if found
    confirmed: bool        # concrete replay reproduced the error
    detail: str = ""       # mismatch diagnosis when not confirmed


@dataclass
class IncorrectnessReport:
    """Everything one incorrectness-mode run established."""

    entry: str
    bugs: List[SummaryBug] = field(default_factory=list)
    stats: Optional[ExecutionStats] = None

    @property
    def all_confirmed(self) -> bool:
        """True iff every reported bug replayed concretely (no false
        positives — the mode's defining guarantee)."""
        return all(bug.confirmed for bug in self.bugs)

    @property
    def confirmed(self) -> List[SummaryBug]:
        """The subset of reports that are proven-reachable errors."""
        return [bug for bug in self.bugs if bug.confirmed]


def find_bugs(
    language: Language,
    prog: Prog,
    entry: str,
    config: Optional[EngineConfig] = None,
) -> IncorrectnessReport:
    """Hunt for errors in ``entry`` with under-approximate summaries.

    Forces ``summaries=True, summary_mode="incorrectness"`` onto the
    given configuration, explores symbolically, and confirms every
    error final by concrete counter-model replay.  Reports whose path
    condition has no verified model, or whose replay diverges, stay in
    the report with ``confirmed=False`` — callers trust only the
    confirmed subset.
    """
    base = config if config is not None else EngineConfig()
    run_config = dataclasses.replace(
        base, summaries=True, summary_mode="incorrectness"
    )
    simplifier = shared_simplifier(
        enabled=True, memoise=run_config.simplifier_memoisation
    )
    solver = Solver(
        simplifier=simplifier,
        cache_enabled=run_config.solver_cache,
        incremental=run_config.solver_incremental,
        step_budget=run_config.solver_step_budget,
    )
    sm = SymbolicStateModel(
        language.symbolic_memory(),
        solver=solver,
        unknown_policy=run_config.unknown_policy,
    )
    result = Explorer(prog, sm, run_config).run(entry)

    from repro.soundness.differential import check_final

    replay_config = dataclasses.replace(base, summaries=False)
    report = IncorrectnessReport(entry=entry, stats=result.stats)
    for fin in result.finals:
        if fin.kind is not OutcomeKind.ERROR:
            continue
        check = check_final(language, prog, entry, fin, solver, replay_config)
        report.bugs.append(
            SummaryBug(
                value=fin.value,
                model=check.model,
                confirmed=check.replayed and check.outcome_matches,
                detail=check.detail,
            )
        )
    return report
