"""Summary records, purity classification, and cache keys.

A :class:`Summary` is the recorded behaviour of one procedure executed
against a symbolic pre-state: one :class:`SummaryPath` per non-vanishing
path, each carrying the outcome kind and value, the path-condition
*delta* learned along the path (the pre-state starts at ``π = true``, so
the final path condition's conjuncts *are* the delta), and — for
heap-touching procedures — the post memory and allocation record.

Two tiers of summary share the record shape:

* **pure** (the paper's abstract summaries, arXiv 2001.05059): the
  procedure touches no memory and allocates no symbols, so it is
  summarised once against fresh canonical logical variables
  (``spec_arg_0``, …) and replayed at *any* call site by substituting
  the actual arguments into the recorded values and deltas;
* **exact** (call-tree memoisation): any procedure, keyed by the exact
  pre-state — arguments, memory, allocation record — so the recorded
  post-states are literally the objects inline execution would have
  produced.  Exact summaries make repeated concrete set-up call trees
  (the dominant cost of the Buckets/Collections suites) replay for the
  price of a hash.

Keys are content-addressed (§cache keying in ``docs/summaries.md``): a
procedure's hash covers its own body *and* its transitive static
callees, so editing a helper invalidates every summary whose behaviour
could change, with no invalidation protocol.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.gil.semantics import OutcomeKind
from repro.gil.syntax import ActionCall, Call, ISym, Proc, Prog, USym
from repro.logic.expr import Lit

#: bump when the record shape or replay semantics change incompatibly;
#: part of every cache key, so stale on-disk summaries simply miss
SUMMARY_FORMAT_VERSION = 1

#: namespace of the canonical argument logical variables a pure summary
#: is recorded over — distinct from the allocator's ``val_``/``loc_``
#: namespaces, so substituting caller expressions can never capture
SPEC_ARG_PREFIX = "spec_arg_"

#: pickle protocol pinned for key stability across interpreter versions
_PICKLE_PROTOCOL = 4


@dataclass(frozen=True)
class SummaryPath:
    """One recorded path of a summarised procedure.

    ``pc_delta`` is the tuple of conjuncts the path added over the
    ``true`` entry condition.  ``memory``/``alloc``/``store`` are the
    final state's components for exact summaries and ``None`` for pure
    ones (a pure body cannot change them).  ``store`` (the callee's
    final store, as sorted items) is kept so replayed *error* finals
    carry the same state shape inline execution would have produced.
    """

    kind: OutcomeKind
    value: object
    pc_delta: Tuple[object, ...]
    memory: object = None
    alloc: object = None
    store: Optional[Tuple[Tuple[str, object], ...]] = None


@dataclass(frozen=True)
class Summary:
    """The recorded behaviour of one procedure over a symbolic pre-state."""

    proc: str
    #: ``"pure"`` or ``"exact"`` (see module docstring)
    tier: str
    #: parameter names, positionally matching ``spec_arg_<i>`` (pure tier)
    params: Tuple[str, ...]
    paths: Tuple[SummaryPath, ...]
    #: True iff the summarisation run explored every path to its final
    #: (stop reason ``exhausted``).  Verify mode refuses incomplete
    #: summaries; incorrectness mode may use them (drop paths freely,
    #: never widen — arXiv 2407.10838)
    complete: bool
    #: GIL commands the summarisation run executed — the per-replay
    #: saving reported in ``ExecutionStats.summary_commands_saved``
    commands: int
    format_version: int = SUMMARY_FORMAT_VERSION

    def usable(self, mode: str) -> bool:
        """Whether this summary may be replayed under ``mode``.

        ``"verify"`` demands completeness (replay must preserve the
        whole path set); ``"incorrectness"`` under-approximates, so any
        recorded subset of paths is fair game.
        """
        if self.format_version != SUMMARY_FORMAT_VERSION:
            return False
        return self.complete or mode == "incorrectness"


def spec_arg(i: int):
    """The canonical logical variable a pure summary binds parameter ``i`` to."""
    from repro.logic.expr import LVar

    return LVar(f"{SPEC_ARG_PREFIX}{i}")


def static_callee(cmd: Call) -> Optional[str]:
    """The callee name of a statically-resolvable call, else None."""
    callee = cmd.callee
    if isinstance(callee, Lit) and isinstance(callee.value, str):
        return callee.value
    return None


def classify_pure(prog: Prog) -> Dict[str, bool]:
    """Which procedures are *transitively pure* (pure-tier eligible).

    A procedure is pure iff its body contains no memory action, no
    fresh-symbol command, and no call other than a static call to a
    pure procedure.  ``fail``/``vanish`` are allowed — a pure body may
    still end paths.  Cycles (recursion) classify as impure: replaying
    a recursive summary would need a fixpoint this layer does not take.
    """
    verdicts: Dict[str, bool] = {}
    in_flight: Set[str] = set()

    def visit(name: str) -> bool:
        """Purity of ``name``, memoised; cycles conservatively impure."""
        known = verdicts.get(name)
        if known is not None:
            return known
        if name in in_flight:
            return False
        proc = prog.get(name)
        if proc is None:
            return False
        in_flight.add(name)
        pure = True
        for cmd in proc.body:
            if isinstance(cmd, (ActionCall, USym, ISym)):
                pure = False
                break
            if isinstance(cmd, Call):
                callee = static_callee(cmd)
                if callee is None or not visit(callee):
                    pure = False
                    break
        in_flight.discard(name)
        verdicts[name] = pure
        return pure

    for name in prog.procs:
        visit(name)
    return verdicts


def proc_hash(prog: Prog, name: str, memo: Optional[Dict[str, str]] = None) -> str:
    """Content hash of ``name`` covering its transitive static callees.

    The hash digests the procedure's parameters and body (via their
    stable pickled form — commands and expressions define structural
    ``__reduce__``) plus the hash of every statically-called procedure,
    so any edit anywhere in the call tree changes the key.  Recursive
    cycles are broken by hashing the callee's *name* on re-entry, which
    keeps the hash well-defined (cycle members still cover each other's
    bodies through the non-cyclic part of the walk).
    """
    if memo is None:
        memo = {}

    def visit(pname: str, in_flight: Set[str]) -> str:
        """The memoised transitive hash of one procedure."""
        known = memo.get(pname)
        if known is not None:
            return known
        if pname in in_flight:
            return "cycle:" + pname
        proc = prog.get(pname)
        if proc is None:
            return "missing:" + pname
        in_flight.add(pname)
        digest = hashlib.sha256()
        digest.update(
            pickle.dumps((pname, proc.params, proc.body), protocol=_PICKLE_PROTOCOL)
        )
        for cmd in proc.body:
            if isinstance(cmd, Call):
                callee = static_callee(cmd)
                if callee is not None:
                    digest.update(visit(callee, in_flight).encode())
        in_flight.discard(pname)
        result = digest.hexdigest()
        memo[pname] = result
        return result

    return visit(name, set())


def pure_key(phash: str, salt: str) -> str:
    """Cache key for a pure-tier summary: proc hash + engine salt."""
    return hashlib.sha256(f"pure:{phash}:{salt}".encode()).hexdigest()


def exact_key(phash: str, args: List[object], memory, alloc, salt: str) -> str:
    """Cache key for an exact-tier summary: the full pre-state.

    Hashes the pickled (proc hash, evaluated arguments, memory,
    allocation record, salt) tuple.  Pickle forms are canonical for the
    engine's own types (states sort their stores, expressions and path
    conditions re-intern structurally), so equal pre-states built in the
    same order key identically; an incidental representation difference
    costs a cache miss, never a wrong hit.
    """
    payload = pickle.dumps(
        (phash, tuple(args), memory, alloc, salt), protocol=_PICKLE_PROTOCOL
    )
    return hashlib.sha256(payload).hexdigest()


def engine_salt(sm, config) -> str:
    """The engine-identity component of every summary key.

    Anything that can change a summarisation run's *recorded content*
    must be in the key: the memory model (pickled — parametric memlib
    compositions with the same class name differ structurally), the
    allocator namespace (it prefixes fresh-symbol names), the UNKNOWN
    policy and solver step budget (they decide which paths survive),
    and the summarisation budgets (they decide where a partial summary
    was cut).
    """
    try:
        model = hashlib.sha256(
            pickle.dumps(sm.memory_model, protocol=_PICKLE_PROTOCOL)
        ).hexdigest()
    except Exception:  # unpicklable custom model: key on its repr
        model = repr(sm.memory_model)
    return ":".join(
        str(part)
        for part in (
            SUMMARY_FORMAT_VERSION,
            model,
            getattr(sm.allocator, "namespace", ""),
            sm.unknown_policy,
            getattr(config, "solver_step_budget", None),
            getattr(config, "summary_max_commands", 0),
            getattr(config, "summary_max_paths", 0),
        )
    )


def proc_names_of(proc: Proc) -> Tuple[str, ...]:
    """The static callee names a procedure's body mentions (deduplicated)."""
    seen: List[str] = []
    for cmd in proc.body:
        if isinstance(cmd, Call):
            callee = static_callee(cmd)
            if callee is not None and callee not in seen:
                seen.append(callee)
    return tuple(seen)
