"""Compositional execution via function summaries (specs layer).

The follow-on Gillian papers (*Compositional Symbolic Execution for
All*, arXiv 2001.05059; *Correctness and Incorrectness Reasoning*,
arXiv 2407.10838) turn whole-program symbolic execution compositional:
execute a procedure *once*, record a **summary** — per-path outcome
value, path-condition delta, and memory footprint over a symbolic
pre-state — and *replay* the summary at call sites instead of
descending into the callee.

This package is that layer for the GIL engine:

* :mod:`repro.specs.summary` — the :class:`Summary` record, purity
  classification, and content-addressed cache keys;
* :mod:`repro.specs.cache` — the process-wide in-memory cache plus the
  durable checksummed :class:`repro.service.store.SummaryStore`;
* :mod:`repro.specs.engine` — the :class:`SummaryEngine` that both
  execution arms (interpreted and compiled) consult at ``Call``
  commands;
* :mod:`repro.specs.incorrectness` — the under-approximate bug-finding
  arm whose reports are confirmed true-positive by concrete replay.

Enabled by ``EngineConfig(summaries=True)``; see ``docs/summaries.md``
for semantics and guarantees.
"""

from repro.specs.cache import SummaryCache, clear_summary_cache
from repro.specs.engine import SummaryEngine, make_summary_engine
from repro.specs.incorrectness import IncorrectnessReport, find_bugs
from repro.specs.summary import Summary, SummaryPath, classify_pure, proc_hash

__all__ = [
    "Summary",
    "SummaryPath",
    "SummaryCache",
    "SummaryEngine",
    "IncorrectnessReport",
    "classify_pure",
    "clear_summary_cache",
    "find_bugs",
    "make_summary_engine",
    "proc_hash",
]
