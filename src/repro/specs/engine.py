"""The summary engine: call-site interception for both execution arms.

Both steppers — the tree-walking interpreter
(:func:`repro.gil.semantics.step`) and the compiled pipeline
(:meth:`repro.gil.compile.CompiledProg.step`) — consult an attached
:class:`SummaryEngine` when the current command is a ``Call``.
:meth:`SummaryEngine.try_call` answers with the call's successor
configurations and finals (a *replay*), or ``None`` to fall back to
ordinary inline descent.

Replay is sound because a recorded path's values and memory never
depend on the caller's path condition π — π only gates feasibility.  A
summary is recorded from an entry condition of ``true``; at a call site
each recorded path's delta is re-checked against the *caller's* π
(batched, through the state model's UNKNOWN policy, exactly like
``branch_on``), so the feasible subset replayed equals the subset
inline execution would have kept.  The differential fuzz arm asserts
the resulting finals multiset is identical summaries-on vs -off across
both arms and all worker counts.

Safety gates: summaries require the stock symbolic state model, and an
explorer with an installed fault injector never constructs an engine —
injected faults could corrupt a recorded summary and then replay the
corruption everywhere.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from types import MappingProxyType
from typing import List, Optional, Tuple

from repro.engine.events import SummaryHit, SummaryMiss, SummaryReplay
from repro.gil.ops import EvalError
from repro.gil.semantics import Config, Final, OutcomeKind, TopFrame
from repro.gil.syntax import Call, Proc, Prog
from repro.logic.expr import FALSE, TRUE, Expr, Lit, substitute_lvars
from repro.logic.pathcond import PathCondition
from repro.specs.cache import SummaryCache
from repro.specs.summary import (
    SPEC_ARG_PREFIX,
    Summary,
    SummaryPath,
    classify_pure,
    engine_salt,
    exact_key,
    proc_hash,
    pure_key,
    spec_arg,
    static_callee,
)
from repro.state.symbolic import SymbolicState

_NO_CONFIGS: tuple = ()
_NO_FINALS: tuple = ()


@dataclass
class SummaryCounters:
    """Running summary-activity counters for one engine.

    The explorer snapshots these per drive (like the solver stats and
    degradation counters) and folds the delta into
    :class:`~repro.engine.results.ExecutionStats`.
    """

    hits: int = 0
    misses: int = 0
    replays: int = 0
    commands_saved: int = 0
    build_commands: int = 0
    corrupt_evictions: int = 0

    def snapshot(self) -> Tuple[int, int, int, int, int]:
        """The stats-visible counters as one comparable tuple."""
        return (
            self.hits,
            self.misses,
            self.replays,
            self.commands_saved,
            self.build_commands,
        )


class SummaryEngine:
    """Summarises procedures on first call and replays them thereafter.

    One engine serves one ``(prog, state model, config)`` triple; the
    summaries themselves live in the process-wide content-addressed
    cache (plus the optional disk store), so engines of a test suite
    warm each other.
    """

    def __init__(self, prog: Prog, sm, config, events=None) -> None:
        """Build the engine; see :func:`make_summary_engine` for gating."""
        self.prog = prog
        self.sm = sm
        self.config = config
        self.events = events
        self.mode = getattr(config, "summary_mode", "verify")
        self.counters = SummaryCounters()
        self._pure = classify_pure(prog)
        self._hash_memo: dict = {}
        self._salt = engine_salt(sm, config)
        self._in_progress: set = set()
        self._cache = SummaryCache(
            getattr(config, "summary_dir", None), on_corrupt=self._on_corrupt
        )

    # -- cache plumbing ------------------------------------------------------

    def _on_corrupt(self, key: str, reason: str) -> None:
        """A damaged disk entry was evicted (it will be recomputed)."""
        self.counters.corrupt_evictions += 1

    # -- the interception point ---------------------------------------------

    def try_call(self, state, stack, idx: int, cmd: Call):
        """Serve a ``Call`` from a summary, or ``None`` to run it inline.

        Returns ``(configs, finals)`` shaped exactly like a stepper's
        result: one successor configuration per feasible normal path
        (caller store intact, return variable bound, post memory and
        allocation record applied) and one final per feasible error
        path.
        """
        sm = self.sm
        name = static_callee(cmd)
        if name is None:
            try:
                callee = sm.eval_expr(state, cmd.callee)
            except EvalError:
                return None
            if isinstance(callee, Lit) and isinstance(callee.value, str):
                name = callee.value
            elif isinstance(callee, str):
                name = callee
            else:
                return None
        proc = self.prog.get(name)
        if proc is None or len(cmd.args) != len(proc.params):
            return None  # inline descent reports the error final
        if name in self._in_progress:
            self._miss(name, "recursive")
            return None
        try:
            args = [sm.eval_expr(state, a) for a in cmd.args]
        except EvalError:
            return None

        phash = proc_hash(self.prog, name, self._hash_memo)
        if self._pure.get(name, False):
            tier = "pure"
            key = pure_key(phash, self._salt)
        else:
            tier = "exact"
            try:
                key = exact_key(phash, args, state.memory, state.alloc, self._salt)
            except Exception:
                return None  # unhashable pre-state: run inline
        source = self._cache.source_of(key)
        summary = self._cache.get(key)
        if summary is not None and not summary.usable(self.mode):
            self._miss(name, "incomplete")
            return None
        if summary is None:
            self._miss(name, "cold" if source == "cold" else "corrupt")
            summary = self._summarize(name, proc, tier, key, args, state)
            if summary is None or not summary.usable(self.mode):
                return None
        else:
            self.counters.hits += 1
            if self.events:
                self.events.emit(
                    SummaryHit(name, tier, source, len(summary.paths))
                )
        return self._replay(summary, state, stack, idx, cmd.target, args)

    def _miss(self, name: str, reason: str) -> None:
        """Count and report one unanswered call site."""
        self.counters.misses += 1
        if self.events:
            self.events.emit(SummaryMiss(name, reason))

    # -- summarisation -------------------------------------------------------

    def _sub_explorer(self):
        """A bounded explorer for one summarisation run.

        The sub-run shares this engine (nested calls replay from the
        cache; direct recursion is broken by the in-progress guard) but
        runs under the summarisation budgets, sequentially, with faults
        and the outer deadline stripped.
        """
        from repro.engine.explorer import Explorer

        cfg = dataclasses.replace(
            self.config,
            summaries=False,
            fault_plan=None,
            fault_worker=None,
            fault_attempt=0,
            workers=1,
            deadline=None,
            max_paths=getattr(self.config, "summary_max_paths", 512),
            max_total_steps=getattr(self.config, "summary_max_commands", 100_000),
        )
        explorer = Explorer(self.prog, self.sm, cfg)
        explorer._summaries = self
        if explorer._compiled is not None:
            explorer._compiled.attach_summaries(self)
        return explorer

    def _summarize(
        self, name: str, proc: Proc, tier: str, key: str, args: List, state
    ) -> Optional[Summary]:
        """Execute ``proc`` once from a ``π = true`` pre-state and record it.

        Pure tier: fresh canonical logical variables as arguments, empty
        memory, fresh allocation record — the summary is pre-state
        independent.  Exact tier: the caller's memory and allocation
        record with the actual arguments — the recorded post-states are
        the very objects inline execution would produce, which is what
        keeps finals digests bit-identical.
        """
        sm = self.sm
        if tier == "pure":
            entry = sm.initial_state()
            binding = {p: spec_arg(i) for i, p in enumerate(proc.params)}
        else:
            entry = SymbolicState(
                state.memory, MappingProxyType({}), state.alloc, PathCondition.true()
            )
            binding = dict(zip(proc.params, args))
        entry = sm.set_store(entry, binding)
        self._in_progress.add(name)
        try:
            result = self._sub_explorer().explore(
                [Config(entry, (TopFrame(name),), 0)]
            )
        finally:
            self._in_progress.discard(name)
        self.counters.build_commands += result.stats.commands_executed

        paths = []
        for fin in result.finals:
            final_state = fin.state
            if tier == "pure":
                paths.append(
                    SummaryPath(fin.kind, fin.value, final_state.pc.conjuncts)
                )
            else:
                paths.append(
                    SummaryPath(
                        fin.kind,
                        fin.value,
                        final_state.pc.conjuncts,
                        final_state.memory,
                        final_state.alloc,
                        tuple(sorted(final_state.store.items())),
                    )
                )
        summary = Summary(
            proc=name,
            tier=tier,
            params=proc.params,
            paths=tuple(paths),
            # Complete = the sub-run drained with *every* path recorded:
            # no budget stop, no degraded solver decision, and no path
            # dropped (a max-paths eviction can drain the worklist and
            # still report "exhausted").
            complete=result.stats.stop_reason == "exhausted"
            and result.stats.incompleteness.clean
            and result.stats.paths_dropped == 0,
            commands=result.stats.commands_executed,
        )
        self._cache.put(key, summary)
        return summary

    # -- replay --------------------------------------------------------------

    def _replay(self, summary: Summary, state, stack, idx: int, ret_var: str, args):
        """Branch the caller on the summary's feasible paths.

        Staging substitutes arguments (pure tier) and conjoins each
        path's delta onto the caller's π; admission then feasibility-
        checks the extended conditions in one batched solver pass under
        the state model's UNKNOWN policy — the same flow as
        ``branch_on``, so degraded decisions count identically.
        """
        sm = self.sm
        staged = []  # (path, value, new_pc)
        pending: List[PathCondition] = []
        try:
            if summary.tier == "pure":
                env = {
                    f"{SPEC_ARG_PREFIX}{i}": arg for i, arg in enumerate(args)
                }
                simplify = sm.simplifier.simplify
                for path in summary.paths:
                    conjuncts = []
                    dead = False
                    for c in path.pc_delta:
                        s = simplify(substitute_lvars(c, env))
                        if s == FALSE:
                            dead = True
                            break
                        if s == TRUE:
                            continue
                        conjuncts.append(s)
                    if dead:
                        continue
                    value = path.value
                    if isinstance(value, Expr):
                        value = simplify(substitute_lvars(value, env))
                    new_pc = state.pc.conjoin_all(conjuncts)
                    if new_pc is not state.pc:
                        pending.append(new_pc)
                    staged.append((path, value, new_pc))
            else:
                for path in summary.paths:
                    new_pc = state.pc.conjoin_all(path.pc_delta)
                    if new_pc is not state.pc:
                        pending.append(new_pc)
                    staged.append((path, path.value, new_pc))
        except EvalError:
            return None  # ill-typed substitution: let inline execution report

        verdicts = iter(sm.solver.check_batch(pending))
        configs: List[Config] = []
        finals: List[Final] = []
        for path, value, new_pc in staged:
            if new_pc is not state.pc:
                verdict, timed_out = next(verdicts)
                if not sm._admit_verdict(new_pc, verdict, timed_out):
                    continue
            if summary.tier == "pure":
                post = state.with_pc(new_pc)
                if path.kind is OutcomeKind.NORMAL:
                    configs.append(
                        Config(post.bind(ret_var, value), stack, idx + 1)
                    )
                else:
                    finals.append(Final(post, OutcomeKind.ERROR, value))
            else:
                if path.kind is OutcomeKind.NORMAL:
                    post = SymbolicState(
                        path.memory, state.store, path.alloc, new_pc
                    ).bind(ret_var, value)
                    configs.append(Config(post, stack, idx + 1))
                else:
                    err_state = SymbolicState(
                        path.memory,
                        MappingProxyType(dict(path.store)),
                        path.alloc,
                        new_pc,
                    )
                    finals.append(Final(err_state, OutcomeKind.ERROR, value))
        self.counters.replays += 1
        self.counters.commands_saved += summary.commands
        if self.events:
            self.events.emit(
                SummaryReplay(
                    summary.proc,
                    len(summary.paths),
                    len(configs) + len(finals),
                    summary.commands,
                )
            )
        return tuple(configs), tuple(finals)


def make_summary_engine(prog: Prog, sm, config, events=None) -> Optional[SummaryEngine]:
    """A :class:`SummaryEngine` for ``sm``, or None when unsupported.

    Summaries cover exactly the stock symbolic state model (mirroring
    :func:`repro.gil.compile.supports`): subclasses may override proper
    actions in ways a recorded summary would bypass, and concrete runs
    never branch, so inline execution is already optimal there.
    """
    from repro.state.symbolic import SymbolicStateModel

    if type(sm) is not SymbolicStateModel:
        return None
    return SummaryEngine(prog, sm, config, events=events)
