"""Concrete evaluation of GIL expressions (paper §2.1, §2.3 ⟦e⟧ρ and ⟦ê⟧ε).

A single evaluator serves both roles:

* ``⟦e⟧ρ`` — evaluate a *program* expression under a concrete store ρ
  (``pvar_env``);
* ``⟦ê⟧ε`` — interpret a *logical* expression under a logical environment ε
  (``lvar_env``), used by memory interpretations and counter-model replay
  (paper §3.2).

Evaluation raises :class:`EvalError` on ill-typed applications (e.g. adding
a string to a list).  The GIL interpreter converts these into error
outcomes ``E(v)``.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.gil.values import Value, type_of, values_equal
from repro.logic.expr import (
    BinOp,
    BinOpExpr,
    EList,
    Expr,
    Lit,
    LVar,
    PVar,
    UnOp,
    UnOpExpr,
)


class EvalError(Exception):
    """An ill-typed or otherwise undefined expression evaluation."""


def _as_number(v: Value, op: str) -> float:
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        raise EvalError(f"{op}: expected a number, got {v!r}")
    return v


def _as_int(v: Value, op: str) -> int:
    n = _as_number(v, op)
    if isinstance(n, float):
        if not n.is_integer():
            raise EvalError(f"{op}: expected an integer, got {n!r}")
        n = int(n)
    return n


def _as_bool(v: Value, op: str) -> bool:
    if not isinstance(v, bool):
        raise EvalError(f"{op}: expected a boolean, got {v!r}")
    return v


def _as_str(v: Value, op: str) -> str:
    if not isinstance(v, str):
        raise EvalError(f"{op}: expected a string, got {v!r}")
    return v


def _as_list(v: Value, op: str) -> tuple:
    if not isinstance(v, tuple):
        raise EvalError(f"{op}: expected a list, got {v!r}")
    return v


def _norm_num(x: float) -> Value:
    """Collapse integral floats back to int so results stay exact."""
    if isinstance(x, float) and x.is_integer() and abs(x) < 2**53:
        return int(x)
    return x


def apply_unop(op: UnOp, v: Value) -> Value:
    """Apply a unary operator to a concrete value."""
    if op is UnOp.NOT:
        return not _as_bool(v, "not")
    if op is UnOp.NEG:
        return _norm_num(-_as_number(v, "neg"))
    if op is UnOp.TYPEOF:
        return type_of(v)
    if op is UnOp.STRLEN:
        return len(_as_str(v, "s-len"))
    if op is UnOp.LSTLEN:
        return len(_as_list(v, "l-len"))
    if op is UnOp.HEAD:
        items = _as_list(v, "hd")
        if not items:
            raise EvalError("hd: empty list")
        return items[0]
    if op is UnOp.TAIL:
        items = _as_list(v, "tl")
        if not items:
            raise EvalError("tl: empty list")
        return items[1:]
    if op is UnOp.TOSTRING:
        n = _as_number(v, "num->str")
        if isinstance(n, float) and n.is_integer():
            n = int(n)
        return str(n)
    if op is UnOp.TONUMBER:
        s = _as_str(v, "str->num")
        try:
            return _norm_num(float(s)) if "." in s or "e" in s else int(s)
        except ValueError as exc:
            raise EvalError(f"str->num: {s!r}") from exc
    if op is UnOp.FLOOR:
        import math

        return math.floor(_as_number(v, "floor"))
    raise EvalError(f"unknown unary operator {op}")


def apply_binop(op: BinOp, v1: Value, v2: Value) -> Value:
    """Apply a binary operator to concrete values."""
    if op is BinOp.ADD:
        return _norm_num(_as_number(v1, "+") + _as_number(v2, "+"))
    if op is BinOp.SUB:
        return _norm_num(_as_number(v1, "-") - _as_number(v2, "-"))
    if op is BinOp.MUL:
        return _norm_num(_as_number(v1, "*") * _as_number(v2, "*"))
    if op is BinOp.DIV:
        d = _as_number(v2, "/")
        if d == 0:
            raise EvalError("/: division by zero")
        n = _as_number(v1, "/")
        if isinstance(n, int) and isinstance(d, int) and n % d == 0:
            return n // d
        return _norm_num(n / d)
    if op is BinOp.MOD:
        d = _as_int(v2, "%")
        if d == 0:
            raise EvalError("%: modulo by zero")
        return _as_int(v1, "%") % d
    if op is BinOp.EQ:
        return values_equal(v1, v2)
    if op is BinOp.LT:
        return _compare(v1, v2, "<") < 0
    if op is BinOp.LEQ:
        return _compare(v1, v2, "<=") <= 0
    if op is BinOp.AND:
        return _as_bool(v1, "and") and _as_bool(v2, "and")
    if op is BinOp.OR:
        return _as_bool(v1, "or") or _as_bool(v2, "or")
    if op is BinOp.SCONCAT:
        return _as_str(v1, "s++") + _as_str(v2, "s++")
    if op is BinOp.SNTH:
        s = _as_str(v1, "s-nth")
        i = _as_int(v2, "s-nth")
        if not 0 <= i < len(s):
            raise EvalError(f"s-nth: index {i} out of range for {s!r}")
        return s[i]
    if op is BinOp.LCONCAT:
        return _as_list(v1, "l++") + _as_list(v2, "l++")
    if op is BinOp.LNTH:
        items = _as_list(v1, "l-nth")
        i = _as_int(v2, "l-nth")
        if not 0 <= i < len(items):
            raise EvalError(f"l-nth: index {i} out of range (len {len(items)})")
        return items[i]
    if op is BinOp.LCONS:
        return (v1,) + _as_list(v2, "l-cons")
    if op is BinOp.MIN:
        return min(_as_number(v1, "min"), _as_number(v2, "min"))
    if op is BinOp.MAX:
        return max(_as_number(v1, "max"), _as_number(v2, "max"))
    raise EvalError(f"unknown binary operator {op}")


def _compare(v1: Value, v2: Value, op: str) -> int:
    """Three-way comparison; numbers with numbers, strings with strings."""
    if (
        isinstance(v1, (int, float))
        and not isinstance(v1, bool)
        and isinstance(v2, (int, float))
        and not isinstance(v2, bool)
    ):
        return (v1 > v2) - (v1 < v2)
    if isinstance(v1, str) and isinstance(v2, str):
        return (v1 > v2) - (v1 < v2)
    raise EvalError(f"{op}: values {v1!r} and {v2!r} are not comparable")


def evaluate(
    e: Expr,
    pvar_env: Optional[Mapping[str, Value]] = None,
    lvar_env: Optional[Mapping[str, Value]] = None,
) -> Value:
    """Evaluate an expression to a concrete value.

    ``pvar_env`` supplies program-variable bindings (the concrete store ρ);
    ``lvar_env`` supplies logical-variable bindings (the logical
    environment ε).  An unbound variable raises :class:`EvalError`.
    """
    if isinstance(e, Lit):
        return e.value
    if isinstance(e, PVar):
        if pvar_env is None or e.name not in pvar_env:
            raise EvalError(f"unbound program variable {e.name}")
        return pvar_env[e.name]
    if isinstance(e, LVar):
        if lvar_env is None or e.name not in lvar_env:
            raise EvalError(f"unbound logical variable #{e.name}")
        return lvar_env[e.name]
    if isinstance(e, UnOpExpr):
        return apply_unop(e.op, evaluate(e.operand, pvar_env, lvar_env))
    if isinstance(e, BinOpExpr):
        # Short-circuit booleans so guards like ``i < len and nth(l, i)``
        # evaluate as target languages expect.
        if e.op is BinOp.AND:
            left = evaluate(e.left, pvar_env, lvar_env)
            if left is False:
                return False
            return apply_binop(
                BinOp.AND, left, evaluate(e.right, pvar_env, lvar_env)
            )
        if e.op is BinOp.OR:
            left = evaluate(e.left, pvar_env, lvar_env)
            if left is True:
                return True
            return apply_binop(
                BinOp.OR, left, evaluate(e.right, pvar_env, lvar_env)
            )
        return apply_binop(
            e.op,
            evaluate(e.left, pvar_env, lvar_env),
            evaluate(e.right, pvar_env, lvar_env),
        )
    if isinstance(e, EList):
        return tuple(evaluate(item, pvar_env, lvar_env) for item in e.items)
    raise EvalError(f"not an expression: {e!r}")
