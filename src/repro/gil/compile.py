"""Compilation of GIL procedures to pre-resolved step closures.

The tree-walking interpreter in :mod:`repro.gil.semantics` re-discovers
the same facts on every step: which command class sits at an index (an
``isinstance`` chain), which procedure a static callee names, and the
shape of every expression it evaluates.  This module lowers each
:class:`~repro.gil.syntax.Proc` once into an array of step closures —
one per command — with all of that resolved at compile time:

* command-kind dispatch becomes an array index (no ``isinstance`` chain);
* ``goto``/``if-goto`` targets and fall-through indices are baked into
  the closures as integers;
* static callees (``Lit`` string callee expressions) are resolved to
  their procedure, parameter list, and even their arity/unknown-procedure
  error messages at compile time;
* expression trees are lowered to evaluator closures: under a
  :class:`~repro.state.symbolic.SymbolicStateModel` they build the
  substituted-and-simplified expression bottom-up by applying the
  simplifier's node rules over already-simplified store values (store
  values are read through ``Simplifier.simplify``, a memoised O(1) hit,
  so the result is bit-identical to ``simplify(substitute_pvars(e, ρ))``
  without re-walking the whole substituted tree); under a
  :class:`~repro.state.concrete.ConcreteStateModel` they mirror
  :func:`repro.gil.ops.evaluate` exactly, including short-circuit
  evaluation and error messages.

Compiled closures are **shared across state-model instances**.  The test
harness builds a fresh state model (fresh solver, fresh allocator) per
symbolic test over the same program, so per-instance compilation would
dominate short tests.  Instead each program carries a per-mode table of
compiled commands (cached on the ``Prog`` object, excluded from
pickling); commands whose semantics touch only the *state* — assignment,
goto, call, return, fail — compile to instance-independent closures
built over ``SymbolicState.bind``/``with_store`` (which is what the two
stock state models' ``set_var``/``set_store`` do), while the four
commands that genuinely need the model — ``ifgoto`` (``branch_on``),
action calls, ``uSym``/``iSym`` (the allocator) — compile to *binders*
that a per-instance :class:`CompiledProg` resolves with one closure
creation each.  Symbolic expression closures evaluate through a shared
:class:`~repro.logic.simplify.Simplifier` (one per ``(enabled,
memoise)`` flavour): simplification is pure, so sharing the memo between
instances changes no result.

A **concrete fast lane** rides on top for symbolic execution: a command
whose operand program variables are all bound to literals is, for that
step, concrete — it can execute through a specialized concrete evaluator
that never touches :mod:`repro.logic` (no expression interning, no
path-condition chaining, no solver contexts), even on a path whose
condition is non-empty, because the commands the lane covers never
consult π and every constructor it uses carries π through unchanged.  A
compile-time gate (:func:`_fast_gate`) probes exactly the store entries
each command reads and bails to the slow lane on the first non-literal;
fast-lane closures additionally bail (returning None) whenever concrete
evaluation raises :class:`~repro.gil.ops.EvalError`, because the
symbolic evaluator would *not* error there (it leaves the expression
stuck).  The driver then re-runs the command through the slow closure,
so results stay bit-identical to the interpreter in every case.

The compiled pipeline is behaviour-preserving by construction: the fuzz
suite (``tests/engine/test_fuzz_differential.py``) runs every seeded
program under both pipelines and asserts identical finals and stats, and
``semantics.step`` stays in the tree as the differential oracle.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Callable, Dict, List, Optional, Tuple

from repro.gil.ops import EvalError, apply_binop, apply_unop
from repro.gil.semantics import (
    Config,
    Final,
    GilRuntimeError,
    InnerFrame,
    OutcomeKind,
    TopFrame,
    _resolve_proc_name,
)
from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Prog,
    Return,
    USym,
    Vanish,
)
from repro.logic.expr import (
    BinOp,
    BinOpExpr,
    EList,
    Expr,
    Lit,
    LVar,
    PVar,
    UnOpExpr,
    walk,
)
from repro.state.interface import StateErr, StateOk

_ERROR = OutcomeKind.ERROR
_NORMAL = OutcomeKind.NORMAL
_VANISH = OutcomeKind.VANISH

#: shared empty successor/final containers (closures never mutate them)
_NO_CONFIGS: tuple = ()
_NO_FINALS: tuple = ()

#: attribute on ``Prog`` holding the per-mode shared tables (set lazily;
#: ``Prog.__reduce__`` keeps it off the pickle wire)
_TABLE_ATTR = "_compiled_tables"


class _NotConcrete(Exception):
    """A fast-lane evaluation met something only the symbolic evaluator
    handles (a logical variable, or an operator application the
    simplifier would leave stuck instead of raising)."""


#: exceptions on which a fast-lane closure abandons the concrete attempt
_BAIL = (EvalError, _NotConcrete)


def _has_pvar(e: Expr) -> bool:
    return any(type(n) is PVar for n in walk(e))


def _fast_gate(exprs, closure):
    """Wrap a fast-lane closure with a cheap compile-time-derived guard.

    The closure itself bails on a non-literal operand by raising through
    ``read_lit`` — correct, but a Python exception per bail is costly on
    symbolic-heavy paths where most steps bail.  The operand program
    variables are known at compile time, so probe them in the store
    first and return None (bail) without entering the closure.  An
    expression containing a logical variable can never evaluate
    concretely, so its command gets no fast lane at all; an unbound or
    non-literal variable bails exactly where the in-closure ``EvalError``
    / ``_NotConcrete`` raise would have.
    """
    names: list = []
    seen: set = set()
    for e in exprs:
        if not isinstance(e, Expr):
            return None
        for node in walk(e):
            if type(node) is LVar:
                return None
            if type(node) is PVar and node.name not in seen:
                seen.add(node.name)
                names.append(node.name)
    if not names:
        return closure
    if len(names) == 1:
        name = names[0]

        def gated1(state, stack):
            if type(state.store.get(name)) is not Lit:
                return None
            return closure(state, stack)

        return gated1
    name_tuple = tuple(names)

    def gated(state, stack):
        store = state.store
        for n in name_tuple:
            if type(store.get(n)) is not Lit:
                return None
        return closure(state, stack)

    return gated


# ---------------------------------------------------------------------------
# shared simplifiers
# ---------------------------------------------------------------------------

def _shared_simplifier(enabled: bool, memoise: bool):
    """The process-wide simplifier for one ``(enabled, memoise)`` flavour.

    Simplification is pure, so evaluating through a shared instance (and
    sharing its memo across state models) yields bit-identical
    expressions to each model's own simplifier while letting compiled
    expression closures be compiled once per program.
    """
    from repro.logic.simplify import shared_simplifier

    return shared_simplifier(enabled, memoise)


# ---------------------------------------------------------------------------
# expression lowering
# ---------------------------------------------------------------------------

def compile_symbolic_expr(e: Expr, simplifier) -> Callable:
    """Lower ``e`` to ``closure(store) -> Expr`` equal to
    ``simplifier.simplify(substitute_pvars(e, store))``.

    Correctness rests on two facts: hash-consing makes substitution the
    identity on PVar-free subtrees, and the simplifier is compositional —
    ``simplify`` of a node is its node rule applied to its simplified
    children.  Store values are therefore read through ``simplify``
    (memoised: O(1) after first sight), and each constructed node goes
    through the same node rule the recursive walk would apply.
    """
    if not simplifier.enabled:
        return _compile_subst_expr(e)
    closure, _has = _compile_sym(e, simplifier)
    return closure


def _fold_const(e: Expr, simplifier) -> Callable:
    """Fold a PVar-free subtree at compile time.  A malformed node must
    keep failing lazily (the interpreter only raises when the command
    actually executes), hence the guard."""
    try:
        value = simplifier.simplify(e)
    except TypeError as exc:
        return _raiser(TypeError(str(exc)))
    return lambda store: value


def _compile_sym(e: Expr, simplifier) -> Tuple[Callable, bool]:
    """(closure, subtree-reads-a-PVar), computed in one bottom-up pass
    (checking ``_has_pvar`` per recursion level would be quadratic)."""
    kind = type(e)
    if kind is PVar:
        name = e.name
        simplify = simplifier.simplify
        return (lambda store: simplify(store[name])), True
    if kind is UnOpExpr:
        operand, has = _compile_sym(e.operand, simplifier)
        if not has:
            return _fold_const(e, simplifier), False
        op = e.op
        node = simplifier._simplify_unop
        return (lambda store: node(op, operand(store))), True
    if kind is BinOpExpr:
        left, has_l = _compile_sym(e.left, simplifier)
        right, has_r = _compile_sym(e.right, simplifier)
        if not (has_l or has_r):
            return _fold_const(e, simplifier), False
        op = e.op
        node = simplifier._simplify_binop
        return (lambda store: node(op, left(store), right(store))), True
    if kind is EList:
        pairs = [_compile_sym(item, simplifier) for item in e.items]
        if not any(has for _f, has in pairs):
            return _fold_const(e, simplifier), False
        items = [f for f, _has in pairs]

        def run_elist(store):
            vs = tuple(f(store) for f in items)
            for v in vs:
                if type(v) is not Lit:
                    return EList(vs)
            return Lit(tuple(v.value for v in vs))

        return run_elist, True
    if kind is Lit or kind is LVar:
        return _fold_const(e, simplifier), False
    return _raiser(TypeError(f"not an expression: {e!r}")), True


def memoise_symbolic_expr(e: Expr, closure: Callable) -> Callable:
    """Memoise a symbolic expression closure on the store values it reads.

    Sibling paths re-evaluate the same command expressions over stores
    that differ only in unrelated variables; keying the result on exactly
    the values the expression reads makes every such re-evaluation one
    dict probe.  Keys are interned-node *identities* (hash-consing makes
    equal store values the same object, and the intern tables keep them
    alive forever, so ``id`` is stable) — structural equality would be
    wrong here because ``Lit(1) == Lit(1.0)`` while simplification may
    distinguish them.  Unbound variables raise the same ``KeyError`` the
    substitution walk raises, on the same first missing name.
    """
    names: List[str] = []
    seen: set = set()
    for n in walk(e):
        if type(n) is PVar and n.name not in seen:
            seen.add(n.name)
            names.append(n.name)
    if not names:
        return closure
    cache: dict = {}
    if len(names) == 1:
        name = names[0]

        def run_memo1(store):
            key = id(store[name])
            found = cache.get(key)
            if found is None:
                found = cache[key] = closure(store)
            return found

        return run_memo1

    def run_memo(store):
        key = tuple(id(store[name]) for name in names)
        found = cache.get(key)
        if found is None:
            found = cache[key] = closure(store)
        return found

    return run_memo


def _compile_subst_expr(e: Expr) -> Callable:
    """Substitution only (simplifier disabled): closure equal to
    ``substitute_pvars(e, store)``."""
    kind = type(e)
    if kind is PVar:
        name = e.name
        return lambda store: store[name]
    if kind is Lit or kind is LVar:
        return lambda store: e
    if kind is UnOpExpr:
        op = e.op
        operand = _compile_subst_expr(e.operand)
        return lambda store: UnOpExpr(op, operand(store))
    if kind is BinOpExpr:
        op = e.op
        left = _compile_subst_expr(e.left)
        right = _compile_subst_expr(e.right)
        return lambda store: BinOpExpr(op, left(store), right(store))
    if kind is EList:
        items = [_compile_subst_expr(item) for item in e.items]
        return lambda store: EList(tuple(f(store) for f in items))
    return _raiser(TypeError(f"not an expression: {e!r}"))


def compile_concrete_expr(e: Expr, unwrap: bool) -> Callable:
    """Lower ``e`` to ``closure(store) -> Value`` mirroring
    :func:`repro.gil.ops.evaluate` exactly — same evaluation order, same
    short-circuiting, same error messages.

    ``unwrap=False`` targets a concrete store (values held raw);
    ``unwrap=True`` targets the fast lane over a symbolic store whose
    values are all ``Lit`` (read ``.value``, and treat logical variables
    as a bail-out instead of an unbound-variable error).
    """
    kind = type(e)
    if kind is Lit:
        value = e.value
        return lambda store: value
    if kind is PVar:
        name = e.name
        if unwrap:
            def read_lit(store):
                v = store[name]
                if type(v) is not Lit:
                    raise _NotConcrete(name)
                return v.value
            return read_lit

        def read(store):
            try:
                return store[name]
            except KeyError:
                raise EvalError(
                    f"unbound program variable {name}"
                ) from None
        return read
    if kind is LVar:
        if unwrap:
            return _raiser(_NotConcrete(e.name))
        return _raiser(EvalError(f"unbound logical variable #{e.name}"))
    if kind is UnOpExpr:
        op = e.op
        operand = compile_concrete_expr(e.operand, unwrap)
        return lambda store: apply_unop(op, operand(store))
    if kind is BinOpExpr:
        op = e.op
        left = compile_concrete_expr(e.left, unwrap)
        right = compile_concrete_expr(e.right, unwrap)
        if op is BinOp.AND:
            def run_and(store):
                lv = left(store)
                if lv is False:
                    return False
                return apply_binop(BinOp.AND, lv, right(store))
            return run_and
        if op is BinOp.OR:
            def run_or(store):
                lv = left(store)
                if lv is True:
                    return True
                return apply_binop(BinOp.OR, lv, right(store))
            return run_or
        return lambda store: apply_binop(op, left(store), right(store))
    if kind is EList:
        items = [compile_concrete_expr(item, unwrap) for item in e.items]
        return lambda store: tuple(f(store) for f in items)
    return _raiser(EvalError(f"not an expression: {e!r}"))


def _raiser(exc: Exception) -> Callable:
    def run(store):
        raise exc
    return run


# ---------------------------------------------------------------------------
# command lowering (shared layer)
# ---------------------------------------------------------------------------

#: a compiled command: exactly one of ``slow`` (instance-independent
#: closure) / ``binder`` (``binder(sm) -> closure``) is set, plus an
#: optional fast-lane closure (always instance-independent)
_Entry = Tuple[Optional[Callable], Optional[Callable], Optional[Callable]]


class _ProcCompiler:
    """Lowers one program's commands for one execution mode.

    ``symbolic`` selects the expression compilers and the state
    constructor; ``simplifier`` is the shared flavour-matched simplifier
    (None in concrete mode).  The compiler itself holds no state-model
    reference — everything instance-specific is deferred to binders.
    """

    def __init__(self, prog: Prog, symbolic: bool, simplifier) -> None:
        self.prog = prog
        self.symbolic = symbolic
        self.simplifier = simplifier
        if symbolic:
            from repro.state.symbolic import SymbolicState

            def rebuild(state, store_dict):
                return SymbolicState(
                    state.memory,
                    MappingProxyType(store_dict),
                    state.alloc,
                    state.pc,
                )
        else:
            from repro.state.concrete import ConcreteState

            def rebuild(state, store_dict):
                return ConcreteState(
                    state.memory, MappingProxyType(store_dict), state.alloc
                )

        # state.with_store minus one defensive dict copy (callers below
        # always hand over a fresh private dict)
        self._set_store = rebuild

    def _ev(self, e):
        """The slow-lane evaluator closure for ``e`` (mode-appropriate)."""
        if not isinstance(e, Expr):
            # semantics would hand this to eval_expr and fail there; keep
            # the failure shape (TypeError for the symbolic walker,
            # EvalError for the concrete one) at evaluation time.
            if self.symbolic:
                return _raiser(TypeError(f"not an expression: {e!r}"))
            return _raiser(EvalError(f"not an expression: {e!r}"))
        if self.symbolic:
            closure = compile_symbolic_expr(e, self.simplifier)
            if self.simplifier.memoise:
                closure = memoise_symbolic_expr(e, closure)
            return closure
        return compile_concrete_expr(e, unwrap=False)

    def _fast_ev(self, e):
        """The fast-lane evaluator (symbolic stores of literals)."""
        if not isinstance(e, Expr):
            return _raiser(_NotConcrete(repr(e)))
        return compile_concrete_expr(e, unwrap=True)

    def compile_proc(self, name: str) -> List[_Entry]:
        proc = self.prog.get(name)
        if proc is None:
            raise GilRuntimeError(f"unknown procedure {name!r}")
        return [
            self.compile_command(cmd, idx) for idx, cmd in enumerate(proc.body)
        ]

    # -- per-command lowering -----------------------------------------------

    def compile_command(self, cmd, idx: int) -> _Entry:
        kind = type(cmd)
        nxt = idx + 1

        if kind is Assignment:
            ev = self._ev(cmd.expr)
            target = cmd.target

            def slow_assign(state, stack):
                return (
                    (Config(state.bind(target, ev(state.store)), stack, nxt),),
                    _NO_FINALS,
                )

            fast = None
            if self.symbolic:
                fev = self._fast_ev(cmd.expr)

                def fast_assign(state, stack):
                    try:
                        v = fev(state.store)
                    except _BAIL:
                        return None
                    return (
                        (Config(state.bind(target, Lit(v)), stack, nxt),),
                        _NO_FINALS,
                    )

                fast = _fast_gate((cmd.expr,), fast_assign)
            return slow_assign, None, fast

        if kind is Goto:
            target = cmd.target

            def slow_goto(state, stack):
                return (Config(state, stack, target),), _NO_FINALS

            return slow_goto, None, None

        if kind is IfGoto:
            ev = self._ev(cmd.condition)
            target = cmd.target

            def bind_ifgoto(sm):
                branch_on = sm.branch_on

                def slow_ifgoto(state, stack):
                    configs = []
                    for st, taken in branch_on(state, ev(state.store)):
                        configs.append(
                            Config(st, stack, target if taken else nxt)
                        )
                    return configs, _NO_FINALS

                return slow_ifgoto

            fast = None
            if self.symbolic:
                fev = self._fast_ev(cmd.condition)

                def fast_ifgoto(state, stack):
                    try:
                        c = fev(state.store)
                    except _BAIL:
                        return None
                    if c is True:
                        return (Config(state, stack, target),), _NO_FINALS
                    if c is False:
                        return (Config(state, stack, nxt),), _NO_FINALS
                    return None

                fast = _fast_gate((cmd.condition,), fast_ifgoto)
            return None, bind_ifgoto, fast

        if kind is Call:
            return self._compile_call(cmd, idx)

        if kind is Return:
            ev = self._ev(cmd.expr)
            set_store = self._set_store

            def slow_return(state, stack):
                v = ev(state.store)
                top = stack[-1]
                if type(top) is TopFrame:
                    return _NO_CONFIGS, (Final(state, _NORMAL, v),)
                store = dict(top.saved_store)
                store[top.ret_var] = v
                return (
                    (Config(set_store(state, store), stack[:-1], top.ret_idx),),
                    _NO_FINALS,
                )

            fast = None
            if self.symbolic:
                fev = self._fast_ev(cmd.expr)

                def fast_return(state, stack):
                    try:
                        v = fev(state.store)
                    except _BAIL:
                        return None
                    top = stack[-1]
                    if type(top) is TopFrame:
                        return _NO_CONFIGS, (Final(state, _NORMAL, Lit(v)),)
                    store = dict(top.saved_store)
                    store[top.ret_var] = Lit(v)
                    return (
                        (
                            Config(
                                set_store(state, store), stack[:-1], top.ret_idx
                            ),
                        ),
                        _NO_FINALS,
                    )

                fast = _fast_gate((cmd.expr,), fast_return)
            return slow_return, None, fast

        if kind is Fail:
            ev = self._ev(cmd.expr)

            def slow_fail(state, stack):
                return _NO_CONFIGS, (Final(state, _ERROR, ev(state.store)),)

            fast = None
            if self.symbolic:
                fev = self._fast_ev(cmd.expr)

                def fast_fail(state, stack):
                    try:
                        v = fev(state.store)
                    except _BAIL:
                        return None
                    return _NO_CONFIGS, (Final(state, _ERROR, Lit(v)),)

                fast = _fast_gate((cmd.expr,), fast_fail)
            return slow_fail, None, fast

        if kind is Vanish:
            def slow_vanish(state, stack):
                return _NO_CONFIGS, (Final(state, _VANISH, None),)

            return slow_vanish, None, None

        if kind is ActionCall:
            ev = self._ev(cmd.arg)
            action = cmd.action
            target = cmd.target

            def bind_action(sm):
                execute_action = sm.execute_action

                def slow_action(state, stack):
                    arg = ev(state.store)
                    configs: List[Config] = []
                    finals: List[Final] = []
                    for branch in execute_action(state, action, arg):
                        cls = type(branch)
                        if cls is StateOk:
                            configs.append(
                                Config(
                                    branch.state.bind(target, branch.value),
                                    stack,
                                    nxt,
                                )
                            )
                        elif cls is StateErr:
                            finals.append(
                                Final(branch.state, _ERROR, branch.value)
                            )
                        else:  # pragma: no cover - defensive
                            raise GilRuntimeError(f"bad action branch {branch!r}")
                    return configs, finals

                return slow_action

            return None, bind_action, None

        if kind is USym:
            target = cmd.target
            site = cmd.site

            def bind_usym(sm):
                fresh_usym = sm.fresh_usym

                def slow_usym(state, stack):
                    state, sym = fresh_usym(state, site)
                    return (
                        (Config(state.bind(target, sym), stack, nxt),),
                        _NO_FINALS,
                    )

                return slow_usym

            return None, bind_usym, None

        if kind is ISym:
            target = cmd.target
            site = cmd.site

            def bind_isym(sm):
                fresh_isym = sm.fresh_isym

                def slow_isym(state, stack):
                    state, val = fresh_isym(state, site)
                    return (
                        (Config(state.bind(target, val), stack, nxt),),
                        _NO_FINALS,
                    )

                return slow_isym

            return None, bind_isym, None

        def slow_unknown(state, stack):
            raise GilRuntimeError(f"unknown command {cmd!r}")

        return slow_unknown, None, None

    def _compile_call(self, cmd: Call, idx: int) -> _Entry:
        nxt = idx + 1
        set_store = self._set_store
        arg_evs = [self._ev(a) for a in cmd.args]

        static_name: Optional[str] = None
        static_error: Optional[str] = None
        callee = cmd.callee
        if isinstance(callee, Lit):
            # eval_expr of a literal is the literal (symbolic) or its value
            # (concrete); resolve the callee once at compile time.
            if isinstance(callee.value, str):
                static_name = callee.value
            else:
                shown = callee if self.symbolic else callee.value
                static_error = f"call: not a procedure name: {shown!r}"

        if static_error is not None:
            msg = static_error

            def slow_bad_callee(state, stack):
                return _NO_CONFIGS, (Final(state, _ERROR, msg),)

            return slow_bad_callee, None, None

        if static_name is not None:
            proc = self.prog.get(static_name)
            if proc is None:
                msg = f"call to unknown procedure {static_name!r}"

                def slow_unknown_proc(state, stack):
                    return _NO_CONFIGS, (Final(state, _ERROR, msg),)

                return slow_unknown_proc, None, None
            params = proc.params
            if len(cmd.args) != len(params):
                # Arguments still evaluate first (an eval error outranks
                # the arity error, exactly as the interpreter orders it).
                msg = (
                    f"{static_name}: arity mismatch "
                    f"({len(cmd.args)} args for {len(params)} params)"
                )

                def slow_bad_arity(state, stack):
                    for ev in arg_evs:
                        ev(state.store)
                    return _NO_CONFIGS, (Final(state, _ERROR, msg),)

                return slow_bad_arity, None, None

            name = static_name
            ret_var = cmd.target

            def slow_call(state, stack):
                store = state.store
                new_store = {}
                for p, ev in zip(params, arg_evs):
                    new_store[p] = ev(store)
                frame = InnerFrame(name, ret_var, tuple(store.items()), nxt)
                return (
                    (Config(set_store(state, new_store), stack + (frame,), 0),),
                    _NO_FINALS,
                )

            fast = None
            if self.symbolic:
                fast_arg_evs = [self._fast_ev(a) for a in cmd.args]

                def fast_call(state, stack):
                    store = state.store
                    new_store = {}
                    try:
                        for p, fev in zip(params, fast_arg_evs):
                            new_store[p] = Lit(fev(store))
                    except _BAIL:
                        return None
                    frame = InnerFrame(name, ret_var, tuple(store.items()), nxt)
                    return (
                        (
                            Config(
                                set_store(state, new_store), stack + (frame,), 0
                            ),
                        ),
                        _NO_FINALS,
                    )

                fast = _fast_gate(tuple(cmd.args), fast_call)
            return slow_call, None, fast

        # Dynamic callee: resolve at run time, mirroring the interpreter.
        callee_ev = self._ev(callee)
        prog = self.prog
        ret_var = cmd.target

        def slow_dynamic_call(state, stack):
            value = callee_ev(state.store)
            try:
                proc_name = _resolve_proc_name(value)
            except GilRuntimeError:
                return _NO_CONFIGS, (
                    Final(
                        state, _ERROR, f"call: not a procedure name: {value!r}"
                    ),
                )
            proc = prog.get(proc_name)
            if proc is None:
                return _NO_CONFIGS, (
                    Final(
                        state, _ERROR, f"call to unknown procedure {proc_name!r}"
                    ),
                )
            store = state.store
            args = [ev(store) for ev in arg_evs]
            if len(args) != len(proc.params):
                return _NO_CONFIGS, (
                    Final(
                        state,
                        _ERROR,
                        f"{proc_name}: arity mismatch "
                        f"({len(args)} args for {len(proc.params)} params)",
                    ),
                )
            frame = InnerFrame(proc_name, ret_var, tuple(store.items()), nxt)
            return (
                (
                    Config(
                        set_store(state, dict(zip(proc.params, args))),
                        stack + (frame,),
                        0,
                    ),
                ),
                _NO_FINALS,
            )

        return slow_dynamic_call, None, None


class _SharedTable:
    """Per-``(Prog, mode)`` compiled commands, shared across instances.

    Commands compile lazily and *individually* on first execution: a
    procedure's error-handling arms, unreachable branches, and anything
    a short test never steps through stay uncompiled.  Eager whole-proc
    compilation measurably dominates suites of short symbolic tests
    (hundreds of commands lowered per program, a fraction executed)."""

    def __init__(self, prog: Prog, symbolic: bool, simplifier) -> None:
        self._compiler = _ProcCompiler(prog, symbolic, simplifier)
        #: per proc: the command list and a same-length entry cache
        self._procs: Dict[str, Tuple[tuple, List[Optional[_Entry]]]] = {}

    def slots(self, name: str) -> Tuple[tuple, List[Optional[_Entry]]]:
        found = self._procs.get(name)
        if found is None:
            proc = self._compiler.prog.get(name)
            if proc is None:
                raise GilRuntimeError(f"unknown procedure {name!r}")
            body = tuple(proc.body)
            found = self._procs[name] = (body, [None] * len(body))
        return found

    def entry(self, name: str, idx: int) -> _Entry:
        body, entries = self.slots(name)
        e = entries[idx]
        if e is None:
            e = entries[idx] = self._compiler.compile_command(body[idx], idx)
        return e


def _shared_table(prog: Prog, sm, symbolic: bool) -> _SharedTable:
    tables = getattr(prog, _TABLE_ATTR, None)
    if tables is None:
        tables = {}
        setattr(prog, _TABLE_ATTR, tables)
    if symbolic:
        flavour = sm.simplifier
        key = ("sym", flavour.enabled, flavour.memoise)
        simplifier = _shared_simplifier(flavour.enabled, flavour.memoise)
    else:
        key = ("conc",)
        simplifier = None
    table = tables.get(key)
    if table is None:
        table = _SharedTable(prog, symbolic, simplifier)
        tables[key] = table
    return table


# ---------------------------------------------------------------------------
# the compiled program
# ---------------------------------------------------------------------------

class CompiledProg:
    """A program lowered to per-procedure step-closure arrays, bound to
    one state model.

    Commands compile lazily on first execution (short runs touching a
    fraction of a program's commands never pay for the rest) into the
    program's shared per-mode table; binding a command to this
    instance's state model costs one closure for ``ifgoto``/action/
    symbol commands and nothing for the rest.
    """

    def __init__(self, prog: Prog, sm) -> None:
        from repro.state.symbolic import SymbolicStateModel

        self.prog = prog
        self.sm = sm
        self.symbolic = type(sm) is SymbolicStateModel
        #: commands executed through the concrete fast lane
        self.fast_steps = 0
        self._table = _shared_table(prog, sm, self.symbolic)
        self._slow: Dict[str, list] = {}
        self._fast: Dict[str, list] = {}
        # Optional summary engine (attach_summaries): compiled closures
        # are shared across instances, so call-site interception lives
        # here, per instance, keyed by a lazily-built idx -> Call map.
        self._summaries = None
        self._call_cmds: Dict[str, dict] = {}

    def attach_summaries(self, engine) -> None:
        """Route ``Call`` commands through a summary engine first.

        Mirrors the interpreter's ``step(..., summaries=...)`` parameter:
        a ``Call`` the engine can answer returns its replayed successors;
        ``None`` falls through to the ordinary compiled closure.
        """
        self._summaries = engine

    def _index_calls(self, name: str) -> dict:
        """The ``idx -> Call`` map of one procedure (built on first use)."""
        proc = self.prog.get(name)
        calls = (
            {i: c for i, c in enumerate(proc.body) if isinstance(c, Call)}
            if proc is not None
            else {}
        )
        self._call_cmds[name] = calls
        return calls

    def _bind_proc(self, name: str) -> list:
        # Same-length slot arrays; commands compile and bind on first
        # execution (see _SharedTable) — a slot stays None until then.
        _body, entries = self._table.slots(name)
        slow: list = [None] * len(entries)
        self._slow[name] = slow
        self._fast[name] = [None] * len(entries)
        return slow

    def _bind_at(self, name: str, idx: int):
        direct, binder, f = self._table.entry(name, idx)
        run_slow = direct if direct is not None else binder(self.sm)
        self._slow[name][idx] = run_slow
        self._fast[name][idx] = f
        return run_slow

    def step(self, cfg: Config) -> Tuple[tuple, tuple]:
        """One transition, mirroring :func:`repro.gil.semantics.step`."""
        stack = cfg.stack
        proc = stack[-1].proc
        slow = self._slow.get(proc)
        if slow is None:
            slow = self._bind_proc(proc)
        idx = cfg.idx
        if not 0 <= idx < len(slow):
            raise GilRuntimeError(f"{proc}: no command at index {idx}")
        run_slow = slow[idx]
        if run_slow is None:
            run_slow = self._bind_at(proc, idx)
        state = cfg.state
        summaries = self._summaries
        if summaries is not None:
            calls = self._call_cmds.get(proc)
            if calls is None:
                calls = self._index_calls(proc)
            cmd = calls.get(idx)
            if cmd is not None:
                served = summaries.try_call(state, stack, idx, cmd)
                if served is not None:
                    return served
        try:
            if self.symbolic:
                # Concrete fast lane: try the specialized closure first.
                # It reads store values through ``read_lit`` and bails
                # (returns None) the moment any operand is non-literal,
                # so no up-front store scan or empty-pc requirement is
                # needed — commands the lane covers never consult π, and
                # every state constructor it uses carries π through
                # unchanged.  Guards that concretely decide to True/False
                # match ``branch_on`` exactly because conjoining TRUE is
                # the identity and a FALSE arm is dropped before any
                # solver query.
                run = self._fast[proc][idx]
                if run is not None:
                    result = run(state, stack)
                    if result is not None:
                        self.fast_steps += 1
                        return result
            return run_slow(state, stack)
        except EvalError as exc:
            # An ill-typed concrete evaluation is a TL runtime error.
            return (), (Final(state, _ERROR, f"eval-error: {exc}"),)


def supports(sm) -> bool:
    """Whether ``sm`` is a state model the compiled pipeline covers.

    Only the two stock state models qualify: subclasses (e.g. the
    concolic directed model) may override proper actions in ways the
    pre-bound closures would bypass, so they take the interpreted path.
    """
    from repro.state.concrete import ConcreteStateModel
    from repro.state.symbolic import SymbolicStateModel

    return type(sm) in (SymbolicStateModel, ConcreteStateModel)


def compile_prog(prog: Prog, sm) -> CompiledProg:
    """Lower ``prog`` for execution under ``sm`` (lazily, per procedure)."""
    return CompiledProg(prog, sm)
