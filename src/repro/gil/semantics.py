"""The GIL semantics (paper §2.1, Figure 1).

One parametric interpreter serves both concrete and symbolic execution:
the state model supplies expression evaluation, branching, assumption,
fresh-symbol generation, and memory-action execution, and the interpreter
only wires them to the command forms — exactly the separation of Figure 1,
where every rule is a composition of proper actions.

Transitions relate *configurations* ``⟨σ, cs, i⟩`` and produce *outcomes*:
continuation (more configurations), return ``N(v)``, or error ``E(v)``.
A ``vanish`` yields a :data:`VANISH` final so explorers can report dropped
paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.gil.ops import EvalError
from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Command,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Prog,
    Return,
    USym,
    Vanish,
)
from repro.logic.expr import Lit
from repro.state.interface import StateErr, StateOk


class OutcomeKind(enum.Enum):
    """Kind of a final outcome: normal return, error, or vanish."""

    NORMAL = "N"    # top-level return
    ERROR = "E"     # fail / memory fault / evaluation error
    VANISH = "V"    # silent path termination


@dataclass(frozen=True)
class TopFrame:
    """⟨f⟩ — the frame of the procedure that started execution."""

    proc: str


@dataclass(frozen=True)
class InnerFrame:
    """⟨f, x, ρ, i⟩ — callee name, return variable, caller store, return index."""

    proc: str
    ret_var: str
    saved_store: tuple  # caller store as a tuple of (name, value) pairs
    ret_idx: int


Frame = Union[TopFrame, InnerFrame]


@dataclass(frozen=True)
class Config:
    """A configuration ⟨σ, cs, i⟩."""

    state: object
    stack: Tuple[Frame, ...]
    idx: int

    @property
    def proc(self) -> str:
        return self.stack[-1].proc


@dataclass(frozen=True)
class Final:
    """A finished path: its final state, outcome kind, and outcome value."""

    state: object
    kind: OutcomeKind
    value: object


class GilRuntimeError(Exception):
    """An internal interpreter error (malformed program), not a TL bug."""


def initial_config(state: object, proc: str) -> Config:
    return Config(state, (TopFrame(proc),), 0)


def make_call_config(
    sm, state: object, prog: Prog, proc_name: str, args
) -> Config:
    """Set up the store for a top-level procedure call."""
    proc = prog.get(proc_name)
    if proc is None:
        raise GilRuntimeError(f"unknown procedure {proc_name!r}")
    if len(args) != len(proc.params):
        raise GilRuntimeError(
            f"{proc_name}: expected {len(proc.params)} args, got {len(args)}"
        )
    state = sm.set_store(state, dict(zip(proc.params, args)))
    return initial_config(state, proc_name)


def step(
    prog: Prog, sm, cfg: Config, summaries=None
) -> Tuple[List[Config], List[Final]]:
    """One transition of Figure 1: successor configurations and finals.

    ``summaries`` is an optional :class:`repro.specs.engine.SummaryEngine`;
    when present, ``Call`` commands are first offered to it (replay from a
    recorded summary) and fall back to inline descent when it answers
    ``None``.
    """
    proc = prog.get(cfg.proc)
    if proc is None:
        raise GilRuntimeError(f"unknown procedure {cfg.proc!r}")
    if not 0 <= cfg.idx < len(proc.body):
        raise GilRuntimeError(f"{cfg.proc}: no command at index {cfg.idx}")
    cmd = proc.body[cfg.idx]
    if summaries is not None and isinstance(cmd, Call):
        served = summaries.try_call(cfg.state, cfg.stack, cfg.idx, cmd)
        if served is not None:
            return served
    try:
        return _step_command(prog, sm, cfg, cmd)
    except EvalError as exc:
        # An ill-typed concrete evaluation is a TL runtime error.
        return [], [Final(cfg.state, OutcomeKind.ERROR, f"eval-error: {exc}")]


def _step_command(
    prog: Prog, sm, cfg: Config, cmd: Command
) -> Tuple[List[Config], List[Final]]:
    state, stack, idx = cfg.state, cfg.stack, cfg.idx

    if isinstance(cmd, Assignment):
        value = sm.eval_expr(state, cmd.expr)
        return [Config(sm.set_var(state, cmd.target, value), stack, idx + 1)], []

    if isinstance(cmd, Goto):
        return [Config(state, stack, cmd.target)], []

    if isinstance(cmd, IfGoto):
        cond = sm.eval_expr(state, cmd.condition)
        configs = []
        for st, taken in sm.branch_on(state, cond):
            configs.append(Config(st, stack, cmd.target if taken else idx + 1))
        return configs, []

    if isinstance(cmd, Call):
        callee = sm.eval_expr(state, cmd.callee)
        try:
            proc_name = _resolve_proc_name(callee)
        except GilRuntimeError:
            # Calling a non-procedure value is a TL runtime type error
            # (e.g. JavaScript's "x is not a function").
            return [], [
                Final(
                    state,
                    OutcomeKind.ERROR,
                    f"call: not a procedure name: {callee!r}",
                )
            ]
        proc = prog.get(proc_name)
        if proc is None:
            return [], [
                Final(state, OutcomeKind.ERROR, f"call to unknown procedure {proc_name!r}")
            ]
        args = [sm.eval_expr(state, a) for a in cmd.args]
        if len(args) != len(proc.params):
            return [], [
                Final(
                    state,
                    OutcomeKind.ERROR,
                    f"{proc_name}: arity mismatch "
                    f"({len(args)} args for {len(proc.params)} params)",
                )
            ]
        saved_store = tuple(sm.get_store(state).items())
        new_state = sm.set_store(state, dict(zip(proc.params, args)))
        frame = InnerFrame(proc_name, cmd.target, saved_store, idx + 1)
        return [Config(new_state, stack + (frame,), 0)], []

    if isinstance(cmd, Return):
        value = sm.eval_expr(state, cmd.expr)
        top = stack[-1]
        if isinstance(top, TopFrame):
            return [], [Final(state, OutcomeKind.NORMAL, value)]
        state = sm.set_store(state, dict(top.saved_store))
        state = sm.set_var(state, top.ret_var, value)
        return [Config(state, stack[:-1], top.ret_idx)], []

    if isinstance(cmd, Fail):
        value = sm.eval_expr(state, cmd.expr)
        return [], [Final(state, OutcomeKind.ERROR, value)]

    if isinstance(cmd, Vanish):
        return [], [Final(state, OutcomeKind.VANISH, None)]

    if isinstance(cmd, ActionCall):
        arg = sm.eval_expr(state, cmd.arg)
        configs: List[Config] = []
        finals: List[Final] = []
        for branch in sm.execute_action(state, cmd.action, arg):
            if isinstance(branch, StateOk):
                configs.append(
                    Config(
                        sm.set_var(branch.state, cmd.target, branch.value),
                        stack,
                        idx + 1,
                    )
                )
            elif isinstance(branch, StateErr):
                finals.append(Final(branch.state, OutcomeKind.ERROR, branch.value))
            else:  # pragma: no cover - defensive
                raise GilRuntimeError(f"bad action branch {branch!r}")
        return configs, finals

    if isinstance(cmd, USym):
        state, sym = sm.fresh_usym(state, cmd.site)
        return [Config(sm.set_var(state, cmd.target, sym), stack, idx + 1)], []

    if isinstance(cmd, ISym):
        state, val = sm.fresh_isym(state, cmd.site)
        return [Config(sm.set_var(state, cmd.target, val), stack, idx + 1)], []

    raise GilRuntimeError(f"unknown command {cmd!r}")


def _resolve_proc_name(callee) -> str:
    """The callee of a dynamic call must denote a concrete procedure name."""
    if isinstance(callee, str):
        return callee
    if isinstance(callee, Lit) and isinstance(callee.value, str):
        return callee.value
    raise GilRuntimeError(f"dynamic call: callee {callee!r} is not a procedure name")
