"""A textual format for GIL programs (printer and parser).

The OCaml Gillian ships a ``.gil`` concrete syntax so compiled programs
can be inspected, stored, and re-loaded.  This module provides the same
for the reproduction: :func:`print_prog` renders a program, and
:func:`parse_prog` reads it back; the two round-trip
(``parse_prog(print_prog(p)) == p``).

Format, one command per line, indices implicit:

    proc main(x, y) {
      0: x := (x + 1)
      1: ifgoto (x < y) 3
      2: goto 4
      3: r := lookup([x, "p"])
      4: return r
    }

Values print as in the engine: strings quoted, symbols ``$name``,
logical variables ``#name`` (only in specs), lists bracketed, types
``@Num``-style, ``null``, ``true``/``false``.
"""

from __future__ import annotations

from typing import List

from repro.frontend.lexer import ParseError, TokenStream, tokenize
from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Command,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
    Vanish,
)
from repro.gil.values import NULL, GilType, Null, Symbol, Value
from repro.logic.expr import (
    BinOp,
    BinOpExpr,
    EList,
    Expr,
    Lit,
    LVar,
    PVar,
    UnOp,
    UnOpExpr,
)

# -- printing -------------------------------------------------------------------


def print_value(v: Value) -> str:
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, float) and v.is_integer() and abs(v) < 2**53:
        return str(int(v))
    if isinstance(v, (int, float)):
        return repr(v)
    if isinstance(v, str):
        return '"' + v.replace("\\", "\\\\").replace('"', '\\"') + '"'
    if isinstance(v, Symbol):
        return f"${v.name}"
    if isinstance(v, GilType):
        return f"@{v.name}"
    if isinstance(v, Null):
        return "null"
    if isinstance(v, tuple):
        return "{{" + ", ".join(print_value(item) for item in v) + "}}"
    raise TypeError(f"not a GIL value: {v!r}")


#: Identifier-safe operator spellings for the text format (GIL's internal
#: spellings like ``s++`` do not lex as single tokens).
_UNOP_NAMES = {
    UnOp.NOT: "not", UnOp.NEG: "-", UnOp.TYPEOF: "typeof",
    UnOp.STRLEN: "s_len", UnOp.LSTLEN: "l_len", UnOp.HEAD: "hd",
    UnOp.TAIL: "tl", UnOp.TOSTRING: "num_to_str",
    UnOp.TONUMBER: "str_to_num", UnOp.FLOOR: "floor",
}
_BINOP_NAMES = {
    BinOp.ADD: "+", BinOp.SUB: "-", BinOp.MUL: "*", BinOp.DIV: "/",
    BinOp.MOD: "%", BinOp.EQ: "=", BinOp.LT: "<", BinOp.LEQ: "<=",
    BinOp.AND: "and", BinOp.OR: "or", BinOp.SCONCAT: "s_concat",
    BinOp.SNTH: "s_nth", BinOp.LCONCAT: "l_concat", BinOp.LNTH: "l_nth",
    BinOp.LCONS: "l_cons", BinOp.MIN: "min", BinOp.MAX: "max",
}
_UNOPS_BY_NAME = {name: op for op, name in _UNOP_NAMES.items()}
_BINOPS_BY_NAME = {name: op for op, name in _BINOP_NAMES.items()}


def print_expr(e: Expr) -> str:
    if isinstance(e, Lit):
        return print_value(e.value)
    if isinstance(e, PVar):
        return e.name
    if isinstance(e, LVar):
        return f"#{e.name}"
    if isinstance(e, UnOpExpr):
        # ``(- 1)`` would re-parse as the start of a binary expression
        # over the literal -1; print negated numeric literals directly.
        if (
            e.op is UnOp.NEG
            and isinstance(e.operand, Lit)
            and isinstance(e.operand.value, (int, float))
            and not isinstance(e.operand.value, bool)
        ):
            return print_value(-e.operand.value)
        return f"({_UNOP_NAMES[e.op]}! {print_expr(e.operand)})"
    if isinstance(e, BinOpExpr):
        return (
            f"({print_expr(e.left)} {_BINOP_NAMES[e.op]} {print_expr(e.right)})"
        )
    if isinstance(e, EList):
        return "[" + ", ".join(print_expr(item) for item in e.items) + "]"
    raise TypeError(f"not an expression: {e!r}")


def print_command(cmd: Command) -> str:
    if isinstance(cmd, Assignment):
        return f"{cmd.target} := {print_expr(cmd.expr)}"
    if isinstance(cmd, IfGoto):
        return f"ifgoto {print_expr(cmd.condition)} {cmd.target}"
    if isinstance(cmd, Goto):
        return f"goto {cmd.target}"
    if isinstance(cmd, Call):
        args = ", ".join(print_expr(a) for a in cmd.args)
        return f"{cmd.target} := call {print_expr(cmd.callee)}({args})"
    if isinstance(cmd, Return):
        return f"return {print_expr(cmd.expr)}"
    if isinstance(cmd, Fail):
        return f"fail {print_expr(cmd.expr)}"
    if isinstance(cmd, Vanish):
        return "vanish"
    if isinstance(cmd, ActionCall):
        return f"{cmd.target} := action {cmd.action}({print_expr(cmd.arg)})"
    if isinstance(cmd, USym):
        return f"{cmd.target} := uSym_{cmd.site}"
    if isinstance(cmd, ISym):
        return f"{cmd.target} := iSym_{cmd.site}"
    raise TypeError(f"not a command: {cmd!r}")


def print_proc(proc: Proc) -> str:
    lines = [f"proc {proc.name}({', '.join(proc.params)}) {{"]
    for i, cmd in enumerate(proc.body):
        lines.append(f"  {i}: {print_command(cmd)}")
    lines.append("}")
    return "\n".join(lines)


def print_prog(prog: Prog) -> str:
    return "\n\n".join(print_proc(p) for p in prog.procs.values()) + "\n"


# -- parsing --------------------------------------------------------------------

_PUNCT = [
    ":=", "<=", "{{", "}}", "!",
    "+", "-", "*", "/", "%", "<", "=", "(", ")", "[", "]", "{", "}",
    ",", ":", ";", "#", "$", "@",
]



def parse_prog(text: str) -> Prog:
    ts = TokenStream(tokenize(text, punct=_PUNCT))
    prog = Prog()
    while ts.current.kind != "eof":
        prog.add(_parse_proc(ts))
    return prog


def _parse_proc(ts: TokenStream) -> Proc:
    ts.expect("proc", kind="ident")
    name = ts.expect_kind("ident").text
    ts.expect("(")
    params: List[str] = []
    if not ts.at(")"):
        params.append(ts.expect_kind("ident").text)
        while ts.accept(","):
            params.append(ts.expect_kind("ident").text)
    ts.expect(")")
    ts.expect("{")
    body: List[Command] = []
    while not ts.at("}"):
        idx = int(ts.expect_kind("number").text)
        if idx != len(body):
            raise ParseError(f"command index {idx} out of order", ts.current)
        ts.expect(":")
        body.append(_parse_command(ts))
    ts.expect("}")
    return Proc(name, tuple(params), tuple(body))


def _parse_command(ts: TokenStream) -> Command:
    tok = ts.current
    if ts.accept("ifgoto", kind="ident"):
        cond = _parse_expr(ts)
        target = int(ts.expect_kind("number").text)
        return IfGoto(cond, target)
    if ts.accept("goto", kind="ident"):
        return Goto(int(ts.expect_kind("number").text))
    if ts.accept("return", kind="ident"):
        return Return(_parse_expr(ts))
    if ts.accept("fail", kind="ident"):
        return Fail(_parse_expr(ts))
    if ts.accept("vanish", kind="ident"):
        return Vanish()
    # target := ...
    target = ts.expect_kind("ident").text
    ts.expect(":=")
    if ts.at("call", kind="ident"):
        ts.advance()
        callee = _parse_expr(ts)
        ts.expect("(")
        args: List[Expr] = []
        if not ts.at(")"):
            args.append(_parse_expr(ts))
            while ts.accept(","):
                args.append(_parse_expr(ts))
        ts.expect(")")
        return Call(target, callee, tuple(args))
    if ts.at("action", kind="ident"):
        ts.advance()
        action = ts.expect_kind("ident").text
        ts.expect("(")
        arg = _parse_expr(ts)
        ts.expect(")")
        return ActionCall(target, action, arg)
    tok = ts.current
    if tok.kind == "ident" and tok.text.startswith("uSym_"):
        ts.advance()
        return USym(target, int(tok.text[len("uSym_"):]))
    if tok.kind == "ident" and tok.text.startswith("iSym_"):
        ts.advance()
        return ISym(target, int(tok.text[len("iSym_"):]))
    return Assignment(target, _parse_expr(ts))


def _parse_expr(ts: TokenStream) -> Expr:
    tok = ts.current
    if ts.accept("("):
        # Unary: "(op e)"; binary: "(e op e)".
        first = ts.current
        if (
            first.kind == "ident"
            and first.text in _UNOPS_BY_NAME
            and ts.peek(1).text == "!"
        ):
            ts.advance()
            ts.expect("!")
            operand = _parse_expr(ts)
            ts.expect(")")
            return UnOpExpr(_UNOPS_BY_NAME[first.text], operand)
        if first.kind == "punct" and first.text == "-" and ts.peek(1).text == "!":
            # "(-! e)" is unary negation of a non-literal operand.
            ts.advance()
            ts.expect("!")
            operand = _parse_expr(ts)
            ts.expect(")")
            return UnOpExpr(UnOp.NEG, operand)
        left = _parse_expr(ts)
        op_tok = ts.advance()
        op_text = op_tok.text
        if op_text not in _BINOPS_BY_NAME:
            raise ParseError(f"unknown operator {op_text!r}", op_tok)
        right = _parse_expr(ts)
        ts.expect(")")
        return BinOpExpr(_BINOPS_BY_NAME[op_text], left, right)
    if ts.accept("["):
        items: List[Expr] = []
        if not ts.at("]"):
            items.append(_parse_expr(ts))
            while ts.accept(","):
                items.append(_parse_expr(ts))
        ts.expect("]")
        return EList(tuple(items))
    if ts.accept("#"):
        return LVar(ts.expect_kind("ident").text)
    return Lit(_parse_value(ts)) if _at_value(ts) else PVar(ts.expect_kind("ident").text)


def _at_value(ts: TokenStream) -> bool:
    tok = ts.current
    if tok.kind in ("number", "string"):
        return True
    if tok.kind == "punct" and tok.text in ("$", "@", "{{", "-"):
        return True
    return tok.kind == "ident" and tok.text in ("true", "false", "null")


def _parse_value(ts: TokenStream) -> Value:
    tok = ts.current
    if tok.kind == "number":
        ts.advance()
        return tok.number_value
    if tok.kind == "punct" and tok.text == "-":
        ts.advance()
        inner = _parse_value(ts)
        return -inner
    if tok.kind == "string":
        ts.advance()
        return tok.text
    if ts.accept("true", kind="ident"):
        return True
    if ts.accept("false", kind="ident"):
        return False
    if ts.accept("null", kind="ident"):
        return NULL
    if ts.accept("$"):
        return Symbol(ts.expect_kind("ident").text)
    if ts.accept("@"):
        return GilType[ts.expect_kind("ident").text]
    if ts.accept("{{"):
        items: List[Value] = []
        if not ts.at("}}"):
            items.append(_parse_value(ts))
            while ts.accept(","):
                items.append(_parse_value(ts))
        ts.expect("}}")
        return tuple(items)
    raise ParseError(f"expected a value, found {tok.text!r}", tok)
