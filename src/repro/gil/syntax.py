"""GIL syntax (paper §2.1).

GIL is a simple goto language with top-level procedures, parametric on a
set of actions ``A ∋ α``.  Commands are:

* ``x := e`` — variable assignment (:class:`Assignment`);
* ``ifgoto e i`` — conditional goto (:class:`IfGoto`);
* ``goto i`` — unconditional goto (sugar for ``ifgoto true i``; the
  compilers emit it for readability);
* ``x := e(e')`` — dynamic procedure call (:class:`Call`);
* ``return e`` (:class:`Return`); ``fail e`` (:class:`Fail`);
  ``vanish`` (:class:`Vanish`);
* ``x := α(e)`` — action execution (:class:`ActionCall`);
* ``x := uSym_j`` / ``x := iSym_j`` — fresh-symbol generation at
  allocation site ``j`` (:class:`USym` / :class:`ISym`).

Deviation from the paper's minimal grammar: procedures take a *tuple* of
formal parameters and calls pass a tuple of argument expressions.  The
paper's single-parameter form passes a GIL list; the real OCaml Gillian
uses multi-parameter procedures, which we follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple

from repro.logic.expr import Expr


class Command:
    """Base class for GIL commands."""

    __slots__ = ()

    def __reduce__(self):
        # Commands are frozen dataclasses with __slots__ and no __dict__,
        # which defeats default pickling (it would setattr on a frozen
        # instance); rebuild through the constructor instead.  Programs
        # cross process boundaries in the parallel explorer.
        return (type(self), tuple(getattr(self, f.name) for f in fields(self)))


@dataclass(frozen=True, repr=False)
class Assignment(Command):
    """``x := e`` — assign the value of ``expr`` to ``target``."""

    target: str
    expr: Expr

    __slots__ = ("target", "expr")

    def __repr__(self) -> str:
        return f"{self.target} := {self.expr!r}"


@dataclass(frozen=True, repr=False)
class IfGoto(Command):
    """``ifgoto e i`` — jump to command index ``target`` when ``condition`` holds."""

    condition: Expr
    target: int

    __slots__ = ("condition", "target")

    def __repr__(self) -> str:
        return f"ifgoto {self.condition!r} {self.target}"


@dataclass(frozen=True, repr=False)
class Goto(Command):
    """``goto i`` — unconditional jump to command index ``target``."""

    target: int

    __slots__ = ("target",)

    def __repr__(self) -> str:
        return f"goto {self.target}"


@dataclass(frozen=True, repr=False)
class Call(Command):
    """``x := e(e1, ..., en)`` — dynamic procedure call."""

    target: str
    callee: Expr
    args: Tuple[Expr, ...]

    __slots__ = ("target", "callee", "args")

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"{self.target} := {self.callee!r}({args})"


@dataclass(frozen=True, repr=False)
class Return(Command):
    """``return e`` — leave the current procedure with a value."""

    expr: Expr

    __slots__ = ("expr",)

    def __repr__(self) -> str:
        return f"return {self.expr!r}"


@dataclass(frozen=True, repr=False)
class Fail(Command):
    """``fail e`` — terminate the path with an error outcome."""

    expr: Expr

    __slots__ = ("expr",)

    def __repr__(self) -> str:
        return f"fail {self.expr!r}"


@dataclass(frozen=True, repr=False)
class Vanish(Command):
    """``vanish`` — terminate the path silently (no reported outcome)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "vanish"


@dataclass(frozen=True, repr=False)
class ActionCall(Command):
    """``x := α(e)`` — execute a memory-model action."""

    target: str
    action: str
    arg: Expr

    __slots__ = ("target", "action", "arg")

    def __repr__(self) -> str:
        return f"{self.target} := {self.action}({self.arg!r})"


@dataclass(frozen=True, repr=False)
class USym(Command):
    """``x := uSym_j`` — fresh *uninterpreted* symbol from site ``j``."""

    target: str
    site: int

    __slots__ = ("target", "site")

    def __repr__(self) -> str:
        return f"{self.target} := uSym_{self.site}"


@dataclass(frozen=True, repr=False)
class ISym(Command):
    """``x := iSym_j`` — fresh *interpreted* symbol from site ``j``."""

    target: str
    site: int

    __slots__ = ("target", "site")

    def __repr__(self) -> str:
        return f"{self.target} := iSym_{self.site}"


@dataclass(frozen=True)
class Proc:
    """A GIL procedure ``f(x...){c}``."""

    name: str
    params: Tuple[str, ...]
    body: Tuple[Command, ...]

    def __repr__(self) -> str:
        header = f"proc {self.name}({', '.join(self.params)})"
        lines = [f"  {i}: {cmd!r}" for i, cmd in enumerate(self.body)]
        return header + " {\n" + "\n".join(lines) + "\n}"


@dataclass
class Prog:
    """A GIL program: a map from procedure identifiers to procedures."""

    procs: Dict[str, Proc] = field(default_factory=dict)

    def add(self, proc: Proc) -> None:
        if proc.name in self.procs:
            raise ValueError(f"duplicate procedure {proc.name}")
        self.procs[proc.name] = proc

    def get(self, name: str) -> Optional[Proc]:
        return self.procs.get(name)

    def command_at(self, proc_name: str, idx: int) -> Command:
        """``cmd(p, cs, i)`` of the paper: the i-th command of a procedure."""
        proc = self.procs[proc_name]
        return proc.body[idx]

    def __repr__(self) -> str:
        return "\n\n".join(repr(p) for p in self.procs.values())

    def __reduce__(self):
        # Rebuild from procedures alone: the compiled-closure tables that
        # repro.gil.compile caches on the instance are neither picklable
        # nor meaningful in another process (workers recompile lazily).
        return (Prog, (self.procs,))


def allocate_sites(prog: Prog) -> Prog:
    """Renumber uSym/iSym allocation sites so each is globally unique.

    Compilers emit site 0 everywhere for brevity; the allocator requires
    one site per syntactic occurrence (paper §2.1: "an allocation site j is
    the program point associated with the uSym_j or iSym_j command").
    """
    site = 0
    new_procs: Dict[str, Proc] = {}
    for name, proc in prog.procs.items():
        body = []
        for cmd in proc.body:
            if isinstance(cmd, USym):
                body.append(USym(cmd.target, site))
                site += 1
            elif isinstance(cmd, ISym):
                body.append(ISym(cmd.target, site))
                site += 1
            else:
                body.append(cmd)
        new_procs[name] = Proc(name, proc.params, tuple(body))
    return Prog(new_procs)
