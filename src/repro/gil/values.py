"""GIL values (paper §2.1).

GIL values ``v ∈ V`` include numbers, strings, booleans, *uninterpreted
symbols*, types, procedure identifiers, and lists of values.  In this
reproduction:

* numbers are Python ``int``/``float`` (GIL has a single numeric type; we
  keep ints exact when possible, as the OCaml implementation does);
* strings are ``str``; booleans are ``bool``;
* uninterpreted symbols ``ς ∈ U`` are :class:`Symbol` instances — these
  model memory locations and language-specific constants (e.g. the
  JavaScript ``undefined``);
* types ``τ ∈ T`` are :class:`GilType` members;
* procedure identifiers ``f ∈ F`` are plain strings (the GIL ``Call``
  command evaluates its callee expression to a string);
* lists are Python tuples (immutable so values stay hashable).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class GilType(enum.Enum):
    """The standard GIL types (paper §2.1: numbers, strings, booleans, lists...)."""

    NUMBER = "Num"
    STRING = "Str"
    BOOLEAN = "Bool"
    LIST = "List"
    SYMBOL = "Symbol"
    TYPE = "Type"
    NONE = "None"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GilType.{self.name}"


@dataclass(frozen=True, order=True)
class Symbol:
    """An uninterpreted symbol ``ς ∈ U``.

    Uninterpreted symbols represent instantiation-specific constants (the
    JavaScript ``undefined`` and ``null``) and unique memory constituents
    (heap locations, memory blocks).  Two symbols are equal iff their names
    are equal; distinct names denote provably distinct values (``U`` is a
    countable set of atoms).
    """

    name: str

    def __repr__(self) -> str:
        return f"${self.name}"


#: The distinguished "unit"-like value used where GIL needs a literal
#: "nothing" (e.g. the value output of actions that only update state).
@dataclass(frozen=True)
class Null:
    """The GIL empty value (pretty-printed ``null``)."""

    def __repr__(self) -> str:
        return "null"


NULL = Null()

#: A concrete GIL value.  Lists of values are Python tuples.
Value = Union[int, float, str, bool, Symbol, GilType, Null, tuple]


def is_value(x: object) -> bool:
    """Return True iff ``x`` is a well-formed GIL value (recursively)."""
    if isinstance(x, (int, float, str, bool, Symbol, GilType, Null)):
        return True
    if isinstance(x, tuple):
        return all(is_value(item) for item in x)
    return False


def type_of(v: Value) -> GilType:
    """The GIL type of a concrete value (``typeof`` operator)."""
    if isinstance(v, bool):  # bool must precede int: bool is an int subtype
        return GilType.BOOLEAN
    if isinstance(v, (int, float)):
        return GilType.NUMBER
    if isinstance(v, str):
        return GilType.STRING
    if isinstance(v, Symbol):
        return GilType.SYMBOL
    if isinstance(v, GilType):
        return GilType.TYPE
    if isinstance(v, tuple):
        return GilType.LIST
    if isinstance(v, Null):
        return GilType.NONE
    raise TypeError(f"not a GIL value: {v!r}")


def values_equal(v1: Value, v2: Value) -> bool:
    """GIL value equality.

    Python's ``==`` conflates ``True == 1`` and ``1 == 1.0``; GIL equality
    distinguishes booleans from numbers but identifies ``1`` and ``1.0``
    (a single numeric type).
    """
    if isinstance(v1, bool) or isinstance(v2, bool):
        return isinstance(v1, bool) and isinstance(v2, bool) and v1 == v2
    if isinstance(v1, (int, float)) and isinstance(v2, (int, float)):
        return float(v1) == float(v2)
    if isinstance(v1, tuple) and isinstance(v2, tuple):
        return len(v1) == len(v2) and all(
            values_equal(a, b) for a, b in zip(v1, v2)
        )
    if type(v1) is not type(v2):
        return False
    return v1 == v2


def value_key(v: Value) -> tuple:
    """A canonical, type-aware key for a value.

    Python's ``==`` identifies ``0 == False`` and ``1 == True``; GIL
    distinguishes booleans from numbers (but identifies ``1`` and ``1.0``).
    Structural containers (expression nodes, caches, path conditions) key
    values through this function so that ``Lit(0)`` and ``Lit(False)``
    never collide.
    """
    if isinstance(v, bool):
        return ("b", v)
    if isinstance(v, (int, float)):
        return ("n", float(v))
    if isinstance(v, str):
        return ("s", v)
    if isinstance(v, Symbol):
        return ("y", v.name)
    if isinstance(v, GilType):
        return ("t", v.name)
    if isinstance(v, Null):
        return ("null",)
    if isinstance(v, tuple):
        return ("l", tuple(value_key(item) for item in v))
    raise TypeError(f"not a GIL value: {v!r}")


def pp_value(v: Value) -> str:
    """Pretty-print a GIL value (used in error reports and traces)."""
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    if isinstance(v, str):
        return repr(v)
    if isinstance(v, tuple):
        return "[" + ", ".join(pp_value(item) for item in v) + "]"
    return repr(v)
