"""GIL — Gillian's intermediate goto language (paper §2.1).

Re-exports are lazy to avoid import cycles between ``repro.gil`` and
``repro.logic`` (expressions are shared between the two layers).
"""

_EXPORTS = {
    "ops": ["EvalError", "apply_binop", "apply_unop", "evaluate"],
    "semantics": [
        "Config", "Final", "GilRuntimeError", "InnerFrame", "OutcomeKind",
        "TopFrame", "initial_config", "make_call_config", "step",
    ],
    "syntax": [
        "ActionCall", "Assignment", "Call", "Command", "Fail", "Goto",
        "IfGoto", "ISym", "Proc", "Prog", "Return", "USym", "Vanish",
        "allocate_sites",
    ],
    "values": ["NULL", "GilType", "Symbol", "Value", "type_of", "values_equal"],
    "text": ["parse_prog", "print_command", "print_expr", "print_prog", "print_value"],
}
_BY_NAME = {name: mod for mod, names in _EXPORTS.items() for name in names}

__all__ = sorted(_BY_NAME)


def __getattr__(name):
    module = _BY_NAME.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.gil' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f"repro.gil.{module}"), name)
