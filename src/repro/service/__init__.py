"""The crash-safe analysis service (durable queue + checkpoint/resume).

A persistent daemon that accepts analysis jobs — program, entry point,
budget — through a durable on-disk queue with at-least-once delivery,
executes them through the engine with periodic durable checkpoints, and
caches compiled programs and whole-run results content-addressed and
checksummed.  Killing the daemon (SIGKILL included) at any instant loses
no accepted job and at most the work since the last checkpoint; see
``docs/service.md`` for the full lifecycle, checkpoint format,
degradation ladder, and cache integrity model.

Public surface:

* :class:`~repro.service.jobs.JobSpec` / ``JobResult`` / ``JobFailure``
  — the job vocabulary;
* :class:`~repro.service.queue.DurableQueue` — the maildir-style queue;
* :class:`~repro.service.store.ContentStore` (``GilStore`` /
  ``ResultStore``) — checksummed content-addressed caches;
* :class:`~repro.service.checkpoint.CheckpointManager` — durable
  explorer snapshots;
* :class:`~repro.service.runner.JobRunner` — checkpointed execution;
* :class:`~repro.service.degrade.DegradationPolicy` — admission under
  memory pressure;
* :class:`~repro.service.daemon.AnalysisService` — the daemon itself.
"""

from repro.service.checkpoint import Checkpoint, CheckpointManager
from repro.service.degrade import DegradationPolicy
from repro.service.jobs import JobFailure, JobResult, JobSpec, finals_digest
from repro.service.queue import DurableQueue, JobLease, QueueFull
from repro.service.runner import JobRunner, budget_for, language_for, verdict_for
from repro.service.store import ContentStore, GilStore, ResultStore

__all__ = [
    "AnalysisService",
    "Checkpoint",
    "CheckpointManager",
    "ContentStore",
    "DegradationPolicy",
    "DurableQueue",
    "GilStore",
    "JobFailure",
    "JobLease",
    "JobResult",
    "JobRunner",
    "JobSpec",
    "QueueFull",
    "ResultStore",
    "budget_for",
    "finals_digest",
    "language_for",
    "verdict_for",
]


def __getattr__(name):
    """Resolve the daemon class lazily so ``python -m
    repro.service.daemon`` does not import the daemon module twice
    (runpy warns when the -m target is already loaded)."""
    if name == "AnalysisService":
        from repro.service.daemon import AnalysisService

        return AnalysisService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
