"""Admission control under memory pressure: the degradation ladder.

A long-lived analysis daemon must not OOM because a burst of expensive
jobs arrived while the process was already heavy.  Refusing work
outright is the other failure mode — so between "run as submitted" and
"reject" sits a ladder of cheaper admissions:

* **level 0** (below the soft watermark) — the job runs exactly as
  submitted;
* **level 1** (soft watermark crossed) — the budget is scaled down
  (:meth:`Budget.scaled`) and the unknown policy is forced to
  ``"prune"``: UNKNOWN branches are dropped and *counted* in the
  incompleteness ledger instead of being assumed feasible, trading
  coverage for bounded memory, honestly;
* **level 2** (hard watermark crossed) — a minimal scavenging budget,
  still pruning.  The job produces a small, clearly-marked result
  rather than being lost.

The admitted level is recorded in ``JobResult.degraded_level``, and a
degraded result is never served from the idempotent-replay cache
(``JobResult.reusable``) — degradation is an artefact of *this* run's
circumstances, not of the spec.

Memory is read through an injectable ``memory_bytes`` callable
(default: ``resource.getrusage`` peak RSS), so tests drive the ladder
deterministically without actually ballooning the process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.engine.budget import Budget


def process_memory_bytes() -> int:
    """The process's peak RSS in bytes (the default watermark input)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes; normalise to bytes.
    import sys

    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


@dataclass(frozen=True)
class DegradationPolicy:
    """The ladder's thresholds and levers (see module docstring).

    ``soft_bytes``/``hard_bytes`` of None disable that rung.  The
    scale factors are the budget multipliers applied at each level.
    """

    soft_bytes: Optional[int] = None
    hard_bytes: Optional[int] = None
    soft_scale: float = 0.25
    hard_scale: float = 0.05
    memory_bytes: Callable[[], int] = process_memory_bytes

    def __post_init__(self) -> None:
        """Validate that the hard watermark sits at or above the soft."""
        if (
            self.soft_bytes is not None
            and self.hard_bytes is not None
            and self.hard_bytes < self.soft_bytes
        ):
            raise ValueError("hard watermark must be >= soft watermark")

    def level(self) -> int:
        """The ladder rung current memory pressure puts new jobs on."""
        used = self.memory_bytes()
        if self.hard_bytes is not None and used >= self.hard_bytes:
            return 2
        if self.soft_bytes is not None and used >= self.soft_bytes:
            return 1
        return 0

    def admit(
        self, budget: Budget, unknown_policy: str
    ) -> Tuple[int, Budget, str]:
        """Admission terms for a new job right now.

        Returns ``(level, effective_budget, effective_unknown_policy)``:
        at level 0 the submitted terms pass through untouched; above it
        the budget is scaled and UNKNOWN branches are pruned (and
        ledgered) rather than assumed.
        """
        level = self.level()
        if level == 0:
            return 0, budget, unknown_policy
        scale = self.soft_scale if level == 1 else self.hard_scale
        return level, budget.scaled(scale), "prune"
