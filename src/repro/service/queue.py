"""A durable, crash-safe, at-least-once job queue on the filesystem.

Maildir discipline: a job is one JSON record file, and its lifecycle is
a sequence of atomic renames between sibling directories —

* ``pending/`` — submitted, waiting to be claimed (FIFO by file name,
  which embeds a monotonic submission stamp);
* ``active/`` — claimed by a worker (the rename *is* the claim: two
  workers racing for one job cannot both win a rename);
* ``done/`` — finished, the record now carrying the result summary;
* ``quarantine/`` — poison: repeatedly failing or unreadable jobs are
  parked here with a structured failure and never block the queue.

Delivery is **at-least-once**: a worker that dies mid-job leaves the
record in ``active/``; :meth:`DurableQueue.recover` (run at daemon
start) moves every such orphan back to ``pending/`` with its attempt
count bumped.  Exactly-once *effects* come from the layer above — jobs
are keyed by content hash and results live in an idempotent store, so a
re-delivered job re-runs into the same cache slot or is served from it.

Every record embeds a checksum over its canonical body; a torn or
bit-flipped record is detected on load and quarantined rather than
parsed into garbage.  All writes go through the atomic
write-temp-fsync-rename helper (:mod:`repro.testing.io`).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.service.jobs import JobFailure, JobResult, JobSpec
from repro.testing.io import atomic_write_text, fsync_dir

_STATES = ("pending", "active", "done", "quarantine")

#: process-local tiebreaker so two submissions in the same nanosecond
#: (or on a coarse clock) still get distinct, ordered ids
_seq = itertools.count()


class QueueFull(RuntimeError):
    """Admission control: the bounded pending queue is at capacity.

    Raised by :meth:`DurableQueue.submit` — this is the backpressure
    signal clients see instead of the daemon buffering without bound.
    """


@dataclass(frozen=True)
class JobLease:
    """A claimed job: the record as read plus its identity."""

    job_id: str
    record: Dict[str, object]

    @property
    def spec(self) -> JobSpec:
        """The job's :class:`JobSpec`, rebuilt from the record."""
        return JobSpec.from_dict(self.record["spec"])

    @property
    def key(self) -> str:
        """The job's content hash."""
        return self.record["key"]

    @property
    def attempts(self) -> int:
        """Delivery attempts burned so far (this one included)."""
        return self.record["attempts"]


def _record_blob(record: Dict[str, object]) -> str:
    """Serialize a record with an embedded checksum over its body."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return json.dumps({"body": record, "sha256": digest}, indent=1, sort_keys=True) + "\n"


def _parse_blob(text: str) -> Dict[str, object]:
    """Parse and validate a record blob; raises ``ValueError`` on damage."""
    wrapper = json.loads(text)
    if not isinstance(wrapper, dict) or "body" not in wrapper:
        raise ValueError("record missing body")
    body = wrapper["body"]
    canon = json.dumps(body, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canon.encode("utf-8")).hexdigest()
    if digest != wrapper.get("sha256"):
        raise ValueError("record checksum mismatch")
    return body


class DurableQueue:
    """The on-disk queue; see the module docstring for the protocol.

    ``capacity`` bounds ``pending/`` (None: unbounded); ``clock`` is
    injectable so retry ``not_before`` scheduling is testable without
    real waiting.
    """

    def __init__(
        self,
        root: str,
        capacity: Optional[int] = None,
        clock=time.time,
    ) -> None:
        """Create (or reopen) the queue rooted at ``root``."""
        self.root = os.fspath(root)
        self.capacity = capacity
        self.clock = clock
        for state in _STATES:
            os.makedirs(os.path.join(self.root, state), exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def _dir(self, state: str) -> str:
        """Directory holding records in ``state``."""
        return os.path.join(self.root, state)

    def _path(self, state: str, job_id: str) -> str:
        """Record file for ``job_id`` in ``state``."""
        return os.path.join(self.root, state, job_id + ".json")

    def _ids(self, state: str) -> List[str]:
        """Job ids in ``state``, sorted — ids embed submission time, so
        sorted order is FIFO order."""
        names = os.listdir(self._dir(state))
        return sorted(n[:-5] for n in names if n.endswith(".json"))

    # -- introspection -------------------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs waiting in ``pending/`` (the backpressure gauge)."""
        return len(self._ids("pending"))

    def pending_ids(self) -> List[str]:
        """Pending job ids in FIFO order."""
        return self._ids("pending")

    def active_ids(self) -> List[str]:
        """Claimed-but-unfinished job ids."""
        return self._ids("active")

    def done_ids(self) -> List[str]:
        """Finished job ids."""
        return self._ids("done")

    def quarantined_ids(self) -> List[str]:
        """Poison job ids."""
        return self._ids("quarantine")

    def load_done(self, job_id: str) -> Dict[str, object]:
        """The finished record for ``job_id`` (raises if absent/corrupt)."""
        with open(self._path("done", job_id)) as fh:
            return _parse_blob(fh.read())

    def load_quarantined(self, job_id: str) -> JobFailure:
        """The structured failure for a quarantined job."""
        with open(self._path("quarantine", job_id)) as fh:
            record = _parse_blob(fh.read())
        return JobFailure.from_dict(record["failure"])

    # -- lifecycle -----------------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Enqueue a job; returns its id.  Raises :class:`QueueFull`
        when the pending queue is at capacity (backpressure: the caller
        must retry later or shed load)."""
        if self.capacity is not None and self.depth >= self.capacity:
            raise QueueFull(
                f"pending queue at capacity ({self.capacity}); retry later"
            )
        key = spec.key()
        job_id = f"{time.time_ns():020d}-{os.getpid()}-{next(_seq):06d}-{key[:8]}"
        record = {
            "id": job_id,
            "key": key,
            "spec": spec.to_dict(),
            "attempts": 0,
            "not_before": 0.0,
            "submitted_at": self.clock(),
        }
        atomic_write_text(self._path("pending", job_id), _record_blob(record))
        return job_id

    def claim(self) -> Optional[JobLease]:
        """Claim the oldest eligible pending job, or None.

        Eligibility: the record's ``not_before`` (retry backoff
        schedule) has passed.  A record that fails to parse or checksum
        is quarantined on the spot — a poison *file* must not wedge the
        queue any more than a poison job.  The pending→active rename is
        the mutual-exclusion point: of two racing claimants exactly one
        sees the rename succeed.
        """
        now = self.clock()
        for job_id in self._ids("pending"):
            path = self._path("pending", job_id)
            try:
                with open(path) as fh:
                    record = _parse_blob(fh.read())
            except (OSError, ValueError) as exc:
                self._quarantine_file(job_id, path, f"unreadable record: {exc}")
                continue
            if record.get("not_before", 0.0) > now:
                continue
            active = self._path("active", job_id)
            try:
                os.rename(path, active)
            except OSError:
                continue  # lost the claim race; try the next record
            record["attempts"] = record.get("attempts", 0) + 1
            atomic_write_text(active, _record_blob(record))
            return JobLease(job_id, record)
        return None

    def ack(self, lease: JobLease, result: JobResult) -> None:
        """Finish a job: durably record the result, then release the
        claim.  Crash between the two writes re-delivers the job, whose
        re-run is absorbed by the idempotent result store."""
        record = dict(lease.record)
        record["result"] = result.to_dict()
        record["finished_at"] = self.clock()
        atomic_write_text(self._path("done", lease.job_id), _record_blob(record))
        self._release(lease)

    def retry(self, lease: JobLease, error: str, delay: float) -> None:
        """Return a failed job to ``pending/`` with a backoff delay.

        The record keeps its id (so ``done/`` ends up with exactly one
        record per submission no matter how many attempts were burned)
        and notes the last error for operators.
        """
        record = dict(lease.record)
        record["last_error"] = error
        record["not_before"] = self.clock() + max(0.0, delay)
        atomic_write_text(
            self._path("pending", lease.job_id), _record_blob(record)
        )
        self._release(lease)

    def quarantine(self, lease: JobLease, error: str) -> JobFailure:
        """Declare a job poison: park a structured failure, release the
        claim, and return the failure record."""
        failure = JobFailure(
            key=lease.key,
            error=error,
            attempts=lease.attempts,
            spec=lease.record.get("spec"),
        )
        record = dict(lease.record)
        record["failure"] = failure.to_dict()
        atomic_write_text(
            self._path("quarantine", lease.job_id), _record_blob(record)
        )
        self._release(lease)
        return failure

    def recover(self) -> int:
        """Re-deliver orphaned ``active/`` jobs (daemon-start recovery).

        Every record a dead worker left behind moves back to
        ``pending/`` untouched — its attempt count was already bumped at
        claim time, so repeated crash-loops still converge on the
        quarantine threshold.  Returns the number of jobs re-delivered.
        """
        recovered = 0
        for job_id in self._ids("active"):
            os.replace(
                self._path("active", job_id), self._path("pending", job_id)
            )
            recovered += 1
        if recovered:
            fsync_dir(self._dir("pending"))
        return recovered

    # -- internals -----------------------------------------------------------

    def _release(self, lease: JobLease) -> None:
        """Drop the active-state record once its outcome is durable."""
        try:
            os.unlink(self._path("active", lease.job_id))
        except FileNotFoundError:
            pass  # already released (crash replay); nothing to do

    def _quarantine_file(self, job_id: str, path: str, error: str) -> None:
        """Park an unreadable record file under ``quarantine/``."""
        failure = JobFailure(key="unknown", error=error, attempts=0)
        record = {"id": job_id, "key": "unknown", "failure": failure.to_dict()}
        atomic_write_text(
            self._path("quarantine", job_id), _record_blob(record)
        )
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass  # a racing claimant already moved it
