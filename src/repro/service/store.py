"""Crash-safe content-addressed stores for compiled programs and results.

A :class:`ContentStore` maps a hex content hash to a pickled payload on
disk.  Entries are written atomically (write-temp-fsync-rename) and
wrapped in a checksummed frame (:func:`repro.testing.io.checked_frame`),
so the store distinguishes three states on read:

* **hit** — the frame validates; the payload is unpickled and returned;
* **miss** — no entry for the key;
* **corrupt** — the frame fails its length/digest check (torn write that
  somehow bypassed the rename, bit flip, truncation).  The entry is
  *evicted on the spot* and the read reports a miss, so the caller
  recomputes; a damaged entry is never served.  An ``on_corrupt``
  callback (the service wires it to the ``service.degraded`` counter on
  the obs bus) makes the eviction observable.

Three stores sit on this base: :class:`GilStore` caches compiled GIL
programs keyed by ``JobSpec.source_key()`` (language + source),
:class:`ResultStore` caches whole-run results keyed by
``JobSpec.key()`` (the full spec hash) — the idempotent-replay cache —
and :class:`SummaryStore` persists function summaries for the
compositional execution layer (:mod:`repro.specs`).
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, List, Optional

from repro.testing.io import CorruptPayload, read_checked_bytes, write_checked_bytes


class ContentStore:
    """A directory of checksummed, content-addressed pickle entries."""

    def __init__(
        self,
        root: str,
        on_corrupt: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        """Open (creating if needed) the store rooted at ``root``.

        ``on_corrupt(key, reason)`` is invoked whenever a read detects a
        damaged entry, after the entry has been evicted.
        """
        self.root = os.fspath(root)
        self.on_corrupt = on_corrupt
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        """Entry file for ``key``; rejects path-traversal characters."""
        if not key or any(c in key for c in "/\\."):
            raise ValueError(f"invalid store key {key!r}")
        return os.path.join(self.root, key + ".bin")

    def put(self, key: str, value: Any) -> None:
        """Durably store ``value`` (pickled, framed, atomic) under ``key``."""
        write_checked_bytes(self._path(key), pickle.dumps(value))

    def get(self, key: str) -> Optional[Any]:
        """The value stored under ``key``, or None on miss.

        A corrupted entry (checksum/length mismatch, unpicklable
        payload) is evicted, reported through ``on_corrupt``, and
        treated as a miss — the caller recomputes and re-puts.
        """
        path = self._path(key)
        try:
            payload = read_checked_bytes(path)
        except FileNotFoundError:
            return None
        except CorruptPayload as exc:
            self._evict(key, path, f"corrupt frame: {exc}")
            return None
        try:
            return pickle.loads(payload)
        except Exception as exc:  # payload passed checksum but not unpickle
            self._evict(key, path, f"unpicklable payload: {exc}")
            return None

    def contains(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` (no validation)."""
        return os.path.exists(self._path(key))

    def delete(self, key: str) -> None:
        """Remove the entry for ``key`` if present."""
        try:
            os.unlink(self._path(key))
        except FileNotFoundError:
            pass

    def keys(self) -> List[str]:
        """All keys with an entry file, sorted."""
        return sorted(
            name[:-4] for name in os.listdir(self.root) if name.endswith(".bin")
        )

    def _evict(self, key: str, path: str, reason: str) -> None:
        """Drop a damaged entry and surface the eviction."""
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        if self.on_corrupt is not None:
            self.on_corrupt(key, reason)


class GilStore(ContentStore):
    """The compiled-GIL cache: ``JobSpec.source_key()`` → pickled Prog.

    Compiled step closures do not pickle, but ``Prog.__reduce__`` strips
    them, so a cached program rebuilds its tables lazily on first use —
    the cache saves the parse/compile front end, which dominates for
    small programs resubmitted in bursts.
    """


class ResultStore(ContentStore):
    """The whole-run result cache: ``JobSpec.key()`` → pickled payload.

    This is the idempotent-replay store — an identical resubmission (or
    an at-least-once re-delivery) is served from here without re-running
    the analysis, provided the stored :class:`~repro.service.jobs.JobResult`
    is ``reusable`` (full budget, no deadline cut).
    """


class SummaryStore(ContentStore):
    """The durable function-summary cache: summary key → pickled
    :class:`~repro.specs.summary.Summary`.

    Keys are content hashes over the procedure's transitive code hash
    plus (for the exact tier) the pickled pre-state, salted with the
    engine format version and configuration — so summaries persist
    across processes and runs, and a code or engine change simply misses
    to a fresh key.  The inherited corrupt-entry handling is the
    integrity story: a torn or bit-flipped frame is evicted on read,
    reported through ``on_corrupt``, and recomputed — a damaged summary
    is never replayed.
    """
