"""Analysis jobs: the unit of work the service queues, runs, and caches.

A :class:`JobSpec` is everything needed to reproduce an analysis —
target language, source text, entry point, budget bounds, worker count,
unknown policy.  Its :meth:`~JobSpec.key` is a SHA-256 over the
canonical JSON encoding, which is what makes the whole service
*idempotent*: two submissions of the same spec share one key, so a
resubmitted (or at-least-once re-delivered) job is served from the
result store instead of re-running, and a crash between "result written"
and "job acked" re-runs into the same cache slot harmlessly.

:class:`JobResult` is the durable outcome record — verdict-level
summary, stop reason, incompleteness ledger, stats — shaped for JSON so
queue ``done/`` records stay greppable; the full pickled
:class:`~repro.engine.results.ExecutionResult` lives in the result store
keyed by the same hash.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.engine.results import RunReport

#: spec fields that participate in the content hash, in canonical order
_KEY_FIELDS = (
    "language",
    "source",
    "entry",
    "max_paths",
    "max_total_steps",
    "max_steps_per_path",
    "unknown_policy",
    "workers",
)


@dataclass(frozen=True)
class JobSpec:
    """One analysis request: program + entry point + budget.

    ``timeout`` (wall-clock seconds for the run, enforced through
    ``Budget.deadline``) is deliberately *excluded* from the content
    key: a deadline changes when a run is cut, not what the program
    means, and including it would fragment the result cache — but a
    result produced under a deadline records its stop reason, and the
    service only serves a cached result for a spec whose run completed
    (see :meth:`JobResult.reusable`).
    """

    language: str
    source: str
    entry: str = "main"
    max_paths: int = 100_000
    max_total_steps: int = 5_000_000
    max_steps_per_path: int = 100_000
    unknown_policy: str = "assume-sat"
    workers: int = 1
    timeout: Optional[float] = None

    def key(self) -> str:
        """The spec's content hash (hex SHA-256): the cache/queue key."""
        payload = {name: getattr(self, name) for name in _KEY_FIELDS}
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def source_key(self) -> str:
        """The compile-cache key: language + source only.

        Jobs differing only in entry point or budget share one compiled
        GIL program, so the compile cache is keyed narrower than the
        result cache.
        """
        canon = json.dumps(
            {"language": self.language, "source": self.source},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        """A JSON-able record of every field (queue files store this)."""
        return {
            "language": self.language,
            "source": self.source,
            "entry": self.entry,
            "max_paths": self.max_paths,
            "max_total_steps": self.max_total_steps,
            "max_steps_per_path": self.max_steps_per_path,
            "unknown_policy": self.unknown_policy,
            "workers": self.workers,
            "timeout": self.timeout,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobSpec":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        return cls(**data)


@dataclass(frozen=True)
class JobResult:
    """The durable outcome of one job run.

    ``degraded_level`` records where on the admission ladder the run was
    admitted (0 = as submitted; see :mod:`repro.service.degrade`), so a
    caller can tell a full-budget verdict from a degraded one.
    """

    key: str
    verdict: str                       # "bounded-verified[-incomplete]" | "bug" | ...
    bugs: int
    paths: int
    report: RunReport
    stats: Dict[str, object]           # ExecutionStats.to_dict()
    degraded_level: int = 0
    #: multiset digest of the finals (order-independent), letting two
    #: runs be compared for outcome identity without shipping the finals
    finals_digest: str = ""
    attempts: int = 1

    def to_dict(self) -> Dict[str, object]:
        """A JSON-able record (queue ``done/`` files store this)."""
        return {
            "key": self.key,
            "verdict": self.verdict,
            "bugs": self.bugs,
            "paths": self.paths,
            "report": self.report.to_dict(),
            "stats": self.stats,
            "degraded_level": self.degraded_level,
            "finals_digest": self.finals_digest,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobResult":
        """Rebuild from :meth:`to_dict` output."""
        data = dict(data)
        data["report"] = RunReport.from_dict(data["report"])
        return cls(**data)

    @property
    def reusable(self) -> bool:
        """Whether this result may be served for an identical
        resubmission: only runs admitted at full budget (level 0) whose
        deadline did not fire are idempotent-replay candidates — a
        degraded or deadline-cut result is an artefact of *that* run's
        circumstances, not of the spec."""
        return self.degraded_level == 0 and self.report.stop_reason != "deadline"


def finals_digest(finals) -> str:
    """An order-independent hex digest of a finals multiset.

    Hashes the sorted ``(kind, repr(value))`` pairs — the same canonical
    key the deterministic shard merge sorts by — so any two runs over
    the same path set agree on the digest regardless of schedule,
    worker count, or resume history.
    """
    items = sorted((fin.kind.name, repr(fin.value)) for fin in finals)
    blob = json.dumps(items, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class JobFailure:
    """A structured permanent failure (the quarantine record).

    ``attempts`` is how many delivery attempts were burned before the
    job was declared poison; ``error`` is the last traceback tail.  A
    quarantined job never wedges the queue: its record is parked under
    ``quarantine/`` and the worker moves on.
    """

    key: str
    error: str
    attempts: int
    spec: Optional[Dict[str, object]] = field(default=None)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-able record (queue ``quarantine/`` files store this)."""
        return {
            "key": self.key,
            "error": self.error,
            "attempts": self.attempts,
            "spec": self.spec,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobFailure":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)
