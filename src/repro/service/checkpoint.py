"""Checkpoint/resume for analysis jobs: durable explorer snapshots.

A checkpoint is the full resumable state of a job at a
``Budget.decide()`` boundary: the **frontier** (every work item not yet
stepped, with depths — the just-popped item included, since its step has
not run) plus the **finals and stats accumulated so far**, with all
deferred counter deltas flushed (the explorer's checkpoint hook flushes
solver/degradation/fast-lane baselines before calling ``save``, so
checkpointed stats + post-resume stats sum exactly to the uninterrupted
totals).

:class:`CheckpointManager` implements the explorer's duck-typed
checkpoint contract — an ``interval`` attribute (commands between
snapshots) and a ``save(frontier, finals, stats)`` method — and adds the
durability discipline: the snapshot is pickled through the engine's
pickle-safe state layer, wrapped in a checksummed frame, and written
atomically, so a crash at *any* instant leaves either the previous
complete snapshot or the new complete snapshot, never a torn one.  A
snapshot that fails its checksum on load is evicted and treated as
absent (the job simply restarts from its previous snapshot or from
scratch — slower, never wrong).

On resume, the manager carries the loaded finals/stats as a *base* that
every subsequent save folds in, so snapshots always describe total
progress since job start even across multiple crash/resume cycles.

The ``injector`` hook (``on_checkpoint("pre"/"post")``) is the seam the
crash-resume identity suite uses to deliver a real ``SIGKILL`` exactly
at a checkpoint boundary; see
:class:`repro.testing.faults.CheckpointKill`.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.results import ExecutionStats
from repro.testing.io import CorruptPayload, read_checked_bytes, write_checked_bytes


@dataclass(frozen=True)
class Checkpoint:
    """One durable snapshot: resumable frontier + progress so far."""

    key: str
    seq: int
    frontier: Tuple
    finals: Tuple
    stats: ExecutionStats


class CheckpointManager:
    """Durable snapshot writer/loader for one job (see module docstring).

    Satisfies the explorer's checkpoint contract (``interval`` +
    ``save``); one manager instance serves one job attempt.
    """

    def __init__(
        self,
        root: str,
        key: str,
        interval: int = 2000,
        injector=None,
        clock=time.time,
    ) -> None:
        """Open the snapshot slot for job ``key`` under ``root``.

        ``interval`` is the explorer-facing snapshot cadence in executed
        commands (0 disables snapshotting); ``injector`` is an optional
        fault injector whose ``on_checkpoint`` hook brackets each save.
        """
        self.root = os.fspath(root)
        self.key = key
        self.interval = interval
        self.injector = injector
        self.clock = clock
        self.seq = 0
        self.base_finals: List = []
        self.base_stats: Optional[ExecutionStats] = None
        self.last_save_time: Optional[float] = None
        os.makedirs(self.root, exist_ok=True)

    @property
    def path(self) -> str:
        """The snapshot file for this job."""
        return os.path.join(self.root, self.key + ".ck")

    def save(self, frontier, finals, stats: ExecutionStats) -> None:
        """Durably snapshot the job (the explorer's checkpoint hook).

        Folds the resume base into the written totals, so the snapshot
        is self-contained: loading it needs no earlier snapshot.
        """
        if self.injector is not None:
            self.injector.on_checkpoint("pre")
        total_finals = tuple(self.base_finals) + tuple(finals)
        total_stats = ExecutionStats()
        if self.base_stats is not None:
            total_stats.merge(self.base_stats)
        total_stats.merge(stats)
        snapshot = Checkpoint(
            key=self.key,
            seq=self.seq,
            frontier=tuple(frontier),
            finals=total_finals,
            stats=total_stats,
        )
        write_checked_bytes(self.path, pickle.dumps(snapshot))
        self.seq += 1
        self.last_save_time = self.clock()
        if self.injector is not None:
            self.injector.on_checkpoint("post")

    def load(self) -> Optional[Checkpoint]:
        """The last durable snapshot, or None.

        A snapshot that fails its checksum or does not unpickle is
        evicted and reported as absent — resume falls back to an earlier
        state rather than trusting damaged bytes.
        """
        try:
            payload = read_checked_bytes(self.path)
        except FileNotFoundError:
            return None
        except CorruptPayload:
            self._evict()
            return None
        try:
            snapshot = pickle.loads(payload)
        except Exception:
            self._evict()
            return None
        if not isinstance(snapshot, Checkpoint) or snapshot.key != self.key:
            self._evict()
            return None
        return snapshot

    def resume_from(self, snapshot: Checkpoint) -> None:
        """Adopt a loaded snapshot as the base for subsequent saves."""
        self.base_finals = list(snapshot.finals)
        self.base_stats = snapshot.stats
        self.seq = snapshot.seq + 1

    def age(self) -> Optional[float]:
        """Seconds since the last save this run, or None if none yet."""
        if self.last_save_time is None:
            return None
        return self.clock() - self.last_save_time

    def clear(self) -> None:
        """Discard the snapshot (the job completed; nothing to resume)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def _evict(self) -> None:
        """Drop a damaged snapshot file."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass
