"""The crash-safe analysis daemon: queue in, durable verdicts out.

:class:`AnalysisService` owns one service root directory::

    root/
      queue/        durable job queue (pending/active/done/quarantine)
      results/      whole-run result cache   (spec hash -> JobResult)
      gil/          compiled-program cache   (source hash -> Prog)
      checkpoints/  per-job resumable snapshots (spec hash -> frame)

Everything under the root is written atomically and checksummed, so the
daemon can be SIGKILLed at *any* instant and restarted: startup recovery
re-delivers claimed-but-unfinished jobs (at-least-once), interrupted
jobs resume from their last checkpoint, and any entry damaged in flight
is detected, evicted, and recomputed — never served.

The processing loop per claimed job:

1. serve from the result cache if an identical spec already completed
   at full budget (idempotent replay — this is what makes at-least-once
   delivery and client resubmission harmless);
2. otherwise admit through the degradation ladder (memory watermarks
   may scale the budget down and force UNKNOWN-pruning), run via the
   checkpointed :class:`~repro.service.runner.JobRunner`, store the
   result, ack;
3. on failure, requeue with exponential backoff
   (:class:`~repro.engine.backoff.BackoffPolicy`) until the attempt
   budget is spent, then quarantine with a structured failure — a
   poison job never wedges the queue.

Run it as a module for the CLI form used in ``docs/service.md``::

    python -m repro.service.daemon --root /tmp/svc --until-idle
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import traceback
from typing import Optional, Tuple

from repro.engine.backoff import BackoffPolicy
from repro.obs.service import ServiceMetrics
from repro.service.checkpoint import CheckpointManager
from repro.service.degrade import DegradationPolicy
from repro.service.jobs import JobResult, JobSpec, finals_digest
from repro.service.queue import DurableQueue, JobLease
from repro.service.runner import JobRunner, budget_for, verdict_for
from repro.service.store import GilStore, ResultStore


class AnalysisService:
    """The daemon: one service root, one processing loop (see module doc).

    ``capacity`` bounds the pending queue (admission control);
    ``max_attempts`` is the delivery-attempt budget before quarantine;
    ``fault_plan`` threads a :class:`~repro.testing.faults.FaultPlan`
    into each job's checkpoint manager (the crash suites' kill switch);
    ``clock``/``sleep`` are injectable for fake-time tests.
    """

    def __init__(
        self,
        root: str,
        capacity: Optional[int] = None,
        max_attempts: int = 3,
        backoff: Optional[BackoffPolicy] = None,
        degradation: Optional[DegradationPolicy] = None,
        metrics: Optional[ServiceMetrics] = None,
        events=None,
        checkpoint_interval: int = 500,
        round_items: int = 0,
        fault_plan=None,
        clock=time.time,
        sleep=time.sleep,
        poll_interval: float = 0.01,
    ) -> None:
        """Open (creating or recovering) the service rooted at ``root``."""
        self.root = os.fspath(root)
        self.max_attempts = max_attempts
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.degradation = degradation
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.events = events
        self.checkpoint_interval = checkpoint_interval
        self.fault_plan = fault_plan
        self.clock = clock
        self._sleep = sleep
        self.poll_interval = poll_interval

        self.queue = DurableQueue(
            os.path.join(self.root, "queue"), capacity=capacity, clock=clock
        )
        self.results = ResultStore(
            os.path.join(self.root, "results"), on_corrupt=self._on_corrupt
        )
        self.gil = GilStore(
            os.path.join(self.root, "gil"), on_corrupt=self._on_corrupt
        )
        self.checkpoint_root = os.path.join(self.root, "checkpoints")
        self.runner = JobRunner(gil_store=self.gil, round_items=round_items)
        #: jobs re-delivered by startup recovery (left in active/ by a
        #: previous incarnation that died mid-job)
        self.recovered = self.queue.recover()

    # -- client surface ------------------------------------------------------

    def submit(self, spec: JobSpec) -> Tuple[Optional[str], Optional[JobResult]]:
        """Submit a job; returns ``(job_id, cached_result)``.

        An identical spec that already completed at full budget is
        served from the result store without touching the queue
        (``job_id`` None, ``cached_result`` set).  Otherwise the job is
        enqueued — raising :class:`~repro.service.queue.QueueFull` when
        admission control rejects it — and both fields of a *queued*
        submission are ``(job_id, None)``.
        """
        cached = self._cached(spec.key())
        if cached is not None:
            self.metrics.cache_hit_result()
            return None, cached
        job_id = self.queue.submit(spec)
        self.metrics.job_submitted()
        self.metrics.queue_depth(self.queue.depth)
        return job_id, None

    def result_for(self, key: str) -> Optional[JobResult]:
        """The stored result for a spec hash, if any (cached or not)."""
        stored = self.results.get(key)
        if stored is None:
            return None
        return stored

    # -- processing loop -----------------------------------------------------

    def process_one(self) -> Optional[str]:
        """Claim and process one job; returns its disposition or None.

        Dispositions: ``"completed"``, ``"cached"`` (served from the
        result store), ``"retried"``, ``"quarantined"``.  None means no
        job was claimable right now (queue empty, or every pending job
        is inside its backoff window).
        """
        lease = self.queue.claim()
        if lease is None:
            return None
        self.metrics.queue_depth(self.queue.depth)

        cached = self._cached(lease.key)
        if cached is not None:
            self.metrics.cache_hit_result()
            self.queue.ack(lease, cached)
            return "cached"

        try:
            spec = lease.spec
            result = self._run(lease, spec)
        except Exception as exc:
            return self._failed(lease, exc)
        self.results.put(lease.key, result)
        self.queue.ack(lease, result)
        self.metrics.job_completed()
        return "completed"

    def run_until_idle(self, max_jobs: Optional[int] = None) -> int:
        """Process jobs until the queue drains; returns the job count.

        Sleeps through backoff windows (pending jobs whose retry time
        has not come) rather than spinning; stops early after
        ``max_jobs`` dispositions when given.
        """
        processed = 0
        while max_jobs is None or processed < max_jobs:
            disposition = self.process_one()
            if disposition is not None:
                processed += 1
                continue
            if not self.queue.pending_ids():
                break
            self._sleep(self.poll_interval)
        return processed

    # -- internals -----------------------------------------------------------

    def _cached(self, key: str) -> Optional[JobResult]:
        """A reusable stored result for ``key``, or None."""
        stored = self.results.get(key)
        if isinstance(stored, JobResult) and stored.reusable:
            return stored
        return None

    def _run(self, lease: JobLease, spec: JobSpec) -> JobResult:
        """Admit, run (checkpointed), and package one job."""
        budget = budget_for(spec)
        policy = spec.unknown_policy
        level = 0
        if self.degradation is not None:
            level, budget, policy = self.degradation.admit(budget, policy)
            if level:
                self.metrics.job_degraded()
        injector = None
        if self.fault_plan is not None:
            injector = self.fault_plan.injector(None, lease.attempts - 1)
        checkpoint = CheckpointManager(
            self.checkpoint_root,
            lease.key,
            interval=self.checkpoint_interval,
            injector=injector,
            clock=self.clock,
        )
        outcome = self.runner.run(
            spec,
            budget=budget,
            unknown_policy=policy,
            checkpoint=checkpoint,
            events=self.events,
        )
        if outcome.compile_cache_hit:
            self.metrics.cache_hit_gil()
        else:
            self.metrics.cache_miss()
        if checkpoint.last_save_time is not None:
            self.metrics.checkpoint_age(checkpoint.age() or 0.0)
        res = outcome.result
        return JobResult(
            key=lease.key,
            verdict=verdict_for(res),
            bugs=len(res.errors),
            paths=res.stats.paths_finished,
            report=res.report,
            stats=res.stats.to_dict(),
            degraded_level=level,
            finals_digest=finals_digest(res.finals),
            attempts=lease.attempts,
        )

    def _failed(self, lease: JobLease, exc: Exception) -> str:
        """Retry with backoff, or quarantine once attempts are spent."""
        error = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )[-2000:]
        if lease.attempts >= self.max_attempts:
            self.queue.quarantine(lease, error)
            self.metrics.job_quarantined()
            return "quarantined"
        delay = self.backoff.delay(lease.attempts - 1)
        self.queue.retry(lease, error, delay)
        self.metrics.job_retried()
        return "retried"

    def _on_corrupt(self, key: str, reason: str) -> None:
        """A checksummed store entry failed validation and was evicted."""
        self.metrics.integrity_degraded()
        if self.events:
            self.metrics.flush(self.events)


def main(argv=None) -> int:
    """CLI entry point: ``python -m repro.service.daemon``."""
    parser = argparse.ArgumentParser(
        prog="repro.service.daemon",
        description="Run the crash-safe analysis service over a root directory.",
    )
    parser.add_argument("--root", required=True, help="service root directory")
    parser.add_argument(
        "--until-idle",
        action="store_true",
        help="process jobs until the queue drains, then exit",
    )
    parser.add_argument(
        "--capacity", type=int, default=None, help="bound the pending queue"
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, help="attempts before quarantine"
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=500,
        help="commands between checkpoint snapshots (0 disables)",
    )
    parser.add_argument(
        "--submit",
        metavar="SPEC_JSON",
        action="append",
        default=[],
        help="submit a JobSpec JSON file before processing (repeatable)",
    )
    args = parser.parse_args(argv)

    service = AnalysisService(
        args.root,
        capacity=args.capacity,
        max_attempts=args.max_attempts,
        checkpoint_interval=args.checkpoint_interval,
    )
    import json

    for path in args.submit:
        with open(path) as fh:
            spec = JobSpec.from_dict(json.load(fh))
        job_id, cached = service.submit(spec)
        tag = "cached" if cached is not None else job_id
        sys.stdout.write(f"submitted {spec.key()[:12]} -> {tag}\n")
    if args.until_idle:
        processed = service.run_until_idle()
        sys.stdout.write(f"processed {processed} job(s)\n")
    summary = json.dumps(service.metrics.as_dict(), indent=2, sort_keys=True)
    sys.stdout.write(summary + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
