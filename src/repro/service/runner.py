"""The checkpointed job runner: one JobSpec in, one total result out.

This is the bridge between the service layer (durable queue, caches,
checkpoints) and the engine.  A run proceeds in up to three phases:

1. **Compile** — the TL source is compiled to GIL, through the
   content-addressed :class:`~repro.service.store.GilStore` when one is
   wired in (jobs differing only in entry point or budget share the
   compiled program).
2. **Resume or start** — if the job's checkpoint slot holds a durable
   snapshot, the runner adopts its finals/stats as the base and feeds
   its frontier back into the engine with the *remaining* budget
   (global bounds minus what the snapshot already consumed); otherwise
   it builds the entry-point configuration from a fresh initial state.
3. **Explore** — ``workers == 1`` runs the sequential
   :class:`~repro.engine.explorer.Explorer` with the checkpoint manager
   installed as its snapshot hook; ``workers > 1`` seeds a frontier cut
   (checkpointing through the same hook), then processes it in bounded
   rounds of :meth:`~repro.engine.parallel.ParallelExplorer.explore_items`,
   saving a snapshot of the unprocessed remainder between rounds.

The identity contract (exercised by the crash-resume suite): for an
exhaustive run, base + resumed-run merged through
:func:`~repro.engine.results.merge_results` has exactly the finals
multiset and incompleteness ledger of the uninterrupted run, at any
worker count — path outcomes are path-local (paper §3.1 trace
composition), so neither the cut point nor the partition matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.budget import Budget
from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.engine.parallel import SEED_FACTOR, ParallelExplorer, resolve_workers
from repro.engine.results import ExecutionResult, ExecutionStats, merge_results
from repro.gil.semantics import make_call_config
from repro.logic.simplify import shared_simplifier
from repro.logic.solver import Solver
from repro.service.jobs import JobSpec
from repro.state.symbolic import SymbolicStateModel


def language_for(name: str):
    """Instantiate the target language registered under ``name``."""
    import repro

    classes = {
        "while": "WhileLanguage",
        "minijs": "MiniJSLanguage",
        "minic": "MiniCLanguage",
        "rust": "MiniRustLanguage",
    }
    if name not in classes:
        raise ValueError(
            f"unknown language {name!r}; expected one of {sorted(classes)}"
        )
    return getattr(repro, classes[name])()


def budget_for(spec: JobSpec) -> Budget:
    """The budget a spec requests (before any degradation scaling)."""
    return Budget(
        max_steps_per_path=spec.max_steps_per_path,
        max_paths=spec.max_paths,
        max_total_steps=spec.max_total_steps,
        deadline=spec.timeout,
    )


def verdict_for(result: ExecutionResult) -> str:
    """The job-level verdict a finished result supports."""
    if result.errors:
        return "bug"
    if result.report.complete:
        return "bounded-verified"
    return "bounded-verified-incomplete"


@dataclass
class RunOutcome:
    """What one runner invocation produced.

    ``result`` is the *total* run — base progress from any adopted
    snapshot merged with this invocation's exploration — and
    ``compile_cache_hit`` records whether the GIL program came from the
    content store (the warm path the service benchmark measures).
    """

    result: ExecutionResult
    compile_cache_hit: bool = False
    resumed: bool = False


class JobRunner:
    """Runs :class:`JobSpec`\\ s, optionally compile-cached and checkpointed.

    ``gil_store`` is an optional :class:`~repro.service.store.GilStore`;
    ``round_items`` bounds how many frontier items a parallel round
    processes between checkpoint saves (smaller = tighter crash window,
    more snapshot overhead).
    """

    def __init__(self, gil_store=None, round_items: int = 0) -> None:
        """Create a runner; see class docstring for the knobs."""
        self.gil_store = gil_store
        self.round_items = round_items

    # -- compile ------------------------------------------------------------

    def compile(self, spec: JobSpec) -> Tuple[object, bool]:
        """The spec's GIL program, and whether it came from the cache."""
        language = language_for(spec.language)
        if self.gil_store is None:
            return language.compile(spec.source), False
        key = spec.source_key()
        prog = self.gil_store.get(key)
        if prog is not None:
            return prog, True
        prog = language.compile(spec.source)
        self.gil_store.put(key, prog)
        return prog, False

    # -- run ----------------------------------------------------------------

    def run(
        self,
        spec: JobSpec,
        budget: Optional[Budget] = None,
        unknown_policy: Optional[str] = None,
        checkpoint=None,
        events=None,
    ) -> RunOutcome:
        """Execute ``spec`` to completion, resuming from its checkpoint
        slot if a durable snapshot exists.

        ``budget``/``unknown_policy`` override the spec (the degradation
        ladder admits jobs at a scaled budget and a pruning policy);
        ``checkpoint`` is a :class:`~repro.service.checkpoint.CheckpointManager`
        or None to run without snapshots.
        """
        prog, cache_hit = self.compile(spec)
        policy = unknown_policy if unknown_policy is not None else spec.unknown_policy
        budget = budget if budget is not None else budget_for(spec)
        workers = resolve_workers(spec.workers)

        language = language_for(spec.language)
        config = EngineConfig(unknown_policy=policy)
        solver = Solver(
            simplifier=shared_simplifier(
                enabled=True, memoise=config.simplifier_memoisation
            ),
            cache_enabled=config.solver_cache,
            incremental=config.solver_incremental,
            step_budget=config.solver_step_budget,
        )
        sm = SymbolicStateModel(
            language.symbolic_memory(), solver=solver, unknown_policy=policy
        )

        snapshot = checkpoint.load() if checkpoint is not None else None
        if snapshot is not None:
            checkpoint.resume_from(snapshot)
            items: List[tuple] = list(snapshot.frontier)
            run_budget = budget.shard_slice(
                1,
                steps_spent=snapshot.stats.commands_executed,
                paths_found=snapshot.stats.paths_finished,
            )
            if not items:
                # The snapshot already covers the whole run (a crash fell
                # between the last save and the ack).
                total = ExecutionResult(
                    list(snapshot.finals), self._copy_stats(snapshot.stats)
                )
                if not total.stats.stop_reason:
                    total.stats.stop_reason = "exhausted"
                return RunOutcome(total, cache_hit, resumed=True)
        else:
            state = sm.initial_state()
            cfg = make_call_config(sm, state, prog, spec.entry, [])
            items = [(cfg, 0)]
            run_budget = budget

        if workers <= 1:
            session = self._run_sequential(
                prog, sm, config, run_budget, items, checkpoint, events
            )
        else:
            session = self._run_parallel(
                prog, sm, config, run_budget, items, workers, checkpoint,
                events, resumed=snapshot is not None,
            )

        total = self._fold_base(checkpoint, session)
        if checkpoint is not None:
            checkpoint.clear()
        return RunOutcome(total, cache_hit, resumed=snapshot is not None)

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _copy_stats(stats: ExecutionStats) -> ExecutionStats:
        """A detached copy (merge into a fresh instance)."""
        copy = ExecutionStats()
        copy.merge(stats)
        return copy

    def _run_sequential(
        self, prog, sm, config, budget, items, checkpoint, events
    ) -> ExecutionResult:
        """One Explorer call; the checkpoint hook snapshots mid-run."""
        explorer = Explorer(
            prog, sm, config,
            budget=budget, events=events, checkpoint=checkpoint,
        )
        configs = [cfg for cfg, _ in items]
        depths = [depth for _, depth in items]
        return explorer.explore(configs, depths=depths)

    def _run_parallel(
        self, prog, sm, config, budget, items, workers, checkpoint, events,
        resumed: bool,
    ) -> ExecutionResult:
        """Seed (unless resuming), then explore in checkpointed rounds.

        Each round hands at most ``round_items`` frontier items to the
        worker pool with the budget that remains after everything this
        invocation has already done, and the unprocessed remainder is
        snapshotted between rounds — so a kill at any round boundary
        resumes with exactly the path set one uninterrupted run covers.
        """
        parts: List[ExecutionResult] = []
        session = ExecutionResult([], ExecutionStats())

        if not resumed:
            seeder = Explorer(
                prog, sm, config,
                budget=budget, events=events, checkpoint=checkpoint,
            )
            configs = [cfg for cfg, _ in items]
            items, seed_result = seeder.explore_frontier(
                configs, workers * SEED_FACTOR
            )
            parts.append(seed_result)
            session = merge_results(parts)
            if not items:
                return session

        pex = ParallelExplorer(
            prog, sm, config, events=events, workers=workers,
        )
        chunk = self.round_items if self.round_items > 0 else len(items)
        remaining = list(items)
        while remaining:
            batch, remaining = remaining[:chunk], remaining[chunk:]
            round_budget = budget.shard_slice(
                1,
                steps_spent=session.stats.commands_executed,
                paths_found=session.stats.paths_finished,
            )
            part = pex.explore_items(batch, budget=round_budget)
            parts.append(part)
            session = merge_results(parts)
            if remaining and checkpoint is not None:
                checkpoint.save(tuple(remaining), session.finals, session.stats)
        return session

    @staticmethod
    def _fold_base(checkpoint, session: ExecutionResult) -> ExecutionResult:
        """Merge a resumed base (if any) with this invocation's run."""
        if checkpoint is None or checkpoint.base_stats is None:
            return session
        base = ExecutionResult(
            list(checkpoint.base_finals),
            JobRunner._copy_stats(checkpoint.base_stats),
        )
        return merge_results([base, session])
