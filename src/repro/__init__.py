"""Gillian, Part I — a multi-language platform for symbolic execution.

Python reproduction of Fragoso Santos, Maksimović, Ayoun & Gardner,
PLDI 2020.  The platform's core is a symbolic execution engine for the
intermediate language GIL, parametric on the memory model of the target
language; see DESIGN.md for the system inventory and EXPERIMENTS.md for
the reproduced evaluation.

Quickstart::

    from repro import SymbolicTester, WhileLanguage

    source = '''
    proc main() {
      n := symb_number();
      assume(0 <= n and n <= 10);
      assert(n * n <= 100);
      return null;
    }
    '''
    result = SymbolicTester(WhileLanguage()).run_source(source, "main")
    assert result.passed
"""

from repro.engine.budget import Budget, StopReason
from repro.engine.concolic import ConcolicTester
from repro.engine.config import EngineConfig, gillian, javert2_baseline
from repro.engine.events import EventBus
from repro.engine.explorer import Explorer
from repro.engine.strategy import SearchStrategy, make_strategy, strategy_names
from repro.logic.solver import SatResult, Solver
from repro.testing.harness import Bug, SuiteResult, SymbolicTester, TestResult

__version__ = "1.1.0"

__all__ = [
    "Budget",
    "Bug",
    "ConcolicTester",
    "EngineConfig",
    "EventBus",
    "Explorer",
    "SatResult",
    "SearchStrategy",
    "Solver",
    "StopReason",
    "SuiteResult",
    "SymbolicTester",
    "TestResult",
    "WhileLanguage",
    "MiniJSLanguage",
    "MiniCLanguage",
    "MiniRustLanguage",
    "gillian",
    "javert2_baseline",
    "make_strategy",
    "strategy_names",
]


def __getattr__(name):
    # Lazy imports keep `import repro` light and avoid import cycles while
    # the language instantiations pull in their full front ends.
    if name == "WhileLanguage":
        from repro.targets.while_lang import WhileLanguage

        return WhileLanguage
    if name == "MiniJSLanguage":
        from repro.targets.js_like import MiniJSLanguage

        return MiniJSLanguage
    if name == "MiniCLanguage":
        from repro.targets.c_like import MiniCLanguage

        return MiniCLanguage
    if name == "MiniRustLanguage":
        from repro.targets.rust_like import MiniRustLanguage

        return MiniRustLanguage
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
