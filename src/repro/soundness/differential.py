"""Trace-level differential soundness harness (paper Theorem 3.6, E6).

Theorem 3.6 says: restrict the initial symbolic configuration with the
*final* one, pick any concrete configuration it over-approximates, run
concretely — the concrete final configuration is over-approximated by the
symbolic final one (restricted soundness), and at least one concrete
trace exists (restricted completeness).

Operationally, for programs whose non-determinism comes entirely from
``iSym`` (all our symbolic tests): a model ε of the final path condition
fixes every symbolic choice, the scripted concrete allocator replays
those choices, and the concrete run must land on the same outcome with
``⟦v̂⟧ε = v``.  :func:`check_trace_soundness` runs this for *every* final
of a symbolic execution, which is how the test suite validates the whole
engine — GIL semantics, state constructors, allocators, memory models,
and solver — in one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.gil.ops import EvalError, evaluate
from repro.gil.semantics import Final, OutcomeKind
from repro.gil.syntax import Prog
from repro.gil.values import Value, values_equal
from repro.logic.expr import Expr
from repro.logic.solver import Solver
from repro.state.allocator import ConcreteAllocator
from repro.state.concrete import ConcreteStateModel
from repro.state.symbolic import SymbolicStateModel
from repro.targets.language import Language


@dataclass
class TraceCheck:
    """The verdict for one symbolic final configuration."""

    kind: OutcomeKind
    model: Optional[Dict[str, Value]]
    replayed: bool          # a concrete trace exists (MA-RC analogue)
    outcome_matches: bool   # concrete outcome over-approximated (MA-RS)
    detail: str = ""

    @property
    def ok(self) -> bool:
        # A final whose path condition has no verified model is skipped
        # (replayed=False with empty detail), not a failure.
        return self.outcome_matches


@dataclass
class DifferentialReport:
    """All trace checks from one differential (symbolic vs concrete) run."""

    checks: List[TraceCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def replayed(self) -> int:
        return sum(1 for c in self.checks if c.replayed)


def check_trace_soundness(
    language: Language,
    prog: Prog,
    entry: str,
    config: Optional[EngineConfig] = None,
) -> DifferentialReport:
    """Symbolically execute ``entry``; replay every final concretely."""
    config = config if config is not None else EngineConfig()
    solver = Solver()
    sym_sm = SymbolicStateModel(language.symbolic_memory(), solver=solver)
    sym_result = Explorer(prog, sym_sm, config).run(entry)

    report = DifferentialReport()
    for fin in sym_result.finals:
        if fin.kind is OutcomeKind.VANISH:
            continue
        report.checks.append(check_final(language, prog, entry, fin, solver, config))
    return report


def check_final(
    language: Language,
    prog: Prog,
    entry: str,
    fin: Final,
    solver: Solver,
    config: EngineConfig,
) -> TraceCheck:
    """Replay one symbolic final concretely (Thm. 3.6 for a single trace).

    Exposed on its own so other confirmers — notably the incorrectness
    arm's true-positive discharge (:func:`repro.specs.incorrectness.find_bugs`)
    — can validate individual finals without re-running the whole
    symbolic side.
    """
    model = solver.get_model(fin.state.pc.conjuncts)
    if model is None:
        return TraceCheck(fin.kind, None, False, True, "no verified model")

    allocator = ConcreteAllocator(script=dict(model))
    conc_sm = ConcreteStateModel(language.concrete_memory(), allocator)
    try:
        conc_result = Explorer(prog, conc_sm, config).run(entry)
    except Exception as exc:
        return TraceCheck(fin.kind, model, False, False, f"replay crashed: {exc}")

    finals = [f for f in conc_result.finals if f.kind is not OutcomeKind.VANISH]
    if len(finals) != 1:
        return TraceCheck(
            fin.kind, model, False, False,
            f"expected one concrete outcome, got {len(finals)}",
        )
    conc = finals[0]
    if conc.kind is not fin.kind:
        return TraceCheck(
            fin.kind, model, True, False,
            f"outcome kind mismatch: symbolic {fin.kind} vs concrete {conc.kind}",
        )
    matches, detail = _values_match(fin.value, conc.value, model)
    return TraceCheck(fin.kind, model, True, matches, detail)


def _values_match(sym_value, conc_value, model: Dict[str, Value]):
    """⟦v̂⟧ε = v, up to the error values the interpreter synthesises."""
    if isinstance(sym_value, Expr):
        # ε only constrains variables the path condition mentions; inputs
        # the path left unconstrained were replayed with the scripted
        # allocator's default (0), so the interpretation must pick the
        # same arbitrary value (Thm. 3.6 allows any concrete choice).
        from repro.logic.expr import free_lvars

        env = dict(model)
        for name in free_lvars(sym_value):
            env.setdefault(name, 0)
        try:
            interpreted = evaluate(sym_value, lvar_env=env)
        except EvalError as exc:
            return False, f"symbolic outcome value uninterpretable: {exc}"
        if isinstance(conc_value, str) and not isinstance(interpreted, str):
            # Interpreter-synthesised error messages (eval errors) are
            # compared by kind only.
            return True, "error message (kind-level match)"
        if not _loose_equal(interpreted, conc_value):
            return False, f"outcome value mismatch: {interpreted!r} vs {conc_value!r}"
        return True, ""
    # Plain values (e.g. interpreter-made error strings): compare loosely.
    if isinstance(sym_value, str) and isinstance(conc_value, str):
        return True, "error message (kind-level match)"
    return _loose_equal(sym_value, conc_value), ""


def _loose_equal(a, b) -> bool:
    try:
        return values_equal(a, b)
    except TypeError:
        return a == b
