"""Executable soundness machinery: restriction, interpretations,
differential replay, relaxed trace composition (paper §3)."""

from repro.soundness.composition import (
    CompositionError,
    RelaxedTraceBuilder,
    can_compose,
    strengthen,
)
from repro.soundness.differential import DifferentialReport, check_trace_soundness
from repro.soundness.interpretation import ActionCheckReport, check_action
from repro.soundness.restriction import (
    check_idempotence,
    check_right_commutativity,
    check_state_monotonicity,
    check_weakening,
    induced_preorder,
    restrict_alloc,
    restrict_config,
    restrict_pc,
    restrict_state,
)

__all__ = [
    "ActionCheckReport", "CompositionError", "DifferentialReport",
    "RelaxedTraceBuilder", "can_compose", "check_action", "check_idempotence",
    "check_right_commutativity", "check_state_monotonicity", "check_weakening",
    "check_trace_soundness", "induced_preorder", "restrict_alloc",
    "restrict_config", "restrict_pc", "restrict_state", "strengthen",
]
