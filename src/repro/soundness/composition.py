"""Relaxed trace composition ⇝Z (paper §3.1).

    "At any point during trace construction, we can extend the current
     configuration with additional information that does not conflict
     with what is already known. ... cf′₁ ⇃cf₂ = cf₂ means that, at any
     point during the construction of the symbolic trace, we may safely
     add more information to the current path condition.  This gives us
     permission to arbitrarily drop paths in the analysis by need."

This module implements the ⇝Z closure operator as an executable trace
builder: segments of ordinary execution may be stitched together whenever
the composition side-condition holds — the second segment's start must be
a *restriction-fixpoint* of the first segment's end (it already contains
all of its information).  The engine's path dropping and the symbolic
tester's mid-run assumption strengthening are both instances; the tests
validate the three closure rules directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.gil.semantics import Config, Final
from repro.gil.syntax import Prog
from repro.logic.expr import Expr
from repro.soundness.restriction import restrict_config


class CompositionError(Exception):
    """The ⇝Z side-condition failed: the segments do not compose."""


def can_compose(cf1_end: Config, cf2_start: Config) -> bool:
    """The [Composition] premise: cf′₁ ⇃cf₂ = cf₂.

    Restricting the first segment's final configuration by the second's
    initial configuration must give exactly the second's initial
    configuration — i.e. cf₂ already carries all of cf′₁'s information
    (same control point, call stack, memory, store; a path condition at
    least as strong; an allocator at least as advanced).
    """
    if cf1_end.stack != cf2_start.stack or cf1_end.idx != cf2_start.idx:
        return False
    restricted = restrict_config(cf1_end, cf2_start)
    return restricted.state == cf2_start.state


def strengthen(cf: Config, extra: Tuple[Expr, ...]) -> Config:
    """Mid-trace strengthening: conjoin extra path-condition conjuncts.

    The resulting configuration is always a valid ⇝Z continuation point
    of ``cf`` (it differs only by added information), which the
    composition check verifies.
    """
    state = cf.state.with_pc(cf.state.pc.conjoin_all(extra))
    out = Config(state, cf.stack, cf.idx)
    assert can_compose(cf, out), "strengthening must satisfy the ⇝Z premise"
    return out


@dataclass
class TraceSegment:
    """One ⇝* run: initial configuration to final configurations."""

    start: Config
    ends: List[Config] = field(default_factory=list)
    finals: List[Final] = field(default_factory=list)


class RelaxedTraceBuilder:
    """Builds ⇝Z traces: run a segment, strengthen, run on, compose."""

    def __init__(self, prog: Prog, state_model, config: Optional[EngineConfig] = None):
        self.prog = prog
        self.sm = state_model
        self.config = config if config is not None else EngineConfig()
        self.segments: List[TraceSegment] = []

    def run_segment(self, cfg: Config, steps: int) -> TraceSegment:
        """Execute up to ``steps`` commands from ``cfg`` (all branches)."""
        from repro.gil.semantics import step

        segment = TraceSegment(start=cfg)
        worklist = [(cfg, 0)]
        while worklist:
            current, depth = worklist.pop()
            if depth >= steps:
                segment.ends.append(current)
                continue
            successors, finished = step(self.prog, self.sm, current)
            segment.finals.extend(finished)
            for succ in successors:
                worklist.append((succ, depth + 1))
        self.segments.append(segment)
        return segment

    def compose(
        self, segment_end: Config, continuation: Config
    ) -> Config:
        """[Composition]: continue from ``continuation`` if the premise
        holds; raises :class:`CompositionError` otherwise."""
        if not can_compose(segment_end, continuation):
            raise CompositionError(
                "cf'1 ⇃cf2 != cf2: the continuation lacks information from "
                "the first segment"
            )
        return continuation

    def run_to_finals(self, cfg: Config) -> List[Final]:
        """Finish the trace: explore from ``cfg`` to all finals."""
        result = Explorer(self.prog, self.sm, self.config).explore([cfg])
        return result.finals
