"""Memory interpretations and the MA-RS / MA-RC checks (paper §3.2).

A memory interpretation function ``I(ε, µ̂) = µ`` links a symbolic memory
model to a concrete one.  Definition 3.7 requires two properties of every
action α, which this module turns into *executable checks*:

* **MA-RS** (restricted soundness): if ``µ̂.α(ê, π) ⇝ (µ̂′, ê′, π′)`` and
  ``⟦π ∧ π′⟧ε = true`` and ``µ = I(ε, µ̂)`` and ``µ.α(⟦ê⟧ε) ⇝ (µ′, v)``,
  then ``µ′ = I(ε, µ̂′)`` and ``v = ⟦ê′⟧ε``.
* **MA-RC** (restricted completeness): under the same hypotheses, *some*
  concrete transition ``µ.α(⟦ê⟧ε) ⇝ (µ′, v)`` exists.

The test suites instantiate these checks with randomly generated
memories, actions, and logical environments for each target language —
the empirical counterpart of Lemma 3.11's proof obligation, which is
exactly what Gillian asks of a tool developer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.gil.ops import EvalError, evaluate
from repro.gil.values import Value, values_equal
from repro.logic.expr import Expr
from repro.logic.pathcond import PathCondition
from repro.logic.solver import Solver
from repro.state.interface import (
    ConcreteMemoryModel,
    MemErr,
    MemOk,
    SymbolicMemoryModel,
    SymMemErr,
    SymMemOk,
)

#: I : (X̂ ⇀ V) → |M̂| → |M| — may raise to signal "undefined under ε".
Interpretation = Callable[[Dict[str, Value], object], object]


@dataclass
class ActionCheckReport:
    """The outcome of checking MA-RS/MA-RC for one action application."""

    action: str
    branches_checked: int
    soundness_ok: bool
    completeness_ok: bool
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.soundness_ok and self.completeness_ok


def check_action(
    concrete: ConcreteMemoryModel,
    symbolic: SymbolicMemoryModel,
    interpret: Interpretation,
    env: Dict[str, Value],
    sym_memory: object,
    action: str,
    arg: Expr,
    pc: Optional[PathCondition] = None,
    solver: Optional[Solver] = None,
) -> ActionCheckReport:
    """Check MA-RS and MA-RC for one (µ̂, α, ê, π, ε) instance."""
    pc = pc if pc is not None else PathCondition.true()
    solver = solver if solver is not None else Solver()

    try:
        conc_memory = interpret(env, sym_memory)
    except Exception as exc:  # interpretation undefined under ε
        return ActionCheckReport(action, 0, True, True, f"I undefined: {exc}")

    try:
        conc_arg = evaluate(arg, lvar_env=env)
    except EvalError as exc:
        return ActionCheckReport(action, 0, True, True, f"⟦ê⟧ε undefined: {exc}")

    sym_branches = symbolic.execute(action, sym_memory, arg, pc, solver)
    checked = 0
    for branch in sym_branches:
        learned = branch.learned
        # Does ε satisfy π ∧ π′?  If not, this branch says nothing about ε.
        if not _env_satisfies(env, list(pc) + list(learned)):
            continue
        checked += 1
        conc_branches = concrete.execute(action, conc_memory, conc_arg)
        if isinstance(branch, SymMemOk):
            ok_branches = [b for b in conc_branches if isinstance(b, MemOk)]
            if not ok_branches:
                return ActionCheckReport(
                    action, checked, True, False,
                    f"MA-RC fails: no concrete Ok transition for {branch!r}",
                )
            expected_value = evaluate(branch.expr, lvar_env=env)
            expected_memory = interpret(env, branch.memory)
            matched = any(
                values_equal(b.value, expected_value)
                and b.memory == expected_memory
                for b in ok_branches
            )
            if not matched:
                return ActionCheckReport(
                    action, checked, False, True,
                    "MA-RS fails: concrete result disagrees with "
                    f"interpreted symbolic result for {branch!r}",
                )
        elif isinstance(branch, SymMemErr):
            err_branches = [b for b in conc_branches if isinstance(b, MemErr)]
            if not err_branches:
                return ActionCheckReport(
                    action, checked, False, True,
                    f"MA-RS fails: symbolic error branch {branch!r} has no "
                    "concrete error counterpart",
                )
    return ActionCheckReport(action, checked, True, True)


def _env_satisfies(env: Dict[str, Value], conjuncts: List[Expr]) -> bool:
    for c in conjuncts:
        try:
            if evaluate(c, lvar_env=env) is not True:
                return False
        except EvalError:
            return False
    return True
