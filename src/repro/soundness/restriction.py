"""Restriction (paper §3.1, Definitions 3.1–3.4).

Restriction generalises path conditions: ``x₁ ⇃x₂`` strengthens ``x₁``
with information from ``x₂``.  The paper proves soundness *parametrically*
in any restriction operator satisfying three laws; this module packages
the operators used by the reproduction (on path conditions, allocation
records, symbolic states, and configurations) and provides *executable
checkers* for the laws, which the property-based test suite instantiates
with randomly generated values — the empirical counterpart of the paper's
proofs.

Laws (Def. 3.1):

* idempotence:           ``x ⇃x = x``
* right commutativity:   ``(x₁ ⇃x₂) ⇃x₃ = (x₁ ⇃x₃) ⇃x₂``
* weakening:             ``x₁ ⇃x₂⇃x₃ = x₁  ⟹  x₁ ⇃x₂ = x₁ ∧ x₁ ⇃x₃ = x₁``

Every restriction induces a pre-order ``x₂ ⊑ x₁ ⟺ x₂ ⇃x₁ = x₂``; state
restriction must additionally be monotone w.r.t. action execution
(Def. 3.2) and allocator restriction w.r.t. allocation (Def. 3.3) —
checked by :func:`check_state_monotonicity` and the allocator tests.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.gil.semantics import Config
from repro.logic.pathcond import PathCondition
from repro.state.allocator import AllocRecord
from repro.state.symbolic import SymbolicState

X = TypeVar("X")
Restriction = Callable[[X, X], X]


# -- the restriction operators used in this reproduction ----------------------


def restrict_pc(pc1: PathCondition, pc2: PathCondition) -> PathCondition:
    """π₁ ⇃π₂ = π₁ ∧ π₂ — the classical path-condition strengthening."""
    return pc1.extend(pc2)


def restrict_alloc(r1: AllocRecord, r2: AllocRecord) -> AllocRecord:
    """ξ₁ ⇃ξ₂ — per-site maximum of allocation counters."""
    return r1.restrict(r2)


def restrict_state(s1: SymbolicState, s2: SymbolicState) -> SymbolicState:
    """σ₁ ⇃σ₂ (Def. 3.9): conjoin path conditions, merge allocators."""
    return s1.restrict(s2)


def restrict_config(c1: Config, c2: Config) -> Config:
    """⟨σ, cs, i⟩ ⇃⟨σ′,−,−⟩ ≜ ⟨σ ⇃σ′, cs, i⟩ (paper, before Thm. 3.6)."""
    return Config(restrict_state(c1.state, c2.state), c1.stack, c1.idx)


def induced_preorder(restrict: Restriction) -> Callable[[X, X], bool]:
    """x₂ ⊑ x₁ ⟺ x₂ ⇃x₁ = x₂."""

    def precedes(x2: X, x1: X) -> bool:
        return restrict(x2, x1) == x2

    return precedes


# -- law checkers (used by the property-based tests) ---------------------------


def check_idempotence(restrict: Restriction, x: X) -> bool:
    return restrict(x, x) == x


def check_right_commutativity(restrict: Restriction, x1: X, x2: X, x3: X) -> bool:
    return restrict(restrict(x1, x2), x3) == restrict(restrict(x1, x3), x2)


def check_weakening(restrict: Restriction, x1: X, x2: X, x3: X) -> bool:
    """If x₁ gains nothing from x₂ ⇃x₃ combined, it gains nothing from
    either alone."""
    if restrict(x1, restrict(x2, x3)) != x1:
        return True  # antecedent false: vacuously holds
    return restrict(x1, x2) == x1 and restrict(x1, x3) == x1


def check_associativity(restrict: Restriction, x1: X, x2: X, x3: X) -> bool:
    return restrict(restrict(x1, x2), x3) == restrict(x1, restrict(x2, x3))


def check_state_monotonicity(state_before, state_after) -> bool:
    """Def. 3.2: σ.α(v) ⇝ (σ′, −) implies σ′ ⊑ σ."""
    return state_after.precedes(state_before)


# -- compatibility (Def. 3.4) --------------------------------------------------


def check_restriction_increases_precision(
    leq: Callable[[X, X], bool], restrict: Restriction, x1: X, x2: X
) -> bool:
    """⇃-≤ compatibility: x₁ ⇃x₂ ≤ x₁."""
    return leq(restrict(x1, x2), x1)


def check_precision_implies_preorder(
    leq: Callable[[X, X], bool], restrict: Restriction, x1: X, x2: X
) -> bool:
    """≤-⇃ compatibility: x₂ ≤ x₁ ⟹ x₂ ⊑ x₁."""
    if not leq(x2, x1):
        return True
    return induced_preorder(restrict)(x2, x1)
