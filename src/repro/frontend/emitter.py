"""A label-resolving GIL code emitter shared by the three compilers.

The paper's compiler (Fig. 2) threads an explicit program counter; doing
that by hand for structured control flow is error-prone, so compilers emit
commands whose jump targets may be :class:`Label` placeholders, marked at
positions as compilation proceeds, and resolved to integer indices by
:meth:`Emitter.finish`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.gil.syntax import Command, Goto, IfGoto


class Label:
    """A forward-referenceable code position."""

    __slots__ = ("name",)

    _counter = 0

    def __init__(self, name: str = "") -> None:
        Label._counter += 1
        self.name = name or f"L{Label._counter}"

    def __repr__(self) -> str:
        return self.name


class Emitter:
    """Accumulates commands; resolves labels on :meth:`finish`."""

    def __init__(self) -> None:
        self._cmds: List[Command] = []
        self._positions: Dict[Label, int] = {}
        self._temp = 0

    def fresh_temp(self, prefix: str = "t") -> str:
        """A fresh compiler-generated variable name."""
        self._temp += 1
        return f"__{prefix}{self._temp}"

    @property
    def next_index(self) -> int:
        return len(self._cmds)

    def emit(self, cmd: Command) -> int:
        idx = len(self._cmds)
        self._cmds.append(cmd)
        return idx

    def mark(self, label: Label) -> None:
        """Bind ``label`` to the position of the next emitted command."""
        if label in self._positions:
            raise ValueError(f"label {label!r} marked twice")
        self._positions[label] = len(self._cmds)

    def finish(self) -> Tuple[Command, ...]:
        """Resolve all Label targets to integer indices."""
        resolved: List[Command] = []
        for cmd in self._cmds:
            if isinstance(cmd, IfGoto) and isinstance(cmd.target, Label):
                resolved.append(IfGoto(cmd.condition, self._resolve(cmd.target)))
            elif isinstance(cmd, Goto) and isinstance(cmd.target, Label):
                resolved.append(Goto(self._resolve(cmd.target)))
            else:
                resolved.append(cmd)
        return tuple(resolved)

    def _resolve(self, label: Label) -> int:
        if label not in self._positions:
            raise ValueError(f"label {label!r} never marked")
        return self._positions[label]
