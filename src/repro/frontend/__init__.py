"""Shared front-end utilities: lexer and label-resolving GIL emitter."""

from repro.frontend.emitter import Emitter, Label
from repro.frontend.lexer import LexError, ParseError, Token, TokenStream, tokenize

__all__ = ["Emitter", "Label", "LexError", "ParseError", "Token", "TokenStream", "tokenize"]
