"""A shared tokenizer for the target-language front ends.

All three TL parsers (While, MiniJS, MiniC) consume the same token stream:
identifiers, numeric and string literals, and a configurable set of
multi-character and single-character operators.  Comments are ``//`` to
end of line and ``/* ... */``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Token:
    """One lexed token with its source position."""

    kind: str       # "ident" | "number" | "string" | "punct" | "eof"
    text: str
    line: int
    col: int

    @property
    def number_value(self):
        if "." in self.text or "e" in self.text or "E" in self.text:
            return float(self.text)
        return int(self.text)


class LexError(Exception):
    """Raised on an unlexable character sequence."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} at line {line}, column {col}")
        self.line = line
        self.col = col


_DEFAULT_PUNCT = [
    # longest first
    "<<=", ">>=", "===", "!==",
    "==", "!=", "<=", ">=", "&&", "||", ":=", "++", "--", "->", "+=", "-=",
    "*=", "/=", "%=", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ",", ";", ":", ".", "?",
]


def tokenize(
    source: str,
    punct: Optional[Sequence[str]] = None,
    char_literals: bool = False,
) -> List[Token]:
    """Tokenize ``source``; the result always ends with an ``eof`` token.

    With ``char_literals=True`` (MiniC), single-quoted literals produce
    tokens of kind ``"char"`` instead of ``"string"``.
    """
    ops = sorted(punct if punct is not None else _DEFAULT_PUNCT, key=len, reverse=True)
    tokens: List[Token] = []
    i, line, col = 0, 1, 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch.isalpha() or ch == "_":
            start, start_line, start_col = i, line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            tokens.append(Token("ident", source[start:i], start_line, start_col))
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and source[i + 1].isdigit()
        ):
            start, start_line, start_col = i, line, col
            while i < n and (source[i].isdigit() or source[i] == "."):
                advance(1)
            if i < n and source[i] in "eE":
                advance(1)
                if i < n and source[i] in "+-":
                    advance(1)
                while i < n and source[i].isdigit():
                    advance(1)
            tokens.append(Token("number", source[start:i], start_line, start_col))
            continue
        if ch in "\"'":
            quote = ch
            start_line, start_col = line, col
            advance(1)
            chars: List[str] = []
            while i < n and source[i] != quote:
                if source[i] == "\\":
                    advance(1)
                    if i >= n:
                        break
                    esc = source[i]
                    chars.append(
                        {"n": "\n", "t": "\t", "r": "\r", "0": "\0"}.get(esc, esc)
                    )
                    advance(1)
                else:
                    chars.append(source[i])
                    advance(1)
            if i >= n:
                raise LexError("unterminated string literal", start_line, start_col)
            advance(1)
            kind = "char" if char_literals and quote == "'" else "string"
            tokens.append(Token(kind, "".join(chars), start_line, start_col))
            continue
        for op in ops:
            if source.startswith(op, i):
                tokens.append(Token("punct", op, line, col))
                advance(len(op))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens


class TokenStream:
    """A cursor over a token list with the usual parser conveniences."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def at(self, text: str, kind: str = "punct") -> bool:
        tok = self.current
        return tok.kind == kind and tok.text == text

    def at_ident(self, text: str) -> bool:
        return self.at(text, kind="ident")

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, text: str, kind: str = "punct") -> Optional[Token]:
        if self.at(text, kind):
            return self.advance()
        return None

    def expect(self, text: str, kind: str = "punct") -> Token:
        tok = self.current
        if tok.kind != kind or tok.text != text:
            raise ParseError(
                f"expected {text!r}, found {tok.text!r} ({tok.kind})", tok
            )
        return self.advance()

    def expect_kind(self, kind: str) -> Token:
        tok = self.current
        if tok.kind != kind:
            raise ParseError(f"expected {kind}, found {tok.text!r}", tok)
        return self.advance()


class ParseError(Exception):
    """Raised when the token stream does not match the grammar."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} at line {token.line}, column {token.col}")
        self.token = token
