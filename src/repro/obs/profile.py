"""Phase profiling: wall-clock/step spans emitted as bus events.

The engine already stamps its own coarse phases — the scheduler emits
``SpanEnd("explore", ...)`` / ``SpanEnd("seed", ...)``, the parallel
explorer ``"shards"`` / ``"merge"``, the testing harness ``"compile"``,
and (under ``EngineConfig.profile_solver_phases``) the solver's
``"solver/split"`` / ``"solver/propagation"`` / ``"solver/search"``
pipeline phases.  This module is for everything *around* the engine:

* :class:`PhaseProfiler` wraps arbitrary caller code in named spans and
  emits the same :class:`~repro.engine.events.SpanEnd` events, so a
  benchmark's setup or a host tool's post-processing shows up in the
  same trace timeline as the engine's own phases;
* :func:`solver_phase_spans` converts a solver's accrued phase counters
  into span events after the fact, for callers that drive the solver
  directly rather than through an :class:`~repro.engine.explorer.Explorer`.

Both honour the bus truthiness contract: with no bus (or no subscriber)
a span costs two ``perf_counter`` calls and nothing else.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.engine.events import EventBus, SpanEnd


class Span:
    """One live phase measurement; ends (and emits) on context exit.

    ``steps`` attributes work units to the phase: assign or
    :meth:`add` before the span closes.
    """

    __slots__ = ("name", "steps", "_bus", "_start", "_closed")

    def __init__(self, name: str, bus: Optional[EventBus]) -> None:
        self.name = name
        self.steps = 0
        self._bus = bus
        self._start = time.perf_counter()
        self._closed = False

    def add(self, steps: int = 1) -> None:
        self.steps += steps

    def end(self) -> SpanEnd:
        """Close the span (idempotent) and return the event emitted."""
        event = SpanEnd(
            self.name, time.perf_counter() - self._start, self.steps
        )
        if not self._closed and self._bus:
            self._bus.emit(event)
        self._closed = True
        return event

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class PhaseProfiler:
    """Emits a :class:`SpanEnd` per named phase of caller code.

    Usage::

        profiler = PhaseProfiler(bus)
        with profiler.span("compile") as s:
            prog = language.compile(source)
            s.add(len(prog.procs))

    Spans may nest and overlap freely — each is an independent
    measurement; the report CLI renders them as a flat phase table.
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.bus = bus

    def span(self, name: str) -> Span:
        return Span(name, self.bus)


#: the solver pipeline phases, in pipeline order, with the
#: ``SolverStats`` attribute each one's wall clock accrues in
SOLVER_PHASES = (
    ("solver/split", "split_time"),
    ("solver/propagation", "propagation_time"),
    ("solver/search", "search_time"),
)


def solver_phase_spans(solver, bus: Optional[EventBus]) -> List[SpanEnd]:
    """Emit one span per solver pipeline phase from accrued stats.

    For callers driving a ``Solver(profile_phases=True)`` directly
    (the explorer emits these itself at the end of a run).  Phases with
    zero accrued time are skipped; returns the events emitted.
    """
    events: List[SpanEnd] = []
    for name, attr in SOLVER_PHASES:
        seconds = getattr(solver.stats, attr, 0.0)
        if not seconds:
            continue
        event = SpanEnd(name, seconds, 0)
        if bus:
            bus.emit(event)
        events.append(event)
    return events
