"""Per-job service metrics: what the analysis daemon reports about itself.

A thin, named façade over :class:`~repro.obs.metrics.MetricsRegistry` so
the service layer increments well-known instruments instead of scattering
string literals.  The instrument set (all under the ``service.`` prefix):

* ``service.queue_depth`` (gauge) — pending jobs at last poll (the
  backpressure signal);
* ``service.checkpoint_age`` (gauge) — seconds since the running job's
  last durable snapshot (staleness = crash replay cost);
* ``service.jobs_submitted`` / ``service.jobs_completed`` /
  ``service.jobs_retried`` / ``service.jobs_quarantined`` (counters) —
  the job lifecycle ledger;
* ``service.cache_hit_result`` / ``service.cache_hit_gil`` /
  ``service.cache_miss`` (counters) — the cache tiers: a whole-run
  replay hit, a compiled-program hit, or neither;
* ``service.jobs_degraded`` (counter) — jobs admitted above level 0 on
  the degradation ladder;
* ``service.degraded`` (counter) — integrity degradations: corrupted
  cache/checkpoint entries detected by checksum and evicted.

:meth:`ServiceMetrics.flush` emits every reading as
:class:`~repro.engine.events.MetricSample` events on a bus, so service
health rides the same obs pipeline (collector, trace reports) as engine
metrics — documented in ``docs/service.md``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.events import EventBus
from repro.obs.metrics import MetricsRegistry


class ServiceMetrics:
    """The daemon's instrument panel (see module docstring)."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Wrap ``registry`` (a fresh one by default)."""
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- lifecycle ----------------------------------------------------------

    def job_submitted(self) -> None:
        """A job entered the queue."""
        self.registry.counter("service.jobs_submitted").inc()

    def job_completed(self) -> None:
        """A job finished and was acked."""
        self.registry.counter("service.jobs_completed").inc()

    def job_retried(self) -> None:
        """A failed job was requeued with backoff."""
        self.registry.counter("service.jobs_retried").inc()

    def job_quarantined(self) -> None:
        """A job was declared poison."""
        self.registry.counter("service.jobs_quarantined").inc()

    def job_degraded(self) -> None:
        """A job was admitted above level 0 on the degradation ladder."""
        self.registry.counter("service.jobs_degraded").inc()

    # -- caches and integrity -----------------------------------------------

    def cache_hit_result(self) -> None:
        """A submission was served from the whole-run result store."""
        self.registry.counter("service.cache_hit_result").inc()

    def cache_hit_gil(self) -> None:
        """A run reused a cached compiled GIL program."""
        self.registry.counter("service.cache_hit_gil").inc()

    def cache_miss(self) -> None:
        """A run compiled and executed from scratch."""
        self.registry.counter("service.cache_miss").inc()

    def integrity_degraded(self) -> None:
        """A checksummed entry failed validation and was evicted."""
        self.registry.counter("service.degraded").inc()

    # -- gauges -------------------------------------------------------------

    def queue_depth(self, depth: int) -> None:
        """Record the pending-queue depth observed at a poll."""
        self.registry.gauge("service.queue_depth").set(depth)

    def checkpoint_age(self, seconds: float) -> None:
        """Record the running job's snapshot staleness."""
        self.registry.gauge("service.checkpoint_age").set(seconds)

    # -- reporting ----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready snapshot of every instrument."""
        return self.registry.as_dict()

    def flush(self, bus: Optional[EventBus]) -> int:
        """Emit all readings as MetricSample events; returns the count."""
        return self.registry.flush(bus)
