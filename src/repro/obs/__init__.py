"""Observability: metrics, phase profiling, and trace analysis.

The engine's :class:`~repro.engine.events.EventBus` already puts every
interesting occurrence — steps, branches, path ends, solver queries,
degradations, shard failures — on a near-zero-overhead bus.  This
package is the consumer side:

* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with the
  same idle-overhead contract as the bus (hold ``None``, pay one falsy
  check) and a deterministic, order-independent merge so per-worker
  registries aggregate to the same totals under any scheduling;
* :mod:`repro.obs.collect` — :class:`~repro.obs.collect.MetricsCollector`
  subscribes a registry to a bus and folds every engine event (including
  :class:`~repro.engine.events.WorkerEvent`-wrapped ones from parallel
  runs) into metrics;
* :mod:`repro.obs.profile` — per-phase wall-clock/step spans emitted as
  :class:`~repro.engine.events.SpanEnd` events;
* :mod:`repro.obs.report` — the trace-analysis CLI
  (``python -m repro.obs.report trace.jsonl``) turning a JSONL trace
  into the paper-style run breakdown (§5-style solver/exploration
  buckets);
* :mod:`repro.obs.smoke` — the ``make verify`` end-to-end check: record
  a real trace, run the report, assert the required sections exist;
* :mod:`repro.obs.service` — :class:`~repro.obs.service.ServiceMetrics`,
  the analysis daemon's counter/gauge surface (jobs, cache tiers,
  degradation, integrity evictions) over the same registry.

See ``docs/events.md`` for the event schema and ``docs/architecture.md``
for where observability sits in the engine dataflow.
"""

from repro.obs.collect import MetricsCollector
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler, solver_phase_spans

__all__ = [
    "MetricsCollector",
    "MetricsRegistry",
    "PhaseProfiler",
    "ServiceMetrics",
    "TraceReport",
    "analyse_trace",
    "solver_phase_spans",
]


def __getattr__(name):
    # Lazy so ``python -m repro.obs.report`` does not import the report
    # module twice (runpy warns when the -m target is already loaded).
    if name in ("TraceReport", "analyse_trace"):
        from repro.obs import report

        return getattr(report, name)
    if name == "ServiceMetrics":
        from repro.obs.service import ServiceMetrics

        return ServiceMetrics
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
