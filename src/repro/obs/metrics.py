"""A lightweight metrics layer: counters, gauges, histograms.

Design mirrors the :class:`~repro.engine.events.EventBus` contract:
instrumented code holds an *optional* registry and guards every update
with its truthiness, so a run with metrics disabled pays one falsy check
per site.  There is no background thread, no locking, and no global
state — a registry is a plain object owned by whoever wants numbers.

Two properties matter for the parallel engine:

* **Deterministic merge.**  :meth:`MetricsRegistry.merge` folds another
  registry in with commutative, associative operations only (counters
  and histogram buckets sum; gauges take the max), so merging per-worker
  registries in *any* order — queue-arrival order included — yields the
  same totals.  ``benchmarks/bench_parallel.py`` and the obs tests
  assert this at workers 1/2/4.
* **Flush as events.**  :meth:`MetricsRegistry.flush` emits each reading
  as a :class:`~repro.engine.events.MetricSample` on a bus, which is how
  registries cross process boundaries: a worker flushes to its local
  bus, the samples ride the existing event queue, and the parent's
  :class:`~repro.obs.collect.MetricsCollector` folds them back in.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.engine.events import EventBus, MetricSample

#: default histogram bucket upper bounds (powers of two): small enough
#: to resolve branch fan-out and path depth, few enough to stay cheap
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


class Counter:
    """A monotonically increasing sum (ints or floats)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount


class Gauge:
    """A last-written value that also tracks its maximum.

    The *max* is what merges deterministically across workers (the
    per-process "last" write depends on scheduling), so
    :meth:`MetricsRegistry.merge` and :meth:`MetricsRegistry.flush`
    report ``max``; ``value`` is the process-local reading.
    """

    __slots__ = ("name", "value", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.max = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.max:
            self.max = value


class Histogram:
    """Fixed-bound bucket counts plus count/sum/max.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in the overflow bucket (reported with bound ``inf``).
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "max")

    def __init__(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def bucket_items(self) -> List[Tuple[float, int]]:
        """``(upper bound, count)`` pairs, overflow bound = ``inf``."""
        bounds = list(self.bounds) + [float("inf")]
        return list(zip(bounds, self.counts))


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Instruments are created on first use (``registry.counter("x")``)
    and returned by name thereafter; mixing kinds under one name raises.
    The registry is always truthy — the idle-overhead contract is that
    *instrumented code* holds ``None`` when metrics are off, exactly as
    the scheduler holds an optional bus.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            self._check_fresh(name, self._counters)
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            self._check_fresh(name, self._gauges)
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            self._check_fresh(name, self._histograms)
            inst = self._histograms[name] = Histogram(name, buckets)
        return inst

    def _check_fresh(self, name: str, own: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric {name!r} already registered with a different kind"
                )

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` in with order-independent operations only.

        Counters and histogram buckets sum, gauges take the max — all
        commutative and associative, so per-worker registries merge to
        identical totals under any arrival order.
        """
        for name, c in other._counters.items():
            self.counter(name).value += c.value
        for name, g in other._gauges.items():
            mine = self.gauge(name)
            if g.max > mine.max:
                mine.max = g.max
            mine.value = mine.max
        for name, h in other._histograms.items():
            mine = self.histogram(name, h.bounds)
            if mine.bounds != h.bounds:
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ: "
                    f"{mine.bounds} vs {h.bounds}"
                )
            for i, n in enumerate(h.counts):
                mine.counts[i] += n
            mine.count += h.count
            mine.sum += h.sum
            if h.max > mine.max:
                mine.max = h.max

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready snapshot, deterministically ordered by name."""
        out: Dict[str, object] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            out[name] = {"max": self._gauges[name].max}
        for name in sorted(self._histograms):
            h = self._histograms[name]
            out[name] = {
                "count": h.count,
                "sum": h.sum,
                "max": h.max,
                "buckets": [
                    [bound, n] for bound, n in h.bucket_items() if n
                ],
            }
        return out

    def flush(self, bus: Optional[EventBus]) -> int:
        """Emit every reading as a :class:`MetricSample`; returns the
        sample count.  This is the cross-process path: a worker flushes
        to its local bus at end of run and the samples ride the
        existing event queue to the parent.  Never flush a registry to a
        bus whose collector feeds that same registry — it would absorb
        its own samples and double every counter; detach first."""
        if not bus:
            return 0
        emitted = 0
        for name in sorted(self._counters):
            bus.emit(MetricSample(name, "counter", self._counters[name].value))
            emitted += 1
        for name in sorted(self._gauges):
            bus.emit(MetricSample(name, "gauge", self._gauges[name].max))
            emitted += 1
        for name in sorted(self._histograms):
            h = self._histograms[name]
            for bound, n in h.bucket_items():
                if n:
                    bus.emit(
                        MetricSample(
                            name, "histogram", n, (("le", repr(bound)),)
                        )
                    )
                    emitted += 1
            bus.emit(MetricSample(name, "histogram", h.count, (("stat", "count"),)))
            bus.emit(MetricSample(name, "histogram", h.sum, (("stat", "sum"),)))
            bus.emit(MetricSample(name, "histogram", h.max, (("stat", "max"),)))
            emitted += 3
        return emitted

    def absorb_sample(self, sample: MetricSample) -> None:
        """Fold one flushed :class:`MetricSample` back into this registry.

        The inverse of :meth:`flush`, used by the parent-side collector
        when per-worker samples arrive over the event queue.  Absorption
        is additive for counters and histogram buckets and max-taking
        for gauges, so arrival order does not matter.
        """
        if sample.kind == "counter":
            self.counter(sample.name).value += sample.value
        elif sample.kind == "gauge":
            g = self.gauge(sample.name)
            if sample.value > g.max:
                g.max = sample.value
            g.value = g.max
        elif sample.kind == "histogram":
            labels = dict(sample.labels)
            h = self.histogram(sample.name)
            if "le" in labels:
                bound = float(labels["le"])
                bounds = list(h.bounds) + [float("inf")]
                for i, b in enumerate(bounds):
                    if b == bound:
                        h.counts[i] += int(sample.value)
                        return
                raise ValueError(
                    f"histogram {sample.name!r}: unknown bucket bound {bound}"
                )
            if labels.get("stat") == "count":
                h.count += int(sample.value)
            elif labels.get("stat") == "sum":
                h.sum += sample.value
            elif labels.get("stat") == "max":
                if sample.value > h.max:
                    h.max = sample.value
        else:
            raise ValueError(f"unknown metric kind {sample.kind!r}")
