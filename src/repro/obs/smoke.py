"""End-to-end observability smoke check (wired into ``make verify``).

Records a real JSONL trace — a MiniJS Buckets suite run symbolically
with solver-phase profiling on and a metrics registry flushed at the end
— then runs the :mod:`repro.obs.report` analysis over the file and
asserts the report actually contains what the acceptance criteria
promise: a populated solver-time-by-cache-tier table, a populated branch
fan-out histogram, phase spans, and the flushed metrics.

Usage::

    python -m repro.obs.smoke [--trace PATH] [--show]

``--trace`` keeps the trace at PATH instead of a temp file; ``--show``
prints the rendered Markdown report after the checks.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List

from repro.engine.config import EngineConfig
from repro.engine.events import EventBus
from repro.obs.collect import MetricsCollector
from repro.obs.report import analyse_file
from repro.testing.harness import SymbolicTester
from repro.testing.trace import JsonlEventSink


def record_trace(path: str) -> dict:
    """Run the smoke workload with full instrumentation, tracing to
    ``path``; returns the collected metrics for cross-checking."""
    from repro.targets.js_like import MiniJSLanguage
    from repro.targets.js_like.buckets import suites

    language = MiniJSLanguage()
    name = suites.suite_names()[0]
    source, tests = suites.suite(name)
    bus = EventBus()
    config = EngineConfig(profile_solver_phases=True)
    tester = SymbolicTester(language, config=config, replay=False, events=bus)
    with JsonlEventSink(path, bus):
        collector = MetricsCollector(bus)
        for test in tests:
            tester.run_source(source, test, name=f"{name}.{test}")
        # Detach the collector *before* flushing its own registry to the
        # bus it listened on — a still-attached collector would absorb
        # its own samples and double every counter.  The sink stays
        # attached, so the MetricSample events land in the trace.
        collector.close()
        collector.registry.flush(bus)
    return collector.registry.as_dict()


def check_report(path: str, out=sys.stdout) -> List[str]:
    """Analyse the trace at ``path``; returns failure messages (empty =
    pass) and writes a one-line verdict per check to ``out``."""
    report = analyse_file(path)
    rendered = report.to_markdown()
    failures: List[str] = []

    def expect(label: str, ok: bool) -> None:
        out.write(f"  {'ok' if ok else 'FAIL'}: {label}\n")
        if not ok:
            failures.append(label)

    expect(
        "solver-time-by-cache-tier section present",
        "## Solver time by query kind and cache tier" in rendered,
    )
    expect(
        "solver table has real query rows",
        any(stats["count"] > 0 for stats in report.solver.values()),
    )
    expect(
        "branch-histogram section present",
        "## Branch fan-out histogram" in rendered,
    )
    expect("branch histogram has rows", bool(report.branch_hist))
    expect(
        "explore span recorded",
        "explore" in report.spans and report.spans["explore"]["steps"] > 0,
    )
    expect(
        "solver phase spans recorded",
        any(name.startswith("solver/") for name in report.spans),
    )
    expect("compile span recorded", "compile" in report.spans)
    expect(
        "flushed metrics absorbed",
        report.metrics.as_dict().get("engine.steps", 0) > 0,
    )
    expect("path outcomes counted", report.totals.get("steps", 0) > 0)
    expect(
        "json rendering round-trips",
        isinstance(report.as_dict(), dict) and bool(report.to_json()),
    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs.smoke")
    parser.add_argument("--trace", default=None, help="keep the trace here")
    parser.add_argument(
        "--show", action="store_true", help="print the Markdown report"
    )
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.trace:
        path, cleanup = args.trace, False
    else:
        fd, path = tempfile.mkstemp(suffix=".jsonl", prefix="obs-smoke-")
        os.close(fd)
        cleanup = True
    try:
        out.write("== obs smoke: record + analyse a real trace ==\n")
        record_trace(path)
        failures = check_report(path, out=out)
        if args.show:
            out.write("\n" + analyse_file(path).to_markdown())
        if failures:
            out.write(f"obs smoke: {len(failures)} check(s) FAILED\n")
            return 1
        out.write("obs smoke: ok\n")
        return 0
    finally:
        if cleanup and os.path.exists(path):
            os.remove(path)


if __name__ == "__main__":
    raise SystemExit(main())
