"""Trace analysis: turn a JSONL event trace into a run report.

``python -m repro.obs.report trace.jsonl`` reads a trace written by
:class:`~repro.testing.trace.JsonlEventSink` and renders the paper-style
run breakdown the Gillian evaluation (§5) reports per benchmark bucket:

* run totals (steps, branches, path outcomes);
* phase spans (seed / explore / shards / merge / compile / solver/*);
* **solver time by query kind and cache tier** — SAT/UNSAT/UNKNOWN ×
  cache-hit/solved, with counts and wall clock;
* **branch fan-out histogram** — how many ways steps actually split;
* frontier depth over time, one lane per worker (plus ``main`` for the
  sequential/seed phase), windowed so long traces stay readable;
* the degradation/fault timeline — every solver UNKNOWN, shard retry,
  and shard loss in event order;
* any flushed :class:`~repro.engine.events.MetricSample` readings.

``--format md`` (default) emits Markdown suitable for committing next to
``BENCH_*.json``; ``--format json`` emits the same data as one JSON
object.  The analysis is pure (:func:`analyse_trace` consumes any
iterable of payload dicts), so tests and notebooks can reuse it without
touching the filesystem.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.obs.metrics import MetricsRegistry

#: events the timeline section considers degradations/faults
_TIMELINE_EVENTS = ("SolverUnknownEvent", "ShardRetryEvent", "ShardLostEvent")

#: maximum windows per lane in the depth-over-time section
_DEPTH_WINDOWS = 12


@dataclass
class TraceReport:
    """The analysed contents of one JSONL trace."""

    #: total event lines consumed
    events: int = 0
    #: run totals: steps, branches, and per-kind path counts
    totals: Dict[str, int] = field(default_factory=dict)
    #: phase name → {"wall", "steps", "count"} aggregated over spans
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: (result, tier) → {"count", "time"}; tier is "cache-hit"/"solved"
    solver: Dict[Tuple[str, str], Dict[str, float]] = field(
        default_factory=dict
    )
    #: branch arm count → occurrences
    branch_hist: Dict[int, int] = field(default_factory=dict)
    #: lane name → list of (steps, max_depth, mean_depth) windows
    depth_profile: Dict[str, List[Tuple[int, int, float]]] = field(
        default_factory=dict
    )
    #: degradation/fault events, in trace order, with their sequence no.
    timeline: List[dict] = field(default_factory=list)
    #: flushed MetricSample readings, re-aggregated
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    # -- serialisation -------------------------------------------------------

    def as_dict(self) -> dict:
        """A JSON-ready view (tuple keys flattened to strings)."""
        return {
            "events": self.events,
            "totals": dict(sorted(self.totals.items())),
            "spans": {
                name: self.spans[name] for name in sorted(self.spans)
            },
            "solver": {
                f"{result}/{tier}": stats
                for (result, tier), stats in sorted(self.solver.items())
            },
            "branch_histogram": {
                str(arms): count
                for arms, count in sorted(self.branch_hist.items())
            },
            "depth_profile": {
                lane: [
                    {"steps": s, "max_depth": mx, "mean_depth": mean}
                    for s, mx, mean in windows
                ]
                for lane, windows in sorted(self.depth_profile.items())
            },
            "timeline": self.timeline,
            "metrics": self.metrics.as_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=False)

    def to_markdown(self) -> str:
        lines: List[str] = ["# Trace report", ""]
        lines += self._md_totals()
        lines += self._md_spans()
        lines += self._md_solver()
        lines += self._md_branches()
        lines += self._md_depth()
        lines += self._md_timeline()
        lines += self._md_metrics()
        return "\n".join(lines).rstrip() + "\n"

    def _md_totals(self) -> List[str]:
        lines = ["## Run totals", "", "| counter | value |", "|---|---|"]
        lines.append(f"| events | {self.events} |")
        for name, value in sorted(self.totals.items()):
            lines.append(f"| {name} | {value} |")
        lines.append("")
        return lines

    def _md_spans(self) -> List[str]:
        if not self.spans:
            return []
        lines = [
            "## Phase spans",
            "",
            "| phase | wall (s) | steps | spans |",
            "|---|---|---|---|",
        ]
        for name in sorted(self.spans):
            s = self.spans[name]
            lines.append(
                f"| {name} | {s['wall']:.4f} | {int(s['steps'])} "
                f"| {int(s['count'])} |"
            )
        lines.append("")
        return lines

    def _md_solver(self) -> List[str]:
        lines = [
            "## Solver time by query kind and cache tier",
            "",
            "| kind | tier | queries | time (s) |",
            "|---|---|---|---|",
        ]
        if not self.solver:
            lines.append("| (no solver queries) | — | 0 | 0 |")
        for (result, tier), stats in sorted(self.solver.items()):
            lines.append(
                f"| {result} | {tier} | {int(stats['count'])} "
                f"| {stats['time']:.4f} |"
            )
        lines.append("")
        return lines

    def _md_branches(self) -> List[str]:
        lines = [
            "## Branch fan-out histogram",
            "",
            "| arms | branches |",
            "|---|---|",
        ]
        if not self.branch_hist:
            lines.append("| (no branches) | 0 |")
        for arms, count in sorted(self.branch_hist.items()):
            lines.append(f"| {arms} | {count} |")
        lines.append("")
        return lines

    def _md_depth(self) -> List[str]:
        if not self.depth_profile:
            return []
        lines = [
            "## Frontier depth over time",
            "",
            "| lane | window | steps | max depth | mean depth |",
            "|---|---|---|---|---|",
        ]
        for lane in sorted(self.depth_profile):
            for i, (steps, mx, mean) in enumerate(self.depth_profile[lane]):
                lines.append(
                    f"| {lane} | {i} | {steps} | {mx} | {mean:.1f} |"
                )
        lines.append("")
        return lines

    def _md_timeline(self) -> List[str]:
        lines = ["## Degradation and fault timeline", ""]
        if not self.timeline:
            lines += ["(clean run: no degradations or faults)", ""]
            return lines
        lines += ["| seq | event | detail |", "|---|---|---|"]
        for entry in self.timeline:
            detail = ", ".join(
                f"{k}={v}"
                for k, v in entry.items()
                if k not in ("seq", "event")
            )
            lines.append(f"| {entry['seq']} | {entry['event']} | {detail} |")
        lines.append("")
        return lines

    def _md_metrics(self) -> List[str]:
        readings = self.metrics.as_dict()
        if not readings:
            return []
        lines = ["## Flushed metrics", "", "| metric | value |", "|---|---|"]
        for name, value in readings.items():
            lines.append(f"| {name} | {value} |")
        lines.append("")
        return lines


def analyse_trace(payloads: Iterable[dict]) -> TraceReport:
    """Fold JSONL payload dicts (see ``docs/events.md``) into a report."""
    report = TraceReport()
    totals = report.totals
    depths: Dict[str, List[int]] = {}
    for seq, payload in enumerate(payloads):
        report.events += 1
        kind = payload.get("event", "")
        if kind == "StepEvent":
            totals["steps"] = totals.get("steps", 0) + 1
            lane = _lane(payload)
            depths.setdefault(lane, []).append(int(payload.get("depth", 0)))
        elif kind == "BranchEvent":
            totals["branches"] = totals.get("branches", 0) + 1
            arms = int(payload.get("arms", 0))
            report.branch_hist[arms] = report.branch_hist.get(arms, 0) + 1
        elif kind == "PathEndEvent":
            key = f"paths.{str(payload.get('kind', '?')).lower()}"
            totals[key] = totals.get(key, 0) + 1
        elif kind == "SolverQueryEvent":
            tier = "cache-hit" if payload.get("cached") else "solved"
            skey = (str(payload.get("result", "?")), tier)
            cell = report.solver.setdefault(skey, {"count": 0, "time": 0.0})
            cell["count"] += 1
            cell["time"] += float(payload.get("time", 0.0))
        elif kind == "SpanEnd":
            name = str(payload.get("name", "?"))
            span = report.spans.setdefault(
                name, {"wall": 0.0, "steps": 0, "count": 0}
            )
            span["wall"] += float(payload.get("wall", 0.0))
            span["steps"] += int(payload.get("steps", 0))
            span["count"] += 1
        elif kind == "MetricSample":
            report.metrics.absorb_sample(_sample_of(payload))
        if kind in _TIMELINE_EVENTS:
            entry = {"seq": seq, "event": kind}
            entry.update(
                {k: v for k, v in payload.items() if k != "event"}
            )
            report.timeline.append(entry)
    for lane, series in depths.items():
        report.depth_profile[lane] = _windows(series)
    return report


def _lane(payload: dict) -> str:
    worker = payload.get("worker_id")
    return "main" if worker is None else f"worker-{worker}"


def _sample_of(payload: dict):
    from repro.engine.events import MetricSample

    labels = payload.get("labels") or ()
    return MetricSample(
        name=str(payload.get("name", "?")),
        kind=str(payload.get("kind", "counter")),
        value=float(payload.get("value", 0.0)),
        labels=tuple((str(k), str(v)) for k, v in labels),
    )


def _windows(series: List[int]) -> List[Tuple[int, int, float]]:
    """Split a depth series into up to ``_DEPTH_WINDOWS`` equal slices,
    each summarised as (steps, max depth, mean depth)."""
    if not series:
        return []
    count = min(_DEPTH_WINDOWS, len(series))
    size = len(series) / count
    windows: List[Tuple[int, int, float]] = []
    for i in range(count):
        chunk = series[int(i * size) : int((i + 1) * size)]
        if not chunk:
            continue
        windows.append(
            (len(chunk), max(chunk), sum(chunk) / len(chunk))
        )
    return windows


def analyse_file(path: str) -> TraceReport:
    """Analyse a JSONL trace file on disk."""
    from repro.testing.trace import read_trace

    return analyse_trace(read_trace(path))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a run report from a JSONL engine trace.",
    )
    parser.add_argument("trace", help="path to a JSONL trace file")
    parser.add_argument(
        "--format",
        choices=("md", "json"),
        default="md",
        help="output format (default: md)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="write to this file instead of stdout",
    )
    args = parser.parse_args(argv)
    try:
        report = analyse_file(args.trace)
    except (OSError, ValueError) as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 1
    rendered = (
        report.to_json() + "\n" if args.format == "json" else report.to_markdown()
    )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(rendered)
    else:
        sys.stdout.write(rendered)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
