"""Bus-driven metrics collection.

:class:`MetricsCollector` subscribes a :class:`MetricsRegistry` to an
engine :class:`~repro.engine.events.EventBus` and folds every event into
metrics — the observability counterpart of
:class:`~repro.testing.trace.JsonlEventSink`.  Because it is a plain bus
subscriber, attaching it costs nothing on the hot path beyond the bus's
own dispatch, and *not* attaching it costs the scheduler's one falsy
check per step.

Cross-process aggregation is free: the parallel explorer already
forwards worker events wrapped in
:class:`~repro.engine.events.WorkerEvent`, and the collector unwraps the
envelope before accounting, so a parallel run's registry holds the union
of the seed phase and every shard.  All folds are commutative sums (or
maxes), so the totals for deterministic counters — paths, branches,
steps, solver queries — are identical at any worker count; the obs test
suite asserts this at workers 1/2/4.

Metric names (see ``docs/events.md`` for the event schema):

=====================================  =========  ==========================
name                                   kind       source event
=====================================  =========  ==========================
``engine.steps``                       counter    StepEvent
``engine.depth``                       gauge      StepEvent (max depth seen)
``engine.branches``                    counter    BranchEvent
``engine.branch_arms``                 histogram  BranchEvent
``engine.paths.<kind>``                counter    PathEndEvent (kind lowered)
``engine.path_depth``                  histogram  PathEndEvent
``solver.queries``                     counter    SolverQueryEvent
``solver.queries.<result>``            counter    SolverQueryEvent
``solver.cache_hits``                  counter    SolverQueryEvent (cached)
``solver.time``                        counter    SolverQueryEvent (seconds)
``solver.unknown.<reason>``            counter    SolverUnknownEvent
``shards.retried`` / ``shards.lost``   counter    ShardRetry/ShardLostEvent
``phase.<name>.seconds`` / ``.steps``  counter    SpanEnd
=====================================  =========  ==========================
"""

from __future__ import annotations

from typing import Optional

from repro.engine.events import (
    BranchEvent,
    EventBus,
    MetricSample,
    PathEndEvent,
    ShardLostEvent,
    ShardRetryEvent,
    SolverQueryEvent,
    SolverUnknownEvent,
    SpanEnd,
    StepEvent,
    WorkerEvent,
)
from repro.obs.metrics import MetricsRegistry


class MetricsCollector:
    """Subscribes to a bus and turns engine events into metrics.

    Usage::

        bus = EventBus()
        collector = MetricsCollector(bus)
        Explorer(prog, sm, events=bus).run("main")
        totals = collector.registry.as_dict()

    Pass an existing ``registry`` to aggregate several runs into one.
    :meth:`close` unsubscribes, restoring the bus's falsy idle state.
    """

    def __init__(
        self,
        bus: Optional[EventBus] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._bus: Optional[EventBus] = None
        if bus is not None:
            self.attach(bus)

    def attach(self, bus: EventBus) -> "MetricsCollector":
        self._bus = bus
        bus.subscribe(self)
        return self

    def close(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None

    def __enter__(self) -> "MetricsCollector":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the fold ------------------------------------------------------------

    def __call__(self, event) -> None:
        while isinstance(event, WorkerEvent):
            event = event.inner
        reg = self.registry
        if isinstance(event, StepEvent):
            reg.counter("engine.steps").inc()
            depth_gauge = reg.gauge("engine.depth")
            if event.depth > depth_gauge.max:
                depth_gauge.set(event.depth)
        elif isinstance(event, BranchEvent):
            reg.counter("engine.branches").inc()
            reg.histogram("engine.branch_arms").observe(event.arms)
        elif isinstance(event, PathEndEvent):
            reg.counter(f"engine.paths.{event.kind.lower()}").inc()
            reg.histogram("engine.path_depth").observe(event.depth)
        elif isinstance(event, SolverQueryEvent):
            reg.counter("solver.queries").inc()
            reg.counter(f"solver.queries.{event.result.lower()}").inc()
            if event.cached:
                reg.counter("solver.cache_hits").inc()
            else:
                reg.counter("solver.time").inc(event.time)
        elif isinstance(event, SolverUnknownEvent):
            reg.counter(f"solver.unknown.{event.reason}").inc()
        elif isinstance(event, ShardRetryEvent):
            reg.counter("shards.retried").inc()
        elif isinstance(event, ShardLostEvent):
            reg.counter("shards.lost").inc()
        elif isinstance(event, SpanEnd):
            reg.counter(f"phase.{event.name}.seconds").inc(event.wall)
            reg.counter(f"phase.{event.name}.steps").inc(event.steps)
        elif isinstance(event, MetricSample):
            reg.absorb_sample(event)
