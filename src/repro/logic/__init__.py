"""Logical expressions, simplification, path conditions, and the solver.

Re-exports are lazy to avoid import cycles with ``repro.gil``.
"""

_EXPORTS = {
    "expr": [
        "BinOp", "BinOpExpr", "EList", "Expr", "FALSE", "LVar", "Lit",
        "PVar", "TRUE", "UnOp", "UnOpExpr", "conj", "disj", "lst",
    ],
    "pathcond": ["PathCondition"],
    "simplify": ["Simplifier", "simplify"],
    "solver": ["Model", "SatResult", "Solver"],
}
_BY_NAME = {name: mod for mod, names in _EXPORTS.items() for name in names}

__all__ = sorted(_BY_NAME)


def __getattr__(name):
    module = _BY_NAME.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.logic' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f"repro.logic.{module}"), name)
