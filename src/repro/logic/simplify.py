"""Algebraic simplification of logical expressions (paper §2.3, [EvalExpr]).

    "In the implementation, Gillian's first-order solver applies a number
     of algebraic identities to simplify the resulting expression."

The simplifier is one of the two engine improvements the paper credits for
Gillian-JS being roughly twice as fast as JaVerT 2.0 (§4.1); the benchmark
ablation (EXPERIMENTS.md, E4) toggles it via :class:`Simplifier`'s
``enabled`` flag.

Rules implemented (bottom-up, to a fixed point on each node):

* constant folding of every operator on literal operands;
* boolean identities (``¬¬e = e``, absorption with ``true``/``false``);
* equality: ``e = e → true``; distinct literals → ``false``; pointwise
  equality of list constructors; symbol disequality (distinct symbols are
  distinct values);
* arithmetic identities (``e+0``, ``e*1``, ``e*0``, ``e-e``);
* list identities (``l-len [e1..en] → n``, ``l-nth`` on constructors,
  concatenation of constructors, ``hd``/``tl`` of constructors);
* negation of comparisons (``¬(a < b) → b ≤ a``), which keeps path
  conditions in the fragment the solver handles best.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.gil.ops import EvalError, apply_binop, apply_unop
from repro.gil.values import Symbol, values_equal
from repro.logic.expr import (
    FALSE,
    TRUE,
    BinOp,
    BinOpExpr,
    EList,
    Expr,
    Lit,
    LVar,
    PVar,
    UnOp,
    UnOpExpr,
    conj,
)


def _is_num_lit(e: Expr) -> bool:
    return (
        isinstance(e, Lit)
        and isinstance(e.value, (int, float))
        and not isinstance(e.value, bool)
    )


class Simplifier:
    """A memoising expression simplifier.

    ``enabled=False`` turns the simplifier into the identity function —
    this is the "JaVerT 2.0"-like baseline configuration used by the
    engine-ablation benchmark (E4).
    """

    def __init__(self, enabled: bool = True, memoise: bool = True) -> None:
        self.enabled = enabled
        self.memoise = memoise
        self._cache: Dict[Expr, Expr] = {}

    def simplify(self, e: Expr) -> Expr:
        if not self.enabled:
            return e
        if self.memoise:
            cached = self._cache.get(e)
            if cached is not None:
                return cached
        result = self._simplify(e)
        if self.memoise:
            self._cache[e] = result
            # Results are fixpoints; with hash-consed expressions the result
            # node is shared, so mark it simplified too and skip a full
            # re-walk when it comes back as an input (e.g. solver-normalised
            # conjuncts re-entering through the incremental delta pipeline).
            self._cache[result] = result
        return result

    # -- internals --------------------------------------------------------

    def _simplify(self, e: Expr) -> Expr:
        if isinstance(e, (Lit, PVar, LVar)):
            return e
        if isinstance(e, EList):
            items = tuple(self.simplify(item) for item in e.items)
            if all(isinstance(item, Lit) for item in items):
                return Lit(tuple(item.value for item in items))
            return EList(items)
        if isinstance(e, UnOpExpr):
            return self._simplify_unop(e.op, self.simplify(e.operand))
        if isinstance(e, BinOpExpr):
            return self._simplify_binop(
                e.op, self.simplify(e.left), self.simplify(e.right)
            )
        raise TypeError(f"not an expression: {e!r}")

    def _simplify_unop(self, op: UnOp, operand: Expr) -> Expr:
        if isinstance(operand, Lit):
            try:
                return Lit(apply_unop(op, operand.value))
            except EvalError:
                return UnOpExpr(op, operand)
        if op is UnOp.NOT:
            if isinstance(operand, UnOpExpr) and operand.op is UnOp.NOT:
                return operand.operand
            if isinstance(operand, BinOpExpr):
                # ¬(a < b) → b ≤ a ; ¬(a ≤ b) → b < a
                if operand.op is BinOp.LT:
                    return self._simplify_binop(
                        BinOp.LEQ, operand.right, operand.left
                    )
                if operand.op is BinOp.LEQ:
                    return self._simplify_binop(
                        BinOp.LT, operand.right, operand.left
                    )
        if op is UnOp.TYPEOF:
            from repro.logic.types import infer_type

            known = infer_type(operand)
            if known is not None:
                return Lit(known)
        if op is UnOp.LSTLEN and isinstance(operand, EList):
            return Lit(len(operand.items))
        if op is UnOp.HEAD and isinstance(operand, EList) and operand.items:
            return operand.items[0]
        if op is UnOp.TAIL and isinstance(operand, EList) and operand.items:
            return EList(operand.items[1:])
        if (
            op in (UnOp.HEAD, UnOp.TAIL)
            and isinstance(operand, BinOpExpr)
            and operand.op is BinOp.LCONS
        ):
            return operand.left if op is UnOp.HEAD else operand.right
        if op is UnOp.STRLEN and isinstance(operand, BinOpExpr):
            if operand.op is BinOp.SCONCAT:
                return self._simplify_binop(
                    BinOp.ADD,
                    self._simplify_unop(UnOp.STRLEN, operand.left),
                    self._simplify_unop(UnOp.STRLEN, operand.right),
                )
        if op is UnOp.LSTLEN and isinstance(operand, BinOpExpr):
            if operand.op is BinOp.LCONCAT:
                return self._simplify_binop(
                    BinOp.ADD,
                    self._simplify_unop(UnOp.LSTLEN, operand.left),
                    self._simplify_unop(UnOp.LSTLEN, operand.right),
                )
            if operand.op is BinOp.LCONS:
                return self._simplify_binop(
                    BinOp.ADD,
                    Lit(1),
                    self._simplify_unop(UnOp.LSTLEN, operand.right),
                )
        return UnOpExpr(op, operand)

    def _simplify_binop(self, op: BinOp, left: Expr, right: Expr) -> Expr:
        if isinstance(left, Lit) and isinstance(right, Lit):
            try:
                return Lit(apply_binop(op, left.value, right.value))
            except EvalError:
                return BinOpExpr(op, left, right)

        if op is BinOp.AND:
            if left == TRUE:
                return right
            if right == TRUE:
                return left
            if left == FALSE or right == FALSE:
                return FALSE
            if left == right:
                return left
        elif op is BinOp.OR:
            if left == FALSE:
                return right
            if right == FALSE:
                return left
            if left == TRUE or right == TRUE:
                return TRUE
            if left == right:
                return left
        elif op is BinOp.EQ:
            return self._simplify_eq(left, right)
        elif op in (BinOp.LT, BinOp.LEQ):
            if left == right:
                return Lit(op is BinOp.LEQ)
            folded = self._fold_offset_comparison(op, left, right)
            if folded is not None:
                return folded
        elif op is BinOp.ADD:
            if _is_num_lit(left) and left.value == 0:
                return right
            if _is_num_lit(right) and right.value == 0:
                return left
            # Reassociate (e + c1) + c2 → e + (c1+c2): keeps pointer-offset
            # chains small in the MiniC instantiation.
            if (
                _is_num_lit(right)
                and isinstance(left, BinOpExpr)
                and left.op is BinOp.ADD
                and _is_num_lit(left.right)
            ):
                return self._simplify_binop(
                    BinOp.ADD,
                    left.left,
                    Lit(apply_binop(BinOp.ADD, left.right.value, right.value)),
                )
        elif op is BinOp.SUB:
            if _is_num_lit(right) and right.value == 0:
                return left
            if left == right:
                return Lit(0)
        elif op is BinOp.MUL:
            for a, b in ((left, right), (right, left)):
                if _is_num_lit(a):
                    if a.value == 0:
                        return Lit(0)
                    if a.value == 1:
                        return b
        elif op is BinOp.LCONCAT:
            if isinstance(left, EList) and not left.items:
                return right
            if isinstance(right, EList) and not right.items:
                return left
            if isinstance(left, EList) and isinstance(right, EList):
                return EList(left.items + right.items)
        elif op is BinOp.LNTH:
            if isinstance(left, EList) and isinstance(right, Lit):
                idx = right.value
                if (
                    isinstance(idx, int)
                    and not isinstance(idx, bool)
                    and 0 <= idx < len(left.items)
                ):
                    return left.items[idx]
        elif op is BinOp.LCONS:
            if isinstance(right, EList):
                return EList((left,) + right.items)
        elif op is BinOp.SCONCAT:
            if isinstance(left, Lit) and left.value == "":
                return right
            if isinstance(right, Lit) and right.value == "":
                return left
        return BinOpExpr(op, left, right)

    def _fold_offset_comparison(
        self, op: BinOp, left: Expr, right: Expr
    ) -> Optional[Expr]:
        """Fold ``e + c1 < e + c2`` into a literal boolean.

        Pointer-bound checks in MiniC produce comparisons whose two sides
        are the same symbolic base plus literal offsets.
        """
        def split(e: Expr):
            if (
                isinstance(e, BinOpExpr)
                and e.op is BinOp.ADD
                and _is_num_lit(e.right)
            ):
                return e.left, e.right.value
            return e, 0

        lbase, loff = split(left)
        rbase, roff = split(right)
        if lbase == rbase and (loff != 0 or roff != 0):
            if op is BinOp.LT:
                return Lit(loff < roff)
            return Lit(loff <= roff)
        return None

    def _simplify_eq(self, left: Expr, right: Expr) -> Expr:
        if left == right:
            return TRUE
        if isinstance(left, Lit) and isinstance(right, Lit):
            return Lit(values_equal(left.value, right.value))
        # Distinct uninterpreted symbols denote distinct values.
        if (
            isinstance(left, Lit)
            and isinstance(right, Lit)
            and isinstance(left.value, Symbol)
            and isinstance(right.value, Symbol)
        ):
            return Lit(left.value == right.value)
        # Pointwise equality of list constructors.
        lx = self._as_items(left)
        rx = self._as_items(right)
        if lx is not None and rx is not None:
            if len(lx) != len(rx):
                return FALSE
            return self.simplify(
                conj(*(BinOpExpr(BinOp.EQ, a, b) for a, b in zip(lx, rx)))
            )
        # String prefix cancellation: "$" ++ a = "$" ++ b  →  a = b, and
        # "$" ++ a = "lit"  →  a = "it"/false.  Dictionary-style key
        # prefixing (Buckets.js) produces these constantly.
        folded = self._cancel_string_prefix(left, right)
        if folded is not None:
            return folded
        # ``e + c1 = e + c2`` with distinct literal offsets.
        if (
            isinstance(left, BinOpExpr)
            and left.op is BinOp.ADD
            and isinstance(right, BinOpExpr)
            and right.op is BinOp.ADD
            and left.left == right.left
            and _is_num_lit(left.right)
            and _is_num_lit(right.right)
        ):
            return Lit(values_equal(left.right.value, right.right.value))
        return BinOpExpr(BinOp.EQ, left, right)

    def _cancel_string_prefix(self, left: Expr, right: Expr) -> Optional[Expr]:
        def split(e: Expr):
            if (
                isinstance(e, BinOpExpr)
                and e.op is BinOp.SCONCAT
                and isinstance(e.left, Lit)
                and isinstance(e.left.value, str)
            ):
                return e.left.value, e.right
            return None

        ls, rs = split(left), split(right)
        if ls is not None and rs is not None and ls[0] == rs[0]:
            return self._simplify_eq(ls[1], rs[1])
        for concat, other in ((ls, right), (rs, left)):
            if concat is None:
                continue
            prefix, rest = concat
            if isinstance(other, Lit) and isinstance(other.value, str):
                if other.value.startswith(prefix):
                    return self._simplify_eq(rest, Lit(other.value[len(prefix):]))
                return FALSE
        return None

    @staticmethod
    def _as_items(e: Expr):
        """View an expression as a tuple of item expressions, if it is a
        list constructor or a literal list."""
        if isinstance(e, EList):
            return e.items
        if isinstance(e, Lit) and isinstance(e.value, tuple):
            return tuple(Lit(v) for v in e.value)
        return None


#: Module-level default simplifier (shared cache).
DEFAULT_SIMPLIFIER = Simplifier()


def simplify(e: Expr) -> Expr:
    """Simplify with the module-level default simplifier."""
    return DEFAULT_SIMPLIFIER.simplify(e)


_SHARED: dict = {(True, True): DEFAULT_SIMPLIFIER}


def shared_simplifier(enabled: bool = True, memoise: bool = True) -> Simplifier:
    """The process-wide simplifier of one ``(enabled, memoise)`` flavour.

    Simplification is pure, so callers that would otherwise build a
    private instance (one solver per test, say) get bit-identical
    results from the shared one — with the memo warm across calls
    instead of rebuilt from nothing each time.  Hash-consed expressions
    make the memo safe to grow without bound: entries are small and keys
    are interned nodes that live forever anyway.
    """
    key = (enabled, memoise)
    found = _SHARED.get(key)
    if found is None:
        found = _SHARED[key] = Simplifier(enabled=enabled, memoise=memoise)
    return found
