"""Path conditions π ∈ Π (paper §2.3).

A path condition is a conjunction of boolean logical expressions
book-keeping the constraints on logical variables that led execution to
the current symbolic state.  We keep the conjuncts as an ordered tuple
(deduplicated) so that path conditions are hashable — they key the solver
cache — and so that restriction (π ∧ π′, paper §3.1) is a cheap merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Tuple

from repro.logic.expr import TRUE, BinOp, BinOpExpr, Expr


def _flatten(e: Expr) -> Iterator[Expr]:
    """Split nested conjunctions into their conjuncts."""
    if isinstance(e, BinOpExpr) and e.op is BinOp.AND:
        yield from _flatten(e.left)
        yield from _flatten(e.right)
    elif e != TRUE:
        yield e


@dataclass(frozen=True)
class PathCondition:
    """An immutable conjunction of boolean logical expressions."""

    conjuncts: Tuple[Expr, ...] = field(default=())

    @staticmethod
    def true() -> "PathCondition":
        return PathCondition(())

    @staticmethod
    def of(*exprs: Expr) -> "PathCondition":
        return PathCondition.true().conjoin_all(exprs)

    def conjoin(self, e: Expr) -> "PathCondition":
        """π ∧ e, flattening nested conjunctions and deduplicating."""
        new = [c for c in _flatten(e) if c not in self.conjuncts]
        if not new:
            return self
        seen = set(self.conjuncts)
        ordered = list(self.conjuncts)
        for c in new:
            if c not in seen:
                seen.add(c)
                ordered.append(c)
        return PathCondition(tuple(ordered))

    def conjoin_all(self, exprs: Iterable[Expr]) -> "PathCondition":
        pc = self
        for e in exprs:
            pc = pc.conjoin(e)
        return pc

    def extend(self, other: "PathCondition") -> "PathCondition":
        """Restriction on path conditions: π₁ ⇃π₂ = π₁ ∧ π₂ (paper §3.1)."""
        return self.conjoin_all(other.conjuncts)

    def implies_syntactically(self, other: "PathCondition") -> bool:
        """True iff every conjunct of ``other`` appears in ``self``."""
        mine = set(self.conjuncts)
        return all(c in mine for c in other.conjuncts)

    def __iter__(self) -> Iterator[Expr]:
        return iter(self.conjuncts)

    def __len__(self) -> int:
        return len(self.conjuncts)

    def __repr__(self) -> str:
        if not self.conjuncts:
            return "true"
        return " /\\ ".join(repr(c) for c in self.conjuncts)
