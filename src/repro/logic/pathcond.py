"""Path conditions π ∈ Π (paper §2.3).

A path condition is a conjunction of boolean logical expressions
book-keeping the constraints on logical variables that led execution to
the current symbolic state.

Path conditions are *persistent prefix chains*: each node records only the
conjuncts it adds over its ``parent`` plus a link to that parent, so the
worklist entries of the symbolic explorer share their common prefix
structurally.  ``conjoin``/``extend`` cost O(new conjuncts) along the hot
(tip-extension) path instead of rebuilding and re-hashing the whole
conjunct tuple at every branch point, and the solver walks ``parent``/
``added`` to solve only the delta of a child path over its parent
(see :class:`repro.logic.solver.Solver`).

Deduplication uses a shared *trail*: the conjuncts of a whole chain live
in one append-only list with a first-occurrence index, and each node is a
(trail, length) view onto it.  Extending the tip of a trail appends in
place; extending an interior node (the second child of a branch point)
forks the trail once, an O(prefix) C-speed copy.  With hash-consed
expressions every membership probe is O(1).

The public surface is unchanged: ``conjuncts`` is still an ordered,
deduplicated tuple, equality/hashing are still structural over that tuple
(so path conditions still key caches and sets), and iteration/len behave
as before.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.logic.expr import TRUE, BinOp, BinOpExpr, Expr


def _flatten(e: Expr) -> Iterator[Expr]:
    """Split nested conjunctions into their conjuncts."""
    if isinstance(e, BinOpExpr) and e.op is BinOp.AND:
        yield from _flatten(e.left)
        yield from _flatten(e.right)
    elif e != TRUE:
        yield e


class _Trail:
    """The append-only conjunct store shared by a chain of path conditions."""

    __slots__ = ("items", "index")

    def __init__(self, items: Optional[List[Expr]] = None) -> None:
        self.items: List[Expr] = items if items is not None else []
        # First-occurrence position of each conjunct.  Conjuncts along a
        # chain are unique (conjoin dedups), so this is exact.
        self.index: Dict[Expr, int] = {c: i for i, c in enumerate(self.items)}

    def append(self, c: Expr) -> None:
        self.index[c] = len(self.items)
        self.items.append(c)

    def fork(self, length: int) -> "_Trail":
        """An independent copy of the first ``length`` entries."""
        return _Trail(self.items[:length])


_uid_counter = itertools.count(1)


class PathCondition:
    """An immutable conjunction of boolean logical expressions."""

    __slots__ = (
        "_trail", "_length", "parent", "added", "uid", "_tuple", "_hash",
    )

    def __init__(self, conjuncts: Tuple[Expr, ...] = ()) -> None:
        # Public constructor: build a root-anchored chain from a tuple.
        # (Internal code extends existing nodes via _extend instead.)
        object.__setattr__(self, "parent", None)
        object.__setattr__(self, "added", tuple(conjuncts))
        trail = _Trail()
        for c in conjuncts:
            if c not in trail.index:
                trail.append(c)
        object.__setattr__(self, "_trail", trail)
        object.__setattr__(self, "_length", len(trail.items))
        object.__setattr__(self, "uid", next(_uid_counter))
        object.__setattr__(self, "_tuple", None)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):
        raise AttributeError("PathCondition is immutable")

    @classmethod
    def _extend(
        cls, parent: "PathCondition", new: List[Expr]
    ) -> "PathCondition":
        """A child node adding ``new`` (already deduplicated) conjuncts."""
        self = object.__new__(cls)
        object.__setattr__(self, "parent", parent)
        object.__setattr__(self, "added", tuple(new))
        trail = parent._trail
        if parent._length == 0:
            # Never grow a root's (possibly shared) empty trail: the shared
            # TRUE root must not pin the first chain's conjuncts alive.
            trail = _Trail()
        elif len(trail.items) != parent._length:
            # Parent is not the tip (a sibling extended first): fork once.
            trail = trail.fork(parent._length)
        for c in new:
            trail.append(c)
        object.__setattr__(self, "_trail", trail)
        object.__setattr__(self, "_length", parent._length + len(new))
        object.__setattr__(self, "uid", next(_uid_counter))
        object.__setattr__(self, "_tuple", None)
        object.__setattr__(self, "_hash", None)
        return self

    # -- construction --------------------------------------------------------

    @staticmethod
    def true() -> "PathCondition":
        return _TRUE_PC

    @staticmethod
    def of(*exprs: Expr) -> "PathCondition":
        return PathCondition.true().conjoin_all(exprs)

    # -- membership ----------------------------------------------------------

    def __contains__(self, c: Expr) -> bool:
        pos = self._trail.index.get(c)
        return pos is not None and pos < self._length

    # -- extension -----------------------------------------------------------

    def conjoin(self, e: Expr) -> "PathCondition":
        """π ∧ e, flattening nested conjunctions and deduplicating."""
        new: List[Expr] = []
        fresh = set()
        for c in _flatten(e):
            if c not in self and c not in fresh:
                fresh.add(c)
                new.append(c)
        if not new:
            return self
        return PathCondition._extend(self, new)

    def conjoin_all(self, exprs: Iterable[Expr]) -> "PathCondition":
        """π ∧ e₁ ∧ … ∧ eₙ as a *single* chain extension."""
        new: List[Expr] = []
        fresh = set()
        for e in exprs:
            for c in _flatten(e):
                if c not in self and c not in fresh:
                    fresh.add(c)
                    new.append(c)
        if not new:
            return self
        return PathCondition._extend(self, new)

    def extend(self, other: "PathCondition") -> "PathCondition":
        """Restriction on path conditions: π₁ ⇃π₂ = π₁ ∧ π₂ (paper §3.1)."""
        return self.conjoin_all(other.conjuncts)

    # -- views ---------------------------------------------------------------

    @property
    def conjuncts(self) -> Tuple[Expr, ...]:
        """The ordered, deduplicated conjunct tuple (cached)."""
        cached = self._tuple
        if cached is None:
            cached = tuple(self._trail.items[: self._length])
            object.__setattr__(self, "_tuple", cached)
        return cached

    def implies_syntactically(self, other: "PathCondition") -> bool:
        """True iff every conjunct of ``other`` appears in ``self``."""
        return all(c in self for c in other.conjuncts)

    def __iter__(self) -> Iterator[Expr]:
        return iter(self.conjuncts)

    def __len__(self) -> int:
        return self._length

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PathCondition):
            return NotImplemented
        return self._length == other._length and self.conjuncts == other.conjuncts

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self.conjuncts)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __reduce__(self):
        # Serialize as the chain's *delta lists* rather than the flat
        # conjunct tuple: the root's raw conjuncts plus each extension's
        # ``added`` tuple, re-linked iteratively on load.  This preserves
        # the prefix-chain structure across process boundaries (workers
        # receive real chains, so the incremental solver layer keeps its
        # delta-solving behaviour), stays recursion-free for deep chains,
        # and round-trips to an equal condition with the same conjunct
        # order.  Hash-consed conjunct Exprs re-intern via their own
        # ``__reduce__`` during the same load.
        deltas = []
        node = self
        while node.parent is not None:
            deltas.append(node.added)
            node = node.parent
        deltas.reverse()
        return (_rebuild_chain, (node.added, tuple(deltas)))

    def __repr__(self) -> str:
        if not self._length:
            return "true"
        return " /\\ ".join(repr(c) for c in self.conjuncts)


def _rebuild_chain(
    root_conjuncts: Tuple[Expr, ...], deltas: Tuple[Tuple[Expr, ...], ...]
) -> PathCondition:
    """Re-link a pickled chain: root node, then one extension per delta.

    The deltas were produced by ``_extend`` (flattened, deduplicated
    against their prefix), so replaying them through ``_extend`` rebuilds
    a structurally identical chain — same conjuncts, same order, same
    per-node ``added`` tuples — with fresh uids (solver contexts are
    per-process and re-derive from scratch in the receiving process).
    """
    if root_conjuncts:
        pc = PathCondition(root_conjuncts)
    else:
        pc = _TRUE_PC
    for added in deltas:
        pc = PathCondition._extend(pc, list(added))
    return pc


#: The shared root of every chain built through :meth:`PathCondition.true`.
_TRUE_PC = PathCondition(())
