"""Type inference for logical expressions.

The solver uses a lightweight bottom-up/top-down typing pass both to detect
ill-typed (hence unsatisfiable) path conditions early and to choose
well-typed candidate values when searching for models.  Types are the GIL
types of :class:`repro.gil.values.GilType`; ``None`` means "unknown".
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.gil.values import GilType, type_of
from repro.logic.expr import (
    BinOp,
    BinOpExpr,
    EList,
    Expr,
    Lit,
    LVar,
    PVar,
    UnOp,
    UnOpExpr,
)

_UNOP_RESULT = {
    UnOp.NOT: GilType.BOOLEAN,
    UnOp.NEG: GilType.NUMBER,
    UnOp.TYPEOF: GilType.TYPE,
    UnOp.STRLEN: GilType.NUMBER,
    UnOp.LSTLEN: GilType.NUMBER,
    UnOp.TOSTRING: GilType.STRING,
    UnOp.TONUMBER: GilType.NUMBER,
    UnOp.FLOOR: GilType.NUMBER,
    UnOp.TAIL: GilType.LIST,
    UnOp.HEAD: None,
}

_UNOP_OPERAND = {
    UnOp.NOT: GilType.BOOLEAN,
    UnOp.NEG: GilType.NUMBER,
    UnOp.TYPEOF: None,
    UnOp.STRLEN: GilType.STRING,
    UnOp.LSTLEN: GilType.LIST,
    UnOp.TOSTRING: GilType.NUMBER,
    UnOp.TONUMBER: GilType.STRING,
    UnOp.FLOOR: GilType.NUMBER,
    UnOp.TAIL: GilType.LIST,
    UnOp.HEAD: GilType.LIST,
}

_NUMERIC_BINOPS = {
    BinOp.ADD,
    BinOp.SUB,
    BinOp.MUL,
    BinOp.DIV,
    BinOp.MOD,
    BinOp.MIN,
    BinOp.MAX,
}
_BOOL_BINOPS = {BinOp.AND, BinOp.OR}
_COMPARISONS = {BinOp.LT, BinOp.LEQ}


class TypeConflict(Exception):
    """A variable is required to have two distinct types — UNSAT evidence."""


def infer_type(e: Expr) -> Optional[GilType]:
    """The type of ``e``, if determined by its top-level structure."""
    if isinstance(e, Lit):
        return type_of(e.value)
    if isinstance(e, EList):
        return GilType.LIST
    if isinstance(e, UnOpExpr):
        return _UNOP_RESULT[e.op]
    if isinstance(e, BinOpExpr):
        if e.op in _NUMERIC_BINOPS:
            return GilType.NUMBER
        if e.op in _BOOL_BINOPS or e.op in _COMPARISONS or e.op is BinOp.EQ:
            return GilType.BOOLEAN
        if e.op is BinOp.SCONCAT or e.op is BinOp.SNTH:
            return GilType.STRING
        if e.op in (BinOp.LCONCAT, BinOp.LCONS):
            return GilType.LIST
        if e.op is BinOp.LNTH:
            return None
    return None  # PVar / LVar / hd — unknown


def collect_var_types(
    conjuncts: Iterable[Expr],
    env: Optional[Dict[str, GilType]] = None,
) -> Dict[str, GilType]:
    """Infer logical-variable types from how variables are *used*.

    Walks each conjunct and records, for every logical variable, the type
    its context imposes.  Raises :class:`TypeConflict` if the same variable
    is forced to two distinct types (the path condition is then UNSAT).

    ``env`` seeds (and is extended with) bindings already inferred for a
    solved prefix, so the incremental solver types only the delta: typing
    facts accumulate per use site, so walking just the new conjuncts over
    the parent's environment reaches the same bindings/conflicts as a full
    re-walk of prefix + delta.
    """
    env = {} if env is None else env

    def require(e: Expr, t: Optional[GilType]) -> None:
        if t is None:
            visit(e)
            return
        if isinstance(e, LVar):
            prior = env.get(e.name)
            if prior is not None and prior is not t:
                raise TypeConflict(
                    f"#{e.name} used both as {prior.value} and {t.value}"
                )
            env[e.name] = t
        visit(e)

    def visit(e: Expr) -> None:
        if isinstance(e, (Lit, LVar, PVar)):
            return
        if isinstance(e, EList):
            for item in e.items:
                visit(item)
            return
        if isinstance(e, UnOpExpr):
            require(e.operand, _UNOP_OPERAND[e.op])
            return
        if isinstance(e, BinOpExpr):
            if e.op in _NUMERIC_BINOPS:
                require(e.left, GilType.NUMBER)
                require(e.right, GilType.NUMBER)
            elif e.op in _BOOL_BINOPS:
                require(e.left, GilType.BOOLEAN)
                require(e.right, GilType.BOOLEAN)
            elif e.op in _COMPARISONS:
                # Comparisons apply to numbers or strings; only constrain
                # when the other side's type is known.
                lt, rt = infer_type(e.left), infer_type(e.right)
                require(e.left, rt if lt is None else None)
                require(e.right, lt if rt is None else None)
            elif e.op is BinOp.EQ:
                lt, rt = infer_type(e.left), infer_type(e.right)
                require(e.left, rt if lt is None else None)
                require(e.right, lt if rt is None else None)
            elif e.op in (BinOp.SCONCAT,):
                require(e.left, GilType.STRING)
                require(e.right, GilType.STRING)
            elif e.op is BinOp.SNTH:
                require(e.left, GilType.STRING)
                require(e.right, GilType.NUMBER)
            elif e.op is BinOp.LCONCAT:
                require(e.left, GilType.LIST)
                require(e.right, GilType.LIST)
            elif e.op is BinOp.LNTH:
                require(e.left, GilType.LIST)
                require(e.right, GilType.NUMBER)
            elif e.op is BinOp.LCONS:
                visit(e.left)
                require(e.right, GilType.LIST)
            return
        raise TypeError(f"not an expression: {e!r}")

    for c in conjuncts:
        require(c, GilType.BOOLEAN)
    return env
