"""Expressions (paper §2.1 and §2.3).

GIL program expressions ``e ∈ E`` are values, program variables, and
unary/binary operator applications.  Logical expressions ``ê ∈ Ê`` replace
program variables with logical variables ``x̂ ∈ X̂``.  We use a single AST
for both: an expression is *program-level* if it contains no :class:`LVar`
and *logical* if it contains no :class:`PVar`.  Symbolic evaluation of a
program expression substitutes each program variable with the logical
expression held in the symbolic store, yielding a logical expression
(paper §2.3, [EvalExpr]).

All nodes are frozen (hashable) so they can key solver caches and sets of
path-condition conjuncts.

Nodes are *hash-consed*: each constructor interns structurally identical
nodes, so two equal expressions are (almost always) the same object, every
node's hash is computed exactly once at construction, and the equality
dunder takes an identity fast path.  This turns every downstream dict/set
operation over expressions — the simplifier memo, the solver caches, path
condition dedup — from O(tree size) hashing into O(1) pointer work, which
is the foundation of the incremental path-condition solving layer
(paper §4.1: "more efficient use of OCaml features, such as hashtables").

The structural-equality fallback in ``__eq__`` is kept because interning
is deliberately not a strict identity guarantee: ``Lit(1)`` and
``Lit(1.0)`` intern to *distinct* objects (so concrete int/float values
round-trip exactly) yet compare equal under GIL's single numeric type,
exactly as before.

Pickling re-interns: every node's ``__reduce__`` routes through its
constructor, so ``pickle.loads`` in another process (a parallel-explorer
worker) rebuilds the node *through the intern table of that process*.  A
round-tripped expression therefore satisfies the identity fast path
against freshly constructed equals on the receiving side — the caches
and path-condition membership probes stay O(1) across process
boundaries.  :func:`intern_table_sizes` exposes the table sizes so tests
can assert that unpickling into a warm process creates no duplicates.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Mapping, Union

from repro.gil.values import NULL, Symbol, Value, value_key


class UnOp(enum.Enum):
    """Unary operators ``⊖``."""

    NOT = "not"          # boolean negation
    NEG = "-"            # numeric negation
    TYPEOF = "typeof"    # GIL type of the operand
    STRLEN = "s-len"     # string length
    LSTLEN = "l-len"     # list length
    HEAD = "hd"          # first element of a list
    TAIL = "tl"          # list without its first element
    TOSTRING = "num->str"
    TONUMBER = "str->num"
    FLOOR = "floor"


class BinOp(enum.Enum):
    """Binary operators ``⊕``."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    EQ = "="
    LT = "<"
    LEQ = "<="
    AND = "and"
    OR = "or"
    SCONCAT = "s++"      # string concatenation
    SNTH = "s-nth"       # nth character of a string
    LCONCAT = "l++"      # list concatenation
    LNTH = "l-nth"       # nth element of a list
    LCONS = "l-cons"     # prepend an element to a list
    MIN = "min"
    MAX = "max"


class Expr:
    """Base class for expression nodes.

    Provides operator sugar so compilers and tests can build ASTs
    compactly: ``x + y`` is ``BinOpExpr(BinOp.ADD, x, y)`` and so on.
    Comparison dunders are *not* overloaded (``==`` stays structural
    equality, needed for hashing); use :meth:`eq` / :meth:`lt` instead.
    """

    __slots__ = ()

    def __add__(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.ADD, self, to_expr(other))

    def __radd__(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.ADD, to_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.SUB, self, to_expr(other))

    def __rsub__(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.SUB, to_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.MUL, self, to_expr(other))

    def __truediv__(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.DIV, self, to_expr(other))

    def __mod__(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.MOD, self, to_expr(other))

    def __neg__(self) -> "Expr":
        return UnOpExpr(UnOp.NEG, self)

    def eq(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.EQ, self, to_expr(other))

    def neq(self, other: "ExprLike") -> "Expr":
        return UnOpExpr(UnOp.NOT, self.eq(other))

    def lt(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.LT, self, to_expr(other))

    def leq(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.LEQ, self, to_expr(other))

    def gt(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.LT, to_expr(other), self)

    def geq(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.LEQ, to_expr(other), self)

    def and_(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.AND, self, to_expr(other))

    def or_(self, other: "ExprLike") -> "Expr":
        return BinOpExpr(BinOp.OR, self, to_expr(other))

    def not_(self) -> "Expr":
        return UnOpExpr(UnOp.NOT, self)

    def typeof(self) -> "Expr":
        return UnOpExpr(UnOp.TYPEOF, self)


def _exact_value_key(v: Value) -> object:
    """An interning key that never conflates Python value types.

    ``value_key`` (deliberately) identifies ``1`` and ``1.0``; the intern
    table must not, so that a program literal keeps its exact concrete
    representation.  Nested list values recurse for the same reason.
    """
    if isinstance(v, tuple):
        return ("l",) + tuple(_exact_value_key(item) for item in v)
    return (v.__class__.__name__, v)


def _immutable_setattr(self, name, value):
    raise AttributeError(f"{self.__class__.__name__} nodes are immutable")


class Lit(Expr):
    """A literal GIL value.

    Equality and hashing are *type-aware* (via
    :func:`repro.gil.values.value_key`): ``Lit(0) != Lit(False)`` even
    though Python's ``0 == False`` — otherwise caches, sets of path
    conjuncts, and memory cell keys would silently conflate them.
    """

    __slots__ = ("value", "_hash")
    _interned: dict = {}

    def __new__(cls, value: Value) -> "Lit":
        key = _exact_value_key(value)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "value", value)
            object.__setattr__(self, "_hash", hash(value_key(value)))
            cls._interned[key] = self
        return self

    __setattr__ = _immutable_setattr

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Lit):
            return NotImplemented
        return value_key(self.value) == value_key(other.value)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Lit, (self.value,))

    def __repr__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value)


class PVar(Expr):
    """A program variable ``x ∈ X``."""

    __slots__ = ("name", "_hash")
    _interned: dict = {}

    def __new__(cls, name: str) -> "PVar":
        self = cls._interned.get(name)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "name", name)
            object.__setattr__(self, "_hash", hash(("pvar", name)))
            cls._interned[name] = self
        return self

    __setattr__ = _immutable_setattr

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PVar):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (PVar, (self.name,))

    def __repr__(self) -> str:
        return self.name


class LVar(Expr):
    """A logical variable ``x̂ ∈ X̂`` (an *interpreted symbol*, paper §2.1)."""

    __slots__ = ("name", "_hash")
    _interned: dict = {}

    def __new__(cls, name: str) -> "LVar":
        self = cls._interned.get(name)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "name", name)
            object.__setattr__(self, "_hash", hash(("lvar", name)))
            cls._interned[name] = self
        return self

    __setattr__ = _immutable_setattr

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, LVar):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (LVar, (self.name,))

    def __repr__(self) -> str:
        return f"#{self.name}"


class UnOpExpr(Expr):
    """A unary operator applied to an operand (hash-consed)."""

    __slots__ = ("op", "operand", "_hash")
    _interned: dict = {}

    def __new__(cls, op: UnOp, operand: Expr) -> "UnOpExpr":
        key = (op, operand)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "op", op)
            object.__setattr__(self, "operand", operand)
            object.__setattr__(self, "_hash", hash(("un", op, operand)))
            cls._interned[key] = self
        return self

    __setattr__ = _immutable_setattr

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, UnOpExpr):
            return NotImplemented
        return self.op is other.op and self.operand == other.operand

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (UnOpExpr, (self.op, self.operand))

    def __repr__(self) -> str:
        return f"({self.op.value} {self.operand!r})"


class BinOpExpr(Expr):
    """A binary operator applied to two operands (hash-consed)."""

    __slots__ = ("op", "left", "right", "_hash")
    _interned: dict = {}

    def __new__(cls, op: BinOp, left: Expr, right: Expr) -> "BinOpExpr":
        key = (op, left, right)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "op", op)
            object.__setattr__(self, "left", left)
            object.__setattr__(self, "right", right)
            object.__setattr__(self, "_hash", hash(("bin", op, left, right)))
            cls._interned[key] = self
        return self

    __setattr__ = _immutable_setattr

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, BinOpExpr):
            return NotImplemented
        return (
            self.op is other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (BinOpExpr, (self.op, self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op.value} {self.right!r})"


class EList(Expr):
    """An n-ary list constructor ``[e1, ..., en]``."""

    __slots__ = ("items", "_hash")
    _interned: dict = {}

    def __new__(cls, items: tuple) -> "EList":
        items = tuple(items)
        self = cls._interned.get(items)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "items", items)
            object.__setattr__(self, "_hash", hash(("elist", items)))
            cls._interned[items] = self
        return self

    __setattr__ = _immutable_setattr

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, EList):
            return NotImplemented
        return self.items == other.items

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (EList, (self.items,))

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(item) for item in self.items) + "]"


def clear_intern_caches() -> None:
    """Drop every intern table (test/benchmark hygiene for memory runs)."""
    for node_cls in (Lit, PVar, LVar, UnOpExpr, BinOpExpr, EList):
        node_cls._interned.clear()


def intern_table_sizes() -> Dict[str, int]:
    """Current intern-table sizes per node class.

    Pickle round-trip tests use this to assert re-interning: unpickling
    an expression whose nodes are already interned must not grow any
    table.
    """
    return {
        node_cls.__name__: len(node_cls._interned)
        for node_cls in (Lit, PVar, LVar, UnOpExpr, BinOpExpr, EList)
    }


ExprLike = Union[Expr, Value]

#: Convenient literals.
TRUE = Lit(True)
FALSE = Lit(False)
NULL_EXPR = Lit(NULL)


def to_expr(x: ExprLike) -> Expr:
    """Coerce a raw GIL value into a literal expression (identity on Expr)."""
    if isinstance(x, Expr):
        return x
    return Lit(x)


def lst(*items: ExprLike) -> EList:
    """Build a list-constructor expression from expression-like items."""
    return EList(tuple(to_expr(item) for item in items))


def conj(*conjuncts: Expr) -> Expr:
    """Right-nested conjunction of the given boolean expressions."""
    parts = [c for c in conjuncts if c != TRUE]
    if not parts:
        return TRUE
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = BinOpExpr(BinOp.AND, part, result)
    return result


def disj(*disjuncts: Expr) -> Expr:
    """Right-nested disjunction of the given boolean expressions."""
    parts = [d for d in disjuncts if d != FALSE]
    if not parts:
        return FALSE
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = BinOpExpr(BinOp.OR, part, result)
    return result


def children(e: Expr) -> tuple:
    """Immediate sub-expressions of ``e``."""
    if isinstance(e, UnOpExpr):
        return (e.operand,)
    if isinstance(e, BinOpExpr):
        return (e.left, e.right)
    if isinstance(e, EList):
        return e.items
    return ()


def walk(e: Expr) -> Iterator[Expr]:
    """Pre-order traversal of all sub-expressions (including ``e``)."""
    stack = [e]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(children(node))


def free_pvars(e: Expr) -> set:
    """Names of the program variables occurring in ``e``."""
    return {node.name for node in walk(e) if isinstance(node, PVar)}


def free_lvars(e: Expr) -> set:
    """Names of the logical variables occurring in ``e``."""
    return {node.name for node in walk(e) if isinstance(node, LVar)}


def symbols_of(e: Expr) -> set:
    """The uninterpreted symbols occurring literally in ``e``."""
    out = set()
    for node in walk(e):
        if isinstance(node, Lit) and isinstance(node.value, Symbol):
            out.add(node.value)
    return out


def substitute_pvars(e: Expr, store: Mapping[str, Expr]) -> Expr:
    """Replace each program variable with its store image (paper [EvalExpr]).

    Raises ``KeyError`` if ``e`` mentions a variable absent from the store —
    GIL programs produced by the compilers always initialise before use, so
    an absent variable is a compiler bug worth failing loudly on.
    """
    if isinstance(e, PVar):
        return store[e.name]
    if isinstance(e, (Lit, LVar)):
        return e
    if isinstance(e, UnOpExpr):
        return UnOpExpr(e.op, substitute_pvars(e.operand, store))
    if isinstance(e, BinOpExpr):
        return BinOpExpr(
            e.op,
            substitute_pvars(e.left, store),
            substitute_pvars(e.right, store),
        )
    if isinstance(e, EList):
        return EList(tuple(substitute_pvars(item, store) for item in e.items))
    raise TypeError(f"not an expression: {e!r}")


def substitute_lvars(e: Expr, env: Mapping[str, Expr]) -> Expr:
    """Replace logical variables with expressions (used by interpretations)."""
    if isinstance(e, LVar):
        return env.get(e.name, e)
    if isinstance(e, (Lit, PVar)):
        return e
    if isinstance(e, UnOpExpr):
        return UnOpExpr(e.op, substitute_lvars(e.operand, env))
    if isinstance(e, BinOpExpr):
        return BinOpExpr(
            e.op,
            substitute_lvars(e.left, env),
            substitute_lvars(e.right, env),
        )
    if isinstance(e, EList):
        return EList(tuple(substitute_lvars(item, env) for item in e.items))
    raise TypeError(f"not an expression: {e!r}")


def is_concrete(e: Expr) -> bool:
    """True iff ``e`` mentions no variables of either kind."""
    return not any(isinstance(node, (PVar, LVar)) for node in walk(e))
