"""Gillian's first-order solver.

The OCaml Gillian discharges path conditions to Z3.  Z3 is not available in
this environment, so this module implements a from-scratch decision
procedure for the fragment the three instantiations generate:

* boolean structure (conjunction, disjunction, negation) — handled by
  NNF conversion and DPLL-style case splitting;
* equality and disequality over uninterpreted symbols, strings, booleans,
  numbers, and lists — handled by congruence closure (union-find);
* linear arithmetic over numeric logical variables — handled by exact
  (Fraction-based) interval propagation;
* everything else — handled by bounded, type-directed model search with
  *verification*: a model is only reported after every conjunct
  concretely evaluates to ``true`` under it.

The solver is deliberately three-valued (:class:`SatResult`): ``UNSAT`` is
only returned with a proof (type conflict, congruence contradiction, or
empty interval), and ``SAT`` is only returned with a verified model.
``UNKNOWN`` is treated as "possibly satisfiable" by the engine when
filtering paths — which can at worst keep an infeasible path alive — and
as "no counter-model" by the bug reporter, preserving the paper's
no-false-positives guarantee (Theorem 3.6).

The solver cache (keyed by the frozenset of conjuncts) is the second of
the two engine improvements the paper credits for the 2× speed-up of
Gillian-JS over JaVerT 2.0 (§4.1); the ablation benchmark toggles it.

Incremental layer (this module's third speed lever)
---------------------------------------------------

Path conditions arrive as persistent prefix chains
(:class:`repro.logic.pathcond.PathCondition`): a child path is its parent
plus a handful of ``added`` conjuncts.  When ``incremental`` is enabled
the solver maintains a :class:`SolverContext` per prefix, carrying the
normalized conjunct list, the congruence-closure union-find, the variable
type bindings, and the last verified model *of that prefix*.  Checking a
child then costs only its delta:

* the delta conjuncts alone are simplified/flattened/deduplicated;
* an UNSAT parent makes every extension UNSAT (monotonicity of ∧);
* if the parent's verified model also satisfies the delta (after filling
  fresh variables with type-appropriate defaults), the child is SAT with
  that model — no search;
* otherwise the parent's union-find is cloned and only the delta literals
  are merged, the type environment is extended (not re-derived), and the
  remaining phases run over the combined literal list;
* any delta that would require case splitting (a disjunction) falls back
  to the monolithic solve, for that prefix and its descendants.

Results are cached three ways: per prefix identity (``PathCondition.uid``),
per (parent-context, added-conjuncts) pair — so sibling paths re-deriving
the same guard hit — and in the pre-existing frozenset cache, which the
incremental layer both consults and populates so conjunct-order
permutations keep hitting.  Soundness is unchanged: UNSAT is still only
produced with a proof (type conflict, congruence contradiction, empty
interval) and SAT only with a model verified against every conjunct.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.gil.ops import EvalError, evaluate
from repro.gil.values import GilType, Symbol, Value
from repro.logic.expr import (
    FALSE,
    TRUE,
    BinOp,
    BinOpExpr,
    EList,
    Expr,
    Lit,
    LVar,
    UnOp,
    UnOpExpr,
    free_lvars,
)
from repro.logic.pathcond import PathCondition
from repro.logic.simplify import Simplifier
from repro.logic.types import TypeConflict, collect_var_types


class SatResult(enum.Enum):
    """Three-valued verdict of a satisfiability query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class UnknownAbort(RuntimeError):
    """Raised by the engine when a branch's feasibility came back UNKNOWN
    under ``unknown_policy="abort"``.

    The exception is engine control flow, not an error: the scheduler
    catches it and ends the run with stop reason ``"unknown-abort"``.
    Defined here because the solver's three-valued verdict is what the
    policy interprets.
    """


class _OutOfGas(Exception):
    """Internal: the per-query step budget ran out mid-solve."""


@dataclass(frozen=True)
class SolverSnapshot:
    """An immutable capture of the attribution-relevant solver counters.

    Engine runs attribute solver work to themselves by snapshotting
    around each step and folding the delta into their own
    :class:`~repro.engine.results.ExecutionStats` — correct even when
    several explorers interleave over one shared solver, which the old
    run-level base-counter subtraction was not.
    """

    queries: int = 0
    cache_hits: int = 0
    prefix_hits: int = 0
    model_reuse_hits: int = 0
    solve_time: float = 0.0
    timeouts: int = 0
    #: per-phase wall clock (zero unless ``Solver(profile_phases=True)``)
    split_time: float = 0.0
    propagation_time: float = 0.0
    search_time: float = 0.0


@dataclass
class SolverStats:
    """Counters surfaced by the benchmark harness."""

    queries: int = 0
    cache_hits: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    search_nodes: int = 0
    #: incremental-layer counters ------------------------------------------
    #: hits on an already-solved prefix (by uid or (parent, delta) key)
    prefix_hits: int = 0
    #: extensions decided by re-verifying the parent's model on the delta
    model_reuse_hits: int = 0
    #: extensions decided by UNSAT inheritance from the parent
    unsat_inherited: int = 0
    #: extensions solved by the delta (cloned union-find) pipeline
    incremental_solves: int = 0
    #: extensions that fell back to the monolithic pipeline
    monolithic_solves: int = 0
    #: :meth:`Solver.check_batch` invocations (sibling branch points
    #: decided in one pass).  Deliberately *not* part of
    #: :class:`SolverSnapshot`: how queries are grouped into batches
    #: depends on frontier partitioning, so folding it into per-run
    #: attribution would break worker-count invariance of merged stats.
    batch_calls: int = 0
    #: total wall time spent inside solve entry points, seconds
    solve_time: float = 0.0
    #: queries that exhausted the per-query step budget (or hit an
    #: injected timeout fault) and degraded to UNKNOWN
    timeouts: int = 0
    #: internal degradations survived with a fallback (e.g. a type
    #: conflict while completing a model over eliminated variables)
    degraded: int = 0
    #: per-phase wall clock inside the solve pipeline, seconds — boolean
    #: case splitting, interval propagation, and model search.  All zero
    #: unless the solver was built with ``profile_phases=True``; the
    #: three phases do not sum to ``solve_time`` (normalization, theory
    #: extension, and caching live outside them)
    split_time: float = 0.0
    propagation_time: float = 0.0
    search_time: float = 0.0

    def snapshot(self) -> SolverSnapshot:
        """The attribution counters, frozen at this instant."""
        return SolverSnapshot(
            queries=self.queries,
            cache_hits=self.cache_hits,
            prefix_hits=self.prefix_hits,
            model_reuse_hits=self.model_reuse_hits,
            solve_time=self.solve_time,
            timeouts=self.timeouts,
            split_time=self.split_time,
            propagation_time=self.propagation_time,
            search_time=self.search_time,
        )

    def delta(self, since: SolverSnapshot) -> SolverSnapshot:
        """Counter growth since an earlier :meth:`snapshot`."""
        return SolverSnapshot(
            queries=self.queries - since.queries,
            cache_hits=self.cache_hits - since.cache_hits,
            prefix_hits=self.prefix_hits - since.prefix_hits,
            model_reuse_hits=self.model_reuse_hits - since.model_reuse_hits,
            solve_time=self.solve_time - since.solve_time,
            timeouts=self.timeouts - since.timeouts,
            split_time=self.split_time - since.split_time,
            propagation_time=self.propagation_time - since.propagation_time,
            search_time=self.search_time - since.search_time,
        )


Model = Dict[str, Value]

_SPLIT_LIMIT = 256
_SEARCH_NODE_LIMIT = 20_000
_PROPAGATION_ROUNDS = 30


@dataclass
class SolverContext:
    """Solver state carried along one path-condition prefix.

    ``norm`` is the simplified/flattened/deduplicated conjunct tuple of the
    whole prefix (what the monolithic pipeline would have produced for it);
    ``literals`` / ``cc`` / ``var_types`` are the split-free theory state
    used to extend by a delta, or ``None`` once a prefix needed case
    splitting (from then on the chain solves monolithically).  ``model`` is
    a model verified against every conjunct of the prefix, kept so child
    extensions can try it on their delta first.
    """

    uid: int
    result: "SatResult"
    model: Optional[Model]
    norm: Tuple[Expr, ...] = ()
    norm_set: frozenset = frozenset()
    literals: Optional[Tuple[Expr, ...]] = None
    cc: Optional["_CongruenceClosure"] = None
    var_types: Optional[Dict[str, GilType]] = None
    #: True iff ``result`` is UNKNOWN *because* the step budget (or an
    #: injected fault) cut the solve short — preserved through the prefix
    #: cache so re-checks of the same prefix report the same provenance
    timed_out: bool = False

_INF = Fraction(10**12)  # pseudo-infinity for interval endpoints


@dataclass
class _Interval:
    lo: Fraction = -_INF
    hi: Fraction = _INF
    lo_strict: bool = False
    hi_strict: bool = False

    def empty(self) -> bool:
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_strict or self.hi_strict)

    def tighten_lo(self, x: Fraction, strict: bool = False) -> bool:
        if x > self.lo:
            self.lo, self.lo_strict = x, strict
            return True
        if x == self.lo and strict and not self.lo_strict:
            self.lo_strict = True
            return True
        return False

    def tighten_hi(self, x: Fraction, strict: bool = False) -> bool:
        if x < self.hi:
            self.hi, self.hi_strict = x, strict
            return True
        if x == self.hi and strict and not self.hi_strict:
            self.hi_strict = True
            return True
        return False


class Solver:
    """Satisfiability of path conditions, with model finding.

    Parameters mirror the engine ablation: ``simplifier`` may be a disabled
    :class:`Simplifier` and ``cache_enabled`` toggles result caching.
    """

    def __init__(
        self,
        simplifier: Optional[Simplifier] = None,
        cache_enabled: bool = True,
        incremental: bool = True,
        step_budget: Optional[int] = None,
        profile_phases: bool = False,
    ) -> None:
        self.simplifier = simplifier if simplifier is not None else Simplifier()
        self.cache_enabled = cache_enabled
        self.incremental = incremental
        #: per-query work budget in solver steps (split branches,
        #: propagation passes, model-search nodes); step-counted rather
        #: than wall-clock so budgeted runs stay deterministic.  None:
        #: unbounded (every answer is exactly as before the budget
        #: existed).  A query that runs out answers UNKNOWN and counts a
        #: timeout — the from-scratch analogue of Z3's per-query timeout
        #: and ``Unknown`` verdict.
        self.step_budget = step_budget
        self.stats = SolverStats()
        #: optional :class:`repro.engine.events.EventBus`; when truthy,
        #: every answered query emits a ``SolverQueryEvent``
        self.events = None
        #: optional :class:`repro.testing.faults.FaultInjector`; when set,
        #: consulted once per solved query to force deterministic timeouts
        self.faults = None
        #: remaining gas for the query in flight (None: unbudgeted)
        self._gas: Optional[int] = None
        #: whether the query in flight degraded via budget/fault timeout
        self._timed_out = False
        #: provenance of the last :meth:`check` answer: True iff it was
        #: UNKNOWN *because* the step budget (or an injected fault) cut
        #: the solve short, as opposed to the baseline incomplete-search
        #: UNKNOWN that exists without any budget.  Callers degrading
        #: their behaviour on timeouts (e.g. the state model's
        #: ``unknown_assumed`` accounting) read this right after check().
        self.last_timed_out = False
        self._cache: Dict[frozenset, Tuple[SatResult, Optional[Model]]] = {}
        #: conjunct-set keys whose cached UNKNOWN came from a timeout, so
        #: cache hits report the same provenance as the original solve
        self._timeout_keys: set = set()
        #: prefix contexts by PathCondition.uid
        self._contexts: Dict[int, SolverContext] = {}
        #: prefix contexts by (parent context uid, added conjunct tuple)
        self._prefix_cache: Dict[tuple, SolverContext] = {}
        #: solved extensions by (parent context uid, *normalized* delta
        #: tuple).  The raw prefix cache above keys on the syntactic
        #: ``pc.added`` tuple, so two branch points phrasing an equal
        #: extension differently — a guard vs its simplified form, one
        #: conjoined ``∧`` vs two conjuncts, re-assertion of something
        #: the prefix already holds — miss it and re-solve.  Keying on
        #: the delta *after* simplification/flattening/dedup catches
        #: exactly those; parent identity plus normalized delta fully
        #: determines the context (norm, theory state, verdict), so a
        #: hit returns it wholesale.  Hits count as ``cache_hits``: this
        #: is the exact-result cache tier, now keyed where duplicates
        #: actually arise instead of on whole-conjunction permutations
        self._delta_cache: Dict[tuple, SolverContext] = {}
        self._root_context = SolverContext(
            uid=0,
            result=SatResult.SAT,
            model={},
            norm=(),
            norm_set=frozenset(),
            literals=(),
            cc=_CongruenceClosure(),
            var_types={},
        )
        #: attribute solve time to pipeline phases (split / propagation /
        #: search) in :class:`SolverStats` — off by default so the default
        #: path pays zero extra ``perf_counter`` calls.  Enabled by
        #: wrapping the phase entry points on *this instance*, which keeps
        #: every call site (monolithic and incremental) covered without
        #: per-call flag checks.
        self.profile_phases = profile_phases
        if profile_phases:
            self._split = self._timed_phase_gen(self._split, "split_time")
            self._propagate_intervals = self._timed_phase(
                self._propagate_intervals, "propagation_time"
            )
            self._search_model = self._timed_phase(
                self._search_model, "search_time"
            )

    def _timed_phase(self, func, attr: str):
        """``func`` wrapped to accrue its wall time into ``stats.<attr>``."""

        def timed(*args, **kwargs):
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                setattr(
                    self.stats,
                    attr,
                    getattr(self.stats, attr) + time.perf_counter() - start,
                )

        return timed

    def _timed_phase_gen(self, func, attr: str):
        """Like :meth:`_timed_phase` for a generator: only time actually
        spent producing items is charged, not the consumer's work between
        ``next`` calls (``_solve`` interleaves splitting with solving)."""

        def timed(*args, **kwargs):
            it = func(*args, **kwargs)
            while True:
                start = time.perf_counter()
                try:
                    item = next(it)
                except StopIteration:
                    return
                finally:
                    setattr(
                        self.stats,
                        attr,
                        getattr(self.stats, attr) + time.perf_counter() - start,
                    )
                yield item

        return timed

    # -- public API --------------------------------------------------------

    def check(self, pc: Union[PathCondition, Iterable[Expr]]) -> SatResult:
        """Three-valued satisfiability of the conjunction of ``pc``.

        A :class:`PathCondition` argument is solved through the incremental
        prefix-context layer (when enabled); any other iterable of
        conjuncts goes through the monolithic pipeline.
        """
        if self.incremental and isinstance(pc, PathCondition):
            ctx = self._ensure_context(pc)
            self.last_timed_out = ctx.timed_out
            return ctx.result
        result, _ = self._check_with_model(pc, want_model=False)
        self.last_timed_out = result is SatResult.UNKNOWN and self._timed_out
        return result

    def check_batch(
        self, pcs: Sequence[Union[PathCondition, Iterable[Expr]]]
    ) -> List[Tuple[SatResult, bool]]:
        """Feasibility of N sibling path conditions from one branch point.

        Every element of ``pcs`` extends the same parent (the branching
        state's path condition), so the shared parent prefix is resolved
        once up front and each sibling is then decided as a single delta
        extension of that context — one incremental pass over the branch
        point instead of N independent chain walks.

        Attribution is identical to N sequential :meth:`check` calls:
        each sibling emits its own ``SolverQueryEvent``, lands in the
        same stats tiers, and consumes fault/budget state in the same
        order.  The shared parent resolution neither emits events nor
        counts a prefix hit (matching the silent ancestor rebuilds of
        :meth:`_ensure_context`), so merged counters stay invariant in
        both batching and worker count.

        Returns ``(verdict, timed_out)`` per sibling; the flag carries
        the per-query provenance that :attr:`last_timed_out` would hold
        right after the corresponding sequential check.
        """
        if not pcs:
            return []
        self.stats.batch_calls += 1
        if self.incremental:
            for pc in pcs:
                if isinstance(pc, PathCondition) and pc.parent is not None:
                    if pc.parent.uid not in self._contexts:
                        self._ensure_context(pc.parent, emit=False)
                    break
        out: List[Tuple[SatResult, bool]] = []
        for pc in pcs:
            verdict = self.check(pc)
            out.append((verdict, self.last_timed_out))
        return out

    def is_sat(self, pc: Union[PathCondition, Iterable[Expr]]) -> bool:
        """Over-approximate satisfiability: UNKNOWN counts as SAT.

        This is the query the symbolic ``assume`` uses (paper Def. 2.6):
        keeping a path whose feasibility we cannot decide is sound for
        bug-finding because every reported bug is separately verified by a
        concrete counter-model.
        """
        return self.check(pc) is not SatResult.UNSAT

    def get_model(
        self, pc: Union[PathCondition, Iterable[Expr]]
    ) -> Optional[Model]:
        """A *verified* logical environment ε satisfying ``pc``, or None."""
        if self.incremental and isinstance(pc, PathCondition):
            ctx = self._ensure_context(pc)
            if ctx.result is not SatResult.SAT:
                return None
            if ctx.model is not None:
                # The context model covers the *normalised* conjuncts;
                # extend it over variables the simplifier eliminated from
                # the originals (and re-verify against them).
                completed = self._complete_model(
                    dict(ctx.model), list(pc.conjuncts)
                )
                if completed is not None:
                    return completed
            # SAT recorded without a usable model: retry monolithically
            # (mirrors the frozenset cache's want_model bypass).
            pc = pc.conjuncts
        result, model = self._check_with_model(pc, want_model=True)
        if result is SatResult.SAT:
            return model
        return None

    def entails(self, pc: Iterable[Expr], goal: Expr) -> bool:
        """``π ⊢ goal``: does the path condition entail the formula?

        Decided as UNSAT(π ∧ ¬goal); UNKNOWN means "not provably entailed".
        """
        conjuncts = list(pc) + [UnOpExpr(UnOp.NOT, goal)]
        return self.check(conjuncts) is SatResult.UNSAT

    # -- per-query work budget ----------------------------------------------

    def _begin_query(self) -> None:
        """Arm the step budget for one freshly-solved query."""
        self._gas = self.step_budget
        self._timed_out = False

    def _forced_timeout(self) -> bool:
        """True when fault injection demands this query time out."""
        return self.faults is not None and self.faults.solver_timeout()

    def _charge(self, amount: int = 1) -> None:
        """Spend budgeted solver work; deterministic because the units
        are solver steps (branches, propagation passes, search nodes),
        never wall clock."""
        if self._gas is None:
            return
        self._gas -= amount
        if self._gas < 0:
            raise _OutOfGas()

    def _emit_unknown(self, conjuncts: int, reason: Optional[str] = None) -> None:
        """Emit a ``SolverUnknownEvent`` for a freshly-degraded query."""
        if not self.events:
            return
        from repro.engine.events import SolverUnknownEvent

        self.events.emit(
            SolverUnknownEvent(
                reason=reason
                or ("timeout" if self._timed_out else "incomplete-search"),
                conjuncts=conjuncts,
                timed_out=self._timed_out,
            )
        )

    # -- incremental prefix contexts ----------------------------------------

    def _ensure_context(
        self, pc: PathCondition, emit: bool = True
    ) -> SolverContext:
        """The solved context of ``pc``, building missing ancestors first.

        ``emit=False`` suppresses the requested node's own event too —
        used when resolving a shared batch prefix, which must stay as
        invisible as the silent ancestor rebuilds below.
        """
        ctx = self._contexts.get(pc.uid)
        if ctx is not None:
            self.stats.prefix_hits += 1
            if self.events and emit:
                self._emit_query(ctx.result, len(ctx.norm), True, 0.0)
            return ctx
        # Walk up to the nearest solved ancestor (iterative: chains can be
        # as deep as the per-path step bound).
        chain: List[PathCondition] = []
        node: Optional[PathCondition] = pc
        ctx = None
        while node is not None:
            existing = self._contexts.get(node.uid)
            if existing is not None:
                ctx = existing
                break
            chain.append(node)
            node = node.parent
        if ctx is None:
            ctx = self._root_context
        # Only the *requested* node emits a SolverQueryEvent.  Ancestors
        # rebuilt along the way (a parallel worker re-solving the prefix
        # chain of a restored frontier item) are implementation detail:
        # emitting them would make event counts depend on how the frontier
        # was partitioned, breaking the one-event-per-check determinism
        # that metric aggregation across worker counts relies on.  Their
        # work still lands in ``stats`` (queries, solve_time).
        for n in reversed(chain):
            ctx = self._extend_context(ctx, n, emit=emit and n is pc)
        return ctx

    def _extend_context(
        self, parent: SolverContext, pc: PathCondition, emit: bool = True
    ) -> SolverContext:
        key = (parent.uid, pc.added)
        ctx = self._prefix_cache.get(key) if self.cache_enabled else None
        if ctx is not None:
            self.stats.prefix_hits += 1
            cached, elapsed = True, 0.0
        else:
            start = time.perf_counter()
            self._begin_query()
            try:
                ctx = self._solve_extension(parent, pc)
            finally:
                elapsed = time.perf_counter() - start
                self.stats.solve_time += elapsed
            cached = False
            if self.cache_enabled:
                self._prefix_cache[key] = ctx
        self._contexts[pc.uid] = ctx
        if emit and self.events:
            self._emit_query(ctx.result, len(ctx.norm), cached, elapsed)
            if ctx.result is SatResult.UNKNOWN and not cached:
                self._emit_unknown(len(ctx.norm))
        return ctx

    def _timeout_context(
        self, pc, norm, norm_set, theory
    ) -> SolverContext:
        """The UNKNOWN context of a query that ran out of budget (or hit
        an injected timeout).  Theory state built before the timeout is
        kept so descendants can still extend incrementally."""
        self.stats.unknown += 1
        self.stats.timeouts += 1
        self._timed_out = True
        literals, cc, var_types = (
            theory[:3] if theory is not None else (None, None, None)
        )
        return SolverContext(
            uid=pc.uid, result=SatResult.UNKNOWN, model=None,
            norm=norm, norm_set=norm_set,
            literals=literals, cc=cc, var_types=var_types,
            timed_out=True,
        )

    def _solve_extension(
        self, parent: SolverContext, pc: PathCondition
    ) -> SolverContext:
        """Solve one chain extension: ``parent`` plus ``pc.added``."""
        # UNSAT is inherited: conjoining cannot recover satisfiability.
        if parent.result is SatResult.UNSAT:
            self.stats.queries += 1
            self.stats.unsat += 1
            self.stats.unsat_inherited += 1
            return SolverContext(
                uid=pc.uid, result=SatResult.UNSAT, model=None,
                norm=parent.norm, norm_set=parent.norm_set,
            )

        # 1. Normalize only the delta (simplify, flatten ∧, dedup against
        # the parent's normalized set).
        delta: List[Expr] = []
        seen: set = set()
        stack = list(pc.added)
        stack.reverse()
        while stack:
            e = self.simplifier.simplify(stack.pop())
            if e == TRUE:
                continue
            if e == FALSE:
                self.stats.queries += 1
                self.stats.unsat += 1
                return SolverContext(
                    uid=pc.uid, result=SatResult.UNSAT, model=None,
                    norm=parent.norm, norm_set=parent.norm_set,
                )
            if isinstance(e, BinOpExpr) and e.op is BinOp.AND:
                stack.append(e.right)
                stack.append(e.left)
                continue
            if e not in parent.norm_set and e not in seen:
                seen.add(e)
                delta.append(e)
        if not delta:
            # Nothing new: the child shares the parent's context outright.
            self.stats.prefix_hits += 1
            return parent

        self.stats.queries += 1
        norm = parent.norm + tuple(delta)
        norm_set = parent.norm_set | seen

        # Injected timeout: degrade before solving, like a Z3 deadline
        # firing on arrival.  Checked only for queries with real work —
        # trivial extensions (empty delta, inherited UNSAT) never consume
        # the fault's query counter.
        if self._forced_timeout():
            return self._timeout_context(pc, norm, norm_set, None)

        # 1b. Exact-delta cache: this normalized delta already solved
        # under this same parent.  Probed after the forced-timeout check
        # so fault injection consumes its query counter for every
        # real-work query, cached or not (same rule the frozenset cache
        # below follows); timeout contexts are never stored, so a hit
        # can only replay a budget-independent verdict.
        dkey: Optional[tuple] = None
        if self.cache_enabled:
            dkey = (parent.uid, tuple(delta))
            hit = self._delta_cache.get(dkey)
            if hit is not None:
                self.stats.cache_hits += 1
                if hit.result is SatResult.SAT:
                    self.stats.sat += 1
                elif hit.result is SatResult.UNSAT:
                    self.stats.unsat += 1
                else:
                    self.stats.unknown += 1
                return hit

        # Fast UNSAT: a delta conjunct whose negation is already in the
        # conjunction is an immediate contradiction — the shape every
        # re-branch on an already-decided guard produces (the path holds
        # ``g``, the false arm asks about ``¬g``).  O(delta) set probes
        # instead of a theory solve, and strictly more precise than the
        # search pipeline, which can time out into UNKNOWN on the same
        # pair.
        for d in delta:
            if type(d) is UnOpExpr and d.op is UnOp.NOT:
                neg = d.operand
            else:
                neg = self.simplifier.simplify(UnOpExpr(UnOp.NOT, d))
            if neg in norm_set:
                self.stats.unsat += 1
                self.stats.incremental_solves += 1
                return self._finish_context(
                    pc, SatResult.UNSAT, None, norm, norm_set,
                    literals=None, cc=None, var_types=None, dkey=dkey,
                )

        # 2. Extend the split-free theory state by the delta (cloned
        # union-find, merged type bindings).  ``None`` means the chain
        # needs case splitting and solves monolithically from here on.
        theory = self._extend_theory(parent, delta)
        if theory is not None and theory[3]:
            # Type conflict or congruence contradiction: an UNSAT proof.
            self.stats.unsat += 1
            self.stats.incremental_solves += 1
            return self._finish_context(
                pc, SatResult.UNSAT, None, norm, norm_set,
                literals=None, cc=None, var_types=None, dkey=dkey,
            )

        # 3. Permutations of an already-solved conjunct set hit the
        # frozenset cache; keep the theory state alive for descendants.
        fkey = frozenset(norm)
        if self.cache_enabled:
            cached = self._cache.get(fkey)
            if cached is not None:
                self.stats.cache_hits += 1
                result, model = cached
                return self._record_result(
                    pc, result, model, norm, norm_set, theory, dkey=dkey
                )

        # 4. Model reuse: if the parent's verified model also satisfies the
        # delta (extending it over fresh variables), the child is SAT.
        model = self._reuse_model(parent, delta, theory)
        if model is not None:
            self.stats.sat += 1
            self.stats.model_reuse_hits += 1
            return self._finish_context(
                pc, SatResult.SAT, model, norm, norm_set,
                *(theory[:3] if theory is not None else (None, None, None)),
                dkey=dkey,
            )

        # 5. Solve: delta pipeline over the combined literal list when the
        # chain is split-free, else the monolithic pipeline.
        try:
            if theory is not None:
                literals, cc, var_types, _ = theory
                result, model = self._solve_theory_literals(
                    list(literals), list(norm), var_types, cc
                )
                self.stats.incremental_solves += 1
            else:
                result, model = self._solve(list(norm))
                self.stats.monolithic_solves += 1
        except _OutOfGas:
            return self._timeout_context(pc, norm, norm_set, theory)
        if result is SatResult.SAT and model is not None:
            model = self._complete_model(model, list(norm))
        if result is SatResult.SAT:
            self.stats.sat += 1
        elif result is SatResult.UNSAT:
            self.stats.unsat += 1
        else:
            self.stats.unknown += 1
        return self._finish_context(
            pc, result, model, norm, norm_set,
            *(theory[:3] if theory is not None else (None, None, None)),
            dkey=dkey,
        )

    def _finish_context(
        self, pc, result, model, norm, norm_set, literals, cc, var_types,
        dkey=None,
    ) -> SolverContext:
        if self.cache_enabled:
            self._cache[frozenset(norm)] = (result, model)
        ctx = SolverContext(
            uid=pc.uid, result=result, model=model, norm=norm,
            norm_set=norm_set, literals=literals, cc=cc, var_types=var_types,
        )
        if dkey is not None:
            self._delta_cache[dkey] = ctx
        return ctx

    def _record_result(self, pc, result, model, norm, norm_set, theory, dkey=None):
        if result is SatResult.SAT:
            self.stats.sat += 1
        elif result is SatResult.UNSAT:
            self.stats.unsat += 1
        else:
            self.stats.unknown += 1
        literals, cc, var_types = (
            theory[:3] if theory is not None else (None, None, None)
        )
        ctx = SolverContext(
            uid=pc.uid, result=result, model=model, norm=norm,
            norm_set=norm_set, literals=literals, cc=cc, var_types=var_types,
            timed_out=(
                result is SatResult.UNKNOWN
                and frozenset(norm) in self._timeout_keys
            ),
        )
        if dkey is not None and not ctx.timed_out:
            self._delta_cache[dkey] = ctx
        return ctx

    def _extend_theory(self, parent: SolverContext, delta: List[Expr]):
        """Extend the parent's theory state by the delta conjuncts.

        Returns ``(literals, cc, var_types, unsat)`` — with ``unsat`` True
        when the extension itself proves a contradiction — or ``None`` when
        the parent has no live theory state or a delta conjunct requires
        case splitting.
        """
        if parent.literals is None:
            return None
        delta_lits: List[Expr] = []
        for c in delta:
            lits = self._literals_of(c)
            if lits is None:
                return None
            delta_lits.extend(lits)
        literals = parent.literals + tuple(delta_lits)
        if any(lit == FALSE for lit in delta_lits):
            return (literals, None, None, True)
        try:
            var_types = collect_var_types(
                delta_lits, env=dict(parent.var_types)
            )
        except TypeConflict:
            return (literals, None, None, True)
        cc = parent.cc.clone()
        for lit in delta_lits:
            if isinstance(lit, BinOpExpr) and lit.op is BinOp.EQ:
                cc.merge(lit.left, lit.right)
            elif (
                isinstance(lit, UnOpExpr)
                and lit.op is UnOp.NOT
                and isinstance(lit.operand, BinOpExpr)
                and lit.operand.op is BinOp.EQ
            ):
                cc.assert_distinct(lit.operand.left, lit.operand.right)
        if not cc.consistent():
            return (literals, cc, var_types, True)
        return (literals, cc, var_types, False)

    def _reuse_model(
        self, parent: SolverContext, delta: List[Expr], theory
    ) -> Optional[Model]:
        """The parent's model extended over the delta, if it satisfies it.

        Fresh variables (mentioned by the delta but absent from the model)
        get type-appropriate defaults; they cannot occur in the parent's
        conjuncts, so the extension stays a verified model of the whole
        prefix whenever every delta conjunct evaluates to true.
        """
        if parent.model is None:
            return None
        missing: set = set()
        for c in delta:
            missing |= free_lvars(c)
        missing -= parent.model.keys()
        model = parent.model
        if missing:
            var_types = theory[2] if theory is not None else None
            if var_types is None:
                try:
                    var_types = collect_var_types(delta)
                except TypeConflict:
                    # Ill-typed delta: fall back to untyped defaults; the
                    # candidate model is still verified against every
                    # conjunct below, so this only costs precision.
                    self.stats.degraded += 1
                    self._emit_unknown(len(delta), reason="model-completion")
                    var_types = {}
            defaults = {
                GilType.NUMBER: 0,
                GilType.STRING: "",
                GilType.BOOLEAN: True,
                GilType.LIST: (0, 0, 0),
                GilType.SYMBOL: Symbol("fresh_default"),
            }
            model = dict(model)
            for name in missing:
                model[name] = defaults.get(
                    var_types.get(name, GilType.NUMBER), 0
                )
        for c in delta:
            try:
                if evaluate(c, lvar_env=model) is not True:
                    return None
            except EvalError:
                return None
        return model

    def _literals_of(self, e: Expr) -> Optional[List[Expr]]:
        """The theory literals of a split-free conjunct, or None.

        Mirrors exactly what :meth:`_split` does to a conjunct on the
        single branch it produces when no disjunction is present, so the
        incremental literal list matches the monolithic one.
        """
        out: List[Expr] = []
        pending = [e]
        while pending:
            x = self.simplifier.simplify(pending.pop())
            if x == TRUE:
                continue
            if x == FALSE:
                out.append(FALSE)
                continue
            if isinstance(x, BinOpExpr) and x.op is BinOp.AND:
                pending.append(x.right)
                pending.append(x.left)
                continue
            if isinstance(x, BinOpExpr) and x.op is BinOp.OR:
                return None
            if isinstance(x, UnOpExpr) and x.op is UnOp.NOT:
                inner = self.simplifier.simplify(x.operand)
                if isinstance(inner, BinOpExpr) and inner.op is BinOp.AND:
                    return None  # ¬(a ∧ b) is a disjunction
                if isinstance(inner, BinOpExpr) and inner.op is BinOp.OR:
                    pending.append(UnOpExpr(UnOp.NOT, inner.right))
                    pending.append(UnOpExpr(UnOp.NOT, inner.left))
                    continue
                if isinstance(inner, UnOpExpr) and inner.op is UnOp.NOT:
                    pending.append(inner.operand)
                    continue
                if isinstance(inner, LVar):
                    out.append(BinOpExpr(BinOp.EQ, inner, FALSE))
                    continue
                out.append(UnOpExpr(UnOp.NOT, inner))
                continue
            if isinstance(x, LVar):
                out.append(BinOpExpr(BinOp.EQ, x, TRUE))
                continue
            if isinstance(x, BinOpExpr) and x.op is BinOp.EQ:
                reduced = self._reduce_bool_eq(x)
                if reduced is not None:
                    pending.append(reduced)
                    continue
            out.append(x)
        return out

    def _solve_theory_literals(
        self,
        literals: List[Expr],
        norm: List[Expr],
        var_types: Dict[str, GilType],
        cc: "_CongruenceClosure",
    ) -> Tuple[SatResult, Optional[Model]]:
        """Phases 3–4 of :meth:`_solve_literals` on pre-extended state."""
        intervals = self._propagate_intervals(literals, cc)
        if intervals is None:
            return SatResult.UNSAT, None
        if self._diseq_point_conflict(literals, intervals):
            return SatResult.UNSAT, None
        if self._integral_domain_exhausted(literals, intervals):
            return SatResult.UNSAT, None
        model = self._search_model(literals, norm, var_types, cc, intervals)
        if model is not None:
            return SatResult.SAT, model
        return SatResult.UNKNOWN, None

    # -- core ---------------------------------------------------------------

    def _emit_query(
        self, result: SatResult, conjuncts: int, cached: bool, elapsed: float
    ) -> None:
        from repro.engine.events import SolverQueryEvent

        self.events.emit(
            SolverQueryEvent(
                result=result.name,
                conjuncts=conjuncts,
                cached=cached,
                time=elapsed,
            )
        )

    def _check_with_model(
        self, pc: Iterable[Expr], want_model: bool
    ) -> Tuple[SatResult, Optional[Model]]:
        pc = list(pc)
        start = time.perf_counter()
        hits_before = self.stats.cache_hits
        try:
            result, model = self._check_with_model_timed(pc, want_model)
        finally:
            elapsed = time.perf_counter() - start
            self.stats.solve_time += elapsed
        cached = self.stats.cache_hits > hits_before
        if self.events:
            self._emit_query(result, len(pc), cached, elapsed)
            if result is SatResult.UNKNOWN and not cached:
                self._emit_unknown(len(pc))
        return result, model

    def _check_with_model_timed(
        self, pc: Iterable[Expr], want_model: bool
    ) -> Tuple[SatResult, Optional[Model]]:
        self._timed_out = False
        original = list(pc)
        conjuncts = self._normalise(original)
        if conjuncts is None:
            return SatResult.UNSAT, None
        self.stats.queries += 1
        key = frozenset(conjuncts)
        if self.cache_enabled:
            cached = self._cache.get(key)
            if cached is not None and (cached[1] is not None or not want_model):
                self.stats.cache_hits += 1
                self._timed_out = key in self._timeout_keys
                return cached
        self._begin_query()
        try:
            if self._forced_timeout():
                raise _OutOfGas()
            result, model = self._solve(conjuncts)
        except _OutOfGas:
            self.stats.unknown += 1
            self.stats.timeouts += 1
            self._timed_out = True
            if self.cache_enabled:
                self._cache[key] = (SatResult.UNKNOWN, None)
                self._timeout_keys.add(key)
            return SatResult.UNKNOWN, None
        if result is SatResult.SAT and model is not None:
            model = self._complete_model(model, original)
        if result is SatResult.SAT:
            self.stats.sat += 1
        elif result is SatResult.UNSAT:
            self.stats.unsat += 1
        else:
            self.stats.unknown += 1
        if self.cache_enabled:
            self._cache[key] = (result, model)
        return result, model

    def _complete_model(self, model: Model, original: List[Expr]) -> Optional[Model]:
        """Extend ``model`` over every variable of the *original* conjuncts.

        Simplification may eliminate variables (e.g. ``x ≤ x``); the model
        is extended with type-appropriate defaults — sound because an
        eliminated variable cannot affect the truth of the simplified
        (equivalent) conjuncts — and then re-verified against the original
        conjuncts.  Returns None (no usable model) if verification fails.
        """
        missing = set()
        for c in original:
            missing |= free_lvars(c)
        missing -= model.keys()
        if missing:
            from repro.logic.types import collect_var_types

            try:
                var_types = collect_var_types(original)
            except TypeConflict:
                # Ill-typed originals: untyped defaults, then re-verify —
                # degraded (the model may fail verification) but never
                # silent and never unsound.
                self.stats.degraded += 1
                self._emit_unknown(len(original), reason="model-completion")
                var_types = {}
            defaults = {
                GilType.NUMBER: 0,
                GilType.STRING: "",
                GilType.BOOLEAN: True,
                GilType.LIST: (0, 0, 0),
                GilType.SYMBOL: Symbol("fresh_default"),
            }
            model = dict(model)
            for name in missing:
                model[name] = defaults.get(var_types.get(name, GilType.NUMBER), 0)
        return model if self._verify(original, model) else None

    def _normalise(self, pc: Iterable[Expr]) -> Optional[List[Expr]]:
        """Simplify and flatten (in conjunct order); None means a literal
        ``false`` appeared."""
        out: List[Expr] = []
        stack = list(pc)
        stack.reverse()
        while stack:
            e = self.simplifier.simplify(stack.pop())
            if e == TRUE:
                continue
            if e == FALSE:
                return None
            if isinstance(e, BinOpExpr) and e.op is BinOp.AND:
                stack.append(e.right)
                stack.append(e.left)
                continue
            out.append(e)
        # Deduplicate, preserving order.
        seen = set()
        unique = []
        for e in out:
            if e not in seen:
                seen.add(e)
                unique.append(e)
        return unique

    def _solve(
        self, conjuncts: List[Expr]
    ) -> Tuple[SatResult, Optional[Model]]:
        if not conjuncts:
            return SatResult.SAT, {}
        saw_unknown = False
        for literals in self._split(conjuncts, _SPLIT_LIMIT):
            result, model = self._solve_literals(literals, conjuncts)
            if result is SatResult.SAT:
                return SatResult.SAT, model
            if result is SatResult.UNKNOWN:
                saw_unknown = True
        if saw_unknown:
            return SatResult.UNKNOWN, None
        return SatResult.UNSAT, None

    # -- boolean structure --------------------------------------------------

    def _split(
        self, conjuncts: Sequence[Expr], limit: int
    ) -> Iterable[List[Expr]]:
        """Lazy DNF: yield lists of theory literals covering ``conjuncts``.

        Conjuncts are processed in order (the pending list is a stack of
        the *reversed* remainder), so on a split-free input the single
        branch's literals line up with what the incremental layer builds
        by concatenating per-conjunct :meth:`_literals_of` results.
        """
        branches: List[Tuple[List[Expr], List[Expr]]] = [
            ([], list(reversed(list(conjuncts))))
        ]
        produced = 0
        while branches:
            literals, pending = branches.pop()
            dead = False
            while pending:
                e = self.simplifier.simplify(pending.pop())
                if e == TRUE:
                    continue
                if e == FALSE:
                    dead = True
                    break
                if isinstance(e, BinOpExpr) and e.op is BinOp.AND:
                    pending.append(e.right)
                    pending.append(e.left)
                    continue
                if isinstance(e, BinOpExpr) and e.op is BinOp.OR:
                    if produced + len(branches) >= limit:
                        # Give up splitting: keep as opaque literal; the
                        # model search still evaluates it faithfully.
                        literals.append(e)
                        continue
                    self._charge()
                    branches.append((list(literals), pending + [e.right]))
                    pending.append(e.left)
                    continue
                if isinstance(e, UnOpExpr) and e.op is UnOp.NOT:
                    inner = self.simplifier.simplify(e.operand)
                    if isinstance(inner, BinOpExpr) and inner.op is BinOp.AND:
                        pending.append(
                            BinOpExpr(
                                BinOp.OR,
                                UnOpExpr(UnOp.NOT, inner.left),
                                UnOpExpr(UnOp.NOT, inner.right),
                            )
                        )
                        continue
                    if isinstance(inner, BinOpExpr) and inner.op is BinOp.OR:
                        pending.append(UnOpExpr(UnOp.NOT, inner.right))
                        pending.append(UnOpExpr(UnOp.NOT, inner.left))
                        continue
                    if isinstance(inner, UnOpExpr) and inner.op is UnOp.NOT:
                        pending.append(inner.operand)
                        continue
                    if isinstance(inner, LVar):
                        literals.append(BinOpExpr(BinOp.EQ, inner, FALSE))
                        continue
                    literals.append(UnOpExpr(UnOp.NOT, inner))
                    continue
                if isinstance(e, LVar):
                    literals.append(BinOpExpr(BinOp.EQ, e, TRUE))
                    continue
                if isinstance(e, BinOpExpr) and e.op is BinOp.EQ:
                    reduced = self._reduce_bool_eq(e)
                    if reduced is not None:
                        pending.append(reduced)
                        continue
                literals.append(e)
            if not dead:
                produced += 1
                yield literals

    @staticmethod
    def _reduce_bool_eq(e: BinOpExpr) -> Optional[Expr]:
        """Rewrite ``φ = true`` / ``φ = false`` when φ is boolean-structured."""
        def is_formula(x: Expr) -> bool:
            return (
                isinstance(x, UnOpExpr)
                and x.op is UnOp.NOT
                or isinstance(x, BinOpExpr)
                and x.op in (BinOp.AND, BinOp.OR, BinOp.LT, BinOp.LEQ, BinOp.EQ)
            )

        for side, other in ((e.left, e.right), (e.right, e.left)):
            if isinstance(other, Lit) and other.value is True and is_formula(side):
                return side
            if isinstance(other, Lit) and other.value is False and is_formula(side):
                return UnOpExpr(UnOp.NOT, side)
        return None

    # -- theory reasoning on a literal set ----------------------------------

    def _solve_literals(
        self, literals: List[Expr], original: List[Expr]
    ) -> Tuple[SatResult, Optional[Model]]:
        # 1. Typing: a conflict proves UNSAT of this branch.
        try:
            var_types = collect_var_types(literals)
        except TypeConflict:
            return SatResult.UNSAT, None

        # 2. Congruence closure over equalities/disequalities.
        cc = _CongruenceClosure()
        for lit in literals:
            if isinstance(lit, BinOpExpr) and lit.op is BinOp.EQ:
                cc.merge(lit.left, lit.right)
            elif (
                isinstance(lit, UnOpExpr)
                and lit.op is UnOp.NOT
                and isinstance(lit.operand, BinOpExpr)
                and lit.operand.op is BinOp.EQ
            ):
                cc.assert_distinct(lit.operand.left, lit.operand.right)
        if not cc.consistent():
            return SatResult.UNSAT, None

        # 3. Interval propagation over the numeric atoms.
        intervals = self._propagate_intervals(literals, cc)
        if intervals is None:
            return SatResult.UNSAT, None

        # 3b. Disequalities against point intervals: ``x ≠ e`` is refuted
        # when the propagated interval of (x - e) is the single point 0.
        if self._diseq_point_conflict(literals, intervals):
            return SatResult.UNSAT, None

        # 3c. Integral domain exhaustion: an integer-valued atom whose
        # finite interval is fully excluded by disequalities has no value.
        if self._integral_domain_exhausted(literals, intervals):
            return SatResult.UNSAT, None

        # 4. Model search, verified against the *original* conjuncts.
        model = self._search_model(literals, original, var_types, cc, intervals)
        if model is not None:
            return SatResult.SAT, model
        return SatResult.UNKNOWN, None

    @staticmethod
    def _integral_atoms(literals: List[Expr], atoms) -> set:
        """Atoms known to take integer values.

        ``floor(x) = x`` (the idiom behind ``symb_int()`` / ``is_int``),
        string/list lengths, and ``floor``/``mod`` applications are
        integral; their interval bounds may be rounded inward.
        """
        integral = set()
        for atom in atoms:
            if isinstance(atom, UnOpExpr) and atom.op in (
                UnOp.STRLEN,
                UnOp.LSTLEN,
                UnOp.FLOOR,
            ):
                integral.add(atom)
            if isinstance(atom, BinOpExpr) and atom.op is BinOp.MOD:
                integral.add(atom)
        for lit in literals:
            if isinstance(lit, BinOpExpr) and lit.op is BinOp.EQ:
                for a, b in ((lit.left, lit.right), (lit.right, lit.left)):
                    if (
                        isinstance(a, UnOpExpr)
                        and a.op is UnOp.FLOOR
                        and a.operand == b
                    ):
                        integral.add(b)
        return integral

    @staticmethod
    def _tighten_integral(iv: _Interval) -> bool:
        """Round an integral atom's bounds inward; strict becomes closed."""
        changed = False
        if iv.lo > -_INF:
            new_lo = _ceil(iv.lo)
            if iv.lo_strict and new_lo == iv.lo:
                new_lo += 1
            if Fraction(new_lo) > iv.lo or iv.lo_strict:
                if Fraction(new_lo) != iv.lo or iv.lo_strict:
                    iv.lo, iv.lo_strict = Fraction(new_lo), False
                    changed = True
        if iv.hi < _INF:
            new_hi = _floor(iv.hi)
            if iv.hi_strict and Fraction(new_hi) == iv.hi:
                new_hi -= 1
            if Fraction(new_hi) < iv.hi or iv.hi_strict:
                if Fraction(new_hi) != iv.hi or iv.hi_strict:
                    iv.hi, iv.hi_strict = Fraction(new_hi), False
                    changed = True
        return changed

    def _integral_domain_exhausted(
        self, literals: List[Expr], intervals: Dict[Expr, _Interval]
    ) -> bool:
        integral = self._integral_atoms(literals, set(intervals))
        if not integral:
            return False
        # Excluded concrete values per atom, from ``¬(x = c)`` literals.
        excluded: Dict[Expr, set] = {}
        for lit in literals:
            if not (
                isinstance(lit, UnOpExpr)
                and lit.op is UnOp.NOT
                and isinstance(lit.operand, BinOpExpr)
                and lit.operand.op is BinOp.EQ
            ):
                continue
            lf = _linear_form(
                BinOpExpr(BinOp.SUB, lit.operand.left, lit.operand.right)
            )
            if lf is None:
                continue
            coefs, const = lf
            if len(coefs) != 1:
                continue
            ((atom, coef),) = coefs.items()
            value = -const / coef
            excluded.setdefault(atom, set()).add(value)
        for atom in integral:
            iv = intervals.get(atom)
            if iv is None or iv.lo <= -_INF or iv.hi >= _INF:
                continue
            lo, hi = _ceil(iv.lo), _floor(iv.hi)
            if hi - lo > 64:
                continue
            banned = excluded.get(atom, set())
            if all(Fraction(k) in banned for k in range(lo, hi + 1)):
                return True
        return False

    @staticmethod
    def _diseq_point_conflict(
        literals: List[Expr], intervals: Dict[Expr, _Interval]
    ) -> bool:
        for lit in literals:
            if not (
                isinstance(lit, UnOpExpr)
                and lit.op is UnOp.NOT
                and isinstance(lit.operand, BinOpExpr)
                and lit.operand.op is BinOp.EQ
            ):
                continue
            lf = _linear_form(
                BinOpExpr(BinOp.SUB, lit.operand.left, lit.operand.right)
            )
            if lf is None:
                continue
            coefs, const = lf
            lo = hi = const
            determinate = True
            for atom, c in coefs.items():
                iv = intervals.get(atom)
                if iv is None or iv.lo != iv.hi or iv.lo_strict or iv.hi_strict:
                    determinate = False
                    break
                lo += c * iv.lo
                hi += c * iv.hi
            if determinate and lo == 0 and hi == 0:
                return True
        return False

    # -- linear arithmetic ---------------------------------------------------

    def _propagate_intervals(
        self, literals: List[Expr], cc: "_CongruenceClosure"
    ) -> Optional[Dict[Expr, _Interval]]:
        constraints: List[Tuple[Dict[Expr, Fraction], str, Fraction]] = []

        def add(e: Expr, op: str) -> None:
            lf = _linear_form(e)
            if lf is None:
                return
            coefs, const = lf
            if not coefs:
                # Ground: check immediately.
                ok = {
                    "<=": const <= 0,
                    "<": const < 0,
                    "==": const == 0,
                }[op]
                if not ok:
                    constraints.append(({}, "unsat", Fraction(0)))
                return
            constraints.append((coefs, op, -const))

        for lit in literals:
            if isinstance(lit, BinOpExpr):
                if lit.op is BinOp.LT:
                    add(BinOpExpr(BinOp.SUB, lit.left, lit.right), "<")
                elif lit.op is BinOp.LEQ:
                    add(BinOpExpr(BinOp.SUB, lit.left, lit.right), "<=")
                elif lit.op is BinOp.EQ:
                    lf = _linear_form(BinOpExpr(BinOp.SUB, lit.left, lit.right))
                    if lf is not None:
                        coefs, const = lf
                        if coefs:
                            constraints.append((coefs, "==", -const))
                        elif const != 0:
                            return None

        # Atoms mentioned only in *disequalities* still need intervals and
        # built-in facts (the domain-exhaustion check relies on them).
        diseq_atoms = set()
        for lit in literals:
            if (
                isinstance(lit, UnOpExpr)
                and lit.op is UnOp.NOT
                and isinstance(lit.operand, BinOpExpr)
                and lit.operand.op is BinOp.EQ
            ):
                lf = _linear_form(
                    BinOpExpr(BinOp.SUB, lit.operand.left, lit.operand.right)
                )
                if lf is not None:
                    diseq_atoms |= set(lf[0])

        # Non-negative built-ins: lengths are ≥ 0; ``x % n`` with a literal
        # positive modulus lies in [0, n-1].
        atoms = {a for coefs, _, _ in constraints for a in coefs} | diseq_atoms
        for atom in atoms:
            if isinstance(atom, UnOpExpr) and atom.op in (UnOp.STRLEN, UnOp.LSTLEN):
                constraints.append(({atom: Fraction(-1)}, "<=", Fraction(0)))
            if (
                isinstance(atom, BinOpExpr)
                and atom.op is BinOp.MOD
                and isinstance(atom.right, Lit)
                and isinstance(atom.right.value, (int, float))
                and not isinstance(atom.right.value, bool)
                and atom.right.value > 0
            ):
                n = Fraction(int(atom.right.value))
                constraints.append(({atom: Fraction(-1)}, "<=", Fraction(0)))
                constraints.append(({atom: Fraction(1)}, "<=", n - 1))
                # Relate the remainder to its operand through the integral
                # quotient: m = x - n·⌊x/n⌋.  This is what lets interval
                # reasoning see through circular-buffer indexing.
                left_form = _linear_form(atom.left)
                if left_form is not None:
                    quotient = UnOpExpr(
                        UnOp.FLOOR, BinOpExpr(BinOp.DIV, atom.left, atom.right)
                    )
                    coefs: Dict[Expr, Fraction] = {atom: Fraction(1)}
                    coefs[quotient] = coefs.get(quotient, Fraction(0)) + n
                    for a, c in left_form[0].items():
                        coefs[a] = coefs.get(a, Fraction(0)) - c
                        if coefs[a] == 0:
                            del coefs[a]
                    constraints.append((coefs, "==", left_form[1]))

        # Seed with values the congruence closure has already pinned down:
        # e.g. ``x = y ∧ y = 5`` makes the interval of x the point [5, 5].
        for atom in list(atoms):
            known = cc.known_value(atom)
            if (
                known is not None
                and isinstance(known, (int, float))
                and not isinstance(known, bool)
            ):
                k = Fraction(known).limit_denominator(10**9)
                constraints.append(({atom: Fraction(1)}, "==", k))

        if any(op == "unsat" for _, op, _ in constraints):
            return None

        if _difference_analysis_unsat(constraints, literals):
            return None

        # One bounded Fourier–Motzkin round: combining constraint pairs
        # that cancel a variable derives bounds interval propagation can
        # use (e.g. ``x = 2y ∧ x - y ≥ 11`` yields ``y ≥ 11``).
        constraints.extend(_fourier_motzkin_round(constraints))
        if any(op == "unsat" for _, op, _ in constraints):
            return None

        # Derived constraints (mod/quotient relations) introduce new atoms.
        atoms = {a for coefs, _, _ in constraints for a in coefs}
        integral = self._integral_atoms(literals, atoms)

        intervals: Dict[Expr, _Interval] = {a: _Interval() for a in atoms}
        for _ in range(_PROPAGATION_ROUNDS):
            # One propagation pass over every constraint is one budget
            # step per constraint (bounded, deterministic work units).
            self._charge(len(constraints) + 1)
            changed = False
            for atom in integral:
                iv = intervals.get(atom)
                if iv is not None and self._tighten_integral(iv):
                    changed = True
                if iv is not None and iv.empty():
                    return None
            for coefs, op, rhs in constraints:
                for target, ct in coefs.items():
                    # ct * target ⋈ rhs - Σ_{a≠target} ca * a
                    residual_lo = rhs
                    residual_hi = rhs
                    feasible = True
                    for a, ca in coefs.items():
                        if a is target:
                            continue
                        iv = intervals[a]
                        lo_term = ca * (iv.lo if ca > 0 else iv.hi)
                        hi_term = ca * (iv.hi if ca > 0 else iv.lo)
                        residual_lo -= hi_term
                        residual_hi -= lo_term
                        if abs(residual_lo) > _INF or abs(residual_hi) > _INF:
                            feasible = False
                            break
                    if not feasible:
                        continue
                    iv = intervals[target]
                    if op in ("<=", "<"):
                        # ct * target <= residual_hi
                        strict = op == "<"
                        if ct > 0:
                            changed |= iv.tighten_hi(residual_hi / ct, strict)
                        else:
                            changed |= iv.tighten_lo(residual_hi / ct, strict)
                    elif op == "==":
                        if ct > 0:
                            changed |= iv.tighten_hi(residual_hi / ct)
                            changed |= iv.tighten_lo(residual_lo / ct)
                        else:
                            changed |= iv.tighten_lo(residual_hi / ct)
                            changed |= iv.tighten_hi(residual_lo / ct)
                    if iv.empty():
                        return None
            if not changed:
                break

        # Strict-inequality refutation on integral single-variable bounds is
        # subsumed by the model search; interval emptiness is what proves
        # UNSAT here.
        return intervals

    # -- model search --------------------------------------------------------

    def _search_model(
        self,
        literals: List[Expr],
        original: List[Expr],
        var_types: Dict[str, GilType],
        cc: "_CongruenceClosure",
        intervals: Dict[Expr, _Interval],
    ) -> Optional[Model]:
        variables = sorted(set().union(*(free_lvars(e) for e in literals)) if literals else set())
        if not variables:
            env: Model = {}
            return env if self._verify(original, env) else None

        candidates = {
            name: self._candidates(name, var_types, cc, intervals, literals)
            for name in variables
        }
        # Assign most-constrained variables first.
        variables.sort(key=lambda name: len(candidates[name]))

        budget = [_SEARCH_NODE_LIMIT]

        def dfs(idx: int, env: Model) -> Optional[Model]:
            if budget[0] <= 0:
                return None
            if idx == len(variables):
                return dict(env) if self._verify(original, env) else None
            name = variables[idx]
            # Derived candidates first: values forced or bounded by linear
            # literals whose other atoms are already assigned (unit
            # propagation) — this is what solves ``x = 2y ∧ x - y > 10``.
            options = self._derived_candidates(name, env, literals)
            seen_opts = {(type(v).__name__, repr(v)) for v in options}
            for value in candidates[name]:
                k = (type(value).__name__, repr(value))
                if k not in seen_opts:
                    seen_opts.add(k)
                    options.append(value)
            for value in options:
                budget[0] -= 1
                self.stats.search_nodes += 1
                self._charge()
                env[name] = value
                if self._consistent_so_far(literals, env):
                    found = dfs(idx + 1, env)
                    if found is not None:
                        return found
                del env[name]
                if budget[0] <= 0:
                    return None
            return None

        return dfs(0, {})

    @staticmethod
    def _derived_candidates(name: str, env: Model, literals: List[Expr]) -> List[Value]:
        """Values for ``name`` forced/bounded by literals over assigned vars.

        For each (dis)equality or inequality literal whose linear form
        mentions the variable once and whose remaining atoms all evaluate
        under the partial assignment, compute the implied value or bound.
        """
        var = LVar(name)
        out: List[Value] = []
        for lit in literals:
            negated = False
            body = lit
            if isinstance(body, UnOpExpr) and body.op is UnOp.NOT:
                negated = True
                body = body.operand
            if not isinstance(body, BinOpExpr) or body.op not in (
                BinOp.EQ, BinOp.LT, BinOp.LEQ,
            ):
                continue
            lf = _linear_form(BinOpExpr(BinOp.SUB, body.left, body.right))
            if lf is None:
                continue
            coefs, const = lf
            if var not in coefs:
                continue
            coef = coefs[var]
            residual = const
            ok = True
            for atom, c in coefs.items():
                if atom == var:
                    continue
                try:
                    value = evaluate(atom, lvar_env=env)
                except EvalError:
                    ok = False
                    break
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    ok = False
                    break
                residual += c * Fraction(value).limit_denominator(10**9)
            if not ok:
                continue
            # coef*var + residual ⋈ 0  →  boundary value:
            boundary = -residual / coef
            as_num = int(boundary) if boundary.denominator == 1 else float(boundary)
            if body.op is BinOp.EQ and not negated:
                out.append(as_num)
            elif isinstance(as_num, int):
                out.extend([as_num + 1, as_num - 1, as_num])
            else:
                out.extend([as_num, _ceil(boundary), _floor(boundary)])
        return out

    def _candidates(
        self,
        name: str,
        var_types: Dict[str, GilType],
        cc: "_CongruenceClosure",
        intervals: Dict[Expr, _Interval],
        literals: List[Expr],
    ) -> List[Value]:
        var = LVar(name)
        out: List[Value] = []

        # Values this variable is equated to (directly or via closure).
        forced = cc.known_value(var)
        if forced is not None:
            return [forced]
        out.extend(cc.equal_literals(var))

        vtype = var_types.get(name)
        iv = intervals.get(var)

        if vtype in (None, GilType.NUMBER):
            nums: List[Value] = []
            if iv is not None:
                lo_int = _ceil(iv.lo) if iv.lo > -_INF else None
                hi_int = _floor(iv.hi) if iv.hi < _INF else None
                if lo_int is not None:
                    nums.extend([lo_int, lo_int + 1, lo_int + 2])
                if hi_int is not None:
                    nums.extend([hi_int, hi_int - 1])
                if lo_int is not None and hi_int is not None and lo_int <= hi_int:
                    nums.append((lo_int + hi_int) // 2)
                if not iv.empty() and iv.lo <= 0 <= iv.hi:
                    nums.append(0)
                # Open/real intervals may exclude every integer: offer the
                # exact midpoint too (e.g. 0 < x < 1 → 1/2).
                if iv.lo > -_INF and iv.hi < _INF and iv.lo < iv.hi:
                    mid = (iv.lo + iv.hi) / 2
                    nums.append(mid)
            else:
                nums.extend([0, 1, 2, -1, 3, 7])
            # Literals compared against the variable are good seeds.
            for lit in literals:
                for v in _numeric_literals_near(lit, var):
                    nums.extend([v, v - 1, v + 1])
            seen = set()
            for n in nums:
                if isinstance(n, Fraction):
                    n = int(n) if n.denominator == 1 else float(n)
                if n not in seen:
                    seen.add(n)
                    out.append(n)
            if not out:
                out.append(0)
        if vtype in (None, GilType.BOOLEAN):
            out.extend([True, False])
        if vtype in (None, GilType.STRING):
            out.extend(["", f"str_{name}", "a"])
            for lit in literals:
                for v in _string_literals_in(lit):
                    out.append(v)
        if vtype in (None, GilType.SYMBOL):
            out.append(Symbol(f"fresh_{name}"))
            for lit in literals:
                for v in _symbol_literals_in(lit):
                    out.append(v)
        if vtype in (None, GilType.LIST):
            out.extend([(), (0,), (0, 0), (0, 0, 0)])

        # Deduplicate preserving order.
        deduped: List[Value] = []
        seen_repr = set()
        for v in out:
            k = (type(v).__name__, repr(v))
            if k not in seen_repr:
                seen_repr.add(k)
                deduped.append(v)
        return deduped

    @staticmethod
    def _consistent_so_far(literals: List[Expr], env: Model) -> bool:
        """Evaluate the literals whose variables are all assigned."""
        for lit in literals:
            if free_lvars(lit) <= env.keys():
                try:
                    if evaluate(lit, lvar_env=env) is not True:
                        return False
                except EvalError:
                    return False
        return True

    @staticmethod
    def _verify(conjuncts: List[Expr], env: Model) -> bool:
        """Final check: every original conjunct holds under ``env``."""
        for c in conjuncts:
            try:
                if evaluate(c, lvar_env=env) is not True:
                    return False
            except EvalError:
                return False
        return True


def _fourier_motzkin_round(
    constraints: List[Tuple[Dict[Expr, Fraction], str, Fraction]],
    cap: int = 64,
) -> List[Tuple[Dict[Expr, Fraction], str, Fraction]]:
    """One round of Fourier–Motzkin elimination, bounded.

    Normalises every constraint to ``Σ c·a ≤ rhs`` (equalities become two
    inequalities), then combines pairs with opposite signs on a shared
    variable, keeping only derived constraints over at most two atoms.
    """
    ineqs: List[Tuple[Dict[Expr, Fraction], bool, Fraction]] = []
    for coefs, op, rhs in constraints:
        if op == "==":
            ineqs.append((coefs, False, rhs))
            ineqs.append(({a: -c for a, c in coefs.items()}, False, -rhs))
        elif op in ("<", "<="):
            ineqs.append((coefs, op == "<", rhs))

    atoms = sorted({a for coefs, _, _ in ineqs for a in coefs}, key=repr)
    derived: List[Tuple[Dict[Expr, Fraction], str, Fraction]] = []
    seen: set = set()
    for var in atoms:
        pos = [c for c in ineqs if c[0].get(var, 0) > 0]
        neg = [c for c in ineqs if c[0].get(var, 0) < 0]
        if len(pos) * len(neg) > 16:
            continue
        for p_coefs, p_strict, p_rhs in pos:
            for n_coefs, n_strict, n_rhs in neg:
                scale_p = Fraction(1) / p_coefs[var]
                scale_n = Fraction(1) / (-n_coefs[var])
                combined: Dict[Expr, Fraction] = {}
                for a, c in p_coefs.items():
                    combined[a] = combined.get(a, Fraction(0)) + c * scale_p
                for a, c in n_coefs.items():
                    combined[a] = combined.get(a, Fraction(0)) + c * scale_n
                combined = {a: c for a, c in combined.items() if c != 0}
                if len(combined) > 2:
                    continue
                rhs = p_rhs * scale_p + n_rhs * scale_n
                strict = p_strict or n_strict
                if not combined:
                    # Ground consequence: 0 ⋈ rhs must hold.
                    feasible = (0 < rhs) if strict else (0 <= rhs)
                    if not feasible:
                        return [({}, "unsat", Fraction(0))]
                    continue
                key = (
                    tuple(sorted(((repr(a), c) for a, c in combined.items()))),
                    strict,
                    rhs,
                )
                if key in seen:
                    continue
                seen.add(key)
                derived.append((combined, "<" if strict else "<=", rhs))
                if len(derived) >= cap:
                    return derived
    return derived


# -- difference constraints ---------------------------------------------------


def _difference_analysis_unsat(
    constraints: List[Tuple[Dict[Expr, Fraction], str, Fraction]],
    literals: List[Expr],
) -> bool:
    """Difference-constraint reasoning: cycles and forced equalities.

    Constraints of the shape ``x - y ≤ c`` (possibly strict, possibly an
    equality) form a graph with an edge ``y → x`` of weight ``c``.  Two
    refutations:

    * a cycle of negative total weight — or zero weight containing a
      strict edge — is a contradiction (``x < y ∧ y < x``);
    * a disequality ``x ≠ y + c`` is refuted when the shortest paths force
      ``x - y = c`` exactly (antisymmetry: ``x ≤ y ∧ y ≤ x ∧ x ≠ y``).

    Interval propagation alone sees neither, since individual intervals
    can stay unbounded.
    """
    edges: Dict[Tuple[Expr, Expr], Tuple[Fraction, bool]] = {}

    def add_edge(src: Expr, dst: Expr, weight: Fraction, strict: bool) -> None:
        prior = edges.get((src, dst))
        if prior is None or (weight, not strict) < (prior[0], not prior[1]):
            edges[(src, dst)] = (weight, strict)

    for coefs, op, rhs in constraints:
        if len(coefs) != 2 or op == "unsat":
            continue
        (a1, c1), (a2, c2) = coefs.items()
        if c1 + c2 != 0:
            continue
        # Normalise to  pos - neg ≤ rhs / |c|.
        scale = abs(c1)
        pos, neg = (a1, a2) if c1 > 0 else (a2, a1)
        bound = rhs / scale
        if op in ("<=", "<"):
            add_edge(neg, pos, bound, op == "<")
        elif op == "==":
            add_edge(neg, pos, bound, False)
            add_edge(pos, neg, -bound, False)

    if not edges:
        return False

    nodes = sorted({n for pair in edges for n in pair}, key=repr)
    index = {n: i for i, n in enumerate(nodes)}
    n = len(nodes)
    dist: List[List[Optional[Tuple[Fraction, bool]]]] = [
        [None] * n for _ in range(n)
    ]
    for (src, dst), (w, s) in edges.items():
        i, j = index[src], index[dst]
        cur = dist[i][j]
        if cur is None or (w, not s) < (cur[0], not cur[1]):
            dist[i][j] = (w, s)
    for k in range(n):
        for i in range(n):
            ik = dist[i][k]
            if ik is None:
                continue
            for j in range(n):
                kj = dist[k][j]
                if kj is None:
                    continue
                cand = (ik[0] + kj[0], ik[1] or kj[1])
                cur = dist[i][j]
                if cur is None or (cand[0], not cand[1]) < (cur[0], not cur[1]):
                    dist[i][j] = cand
    for i in range(n):
        d = dist[i][i]
        if d is not None and (d[0] < 0 or (d[0] == 0 and d[1])):
            return True

    # Forced-equality refutation of disequalities.
    for lit in literals:
        if not (
            isinstance(lit, UnOpExpr)
            and lit.op is UnOp.NOT
            and isinstance(lit.operand, BinOpExpr)
            and lit.operand.op is BinOp.EQ
        ):
            continue
        lf = _linear_form(BinOpExpr(BinOp.SUB, lit.operand.left, lit.operand.right))
        if lf is None:
            continue
        coefs, const = lf
        if len(coefs) != 2:
            continue
        (a1, c1), (a2, c2) = coefs.items()
        if c1 + c2 != 0 or abs(c1) != 1:
            continue
        pos, neg = (a1, a2) if c1 > 0 else (a2, a1)
        if pos not in index or neg not in index:
            continue
        i, j = index[pos], index[neg]
        # lit says pos - neg + const ≠ 0, i.e. pos - neg ≠ -const.
        fwd = dist[j][i]  # pos - neg ≤ fwd
        bwd = dist[i][j]  # neg - pos ≤ bwd
        if (
            fwd is not None
            and bwd is not None
            and not fwd[1]
            and not bwd[1]
            and fwd[0] == -const
            and bwd[0] == const
        ):
            return True
    return False


# -- linear forms ------------------------------------------------------------

_MISSING = object()
_linear_cache: Dict[Expr, Optional[Tuple[Dict[Expr, Fraction], Fraction]]] = {}


def _linear_form(e: Expr) -> Optional[Tuple[Dict[Expr, Fraction], Fraction]]:
    """Memoising wrapper around :func:`_linear_form_impl`.

    Hash-consed expressions make the memo global and cheap: the same atom
    reappears at every branch point of a path, and across paths sharing a
    prefix, so parsing each linear form once per process is the right
    amortization.  Cached results are shared — callers must treat the
    coefficient dict as read-only (they all do: combination steps copy).
    """
    cached = _linear_cache.get(e, _MISSING)
    if cached is not _MISSING:
        return cached
    result = _linear_form_impl(e)
    _linear_cache[e] = result
    return result


def _linear_form_impl(
    e: Expr,
) -> Optional[Tuple[Dict[Expr, Fraction], Fraction]]:
    """``e`` as (coefficients over numeric atoms, constant), or None.

    Atoms are logical variables and opaque numeric terms (list lengths,
    non-linear products); the decomposition is exact over Fractions.
    """
    if isinstance(e, Lit):
        v = e.value
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return None
        return {}, Fraction(v).limit_denominator(10**9) if isinstance(v, float) else Fraction(v)
    if isinstance(e, LVar):
        return {e: Fraction(1)}, Fraction(0)
    if isinstance(e, UnOpExpr):
        if e.op is UnOp.NEG:
            sub = _linear_form(e.operand)
            if sub is None:
                return None
            coefs, const = sub
            return {a: -c for a, c in coefs.items()}, -const
        if e.op in (UnOp.STRLEN, UnOp.LSTLEN, UnOp.FLOOR, UnOp.TONUMBER):
            return {e: Fraction(1)}, Fraction(0)
        return None
    if isinstance(e, BinOpExpr):
        if e.op in (BinOp.ADD, BinOp.SUB):
            left = _linear_form(e.left)
            right = _linear_form(e.right)
            if left is None or right is None:
                return None
            sign = 1 if e.op is BinOp.ADD else -1
            coefs = dict(left[0])
            for a, c in right[0].items():
                coefs[a] = coefs.get(a, Fraction(0)) + sign * c
                if coefs[a] == 0:
                    del coefs[a]
            return coefs, left[1] + sign * right[1]
        if e.op is BinOp.MUL:
            left = _linear_form(e.left)
            right = _linear_form(e.right)
            if left is None or right is None:
                return {e: Fraction(1)}, Fraction(0)
            if not left[0]:
                k = left[1]
                return {a: k * c for a, c in right[0].items() if k * c != 0}, k * right[1]
            if not right[0]:
                k = right[1]
                return {a: k * c for a, c in left[0].items() if k * c != 0}, k * left[1]
            return {e: Fraction(1)}, Fraction(0)  # non-linear: opaque atom
        if e.op is BinOp.DIV:
            left = _linear_form(e.left)
            right = _linear_form(e.right)
            if left is not None and right is not None and not right[0] and right[1] != 0:
                k = right[1]
                return {a: c / k for a, c in left[0].items()}, left[1] / k
            return {e: Fraction(1)}, Fraction(0)
        if e.op in (BinOp.MOD, BinOp.LNTH, BinOp.MIN, BinOp.MAX):
            return {e: Fraction(1)}, Fraction(0)  # opaque numeric atom
        return None
    return None


def _ceil(x: Fraction) -> int:
    return -((-x.numerator) // x.denominator)


def _floor(x: Fraction) -> int:
    return x.numerator // x.denominator


def _numeric_literals_near(e: Expr, var: LVar) -> List[int]:
    """Integer literals appearing beside ``var`` in comparisons within ``e``."""
    out: List[int] = []

    def visit(node: Expr) -> None:
        if isinstance(node, BinOpExpr):
            if node.op in (BinOp.EQ, BinOp.LT, BinOp.LEQ):
                for a, b in ((node.left, node.right), (node.right, node.left)):
                    if a == var and isinstance(b, Lit):
                        v = b.value
                        if isinstance(v, (int, float)) and not isinstance(v, bool):
                            out.append(int(v))
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnOpExpr):
            visit(node.operand)
        elif isinstance(node, EList):
            for item in node.items:
                visit(item)

    visit(e)
    return out


def _string_literals_in(e: Expr) -> List[str]:
    from repro.logic.expr import walk

    return [n.value for n in walk(e) if isinstance(n, Lit) and isinstance(n.value, str)]


def _symbol_literals_in(e: Expr) -> List[Symbol]:
    from repro.logic.expr import walk

    return [n.value for n in walk(e) if isinstance(n, Lit) and isinstance(n.value, Symbol)]


# -- congruence closure -------------------------------------------------------


class _CongruenceClosure:
    """Union-find over terms with literal-consistency and congruence.

    Supports: merge on asserted equalities, explicit disequalities, and a
    consistency check — two distinct literal values (or two distinct
    uninterpreted symbols) in the same class is a contradiction, as is an
    asserted disequality whose two sides were merged.
    """

    def __init__(self) -> None:
        self._parent: Dict[Expr, Expr] = {}
        self._literal: Dict[Expr, Value] = {}
        self._diseqs: List[Tuple[Expr, Expr]] = []
        self._contradiction = False
        self._members: Dict[Expr, List[Expr]] = {}

    def clone(self) -> "_CongruenceClosure":
        """An independent copy (for extending a solved prefix by a delta).

        Replaying only the delta's merges on a clone yields exactly the
        state a from-scratch build over (prefix literals + delta literals)
        would reach: the merge/assert sequence is identical, since delta
        literals are appended after the prefix's.
        """
        other = _CongruenceClosure.__new__(_CongruenceClosure)
        other._parent = dict(self._parent)
        other._literal = dict(self._literal)
        other._diseqs = list(self._diseqs)
        other._contradiction = self._contradiction
        other._members = {k: list(v) for k, v in self._members.items()}
        return other

    def _find(self, t: Expr) -> Expr:
        if t not in self._parent:
            self._parent[t] = t
            self._members[t] = [t]
            if isinstance(t, Lit):
                self._literal[t] = t.value
        root = t
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[t] != root:
            self._parent[t], t = root, self._parent[t]
        return root

    def merge(self, a: Expr, b: Expr) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        la, lb = self._literal.get(ra), self._literal.get(rb)
        if la is not None and lb is not None:
            from repro.gil.values import values_equal

            if not values_equal(la, lb):
                self._contradiction = True
                return
        self._parent[ra] = rb
        self._members[rb].extend(self._members.pop(ra, []))
        if lb is None and la is not None:
            self._literal[rb] = la
        # Congruence propagation: merge applications with merged children.
        self._propagate_congruence()

    def _propagate_congruence(self) -> None:
        # One bounded pass: group composite known terms by (shape, child roots).
        groups: Dict[tuple, Expr] = {}
        pending: List[Tuple[Expr, Expr]] = []
        for t in list(self._parent):
            key = self._shape_key(t)
            if key is None:
                continue
            other = groups.get(key)
            if other is None:
                groups[key] = t
            elif self._find(other) != self._find(t):
                pending.append((other, t))
        for a, b in pending:
            ra, rb = self._find(a), self._find(b)
            if ra == rb:
                continue
            la, lb = self._literal.get(ra), self._literal.get(rb)
            if la is not None and lb is not None:
                from repro.gil.values import values_equal

                if not values_equal(la, lb):
                    self._contradiction = True
                    return
            self._parent[ra] = rb
            self._members[rb].extend(self._members.pop(ra, []))
            if lb is None and la is not None:
                self._literal[rb] = la

    def _shape_key(self, t: Expr):
        if isinstance(t, UnOpExpr):
            return ("un", t.op, self._find(t.operand))
        if isinstance(t, BinOpExpr) and t.op not in (BinOp.AND, BinOp.OR):
            return ("bin", t.op, self._find(t.left), self._find(t.right))
        return None

    def assert_distinct(self, a: Expr, b: Expr) -> None:
        self._diseqs.append((a, b))
        self._find(a)
        self._find(b)

    def consistent(self) -> bool:
        if self._contradiction:
            return False
        for a, b in self._diseqs:
            ra, rb = self._find(a), self._find(b)
            if ra == rb:
                return False
            la, lb = self._literal.get(ra), self._literal.get(rb)
            if la is not None and lb is not None:
                from repro.gil.values import values_equal

                if values_equal(la, lb):
                    return False
        return True

    def known_value(self, t: Expr) -> Optional[Value]:
        """The literal value ``t`` is forced to equal, if any."""
        return self._literal.get(self._find(t))

    def equal_literals(self, t: Expr) -> List[Value]:
        root = self._find(t)
        v = self._literal.get(root)
        return [v] if v is not None else []
