"""The MiniRust instantiation of Gillian.

The third-wave target: an ownership/borrow-flavoured Rust subset over a
word-addressed block/offset heap paired with a dynamic owner table,
both built from the :mod:`repro.memlib` combinators — see
:mod:`repro.targets.rust_like.memory` for the composition expression
and :mod:`repro.targets.rust_like.compiler` for the discipline the
compiled GIL enforces through it.
"""

from __future__ import annotations

from repro.gil.syntax import Prog
from repro.targets.language import Language
from repro.targets.rust_like.compiler import compile_source
from repro.targets.rust_like.memory import (
    RustConcreteMemory,
    RustSymbolicMemory,
    interpret_memory,
)


class MiniRustLanguage(Language):
    """Gillian-Rust in miniature: MiniRust source over the owner memory."""

    name = "rust"

    def compile(self, source: str) -> Prog:
        """Compile MiniRust source to GIL."""
        return compile_source(source)

    def concrete_memory(self) -> RustConcreteMemory:
        """A fresh concrete heap × owner-table model."""
        return RustConcreteMemory()

    def symbolic_memory(self) -> RustSymbolicMemory:
        """A fresh symbolic heap × owner-table model."""
        return RustSymbolicMemory()

    def interpretation(self):
        """The memory interpretation I_R for the soundness harness."""
        return interpret_memory


__all__ = ["MiniRustLanguage"]
