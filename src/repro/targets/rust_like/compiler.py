"""The MiniRust-to-GIL compiler.

Control flow lowers to conditional gotos exactly like the MiniC
compiler; what is new is the *ownership discipline*, restated in terms
of the owner-table actions of :mod:`repro.targets.rust_like.memory`:

* every binding carries a static **kind** — value, owned handle, shared
  reference, mutable reference — inferred from declared types and
  initialiser shapes;
* handles are GIL two-element lists ``[loc, gen]``; the ``alloc``
  result ``[loc, 0]`` doubles as the generation-0 handle;
* a **move** (``let y = x`` / passing an owned var to a call, with
  ``x`` owned) emits ``own_move`` and rebuilds the handle with the
  returned generation — the stale source binding keeps the old
  generation and faults dynamically on use (``use-after-move``);
* ``&x`` / ``&mut x`` (let initialisers and call arguments only) emit
  ``borrow`` / ``borrow_mut``; the compiler keeps a scope stack of
  pending releases and emits ``release`` / ``release_mut`` at block
  end, before ``break``/``continue`` leave the loop, and before every
  ``return`` — the *dynamic* checks (sharing xor mutation, drop/move
  while borrowed) all live in the memory model;
* every heap access (deref, indexing, ``len``) is guarded by
  ``own_check`` before the word ``load``/``store``; writes are only
  compiled through owned handles and ``&mut`` references;
* ``drop(x)`` on an owned binding emits ``drop_check`` + ``own_drop`` +
  ``free``; on a reference it emits the pending release early.

Deviations from real Rust, chosen to keep the front end small: no
implicit drops at scope end (leaks are legal), copying a reference
yields an unregistered alias (only the original borrow is released),
and borrow errors are runtime memory faults rather than compile errors
— which is precisely what makes them symbolically explorable bugs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend.emitter import Emitter, Label
from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
    Vanish,
    allocate_sites,
)
from repro.gil.values import GilType
from repro.logic.expr import BinOp, BinOpExpr, EList, Expr, Lit, PVar, UnOp, UnOpExpr, lst
from repro.targets.rust_like import ast
from repro.targets.rust_like.memory import FRESH_OWNER_META, WORD_CHUNK

#: The action vocabulary the compiled code uses (heap + owner table).
ACTIONS = frozenset(
    {
        "alloc", "free", "load", "store", "bounds",
        "own_new", "own_drop", "own_check", "own_move",
        "borrow", "borrow_mut", "release", "release_mut", "drop_check",
    }
)

#: Binding kinds: plain value, internal boolean, owned handle, borrows.
VAL, BOOL, OWN, REF, MUTREF = "val", "bool", "own", "ref", "mutref"

#: Kinds that denote a ``[loc, gen]`` handle value.
HANDLE_KINDS = frozenset({OWN, REF, MUTREF})

_VALUE_TYPE_NAMES = frozenset({"i64", "i32", "u64", "u32", "isize", "usize", "bool"})

_BUILTINS = frozenset({"alloc", "len", "as_ref", "as_handle"})


class CompileError(Exception):
    """Raised when MiniRust source cannot be lowered to GIL."""


def kind_of_type(t: Optional[ast.TypeExpr]) -> str:
    """The binding kind a declared type denotes."""
    if t is None:
        return VAL
    if t.ref:
        return REF
    if t.ref_mut:
        return MUTREF
    if t.name in _VALUE_TYPE_NAMES:
        return VAL
    return OWN


def compile_source(source: str) -> Prog:
    """Parse and compile MiniRust source to a GIL program."""
    from repro.targets.rust_like.parser import parse_program

    return compile_program(parse_program(source))


def compile_program(program: ast.Program) -> Prog:
    """Compile a parsed MiniRust program to GIL."""
    sigs: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
    for fn in program.functions:
        sigs[fn.name] = (
            kind_of_type(fn.ret_type),
            tuple(kind_of_type(p.type) for p in fn.params),
        )
    prog = Prog()
    for fn in program.functions:
        prog.add(_FnCompiler(sigs).compile(fn))
    return allocate_sites(prog)


def _loc(h: Expr) -> Expr:
    """The block symbol of a handle ``[loc, gen]``."""
    return BinOpExpr(BinOp.LNTH, h, Lit(0))


def _gen(h: Expr) -> Expr:
    """The generation of a handle ``[loc, gen]``."""
    return BinOpExpr(BinOp.LNTH, h, Lit(1))


def _owner_args(h: Expr) -> Expr:
    """Owner-table action arguments ``[loc, gen]`` for handle ``h``."""
    return lst(_loc(h), _gen(h))


def _word_ptr(h: Expr, index: Expr) -> Expr:
    """The heap pointer ``[loc, index]`` for word ``index`` of ``h``."""
    return EList((_loc(h), index))


class _FnCompiler:
    """Per-function compilation state (emitter, kinds, borrow scopes)."""

    def __init__(self, sigs: Dict[str, Tuple[str, Tuple[str, ...]]]) -> None:
        self.sigs = sigs
        self.em = Emitter()
        self.kinds: Dict[str, str] = {}
        self.mutable: set = set()
        #: scope stack of pending borrow releases:
        #: (release action, handle temp name, binding name or None)
        self.scopes: List[List[Tuple[str, str, Optional[str]]]] = []
        #: (break label, continue label, scope depth at loop entry)
        self.loop_stack: List[Tuple[Label, Label, int]] = []

    def compile(self, fn: ast.FnDef) -> Proc:
        for p in fn.params:
            self.kinds[p.name] = kind_of_type(p.type)
        self.scopes.append([])
        for stmt in fn.body:
            self.stmt(stmt)
        self._release_scope(self.scopes[-1])
        self.scopes.pop()
        self.em.emit(Return(Lit(0)))
        return Proc(fn.name, tuple(p.name for p in fn.params), self.em.finish())

    # -- borrow-release bookkeeping ------------------------------------------

    def _release_scope(self, entries: List[Tuple[str, str, Optional[str]]]) -> None:
        """Emit releases for one scope frame, newest first."""
        for action, handle, _binding in reversed(entries):
            self._emit_release(action, handle)

    def _emit_release(self, action: str, handle: str) -> None:
        self.em.emit(
            ActionCall(self.em.fresh_temp(), action, _owner_args(PVar(handle)))
        )

    def _release_down_to(self, depth: int) -> None:
        """Emit releases for every frame deeper than ``depth`` (jumps)."""
        for entries in reversed(self.scopes[depth:]):
            self._release_scope(entries)

    def _block(self, body: Tuple[ast.Node, ...]) -> None:
        """Compile a nested block with its own borrow-release frame."""
        self.scopes.append([])
        for stmt in body:
            self.stmt(stmt)
        self._release_scope(self.scopes[-1])
        self.scopes.pop()

    # -- statements -----------------------------------------------------------

    def stmt(self, stmt: ast.Node) -> None:
        em = self.em
        if isinstance(stmt, ast.LetStmt):
            self._let(stmt)
            return
        if isinstance(stmt, ast.AssignStmt):
            self._assign(stmt)
            return
        if isinstance(stmt, ast.IfStmt):
            then_label, end_label = Label("then"), Label("endif")
            cond = self.condition(stmt.cond)
            em.emit(IfGoto(cond, then_label))
            self._block(stmt.else_body)
            em.emit(Goto(end_label))
            em.mark(then_label)
            self._block(stmt.then_body)
            em.mark(end_label)
            return
        if isinstance(stmt, ast.WhileStmt):
            start, body_label, end = Label("loop"), Label("lbody"), Label("endloop")
            em.mark(start)
            cond = self.condition(stmt.cond)
            em.emit(IfGoto(cond, body_label))
            em.emit(Goto(end))
            em.mark(body_label)
            self.loop_stack.append((end, start, len(self.scopes)))
            self._block(stmt.body)
            self.loop_stack.pop()
            em.emit(Goto(start))
            em.mark(end)
            return
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.expr is None:
                self._release_down_to(0)
                em.emit(Return(Lit(0)))
                return
            value, kind = self.expr(stmt.expr)
            value = self.rvalue(value, kind)
            self._release_down_to(0)
            em.emit(Return(value))
            return
        if isinstance(stmt, ast.BreakStmt):
            if not self.loop_stack:
                raise CompileError("break outside a loop")
            end, _start, depth = self.loop_stack[-1]
            self._release_down_to(depth)
            em.emit(Goto(end))
            return
        if isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise CompileError("continue outside a loop")
            _end, start, depth = self.loop_stack[-1]
            self._release_down_to(depth)
            em.emit(Goto(start))
            return
        if isinstance(stmt, ast.DropStmt):
            self._drop(stmt.name)
            return
        if isinstance(stmt, ast.AssumeStmt):
            self._assume(self.condition(stmt.expr))
            return
        if isinstance(stmt, ast.AssertStmt):
            ok = Label("assert_ok")
            cond = self.condition(stmt.expr)
            em.emit(IfGoto(cond, ok))
            em.emit(Fail(lst("assertion-failure", repr(stmt.expr))))
            em.mark(ok)
            return
        if isinstance(stmt, ast.ExprStmt):
            self.expr(stmt.expr)
            return
        raise CompileError(f"unknown statement {stmt!r}")

    def _assume(self, condition: Expr) -> None:
        ok = Label("assume_ok")
        self.em.emit(IfGoto(condition, ok))
        self.em.emit(Vanish())
        self.em.mark(ok)

    def _let(self, stmt: ast.LetStmt) -> None:
        em = self.em
        if stmt.name in self.kinds:
            raise CompileError(f"rebinding of {stmt.name!r} (shadowing unsupported)")
        value, kind = self._binding_value(stmt.value, stmt.name)
        declared = kind_of_type(stmt.type) if stmt.type is not None else None
        if declared is not None and declared != kind and not (
            declared == VAL and kind in (VAL, BOOL)
        ):
            raise CompileError(
                f"let {stmt.name}: declared kind {declared!r} but initialiser "
                f"has kind {kind!r}"
            )
        self.kinds[stmt.name] = VAL if kind == BOOL else kind
        if stmt.mutable:
            self.mutable.add(stmt.name)
        em.emit(Assignment(stmt.name, self.rvalue(value, kind)))

    def _binding_value(
        self, e: ast.Node, binding: Optional[str]
    ) -> Tuple[Expr, str]:
        """An initialiser / argument value: borrows and moves allowed."""
        if isinstance(e, ast.Unary) and e.op in ("&", "&mut"):
            return self._borrow(e, binding)
        if isinstance(e, ast.Var) and self.kinds.get(e.name) == OWN:
            return self._move(e.name), OWN
        return self.expr(e)

    def _borrow(self, e: ast.Unary, binding: Optional[str]) -> Tuple[Expr, str]:
        """``&x`` / ``&mut x``: take the borrow, register its release."""
        em = self.em
        if not isinstance(e.operand, ast.Var):
            raise CompileError("can only borrow a named binding")
        name = e.operand.name
        kind = self.kinds.get(name)
        if kind not in HANDLE_KINDS:
            raise CompileError(f"cannot borrow non-handle binding {name!r}")
        action = "borrow_mut" if e.op == "&mut" else "borrow"
        gen = em.fresh_temp("bgen")
        em.emit(ActionCall(gen, action, _owner_args(PVar(name))))
        handle = em.fresh_temp("bh")
        em.emit(Assignment(handle, EList((_loc(PVar(name)), PVar(gen)))))
        release = "release_mut" if e.op == "&mut" else "release"
        self.scopes[-1].append((release, handle, binding))
        return PVar(handle), MUTREF if e.op == "&mut" else REF

    def _move(self, name: str) -> Expr:
        """Move out of owned binding ``name``: bump the generation."""
        em = self.em
        gen = em.fresh_temp("mgen")
        em.emit(ActionCall(gen, "own_move", _owner_args(PVar(name))))
        handle = em.fresh_temp("mh")
        em.emit(Assignment(handle, EList((_loc(PVar(name)), PVar(gen)))))
        return PVar(handle)

    def _assign(self, stmt: ast.AssignStmt) -> None:
        em = self.em
        target = stmt.target
        if isinstance(target, ast.Var):
            name = target.name
            if name not in self.kinds:
                raise CompileError(f"assignment to undeclared {name!r}")
            if name not in self.mutable:
                raise CompileError(f"assignment to immutable binding {name!r}")
            value, kind = self._binding_value(stmt.value, name)
            old = self.kinds[name]
            new = VAL if kind == BOOL else kind
            if new != old:
                raise CompileError(
                    f"assignment changes kind of {name!r} ({old!r} -> {new!r})"
                )
            em.emit(Assignment(name, self.rvalue(value, kind)))
            return
        handle, index = self._write_slot(target)
        value, kind = self.expr(stmt.value)
        em.emit(ActionCall(em.fresh_temp(), "own_check", _owner_args(handle)))
        em.emit(
            ActionCall(
                em.fresh_temp(),
                "store",
                lst(Lit(WORD_CHUNK), _word_ptr(handle, index), self.rvalue(value, kind)),
            )
        )

    def _write_slot(self, target: ast.Node) -> Tuple[Expr, Expr]:
        """A writable (handle, word index) slot for ``*x`` / ``x[i]``."""
        if isinstance(target, ast.Unary) and target.op == "*":
            handle, kind = self.expr(target.operand)
            index: Expr = Lit(0)
        elif isinstance(target, ast.Index):
            handle, kind = self.expr(target.base)
            idx_value, idx_kind = self.expr(target.index)
            index = self.rvalue(idx_value, idx_kind)
        else:
            raise CompileError(f"not an assignable place: {target!r}")
        if kind not in HANDLE_KINDS:
            raise CompileError("write target is not a handle")
        if kind == REF:
            raise CompileError("cannot write through a shared reference")
        return handle, index

    def _drop(self, name: str) -> None:
        """``drop(x)``: free an owned handle or release a borrow early."""
        em = self.em
        kind = self.kinds.get(name)
        if kind is None:
            raise CompileError(f"drop of unknown binding {name!r}")
        if kind == OWN:
            em.emit(
                ActionCall(em.fresh_temp(), "drop_check", _owner_args(PVar(name)))
            )
            em.emit(ActionCall(em.fresh_temp(), "own_drop", lst(_loc(PVar(name)))))
            em.emit(
                ActionCall(
                    em.fresh_temp(),
                    "free",
                    lst(EList((_loc(PVar(name)), Lit(0)))),
                )
            )
            return
        if kind in (REF, MUTREF):
            for entries in reversed(self.scopes):
                for i, (action, handle, binding) in enumerate(entries):
                    if binding == name:
                        self._emit_release(action, handle)
                        del entries[i]
                        return
            raise CompileError(f"drop of already-released reference {name!r}")
        raise CompileError(f"cannot drop value binding {name!r}")

    # -- expressions ----------------------------------------------------------

    def expr(self, e: ast.Node) -> Tuple[Expr, str]:
        em = self.em
        if isinstance(e, ast.IntLit):
            return Lit(e.value), VAL
        if isinstance(e, ast.BoolLit):
            return Lit(1 if e.value else 0), VAL
        if isinstance(e, ast.Var):
            if e.name not in self.kinds:
                raise CompileError(f"unknown identifier {e.name!r}")
            return PVar(e.name), self.kinds[e.name]
        if isinstance(e, ast.SymbolicExpr):
            return self._symbolic(e), VAL
        if isinstance(e, ast.Unary):
            return self._unary(e)
        if isinstance(e, ast.Binary):
            return self._binary(e)
        if isinstance(e, ast.Index):
            handle, kind = self.expr(e.base)
            if kind not in HANDLE_KINDS:
                raise CompileError("indexing a non-handle")
            idx_value, idx_kind = self.expr(e.index)
            return self._read_word(handle, self.rvalue(idx_value, idx_kind)), VAL
        if isinstance(e, ast.ArrayLit):
            return self._array_literal(e), OWN
        if isinstance(e, ast.BoxNew):
            value, kind = self.expr(e.value)
            return self._alloc_owned(1, (self.rvalue(value, kind),)), OWN
        if isinstance(e, ast.CallExpr):
            return self._call(e)
        raise CompileError(f"unknown expression {e!r}")

    def _read_word(self, handle: Expr, index: Expr) -> Expr:
        """``own_check`` then a word load at ``[loc, index]``."""
        em = self.em
        em.emit(ActionCall(em.fresh_temp(), "own_check", _owner_args(handle)))
        target = em.fresh_temp("ld")
        em.emit(
            ActionCall(
                target, "load", lst(Lit(WORD_CHUNK), _word_ptr(handle, index))
            )
        )
        return PVar(target)

    def _alloc_owned(self, size: int, init: Tuple[Expr, ...]) -> Expr:
        """A fresh owned block of ``size`` words, ``init`` stored first.

        The ``alloc`` result ``[loc, 0]`` doubles as the generation-0
        handle, so no handle-construction assignment is needed.
        """
        em = self.em
        block = em.fresh_temp("blk")
        em.emit(USym(block, 0))
        handle = em.fresh_temp("own")
        em.emit(ActionCall(handle, "alloc", lst(PVar(block), size)))
        em.emit(
            ActionCall(
                em.fresh_temp(),
                "own_new",
                lst(_loc(PVar(handle)), Lit(FRESH_OWNER_META)),
            )
        )
        for i, value in enumerate(init):
            em.emit(
                ActionCall(
                    em.fresh_temp(),
                    "store",
                    lst(Lit(WORD_CHUNK), _word_ptr(PVar(handle), Lit(i)), value),
                )
            )
        return PVar(handle)

    def _array_literal(self, e: ast.ArrayLit) -> Expr:
        """``[e1, ..., en]``: an owned n-word block, items stored."""
        items = tuple(self.rvalue(*self.expr(item)) for item in e.items)
        return self._alloc_owned(len(items), items)

    def _symbolic(self, e: ast.SymbolicExpr) -> Expr:
        """``symb_int()`` / ``symb_bool()``: a constrained fresh input."""
        em = self.em
        target = em.fresh_temp("symb")
        em.emit(ISym(target, 0))
        x = PVar(target)
        self._assume(x.typeof().eq(Lit(GilType.NUMBER)))
        self._assume(UnOpExpr(UnOp.FLOOR, x).eq(x))
        if e.type_name == "bool":
            self._assume(Lit(0).leq(x).and_(x.leq(Lit(1))))
        return x

    def _unary(self, e: ast.Unary) -> Tuple[Expr, str]:
        if e.op == "-":
            value, kind = self.expr(e.operand)
            return UnOpExpr(UnOp.NEG, self.rvalue(value, kind)), VAL
        if e.op == "!":
            return UnOpExpr(UnOp.NOT, self.condition(e.operand)), BOOL
        if e.op == "*":
            handle, kind = self.expr(e.operand)
            if kind not in HANDLE_KINDS:
                raise CompileError("dereference of a non-handle")
            return self._read_word(handle, Lit(0)), VAL
        if e.op in ("&", "&mut"):
            raise CompileError(
                "borrows are only allowed as let initialisers or call arguments"
            )
        raise CompileError(f"unknown unary operator {e.op!r}")

    def _binary(self, e: ast.Binary) -> Tuple[Expr, str]:
        if e.op in ("&&", "||"):
            return self._short_circuit(e), BOOL
        if e.op in ("==", "!=", "<", "<=", ">", ">="):
            return self._comparison(e), BOOL
        left, lkind = self.expr(e.left)
        right, rkind = self.expr(e.right)
        if lkind in HANDLE_KINDS or rkind in HANDLE_KINDS:
            raise CompileError(f"arithmetic on handles ({e.op!r})")
        table = {"+": BinOp.ADD, "-": BinOp.SUB, "*": BinOp.MUL,
                 "/": BinOp.DIV, "%": BinOp.MOD}
        if e.op in table:
            result = BinOpExpr(
                table[e.op], self.rvalue(left, lkind), self.rvalue(right, rkind)
            )
            if e.op == "/":
                result = UnOpExpr(UnOp.FLOOR, result)
            return result, VAL
        raise CompileError(f"unknown binary operator {e.op!r}")

    def _comparison(self, e: ast.Binary) -> Expr:
        left, lkind = self.expr(e.left)
        right, rkind = self.expr(e.right)
        if lkind in HANDLE_KINDS or rkind in HANDLE_KINDS:
            raise CompileError("cannot compare handles")
        lv, rv = self.rvalue(left, lkind), self.rvalue(right, rkind)
        if e.op == "==":
            return lv.eq(rv)
        if e.op == "!=":
            return lv.neq(rv)
        if e.op == "<":
            return lv.lt(rv)
        if e.op == "<=":
            return lv.leq(rv)
        if e.op == ">":
            return rv.lt(lv)
        return rv.leq(lv)

    def _short_circuit(self, e: ast.Binary) -> Expr:
        em = self.em
        target = em.fresh_temp("sc")
        left = self.condition(e.left)
        right_label, end = Label("sc_right"), Label("sc_end")
        if e.op == "&&":
            em.emit(IfGoto(left, right_label))
            em.emit(Assignment(target, Lit(False)))
            em.emit(Goto(end))
        else:
            em.emit(IfGoto(UnOpExpr(UnOp.NOT, left), right_label))
            em.emit(Assignment(target, Lit(True)))
            em.emit(Goto(end))
        em.mark(right_label)
        em.emit(Assignment(target, self.condition(e.right)))
        em.mark(end)
        return PVar(target)

    def condition(self, e: ast.Node) -> Expr:
        """Compile an expression used as a truth value to a GIL boolean."""
        if isinstance(e, ast.Binary) and e.op in ("==", "!=", "<", "<=", ">", ">="):
            return self._comparison(e)
        if isinstance(e, ast.Binary) and e.op in ("&&", "||"):
            return self._short_circuit(e)
        if isinstance(e, ast.Unary) and e.op == "!":
            return UnOpExpr(UnOp.NOT, self.condition(e.operand))
        value, kind = self.expr(e)
        if kind == BOOL:
            return value
        if kind == VAL:
            return value.neq(Lit(0))
        raise CompileError("a handle is not a condition")

    def rvalue(self, value: Expr, kind: str) -> Expr:
        """Materialise internal booleans into integers 0/1."""
        if kind != BOOL:
            return value
        em = self.em
        target = em.fresh_temp("b2i")
        true_label, end = Label("b_true"), Label("b_end")
        em.emit(IfGoto(value, true_label))
        em.emit(Assignment(target, Lit(0)))
        em.emit(Goto(end))
        em.mark(true_label)
        em.emit(Assignment(target, Lit(1)))
        em.mark(end)
        return PVar(target)

    # -- calls ----------------------------------------------------------------

    def _call(self, e: ast.CallExpr) -> Tuple[Expr, str]:
        em = self.em
        name = e.name
        if name == "alloc":
            (size_ast,) = e.args
            if not isinstance(size_ast, ast.IntLit):
                raise CompileError("alloc() needs a literal size")
            return self._alloc_owned(size_ast.value, ()), OWN
        if name == "len":
            (handle_ast,) = e.args
            if isinstance(handle_ast, ast.Unary) and handle_ast.op in ("&", "&mut"):
                handle_ast = handle_ast.operand
            handle, kind = self.expr(handle_ast)
            if kind not in HANDLE_KINDS:
                raise CompileError("len() of a non-handle")
            em.emit(ActionCall(em.fresh_temp(), "own_check", _owner_args(handle)))
            target = em.fresh_temp("bnd")
            em.emit(
                ActionCall(target, "bounds", lst(_word_ptr(handle, Lit(0))))
            )
            return PVar(target), VAL
        if name in ("as_ref", "as_handle"):
            # Raw-handle escape hatches for handles stored in cells
            # (list links): reinterpret a loaded word as a reference /
            # owned handle.  Purely a static re-kinding — the dynamic
            # owner checks still guard every use.
            (value_ast,) = e.args
            value, kind = self.expr(value_ast)
            return self.rvalue(value, kind), (REF if name == "as_ref" else OWN)
        if name not in self.sigs:
            raise CompileError(f"call to unknown function {name!r}")
        ret_kind, param_kinds = self.sigs[name]
        if len(e.args) != len(param_kinds):
            raise CompileError(f"{name}: expected {len(param_kinds)} arguments")
        mark = len(self.scopes[-1])
        args: List[Expr] = []
        for arg_ast, param_kind in zip(e.args, param_kinds):
            value, kind = self._binding_value(arg_ast, None)
            norm = VAL if kind == BOOL else kind
            if (param_kind in HANDLE_KINDS) != (norm in HANDLE_KINDS):
                raise CompileError(
                    f"{name}: argument kind {norm!r} does not match "
                    f"parameter kind {param_kind!r}"
                )
            args.append(self.rvalue(value, kind))
        target = em.fresh_temp("ret")
        em.emit(Call(target, Lit(name), tuple(args)))
        # Borrows taken for this call's arguments are statement
        # temporaries (Rust's temporary lifetime): release them as soon
        # as the call returns.
        temporaries = self.scopes[-1][mark:]
        del self.scopes[-1][mark:]
        self._release_scope(temporaries)
        return PVar(target), ret_kind
