"""MiniRust abstract syntax.

A deliberately small Rust-flavoured surface: functions over mathematical
integers and *handles* (owned heap blocks, shared/mutable references),
with `let`/`let mut` bindings, `if`/`else`, `while`, explicit `drop`,
`assume`/`assert!`, and the symbolic inputs `symb_int()`/`symb_bool()`.
Heap values come from ``Box::new(e)``, array literals ``[e1, ..., en]``
and the ``alloc(n)`` builtin (an uninitialised owned block).

Types exist only to classify bindings into ownership *kinds* — value,
owned handle, shared reference, mutable reference — the compiler and the
reference interpreter use the same classification to drive the dynamic
ownership discipline (moves, borrows, drops).  There is no trait system,
no lifetimes, and no struct declarations; the shipped data-structure
library (:mod:`repro.targets.rust_like.collections`) encodes vec/option/
list nodes directly as word arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class Node:
    """Base class for MiniRust AST nodes."""


# -- types (ownership-kind carriers) ------------------------------------------


@dataclass(frozen=True)
class TypeExpr(Node):
    """A parsed type: a base name plus reference decoration.

    ``name`` is the underlying type name (``i64``, ``bool``, ``Box``,
    an array ``[T; n]`` spelled ``array``, or any other identifier);
    ``ref`` / ``ref_mut`` record an ``&`` / ``&mut`` prefix.
    """

    name: str
    ref: bool = False
    ref_mut: bool = False


# -- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class IntLit(Node):
    """An integer literal."""

    value: int


@dataclass(frozen=True)
class BoolLit(Node):
    """``true`` or ``false``."""

    value: bool


@dataclass(frozen=True)
class Var(Node):
    """A variable reference."""

    name: str


@dataclass(frozen=True)
class Unary(Node):
    """A unary operation: ``-``, ``!``, ``*`` (deref), ``&``, ``&mut``."""

    op: str
    operand: Node


@dataclass(frozen=True)
class Binary(Node):
    """A binary operation (arithmetic, comparison, ``&&``/``||``)."""

    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class Index(Node):
    """``base[index]`` — a word read/write slot into a handle's block."""

    base: Node
    index: Node


@dataclass(frozen=True)
class ArrayLit(Node):
    """``[e1, ..., en]`` — a fresh owned block of n initialised words."""

    items: Tuple[Node, ...]


@dataclass(frozen=True)
class BoxNew(Node):
    """``Box::new(e)`` — a fresh owned one-word block holding ``e``."""

    value: Node


@dataclass(frozen=True)
class CallExpr(Node):
    """A call: user function or builtin (``alloc``, ``len``, ...)."""

    name: str
    args: Tuple[Node, ...]


@dataclass(frozen=True)
class SymbolicExpr(Node):
    """``symb_int()`` / ``symb_bool()`` — a fresh symbolic input."""

    type_name: str  # "int" | "bool"


# -- statements ----------------------------------------------------------------


@dataclass(frozen=True)
class LetStmt(Node):
    """``let [mut] name [: T] = expr;``"""

    name: str
    value: Node
    mutable: bool = False
    type: Optional[TypeExpr] = None


@dataclass(frozen=True)
class AssignStmt(Node):
    """``target = expr;`` where target is a var, index, or deref."""

    target: Node
    value: Node


@dataclass(frozen=True)
class IfStmt(Node):
    """``if cond { ... } else { ... }`` (else body may be empty)."""

    cond: Node
    then_body: Tuple[Node, ...]
    else_body: Tuple[Node, ...] = ()


@dataclass(frozen=True)
class WhileStmt(Node):
    """``while cond { ... }``"""

    cond: Node
    body: Tuple[Node, ...]


@dataclass(frozen=True)
class ReturnStmt(Node):
    """``return [expr];``"""

    expr: Optional[Node] = None


@dataclass(frozen=True)
class BreakStmt(Node):
    """``break;``"""


@dataclass(frozen=True)
class ContinueStmt(Node):
    """``continue;``"""


@dataclass(frozen=True)
class DropStmt(Node):
    """``drop(name);`` — frees an owned handle or releases a borrow."""

    name: str


@dataclass(frozen=True)
class AssumeStmt(Node):
    """``assume(expr);`` — path-prunes when false."""

    expr: Node


@dataclass(frozen=True)
class AssertStmt(Node):
    """``assert!(expr);`` — fails the path when false."""

    expr: Node


@dataclass(frozen=True)
class ExprStmt(Node):
    """An expression used as a statement (calls with effects)."""

    expr: Node


# -- functions / program -------------------------------------------------------


@dataclass(frozen=True)
class Param(Node):
    """A function parameter: ``name: T``."""

    name: str
    type: TypeExpr


@dataclass(frozen=True)
class FnDef(Node):
    """``fn name(params) -> T { body }`` (return type optional)."""

    name: str
    params: Tuple[Param, ...]
    ret_type: Optional[TypeExpr]
    body: Tuple[Node, ...]


@dataclass(frozen=True)
class Program(Node):
    """A MiniRust compilation unit: a sequence of functions."""

    functions: Tuple[FnDef, ...] = field(default_factory=tuple)
