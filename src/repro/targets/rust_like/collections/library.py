"""The MiniRust data-structure library: vec, option, list.

MiniRust has no structs, so every structure is a word-addressed block
behind an owned handle with a fixed cell layout:

* **vec** — a bounded vector ``[len, elem0, …, elem_cap-1]`` in a block
  of ``cap + 1`` cells; ``vec_push`` *consumes* the vector (the handle
  moves through the call) and returns it back, the Rust builder idiom;
  pushing past capacity is an unmasked ``buffer-overflow`` fault.
* **option** — a two-cell block ``[tag, value]`` with ``tag ∈ {0, 1}``;
  ``opt_unwrap`` asserts the tag, so unwrapping ``None`` is an
  assertion failure, like ``Option::unwrap`` panicking.
* **list** — a singly linked list of three-cell nodes
  ``[is_node, value, next]`` terminated by an ``[0, 0, 0]`` sentinel;
  the ``next`` cell stores the child's whole handle.  Traversal
  re-kinds loaded handles with ``as_ref`` (read-only) and ``list_free``
  walks the chain re-kinding with ``as_handle`` so each node can be
  dropped — the library's two raw-handle escape hatches.

Suites in :mod:`repro.targets.rust_like.collections.suites` append
``fn test_*`` entry points to these sources.
"""

from __future__ import annotations

VEC = r"""
fn vec_new4() -> Vec {
  let v = [0, 0, 0, 0, 0];
  return v;
}

fn vec_new8() -> Vec {
  let v = [0, 0, 0, 0, 0, 0, 0, 0, 0];
  return v;
}

fn vec_len(v: &Vec) -> i64 {
  return v[0];
}

fn vec_cap(v: &Vec) -> i64 {
  return len(v) - 1;
}

fn vec_push(v: Vec, x: i64) -> Vec {
  let n = v[0];
  v[n + 1] = x;
  v[0] = n + 1;
  return v;
}

fn vec_get(v: &Vec, i: i64) -> i64 {
  assert!(0 <= i && i < v[0]);
  return v[i + 1];
}

fn vec_set(v: &mut Vec, i: i64, x: i64) -> i64 {
  assert!(0 <= i && i < v[0]);
  v[i + 1] = x;
  return 0;
}

fn vec_sum(v: &Vec) -> i64 {
  let mut i = 0;
  let mut total = 0;
  while i < v[0] {
    total = total + v[i + 1];
    i = i + 1;
  }
  return total;
}

fn vec_contains(v: &Vec, x: i64) -> bool {
  let mut i = 0;
  while i < v[0] {
    if v[i + 1] == x {
      return true;
    }
    i = i + 1;
  }
  return false;
}
"""

OPTION = r"""
fn opt_none() -> Opt {
  let o = [0, 0];
  return o;
}

fn opt_some(x: i64) -> Opt {
  let o = [1, x];
  return o;
}

fn opt_is_some(o: &Opt) -> bool {
  return o[0] == 1;
}

fn opt_unwrap(o: &Opt) -> i64 {
  assert!(o[0] == 1);
  return o[1];
}

fn opt_unwrap_or(o: &Opt, d: i64) -> i64 {
  if o[0] == 1 {
    return o[1];
  }
  return d;
}
"""

LIST = r"""
fn list_nil() -> List {
  let n = [0, 0, 0];
  return n;
}

fn list_cons(x: i64, rest: List) -> List {
  let n = [1, x, rest];
  return n;
}

fn list_is_empty(l: &List) -> bool {
  return l[0] == 0;
}

fn list_head(l: &List) -> i64 {
  assert!(l[0] == 1);
  return l[1];
}

fn list_sum(l: &List) -> i64 {
  let mut total = 0;
  let mut cur = as_ref(l);
  while cur[0] == 1 {
    total = total + cur[1];
    cur = as_ref(cur[2]);
  }
  return total;
}

fn list_length(l: &List) -> i64 {
  let mut n = 0;
  let mut cur = as_ref(l);
  while cur[0] == 1 {
    n = n + 1;
    cur = as_ref(cur[2]);
  }
  return n;
}

fn list_free(l: List) -> i64 {
  let mut cur = l;
  while cur[0] == 1 {
    let nxt = as_handle(cur[2]);
    drop(cur);
    cur = nxt;
  }
  drop(cur);
  return 0;
}
"""

_MODULES = {"vec": VEC, "option": OPTION, "list": LIST}


def module_source(name: str) -> str:
    """The library source for one structure (``vec``/``option``/``list``)."""
    return _MODULES[name]
