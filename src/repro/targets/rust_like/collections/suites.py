"""Symbolic test suites for the MiniRust library (the Table 3 column).

One suite per structure in :mod:`repro.targets.rust_like.collections.library`
(vec 7, option 5, list 6 — 18 tests in total).  Tests expected to fail
are listed in :data:`KNOWN_BUG_TESTS`; each demonstrates a distinct
ownership/memory fault class surfacing through the owner-table memory:

* ``test_push_beyond_capacity`` — ``buffer-overflow`` (bounded vec);
* ``test_use_after_move`` — ``use-after-move`` (stale generation);
* ``test_unwrap_none`` — assertion failure (``Option::unwrap`` panic);
* ``test_head_after_free`` — ``use-after-free`` (tombstoned owner).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.targets.rust_like.collections.library import module_source

_VEC_TESTS = r"""
fn test_push_and_len() -> i64 {
  let v = vec_new4();
  let v2 = vec_push(v, 7);
  let v3 = vec_push(v2, 9);
  assert!(vec_len(&v3) == 2);
  assert!(vec_get(&v3, 0) == 7);
  assert!(vec_get(&v3, 1) == 9);
  drop(v3);
  return 0;
}

fn test_push_symbolic() -> i64 {
  let x = symb_int();
  assume(0 <= x && x <= 100);
  let v = vec_new4();
  let v2 = vec_push(v, x);
  assert!(vec_get(&v2, 0) == x);
  assert!(vec_contains(&v2, x));
  drop(v2);
  return 0;
}

fn test_set_overwrites() -> i64 {
  let v = vec_new4();
  let mut v2 = vec_push(v, 1);
  v2 = vec_push(v2, 2);
  vec_set(&mut v2, 0, 5);
  assert!(vec_get(&v2, 0) == 5);
  assert!(vec_sum(&v2) == 7);
  drop(v2);
  return 0;
}

fn test_sum_loop() -> i64 {
  let mut v = vec_new8();
  let mut i = 1;
  while i <= 5 {
    v = vec_push(v, i);
    i = i + 1;
  }
  assert!(vec_sum(&v) == 15);
  assert!(vec_len(&v) == 5);
  assert!(vec_cap(&v) == 8);
  drop(v);
  return 0;
}

fn test_contains_miss() -> i64 {
  let v = vec_new4();
  let v2 = vec_push(v, 2);
  assert!(!vec_contains(&v2, 3));
  drop(v2);
  return 0;
}

fn test_push_beyond_capacity() -> i64 {
  let mut v = vec_new4();
  let mut i = 0;
  while i < 5 {
    v = vec_push(v, i);
    i = i + 1;
  }
  drop(v);
  return 0;
}

fn test_use_after_move() -> i64 {
  let v = vec_new4();
  let v2 = vec_push(v, 3);
  assert!(vec_len(&v) == 0);
  drop(v2);
  return 0;
}
"""

_OPTION_TESTS = r"""
fn test_none_is_not_some() -> i64 {
  let o = opt_none();
  assert!(!opt_is_some(&o));
  assert!(opt_unwrap_or(&o, 9) == 9);
  drop(o);
  return 0;
}

fn test_some_roundtrip() -> i64 {
  let x = symb_int();
  assume(0 - 50 <= x && x <= 50);
  let o = opt_some(x);
  assert!(opt_is_some(&o));
  assert!(opt_unwrap(&o) == x);
  drop(o);
  return 0;
}

fn test_unwrap_or_prefers_value() -> i64 {
  let o = opt_some(4);
  assert!(opt_unwrap_or(&o, 9) == 4);
  drop(o);
  return 0;
}

fn test_symbolic_choice() -> i64 {
  let b = symb_bool();
  let mut o = opt_none();
  if b == 1 {
    drop(o);
    o = opt_some(7);
  }
  assert!(opt_unwrap_or(&o, 7) == 7);
  drop(o);
  return 0;
}

fn test_unwrap_none() -> i64 {
  let o = opt_none();
  assert!(opt_unwrap(&o) == 0);
  drop(o);
  return 0;
}
"""

_LIST_TESTS = r"""
fn test_nil_is_empty() -> i64 {
  let l = list_nil();
  assert!(list_is_empty(&l));
  assert!(list_sum(&l) == 0);
  list_free(l);
  return 0;
}

fn test_cons_head() -> i64 {
  let l = list_cons(3, list_cons(2, list_nil()));
  assert!(list_head(&l) == 3);
  assert!(!list_is_empty(&l));
  assert!(list_length(&l) == 2);
  list_free(l);
  return 0;
}

fn test_sum_symbolic() -> i64 {
  let x = symb_int();
  let y = symb_int();
  assume(0 <= x && x <= 10);
  assume(0 <= y && y <= 10);
  let l = list_cons(x, list_cons(y, list_nil()));
  assert!(list_sum(&l) == x + y);
  list_free(l);
  return 0;
}

fn test_length_loop() -> i64 {
  let mut l = list_nil();
  let mut i = 0;
  while i < 4 {
    l = list_cons(i, l);
    i = i + 1;
  }
  assert!(list_sum(&l) == 6);
  assert!(list_head(&l) == 3);
  assert!(list_length(&l) == 4);
  list_free(l);
  return 0;
}

fn test_shared_reads() -> i64 {
  let l = list_cons(4, list_nil());
  let a = &l;
  let b = &l;
  assert!(a[1] == 4);
  assert!(b[1] == 4);
  drop(a);
  drop(b);
  list_free(l);
  return 0;
}

fn test_head_after_free() -> i64 {
  let l = list_cons(1, list_nil());
  list_free(l);
  assert!(list_head(&l) == 1);
  return 0;
}
"""

_RAW_SUITES: Dict[str, str] = {
    "vec": _VEC_TESTS,
    "option": _OPTION_TESTS,
    "list": _LIST_TESTS,
}

#: Tests expected to fail — one per demonstrated fault class.
KNOWN_BUG_TESTS = {
    "test_push_beyond_capacity",
    "test_use_after_move",
    "test_unwrap_none",
    "test_head_after_free",
}


def _test_names(source: str) -> List[str]:
    """Scrape the ``fn test_*`` entry points from a suite source."""
    names = []
    for line in source.splitlines():
        line = line.strip()
        if line.startswith("fn test_"):
            names.append(line.split()[1].split("(")[0])
    return names


def suite(name: str) -> Tuple[str, List[str]]:
    """(full MiniRust source, test entry points) for one Table 3 row."""
    source = module_source(name) + "\n" + _RAW_SUITES[name]
    return source, _test_names(_RAW_SUITES[name])


def suite_names() -> List[str]:
    """The suite names, sorted."""
    return sorted(_RAW_SUITES)


def expected_test_counts() -> Dict[str, int]:
    """The Table 3 #T column."""
    return {"vec": 7, "option": 5, "list": 6}
