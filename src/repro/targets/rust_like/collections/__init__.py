"""MiniRust data-structure library suites (the third benchmark column)."""
