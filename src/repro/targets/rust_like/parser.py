"""Parser for MiniRust.

Concrete syntax (Rust-flavoured, braces mandatory, no parens needed
around ``if``/``while`` conditions)::

    fn sum(v: &[i64]) -> i64 {
      let mut i = 0; let mut total = 0;
      while i < len(v) { total = total + v[i]; i = i + 1; }
      return total;
    }

    fn main() -> i64 {
      let n = symb_int();
      assume(0 <= n && n <= 10);
      let b = Box::new(n);
      let r = &b;
      let v = *r + 1;
      drop(r);
      drop(b);
      assert!(v <= 11);
      return v;
    }

Expressions: integer/boolean literals, variables, arithmetic with
``+ - * / %``, comparisons, ``&&``/``||``/``!``, deref ``*e``, borrows
``&x`` / ``&mut x``, indexing ``e[i]``, array literals ``[e1, ..., en]``,
``Box::new(e)``, calls, and the symbolic inputs ``symb_int()`` /
``symb_bool()``.  ``assert`` accepts both ``assert(e)`` and the
Rust-style ``assert!(e)``; ``Box::new`` lexes as the four tokens
``Box : : new`` (the shared lexer has no ``::`` punctuator).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend.lexer import ParseError, TokenStream, tokenize
from repro.targets.rust_like import ast

_KEYWORDS = {
    "fn", "let", "mut", "if", "else", "while", "return", "break",
    "continue", "drop", "assume", "assert", "true", "false",
}

_SYMB_TYPES = {"symb_int": "int", "symb_bool": "bool"}


def parse_program(source: str) -> ast.Program:
    """Parse a MiniRust compilation unit."""
    ts = TokenStream(tokenize(source))
    functions: List[ast.FnDef] = []
    while ts.current.kind != "eof":
        functions.append(_parse_fn(ts))
    return ast.Program(tuple(functions))


def _parse_fn(ts: TokenStream) -> ast.FnDef:
    """``fn name(params) -> T { ... }``"""
    ts.expect("fn", kind="ident")
    name = ts.expect_kind("ident").text
    ts.expect("(")
    params: List[ast.Param] = []
    if not ts.at(")"):
        params.append(_parse_param(ts))
        while ts.accept(","):
            params.append(_parse_param(ts))
    ts.expect(")")
    ret_type: Optional[ast.TypeExpr] = None
    if ts.accept("->"):
        ret_type = _parse_type(ts)
    body = _parse_block(ts)
    return ast.FnDef(name, tuple(params), ret_type, body)


def _parse_param(ts: TokenStream) -> ast.Param:
    """``name: T``"""
    name = ts.expect_kind("ident").text
    ts.expect(":")
    return ast.Param(name, _parse_type(ts))


def _parse_type(ts: TokenStream) -> ast.TypeExpr:
    """A type: ``i64``, ``bool``, ``&[mut] T``, ``Box<T>``, ``[T; n]``."""
    if ts.accept("&"):
        is_mut = bool(ts.accept("mut", kind="ident"))
        inner = _parse_type(ts)
        return ast.TypeExpr(inner.name, ref=not is_mut, ref_mut=is_mut)
    if ts.accept("["):
        _parse_type(ts)
        if ts.accept(";"):
            ts.expect_kind("number")
        ts.expect("]")
        return ast.TypeExpr("array")
    name = ts.expect_kind("ident").text
    if ts.accept("<"):
        _parse_type(ts)
        ts.expect(">")
    return ast.TypeExpr(name)


def _parse_block(ts: TokenStream) -> Tuple[ast.Node, ...]:
    """A braced statement sequence."""
    ts.expect("{")
    stmts: List[ast.Node] = []
    while not ts.at("}"):
        stmts.append(_parse_stmt(ts))
    ts.expect("}")
    return tuple(stmts)


def _parse_stmt(ts: TokenStream) -> ast.Node:
    """One statement."""
    tok = ts.current
    if tok.kind == "ident" and tok.text in _KEYWORDS:
        if ts.accept("let", kind="ident"):
            mutable = bool(ts.accept("mut", kind="ident"))
            name = ts.expect_kind("ident").text
            type_: Optional[ast.TypeExpr] = None
            if ts.accept(":"):
                type_ = _parse_type(ts)
            ts.expect("=")
            value = _parse_expr(ts)
            ts.expect(";")
            return ast.LetStmt(name, value, mutable, type_)
        if ts.accept("if", kind="ident"):
            return _parse_if(ts)
        if ts.accept("while", kind="ident"):
            cond = _parse_expr(ts)
            body = _parse_block(ts)
            return ast.WhileStmt(cond, body)
        if ts.accept("return", kind="ident"):
            if ts.accept(";"):
                return ast.ReturnStmt(None)
            expr = _parse_expr(ts)
            ts.expect(";")
            return ast.ReturnStmt(expr)
        if ts.accept("break", kind="ident"):
            ts.expect(";")
            return ast.BreakStmt()
        if ts.accept("continue", kind="ident"):
            ts.expect(";")
            return ast.ContinueStmt()
        if ts.accept("drop", kind="ident"):
            ts.expect("(")
            name = ts.expect_kind("ident").text
            ts.expect(")")
            ts.expect(";")
            return ast.DropStmt(name)
        if ts.accept("assume", kind="ident"):
            ts.expect("(")
            expr = _parse_expr(ts)
            ts.expect(")")
            ts.expect(";")
            return ast.AssumeStmt(expr)
        if ts.accept("assert", kind="ident"):
            ts.accept("!")
            ts.expect("(")
            expr = _parse_expr(ts)
            ts.expect(")")
            ts.expect(";")
            return ast.AssertStmt(expr)
        raise ParseError(f"unexpected keyword {tok.text!r}", tok)

    expr = _parse_expr(ts)
    if ts.accept("="):
        value = _parse_expr(ts)
        ts.expect(";")
        return ast.AssignStmt(expr, value)
    ts.expect(";")
    return ast.ExprStmt(expr)


def _parse_if(ts: TokenStream) -> ast.IfStmt:
    """The body of an ``if`` whose keyword is already consumed."""
    cond = _parse_expr(ts)
    then_body = _parse_block(ts)
    else_body: Tuple[ast.Node, ...] = ()
    if ts.accept("else", kind="ident"):
        if ts.accept("if", kind="ident"):
            else_body = (_parse_if(ts),)
        else:
            else_body = _parse_block(ts)
    return ast.IfStmt(cond, then_body, else_body)


# -- expressions ---------------------------------------------------------------


def _parse_expr(ts: TokenStream) -> ast.Node:
    """Lowest-precedence entry point."""
    return _parse_or(ts)


def _parse_or(ts: TokenStream) -> ast.Node:
    """``a || b``"""
    left = _parse_and(ts)
    while ts.accept("||"):
        left = ast.Binary("||", left, _parse_and(ts))
    return left


def _parse_and(ts: TokenStream) -> ast.Node:
    """``a && b``"""
    left = _parse_equality(ts)
    while ts.accept("&&"):
        left = ast.Binary("&&", left, _parse_equality(ts))
    return left


def _parse_equality(ts: TokenStream) -> ast.Node:
    """``a == b``, ``a != b``"""
    left = _parse_relational(ts)
    while True:
        if ts.accept("=="):
            left = ast.Binary("==", left, _parse_relational(ts))
        elif ts.accept("!="):
            left = ast.Binary("!=", left, _parse_relational(ts))
        else:
            return left


def _parse_relational(ts: TokenStream) -> ast.Node:
    """``< <= > >=``"""
    left = _parse_additive(ts)
    while True:
        matched = False
        for op in ("<=", ">=", "<", ">"):
            if ts.accept(op):
                left = ast.Binary(op, left, _parse_additive(ts))
                matched = True
                break
        if not matched:
            return left


def _parse_additive(ts: TokenStream) -> ast.Node:
    """``+ -``"""
    left = _parse_multiplicative(ts)
    while True:
        if ts.accept("+"):
            left = ast.Binary("+", left, _parse_multiplicative(ts))
        elif ts.accept("-"):
            left = ast.Binary("-", left, _parse_multiplicative(ts))
        else:
            return left


def _parse_multiplicative(ts: TokenStream) -> ast.Node:
    """``* / %``"""
    left = _parse_unary(ts)
    while True:
        if ts.accept("*"):
            left = ast.Binary("*", left, _parse_unary(ts))
        elif ts.accept("/"):
            left = ast.Binary("/", left, _parse_unary(ts))
        elif ts.accept("%"):
            left = ast.Binary("%", left, _parse_unary(ts))
        else:
            return left


def _parse_unary(ts: TokenStream) -> ast.Node:
    """``- ! * & &mut`` prefixes."""
    if ts.accept("-"):
        return ast.Unary("-", _parse_unary(ts))
    if ts.accept("!"):
        return ast.Unary("!", _parse_unary(ts))
    if ts.accept("*"):
        return ast.Unary("*", _parse_unary(ts))
    if ts.accept("&"):
        if ts.accept("mut", kind="ident"):
            return ast.Unary("&mut", _parse_unary(ts))
        return ast.Unary("&", _parse_unary(ts))
    return _parse_postfix(ts)


def _parse_postfix(ts: TokenStream) -> ast.Node:
    """Indexing postfixes: ``e[i]``."""
    expr = _parse_primary(ts)
    while ts.accept("["):
        index = _parse_expr(ts)
        ts.expect("]")
        expr = ast.Index(expr, index)
    return expr


def _parse_primary(ts: TokenStream) -> ast.Node:
    """Literals, variables, calls, ``Box::new``, arrays, parens."""
    tok = ts.current
    if tok.kind == "number":
        ts.advance()
        value = tok.number_value
        if not isinstance(value, int):
            if value != int(value):
                raise ParseError("MiniRust integers must be integral", tok)
            value = int(value)
        return ast.IntLit(value)
    if ts.accept("true", kind="ident"):
        return ast.BoolLit(True)
    if ts.accept("false", kind="ident"):
        return ast.BoolLit(False)
    if ts.accept("("):
        expr = _parse_expr(ts)
        ts.expect(")")
        return expr
    if ts.accept("["):
        items: List[ast.Node] = []
        if not ts.at("]"):
            items.append(_parse_expr(ts))
            while ts.accept(","):
                items.append(_parse_expr(ts))
        ts.expect("]")
        if not items:
            raise ParseError("empty array literal", tok)
        return ast.ArrayLit(tuple(items))
    if tok.kind == "ident":
        if tok.text == "Box" and ts.peek(1).text == ":":
            ts.advance()
            ts.expect(":")
            ts.expect(":")
            ts.expect("new", kind="ident")
            ts.expect("(")
            value = _parse_expr(ts)
            ts.expect(")")
            return ast.BoxNew(value)
        if tok.text in _SYMB_TYPES:
            ts.advance()
            ts.expect("(")
            ts.expect(")")
            return ast.SymbolicExpr(_SYMB_TYPES[tok.text])
        if tok.text in _KEYWORDS:
            raise ParseError(f"unexpected keyword {tok.text!r}", tok)
        ts.advance()
        if ts.accept("("):
            args: List[ast.Node] = []
            if not ts.at(")"):
                args.append(_parse_expr(ts))
                while ts.accept(","):
                    args.append(_parse_expr(ts))
            ts.expect(")")
            return ast.CallExpr(tok.text, tuple(args))
        return ast.Var(tok.text)
    raise ParseError(f"unexpected token {tok.text!r}", tok)
