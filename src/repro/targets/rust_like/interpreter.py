"""A reference big-step interpreter for MiniRust (conformance oracle).

Interprets the MiniRust AST directly — no GIL involved — against the
same concrete memory model (heap × owner table) the compiled code runs
on, mirroring the compiler's ownership discipline step for step: moves
bump generations, borrows register releases on a scope stack, drops
check-then-tombstone-then-free.  Differential agreement between this
interpreter and concrete GIL execution of the compiled program is the
compiler-trustworthiness evidence for the MiniRust front end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gil.values import Symbol, Value
from repro.state.interface import MemErr, MemOk
from repro.targets.rust_like import ast
from repro.targets.rust_like.compiler import (
    HANDLE_KINDS,
    MUTREF,
    OWN,
    REF,
    VAL,
    kind_of_type,
)
from repro.targets.rust_like.memory import (
    FRESH_OWNER_META,
    WORD_CHUNK,
    RustConcreteMemory,
)


@dataclass
class InterpResult:
    """Final outcome of a concrete MiniRust run."""

    kind: str  # "normal" | "error" | "vanish"
    value: Value = 0


class RustRuntimeError(Exception):
    """Raised by the concrete interpreter on a runtime fault."""

    def __init__(self, value) -> None:
        """Record the fault ``value`` (mirrors the GIL error value)."""
        super().__init__(repr(value))
        self.value = value


class _Return(Exception):
    def __init__(self, value: Value) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Vanish(Exception):
    pass


class RustInterpreter:
    """Direct interpreter over the MiniRust AST.

    ``symb_values`` scripts the ``symb_int()``/``symb_bool()`` inputs in
    occurrence order, exactly like the MiniC oracle.
    """

    def __init__(self, symb_values: Optional[Sequence[Value]] = None) -> None:
        """Set up a fresh memory and the scripted symbolic inputs."""
        self._symb_values: List[Value] = list(symb_values or [])
        self._memory_model = RustConcreteMemory()
        self._memory = self._memory_model.initial()
        self._alloc_count = 0
        self.functions: Dict[str, ast.FnDef] = {}

    def run(
        self, program: ast.Program, entry: str, args: Sequence[Value] = ()
    ) -> InterpResult:
        """Run ``entry`` to a final outcome."""
        self.functions = {f.name: f for f in program.functions}
        if entry not in self.functions:
            raise ValueError(f"unknown function {entry!r}")
        try:
            value = self._call_function(self.functions[entry], list(args))
        except RustRuntimeError as exc:
            return InterpResult("error", exc.value)
        except _Vanish:
            return InterpResult("vanish")
        return InterpResult("normal", value)

    # -- memory helpers -------------------------------------------------------

    def _action(self, action: str, value):
        """Run one memory action; raise on the (sole) error branch."""
        branches = self._memory_model.execute(action, self._memory, value)
        assert len(branches) == 1
        branch = branches[0]
        if isinstance(branch, MemErr):
            raise RustRuntimeError(branch.value)
        assert isinstance(branch, MemOk)
        self._memory = branch.memory
        return branch.value

    def _fresh_block(self) -> Symbol:
        """A fresh block location for the next allocation."""
        loc = Symbol(f"rblk_{self._alloc_count}")
        self._alloc_count += 1
        return loc

    def _alloc_owned(self, size: int, init: Sequence[Value]) -> Tuple[Symbol, int]:
        """Allocate an owned block, register its owner, store ``init``."""
        handle = self._action("alloc", (self._fresh_block(), size))
        self._action("own_new", (handle[0], FRESH_OWNER_META))
        for i, value in enumerate(init):
            self._action("store", (WORD_CHUNK, (handle[0], i), value))
        return handle

    @staticmethod
    def _owner_args(handle) -> Tuple[Symbol, int]:
        """The ``(loc, gen)`` argument pair an owner action expects."""
        return (handle[0], handle[1])

    # -- functions ------------------------------------------------------------

    def _call_function(self, fn: ast.FnDef, args: List[Value]) -> Value:
        """Run ``fn`` in a fresh frame; release its borrows on exit."""
        if len(args) != len(fn.params):
            raise RustRuntimeError(f"{fn.name}: arity mismatch")
        env: Dict[str, Tuple[Value, str]] = {}
        for p, arg in zip(fn.params, args):
            env[p.name] = (arg, kind_of_type(p.type))
        frame = _Frame()
        frame.push()
        try:
            for stmt in fn.body:
                self._stmt(env, frame, stmt)
        except _Return as ret:
            self._release_all(frame)
            return ret.value
        self._release_frame(frame.pop())
        return 0

    def _release_frame(self, entries) -> None:
        """Release one scope's borrow entries, innermost first."""
        for action, handle, _binding in reversed(entries):
            self._action(action, self._owner_args(handle))

    def _release_all(self, frame: "_Frame") -> None:
        """Release every open scope (function return)."""
        while frame.scopes:
            self._release_frame(frame.pop())

    def _release_down_to(self, frame: "_Frame", depth: int) -> None:
        """Release scopes opened above ``depth`` (break/continue)."""
        while len(frame.scopes) > depth:
            self._release_frame(frame.pop())

    def _block(self, env, frame: "_Frame", body) -> None:
        """Run ``body`` in its own scope, releasing borrows on exit."""
        # On _Break/_Continue/_Return the frame stays pushed; the loop
        # dispatcher (or _call_function) releases down to its own depth.
        frame.push()
        for stmt in body:
            self._stmt(env, frame, stmt)
        self._release_frame(frame.pop())

    # -- statements -----------------------------------------------------------

    def _stmt(self, env, frame: "_Frame", stmt: ast.Node) -> None:
        """Execute one statement."""
        if isinstance(stmt, ast.LetStmt):
            # Re-execution of the same static `let` (loop bodies) simply
            # rebinds; the compiler rejects *statically* duplicate lets.
            value, kind = self._binding_value(env, frame, stmt.value, stmt.name)
            env[stmt.name] = (value, kind)
            return
        if isinstance(stmt, ast.AssignStmt):
            self._assign(env, frame, stmt)
            return
        if isinstance(stmt, ast.IfStmt):
            body = stmt.then_body if self._cond(env, frame, stmt.cond) else stmt.else_body
            self._block(env, frame, body)
            return
        if isinstance(stmt, ast.WhileStmt):
            depth = len(frame.scopes)
            while self._cond(env, frame, stmt.cond):
                try:
                    self._block(env, frame, stmt.body)
                except _Break:
                    self._release_down_to(frame, depth)
                    return
                except _Continue:
                    self._release_down_to(frame, depth)
                    continue
            return
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.expr is None:
                raise _Return(0)
            value, _kind = self._expr(env, frame, stmt.expr)
            raise _Return(value)
        if isinstance(stmt, ast.BreakStmt):
            raise _Break()
        if isinstance(stmt, ast.ContinueStmt):
            raise _Continue()
        if isinstance(stmt, ast.DropStmt):
            self._drop(env, frame, stmt.name)
            return
        if isinstance(stmt, ast.AssumeStmt):
            if not self._cond(env, frame, stmt.expr):
                raise _Vanish()
            return
        if isinstance(stmt, ast.AssertStmt):
            if not self._cond(env, frame, stmt.expr):
                raise RustRuntimeError(("assertion-failure", repr(stmt.expr)))
            return
        if isinstance(stmt, ast.ExprStmt):
            self._expr(env, frame, stmt.expr)
            return
        raise TypeError(f"unknown statement {stmt!r}")

    def _binding_value(
        self, env, frame: "_Frame", e: ast.Node, binding: Optional[str]
    ) -> Tuple[Value, str]:
        """Evaluate a binding initialiser: borrows borrow, owners move."""
        if isinstance(e, ast.Unary) and e.op in ("&", "&mut"):
            return self._borrow(env, frame, e, binding)
        if isinstance(e, ast.Var) and e.name in env and env[e.name][1] == OWN:
            handle, _kind = env[e.name]
            new_gen = self._action("own_move", self._owner_args(handle))
            return (handle[0], new_gen), OWN
        return self._expr(env, frame, e)

    def _borrow(
        self, env, frame: "_Frame", e: ast.Unary, binding: Optional[str]
    ) -> Tuple[Value, str]:
        """Take a ``&``/``&mut`` borrow, registering its release entry."""
        if not isinstance(e.operand, ast.Var) or e.operand.name not in env:
            raise RustRuntimeError("can only borrow a named binding")
        handle, kind = env[e.operand.name]
        if kind not in HANDLE_KINDS:
            raise RustRuntimeError("cannot borrow a non-handle binding")
        action = "borrow_mut" if e.op == "&mut" else "borrow"
        gen = self._action(action, self._owner_args(handle))
        new_handle = (handle[0], gen)
        release = "release_mut" if e.op == "&mut" else "release"
        frame.scopes[-1].append((release, new_handle, binding))
        return new_handle, MUTREF if e.op == "&mut" else REF

    def _assign(self, env, frame: "_Frame", stmt: ast.AssignStmt) -> None:
        """Assign to a variable, index place, or deref place."""
        target = stmt.target
        if isinstance(target, ast.Var):
            if target.name not in env:
                raise RustRuntimeError(f"assignment to undeclared {target.name!r}")
            value, kind = self._binding_value(env, frame, stmt.value, target.name)
            env[target.name] = (value, kind)
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            handle, kind = self._expr(env, frame, target.operand)
            index: Value = 0
        elif isinstance(target, ast.Index):
            handle, kind = self._expr(env, frame, target.base)
            index, _ = self._expr(env, frame, target.index)
        else:
            raise RustRuntimeError(f"not an assignable place: {target!r}")
        if kind not in HANDLE_KINDS:
            raise RustRuntimeError("write target is not a handle")
        if kind == REF:
            raise RustRuntimeError("cannot write through a shared reference")
        value, _vkind = self._expr(env, frame, stmt.value)
        self._action("own_check", self._owner_args(handle))
        self._action("store", (WORD_CHUNK, (handle[0], int(index)), value))

    def _drop(self, env, frame: "_Frame", name: str) -> None:
        """``drop(name)``: free an owner or release a borrow early."""
        if name not in env:
            raise RustRuntimeError(f"drop of unknown binding {name!r}")
        handle, kind = env[name]
        if kind == OWN:
            self._action("drop_check", self._owner_args(handle))
            self._action("own_drop", (handle[0],))
            self._action("free", ((handle[0], 0),))
            return
        if kind in (REF, MUTREF):
            for entries in reversed(frame.scopes):
                for i, (action, entry_handle, binding) in enumerate(entries):
                    if binding == name:
                        self._action(action, self._owner_args(entry_handle))
                        del entries[i]
                        return
            raise RustRuntimeError(f"drop of already-released reference {name!r}")
        raise RustRuntimeError(f"cannot drop value binding {name!r}")

    # -- expressions ----------------------------------------------------------

    def _expr(self, env, frame: "_Frame", e: ast.Node) -> Tuple[Value, str]:
        """Evaluate an expression to ``(value, binding kind)``."""
        if isinstance(e, ast.IntLit):
            return e.value, VAL
        if isinstance(e, ast.BoolLit):
            return (1 if e.value else 0), VAL
        if isinstance(e, ast.Var):
            if e.name not in env:
                raise RustRuntimeError(f"unknown identifier {e.name!r}")
            return env[e.name]
        if isinstance(e, ast.SymbolicExpr):
            return self._symbolic(e), VAL
        if isinstance(e, ast.Unary):
            return self._unary(env, frame, e)
        if isinstance(e, ast.Binary):
            return self._binary(env, frame, e)
        if isinstance(e, ast.Index):
            handle, kind = self._expr(env, frame, e.base)
            if kind not in HANDLE_KINDS:
                raise RustRuntimeError("indexing a non-handle")
            index, _ = self._expr(env, frame, e.index)
            return self._read_word(handle, int(index)), VAL
        if isinstance(e, ast.ArrayLit):
            items = [self._expr(env, frame, item)[0] for item in e.items]
            return self._alloc_owned(len(items), items), OWN
        if isinstance(e, ast.BoxNew):
            value, _kind = self._expr(env, frame, e.value)
            return self._alloc_owned(1, [value]), OWN
        if isinstance(e, ast.CallExpr):
            return self._call(env, frame, e)
        raise TypeError(f"unknown expression {e!r}")

    def _read_word(self, handle, index: int) -> Value:
        """Owner-checked load of one word through ``handle``."""
        self._action("own_check", self._owner_args(handle))
        return self._action("load", (WORD_CHUNK, (handle[0], index)))

    def _symbolic(self, e: ast.SymbolicExpr) -> Value:
        """The next scripted symbolic input; vanish when out of range."""
        if not self._symb_values:
            raise ValueError("interpreter ran out of symbolic input values")
        value = self._symb_values.pop(0)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _Vanish()
        if float(value) != int(value):
            raise _Vanish()
        value = int(value)
        if e.type_name == "bool" and not 0 <= value <= 1:
            raise _Vanish()
        return value

    def _unary(self, env, frame: "_Frame", e: ast.Unary) -> Tuple[Value, str]:
        """Evaluate ``-``, ``!``, and deref; borrows are position-checked."""
        if e.op == "-":
            value, _ = self._expr(env, frame, e.operand)
            return -self._int(value, "-"), VAL
        if e.op == "!":
            return (0 if self._cond(env, frame, e.operand) else 1), VAL
        if e.op == "*":
            handle, kind = self._expr(env, frame, e.operand)
            if kind not in HANDLE_KINDS:
                raise RustRuntimeError("dereference of a non-handle")
            return self._read_word(handle, 0), VAL
        if e.op in ("&", "&mut"):
            raise RustRuntimeError(
                "borrows are only allowed as let initialisers or call arguments"
            )
        raise RustRuntimeError(f"unknown unary {e.op!r}")

    def _binary(self, env, frame: "_Frame", e: ast.Binary) -> Tuple[Value, str]:
        """Evaluate arithmetic, comparisons, and short-circuit logic."""
        if e.op == "&&":
            result = self._cond(env, frame, e.left) and self._cond(env, frame, e.right)
            return (1 if result else 0), VAL
        if e.op == "||":
            result = self._cond(env, frame, e.left) or self._cond(env, frame, e.right)
            return (1 if result else 0), VAL
        if e.op in ("==", "!=", "<", "<=", ">", ">="):
            return (1 if self._comparison(env, frame, e) else 0), VAL
        left, lkind = self._expr(env, frame, e.left)
        right, rkind = self._expr(env, frame, e.right)
        if lkind in HANDLE_KINDS or rkind in HANDLE_KINDS:
            raise RustRuntimeError(f"arithmetic on handles ({e.op!r})")
        lv, rv = self._int(left, e.op), self._int(right, e.op)
        if e.op == "+":
            return lv + rv, VAL
        if e.op == "-":
            return lv - rv, VAL
        if e.op == "*":
            return lv * rv, VAL
        if e.op == "/":
            if rv == 0:
                raise RustRuntimeError("eval-error: division by zero")
            return lv // rv, VAL
        if e.op == "%":
            if rv == 0:
                raise RustRuntimeError("eval-error: modulo by zero")
            return lv % rv, VAL
        raise RustRuntimeError(f"unknown binary {e.op!r}")

    def _comparison(self, env, frame: "_Frame", e: ast.Binary) -> bool:
        """Evaluate a comparison; handles are not comparable."""
        left, lkind = self._expr(env, frame, e.left)
        right, rkind = self._expr(env, frame, e.right)
        if lkind in HANDLE_KINDS or rkind in HANDLE_KINDS:
            raise RustRuntimeError("cannot compare handles")
        lv, rv = self._int(left, e.op), self._int(right, e.op)
        return {
            "==": lv == rv, "!=": lv != rv, "<": lv < rv,
            "<=": lv <= rv, ">": lv > rv, ">=": lv >= rv,
        }[e.op]

    def _cond(self, env, frame: "_Frame", e: ast.Node) -> bool:
        """Evaluate an expression as a branch condition."""
        if isinstance(e, ast.Binary) and e.op in ("==", "!=", "<", "<=", ">", ">="):
            return self._comparison(env, frame, e)
        if isinstance(e, ast.Binary) and e.op == "&&":
            return self._cond(env, frame, e.left) and self._cond(env, frame, e.right)
        if isinstance(e, ast.Binary) and e.op == "||":
            return self._cond(env, frame, e.left) or self._cond(env, frame, e.right)
        if isinstance(e, ast.Unary) and e.op == "!":
            return not self._cond(env, frame, e.operand)
        value, kind = self._expr(env, frame, e)
        if kind in HANDLE_KINDS:
            raise RustRuntimeError("a handle is not a condition")
        return self._int(value, "condition") != 0

    @staticmethod
    def _int(value, op: str) -> int:
        """Coerce ``value`` to an int, or fail with an eval error."""
        if isinstance(value, bool):
            return int(value)
        if not isinstance(value, (int, float)):
            raise RustRuntimeError(f"eval-error: {op}: expected an int, got {value!r}")
        return int(value)

    # -- calls ----------------------------------------------------------------

    def _call(self, env, frame: "_Frame", e: ast.CallExpr) -> Tuple[Value, str]:
        """Evaluate a builtin or user call (args move/borrow like lets)."""
        name = e.name
        if name == "alloc":
            (size_ast,) = e.args
            if not isinstance(size_ast, ast.IntLit):
                raise RustRuntimeError("alloc() needs a literal size")
            return self._alloc_owned(size_ast.value, ()), OWN
        if name == "len":
            (handle_ast,) = e.args
            if isinstance(handle_ast, ast.Unary) and handle_ast.op in ("&", "&mut"):
                handle_ast = handle_ast.operand
            handle, kind = self._expr(env, frame, handle_ast)
            if kind not in HANDLE_KINDS:
                raise RustRuntimeError("len() of a non-handle")
            self._action("own_check", self._owner_args(handle))
            return self._action("bounds", ((handle[0], 0),)), VAL
        if name in ("as_ref", "as_handle"):
            (value_ast,) = e.args
            value, _kind = self._expr(env, frame, value_ast)
            if not (isinstance(value, (tuple, list)) and len(value) == 2):
                raise RustRuntimeError(("invalid-handle", value))
            return tuple(value), (REF if name == "as_ref" else OWN)
        if name not in self.functions:
            raise RustRuntimeError(f"unknown function {name!r}")
        mark = len(frame.scopes[-1])
        args = [self._binding_value(env, frame, a, None)[0] for a in e.args]
        fn = self.functions[name]
        value = self._call_function(fn, args)
        # Release call-argument borrow temporaries (mirrors the compiler).
        temporaries = frame.scopes[-1][mark:]
        del frame.scopes[-1][mark:]
        for action, entry_handle, _binding in reversed(temporaries):
            self._action(action, self._owner_args(entry_handle))
        return value, kind_of_type(fn.ret_type)


class _Frame:
    """The borrow-release scope stack for one function activation."""

    def __init__(self) -> None:
        self.scopes: List[List[Tuple[str, object, Optional[str]]]] = []

    def push(self) -> None:
        self.scopes.append([])

    def pop(self):
        return self.scopes.pop()
