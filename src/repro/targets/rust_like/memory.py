"""MiniRust memory models as a memlib composition.

The ownership-flavoured memory is a *product* of two parts:

* a word-addressed :class:`~repro.memlib.blockoffset.BlockOffset` heap
  (every cell holds one GIL value, chunk ``(1, 1, "word")``) wrapped in
  a :class:`~repro.memlib.permissions.Permissions` gate that grants
  ``PERM_WRITABLE`` while requiring ``PERM_FREEABLE`` for the raw byte
  operations ``memcpy``/``memset`` — MiniRust has no ``unsafe``, so the
  byte-smashing actions of the C instantiation are sealed off as
  ``permission-denied`` branches rather than removed;
* an **owner table**: a :class:`~repro.memlib.freeable.Freeable` store
  of per-allocation ownership records ``(generation, shared borrows,
  mutable borrow)``, checked on every access.

Handles (owned boxes/arrays and references) are two-element GIL lists
``[loc, gen]``.  A *move* bumps the owner's generation, so every stale
binding is caught dynamically (``use-after-move``); ``&``/``&mut``
borrows increment/flag the borrow counters with Rust's sharing-xor-
mutation discipline (``already-borrowed`` / ``already-mutably-borrowed``);
``drop`` refuses while borrows are live (``drop-while-borrowed``),
tombstones the owner record (later access is ``use-after-free``) and
frees the block.  Because both parts are memlib combinators, the
concrete and symbolic execution arms — and pickle-safety across the
parallel explorer — come for free from the composition expression.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gil.ops import EvalError, evaluate
from repro.gil.values import Symbol, Value
from repro.logic.expr import Expr, Lit, lst
from repro.memlib.blockoffset import (
    Block,
    BlockMem,
    BlockOffset,
    BlockSpec,
    Fragment,
    SymBlockMem,
)
from repro.memlib.core import (
    PairMem,
    PartConcreteModel,
    PartSymbolicModel,
    RecErr,
    RecOk,
    RecordPart,
    UNCHANGED,
    product,
)
from repro.memlib.freeable import Freeable, FreeableSpec, Record, StoreMem, SymStoreMem
from repro.memlib.permissions import PERM_FREEABLE, PERM_WRITABLE, Permissions

#: The only chunk MiniRust uses: one word-sized, word-aligned GIL value.
WORD_CHUNK = (1, 1, "word")

#: Owner-record state for a freshly allocated handle:
#: (generation, live shared borrows, mutable-borrow flag).
FRESH_OWNER_META = (0, 0, 0)


class RustBlockMemory(BlockMem):
    """Concrete MiniRust heap: separated blocks of word cells."""


class SymRustBlockMemory(SymBlockMem):
    """Symbolic MiniRust heap: block cells hold value expressions."""


class RustOwnerStore(StoreMem):
    """Concrete owner table: block symbol → ownership record."""


class SymRustOwnerStore(SymStoreMem):
    """Symbolic owner table: location expressions → ownership records."""


class OwnerTable(RecordPart):
    """The per-allocation ownership record: generation + borrow state.

    The record's metadata is the triple ``(gen, shared, mut)`` — always
    concrete integers (generations travel inside handle values, which
    whole-program symbolic execution keeps literal), so neither arm
    branches: each action yields exactly one ``RecOk``/``RecErr``.

    Actions (``args[0]`` is the resolved location, ``args[1]`` the
    handle's generation):

    * ``own_check`` — access guard: stale generation is ``use-after-move``;
    * ``own_move`` — bump the generation (refusing while borrowed),
      returning the new generation for the moved-to handle;
    * ``borrow`` / ``borrow_mut`` — take a shared / unique borrow under
      the sharing-xor-mutation discipline, returning the generation;
    * ``release`` / ``release_mut`` — give a borrow back (lenient);
    * ``drop_check`` — guard for ``drop``: refuses stale generations and
      live borrows, mutating nothing (the enclosing
      :class:`~repro.memlib.freeable.Freeable` dispose does the kill).
    """

    _ACTIONS = frozenset(
        {
            "own_check",
            "own_move",
            "borrow",
            "borrow_mut",
            "release",
            "release_mut",
            "drop_check",
        }
    )

    @property
    def actions(self) -> frozenset:
        """The ownership action names."""
        return self._ACTIONS

    # -- shared state helpers -------------------------------------------------

    @staticmethod
    def _state(record: Record) -> Tuple[int, int, int]:
        """The ``(gen, shared, mut)`` triple behind either arm's metadata."""
        metadata = record.metadata
        if isinstance(metadata, Lit):
            metadata = metadata.value
        gen, shared, mut = metadata
        return int(gen), int(shared), int(mut)

    @staticmethod
    def _gen_arg(arg) -> int:
        """The concrete generation carried by a handle argument."""
        if isinstance(arg, Lit):
            arg = arg.value
        if isinstance(arg, bool) or not isinstance(arg, (int, float)):
            raise EvalError(f"owner action expects a concrete generation, got {arg!r}")
        return int(arg)

    @staticmethod
    def _transition(
        action: str, state: Tuple[int, int, int], gen: int
    ) -> Tuple[Optional[str], Optional[Tuple[int, int, int]], object]:
        """The shared state machine: (error tag, new state, result value).

        Returns ``(None, new_state_or_None, value)`` on success —
        ``new_state`` is ``None`` when the record is unchanged — and
        ``(tag, None, None)`` on an ownership fault.
        """
        cur_gen, shared, mut = state
        if action == "release":
            return None, (cur_gen, max(shared - 1, 0), mut), True
        if action == "release_mut":
            return None, (cur_gen, shared, 0), True
        if cur_gen != gen:
            return "use-after-move", None, None
        if action == "own_check":
            return None, None, True
        if action == "own_move":
            if shared > 0 or mut:
                return "move-while-borrowed", None, None
            return None, (cur_gen + 1, 0, 0), cur_gen + 1
        if action == "borrow":
            if mut:
                return "already-mutably-borrowed", None, None
            return None, (cur_gen, shared + 1, mut), cur_gen
        if action == "borrow_mut":
            if mut:
                return "already-mutably-borrowed", None, None
            if shared > 0:
                return "already-borrowed", None, None
            return None, (cur_gen, shared, 1), cur_gen
        if action == "drop_check":
            if shared > 0 or mut:
                return "drop-while-borrowed", None, None
            return None, None, True
        raise ValueError(f"unknown owner action {action!r}")

    # -- concrete arm ---------------------------------------------------------

    def execute_concrete(self, action: str, record: Record, value: Value) -> List:
        """One deterministic branch of the ownership state machine."""
        loc = value[0]
        gen = self._gen_arg(value[1]) if len(value) > 1 else 0
        tag, new_state, result = self._transition(action, self._state(record), gen)
        if tag is not None:
            return [RecErr((tag, loc))]
        if new_state is None:
            return [RecOk(UNCHANGED, result)]
        return [RecOk(type(record)(new_state, record.props), result)]

    # -- symbolic arm ---------------------------------------------------------

    def execute_symbolic(
        self, action: str, record: Record, args: List[Expr], learned0, pc, solver
    ) -> List:
        """The same single branch; error values become GIL list exprs."""
        loc = args[0]
        gen = self._gen_arg(args[1]) if len(args) > 1 else 0
        tag, new_state, result = self._transition(action, self._state(record), gen)
        if tag is not None:
            return [RecErr(lst(tag, loc), learned0)]
        if new_state is None:
            return [RecOk(UNCHANGED, Lit(result), learned0)]
        return [
            RecOk(type(record)(Lit(new_state), record.props), Lit(result), learned0)
        ]


#: The word-addressed heap, with the raw byte actions sealed off:
#: ``memcpy``/``memset`` require ``PERM_FREEABLE`` but the gate grants
#: only ``PERM_WRITABLE``, so safe MiniRust cannot byte-smash blocks.
RUST_BLOCKS = Permissions(
    BlockOffset(
        BlockSpec(
            concrete_mem=RustBlockMemory,
            symbolic_mem=SymRustBlockMemory,
            name="Rust-blocks",
        )
    ),
    required={"memcpy": PERM_FREEABLE, "memset": PERM_FREEABLE},
    granted=PERM_WRITABLE,
)

#: The owner table: a Freeable store of OwnerTable records.  ``own_new``
#: registers a fresh allocation; ``own_drop`` tombstones it so stale
#: handles fault with ``use-after-free``.
RUST_OWNERS = Freeable(
    OwnerTable(),
    FreeableSpec(
        alloc_action="own_new",
        dispose_action="own_drop",
        not_object_error="not-an-owner",
        disposed_error="use-after-free",
        loc_error="not an owner location",
        name="Rust-owners",
        concrete_mem=RustOwnerStore,
        symbolic_mem=SymRustOwnerStore,
    ),
)

#: The whole MiniRust memory: heap × owner table (disjoint action sets).
RUST_PART = product(RUST_BLOCKS, RUST_OWNERS)


class RustConcreteMemory(PartConcreteModel):
    """The concrete MiniRust memory (heap × owner table)."""

    part = RUST_PART


class RustSymbolicMemory(PartSymbolicModel):
    """The symbolic MiniRust memory (heap × owner table)."""

    part = RUST_PART


# -- interpretation I_R --------------------------------------------------------


class InterpretationError(Exception):
    """Raised when a symbolic memory has no concrete interpretation."""


def interpret_memory(env: Dict[str, Value], memory: PairMem) -> PairMem:
    """I_R(ε, µ̂): interpret heap cell expressions; copy owner records.

    The heap side interprets every cell fragment's value expression
    under ``ε`` exactly like the MiniC interpretation; the owner side is
    already concrete (locations are literal symbols, metadata triples
    are plain integers), so it converts representation only.
    """
    blocks: Dict[Symbol, Block] = {}
    for loc, block in memory.left.blocks:
        cells: List[Optional[Fragment]] = []
        for cell in block.cells:
            if cell is None:
                cells.append(None)
                continue
            value_expr, k, n, tag = cell
            try:
                value = evaluate(value_expr, lvar_env=env)
            except EvalError as exc:
                raise InterpretationError(str(exc)) from exc
            cells.append((value, k, n, tag))
        blocks[loc] = Block(block.size, block.perm, tuple(cells))

    entries: Dict[Symbol, Optional[Record]] = {}
    for loc_expr, record in memory.right.entries:
        loc = _literal_location(loc_expr)
        if record is None:
            entries[loc] = None
            continue
        metadata = record.metadata
        if isinstance(metadata, Lit):
            metadata = metadata.value
        entries[loc] = Record(tuple(metadata), record.props)
    return PairMem(RustBlockMemory.of(blocks), RustOwnerStore.of(entries))


def _literal_location(loc_expr) -> Symbol:
    """The literal block symbol behind an owner-store key."""
    if isinstance(loc_expr, Lit) and isinstance(loc_expr.value, Symbol):
        return loc_expr.value
    if isinstance(loc_expr, Symbol):
        return loc_expr
    raise InterpretationError(f"owner location is not a literal symbol: {loc_expr!r}")
