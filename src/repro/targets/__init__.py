"""Target-language instantiations of Gillian (paper §2.2, §4)."""

from repro.targets.language import Language

__all__ = ["Language", "WhileLanguage", "MiniJSLanguage", "MiniCLanguage"]


def __getattr__(name):
    if name == "WhileLanguage":
        from repro.targets.while_lang import WhileLanguage

        return WhileLanguage
    if name == "MiniJSLanguage":
        from repro.targets.js_like import MiniJSLanguage

        return MiniJSLanguage
    if name == "MiniCLanguage":
        from repro.targets.c_like import MiniCLanguage

        return MiniCLanguage
    raise AttributeError(f"module 'repro.targets' has no attribute {name!r}")
