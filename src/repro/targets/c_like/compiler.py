"""The MiniC-to-GIL compiler (paper §4.2).

Mirrors the paper's C#minor-to-GIL compiler: control flow compiles
trivially to conditional gotos and memory management is restated in terms
of the C memory-model actions (``alloc``, ``free``, ``load``, ``store``,
``memcpy``, ``memset``, ``cmp_ptr``, ``bounds``).  The compiler is typed:
it tracks the C type of every expression in order to pick memory chunks,
scale pointer arithmetic by ``sizeof``, and compute struct field offsets.

Conventions:

* pointers are GIL two-element lists ``[block, offset]``; ``NULL`` is the
  integer 0;
* ``malloc``/``calloc`` draw the fresh block from Gillian's built-in
  allocator (``uSym``) and register it with the ``alloc`` action — the
  paper's stated design (allocation is not a memory action, §2.2);
* all pointer comparisons go through ``cmp_ptr``, which reports the
  undefined behaviours of §4.2 (relational comparison across blocks,
  any comparison of freed pointers);
* string literals allocate a char block, NUL-terminated, at their
  occurrence; characters are their integer codes;
* boolean results (comparisons, ``&&``, ``!``) are tracked as an internal
  boolean type and materialised to C ints 0/1 only when stored or passed.

Like the paper's Gillian-C: no symbolic-size allocation, no address-of on
scalar locals (locals are GIL variables), mathematical integer arithmetic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend.emitter import Emitter, Label
from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
    Vanish,
    allocate_sites,
)
from repro.gil.values import GilType, Symbol
from repro.logic.expr import (
    BinOp,
    BinOpExpr,
    EList,
    Expr,
    Lit,
    PVar,
    UnOp,
    UnOpExpr,
    lst,
)
from repro.targets.c_like import ast
from repro.targets.c_like.ctypes import (
    CHAR,
    INT,
    VOID,
    ArrayType,
    CharType,
    CType,
    IntType,
    PointerType,
    StructType,
    TypeTable,
    is_pointer,
)

ACTIONS = frozenset(
    {"alloc", "free", "load", "store", "memcpy", "memset", "cmp_ptr", "bounds"}
)


class CompileError(Exception):
    """Raised when MiniC source cannot be lowered to GIL."""

    pass


class BoolType(CType):
    """Internal marker: a GIL boolean (comparison / logical result)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<bool>"


BOOL = BoolType()

#: The value of an uninitialised scalar local (reading it is C UB; any
#: arithmetic use fails evaluation, surfacing as an error outcome).
UNINIT = Symbol("undef_c")

_BUILTINS = {"malloc", "calloc", "free", "memcpy", "memmove", "memset"}


def compile_source(source: str) -> Prog:
    from repro.targets.c_like.parser import parse_program

    return compile_program(parse_program(source))


def compile_program(program: ast.Program) -> Prog:
    types = TypeTable()
    for struct in program.structs:
        types.define_struct(struct.name, list(struct.fields))
    sigs: Dict[str, Tuple[CType, Tuple[CType, ...]]] = {}
    for func in program.functions:
        sigs[func.name] = (func.ret_type, tuple(p.type for p in func.params))
    prog = Prog()
    for func in program.functions:
        compiler = _FuncCompiler(types, sigs)
        prog.add(compiler.compile(func))
    return allocate_sites(prog)


def _collect_addressed(func: ast.FuncDef) -> set:
    """Names of locals whose address is taken (``&x``)."""
    found: set = set()

    def visit(node) -> None:
        if isinstance(node, ast.Unary) and node.op == "&" and isinstance(
            node.operand, ast.Var
        ):
            found.add(node.operand.name)
        for attr in ("operand", "left", "right", "obj", "base", "index",
                     "cond", "expr", "init", "value", "target", "step"):
            child = getattr(node, attr, None)
            if isinstance(child, ast.Node):
                visit(child)
        for attr in ("args", "then_body", "else_body", "body"):
            for child in getattr(node, attr, ()) or ():
                if isinstance(child, ast.Node):
                    visit(child)

    for stmt in func.body:
        visit(stmt)
    return found


def _ptr(block: Expr, offset: Expr) -> Expr:
    return EList((block, offset))


def _ptr_block(p: Expr) -> Expr:
    return BinOpExpr(BinOp.LNTH, p, Lit(0))


def _ptr_offset(p: Expr) -> Expr:
    return BinOpExpr(BinOp.LNTH, p, Lit(1))


def _ptr_add(p: Expr, delta: Expr) -> Expr:
    return _ptr(_ptr_block(p), BinOpExpr(BinOp.ADD, _ptr_offset(p), delta))


class _FuncCompiler:
    def __init__(self, types: TypeTable, sigs) -> None:
        self.types = types
        self.sigs = sigs
        self.em = Emitter()
        self.locals: Dict[str, CType] = {}
        #: locals whose address is taken live in memory: name → slot
        #: pointer variable (CompCert's stack allocation of addressed
        #: locals).
        self.slots: Dict[str, str] = {}
        self.addressed: set = set()
        self.loop_stack: List[Tuple[Label, Label]] = []
        self.ret_type: CType = VOID

    def compile(self, func: ast.FuncDef) -> Proc:
        self.locals = {p.name: p.type for p in func.params}
        self.ret_type = func.ret_type
        self.addressed = _collect_addressed(func)
        for param in func.params:
            if param.name in self.addressed:
                self._make_slot(param.name, param.type, init=PVar(param.name))
        for stmt in func.body:
            self.stmt(stmt)
        self.em.emit(Return(Lit(0)))
        return Proc(func.name, tuple(p.name for p in func.params), self.em.finish())

    def _make_slot(self, name: str, t: CType, init: Optional[Expr]) -> None:
        """Give an addressed local a one-element memory block."""
        em = self.em
        block = em.fresh_temp("slotb")
        em.emit(USym(block, 0))
        slot = em.fresh_temp("slot")
        em.emit(ActionCall(slot, "alloc", lst(PVar(block), self.types.size_of(t))))
        if init is not None:
            chunk = self.types.chunk_of(t)
            em.emit(ActionCall(em.fresh_temp(), "store", lst(Lit(chunk), PVar(slot), init)))
        self.slots[name] = slot

    # -- statements ---------------------------------------------------------

    def stmt(self, stmt: ast.Statement) -> None:
        em = self.em
        if isinstance(stmt, ast.Decl):
            self.locals[stmt.name] = stmt.type
            if stmt.name in self.addressed:
                init = None
                if stmt.init is not None:
                    value, vtype = self.expr(stmt.init)
                    init = self.rvalue(value, vtype)
                self._make_slot(stmt.name, stmt.type, init)
                return
            if stmt.init is not None:
                value, vtype = self.expr(stmt.init)
                em.emit(Assignment(stmt.name, self.rvalue(value, vtype)))
            else:
                em.emit(Assignment(stmt.name, Lit(UNINIT)))
            return
        if isinstance(stmt, ast.ArrayDecl):
            size = self.types.size_of(stmt.element_type) * stmt.length
            block = em.fresh_temp("stk")
            em.emit(USym(block, 0))
            target = em.fresh_temp("arr")
            em.emit(ActionCall(target, "alloc", lst(PVar(block), size)))
            self.locals[stmt.name] = PointerType(stmt.element_type)
            em.emit(Assignment(stmt.name, PVar(target)))
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.target, stmt.value)
            return
        if isinstance(stmt, ast.ExprStmt):
            self.expr(stmt.expr)
            return
        if isinstance(stmt, ast.IfStmt):
            then_label, end_label = Label("then"), Label("endif")
            cond = self.condition(stmt.cond)
            em.emit(IfGoto(cond, then_label))
            for s in stmt.else_body:
                self.stmt(s)
            em.emit(Goto(end_label))
            em.mark(then_label)
            for s in stmt.then_body:
                self.stmt(s)
            em.mark(end_label)
            return
        if isinstance(stmt, ast.WhileStmt):
            start, body_label, end = Label("loop"), Label("lbody"), Label("endloop")
            em.mark(start)
            cond = self.condition(stmt.cond)
            em.emit(IfGoto(cond, body_label))
            em.emit(Goto(end))
            em.mark(body_label)
            self.loop_stack.append((end, start))
            for s in stmt.body:
                self.stmt(s)
            self.loop_stack.pop()
            em.emit(Goto(start))
            em.mark(end)
            return
        if isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self.stmt(stmt.init)
            start, body_label, step_label, end = (
                Label("for"), Label("fbody"), Label("fstep"), Label("endfor"),
            )
            em.mark(start)
            if stmt.cond is not None:
                cond = self.condition(stmt.cond)
                em.emit(IfGoto(cond, body_label))
                em.emit(Goto(end))
                em.mark(body_label)
            self.loop_stack.append((end, step_label))
            for s in stmt.body:
                self.stmt(s)
            self.loop_stack.pop()
            em.mark(step_label)
            if stmt.step is not None:
                self.stmt(stmt.step)
            em.emit(Goto(start))
            em.mark(end)
            return
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.expr is None:
                em.emit(Return(Lit(0)))
            else:
                value, vtype = self.expr(stmt.expr)
                em.emit(Return(self.rvalue(value, vtype)))
            return
        if isinstance(stmt, ast.BreakStmt):
            if not self.loop_stack:
                raise CompileError("break outside a loop")
            em.emit(Goto(self.loop_stack[-1][0]))
            return
        if isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise CompileError("continue outside a loop")
            em.emit(Goto(self.loop_stack[-1][1]))
            return
        if isinstance(stmt, ast.AssumeStmt):
            self._assume(self.condition(stmt.expr))
            return
        if isinstance(stmt, ast.AssertStmt):
            ok = Label("assert_ok")
            cond = self.condition(stmt.expr)
            em.emit(IfGoto(cond, ok))
            em.emit(Fail(lst("assertion-failure", repr(stmt.expr))))
            em.mark(ok)
            return
        raise CompileError(f"unknown statement {stmt!r}")

    def _assume(self, condition: Expr) -> None:
        ok = Label("assume_ok")
        self.em.emit(IfGoto(condition, ok))
        self.em.emit(Vanish())
        self.em.mark(ok)

    def _assign(self, target: ast.Expression, value_ast: ast.Expression) -> None:
        em = self.em
        if isinstance(target, ast.Var):
            if target.name not in self.locals:
                raise CompileError(f"assignment to undeclared {target.name!r}")
            value, vtype = self.expr(value_ast)
            if target.name in self.slots:
                chunk = self.types.chunk_of(self.locals[target.name])
                em.emit(
                    ActionCall(
                        em.fresh_temp(),
                        "store",
                        lst(Lit(chunk), PVar(self.slots[target.name]),
                            self.rvalue(value, vtype)),
                    )
                )
                return
            em.emit(Assignment(target.name, self.rvalue(value, vtype)))
            return
        pointer, target_type = self.lvalue(target)
        value, vtype = self.expr(value_ast)
        chunk = self.types.chunk_of(target_type)
        em.emit(
            ActionCall(
                em.fresh_temp(),
                "store",
                lst(Lit(chunk), pointer, self.rvalue(value, vtype)),
            )
        )

    # -- lvalues -------------------------------------------------------------

    def lvalue(self, e: ast.Expression) -> Tuple[Expr, CType]:
        """Compile to (pointer expression, pointed-to type)."""
        if isinstance(e, ast.Var):
            if e.name in self.slots:
                return PVar(self.slots[e.name]), self.locals[e.name]
            raise CompileError(
                f"cannot take the address of register local {e.name!r}"
            )
        if isinstance(e, ast.Unary) and e.op == "*":
            pointer, ptype = self.expr(e.operand)
            if not isinstance(ptype, PointerType):
                raise CompileError(f"dereference of non-pointer {ptype!r}")
            return pointer, ptype.pointee
        if isinstance(e, ast.Member):
            if e.arrow:
                base, btype = self.expr(e.obj)
                if not isinstance(btype, PointerType) or not isinstance(
                    btype.pointee, StructType
                ):
                    raise CompileError(f"-> on non-struct-pointer {btype!r}")
                struct = btype.pointee
            else:
                base, struct = self.lvalue(e.obj)
                if not isinstance(struct, StructType):
                    raise CompileError(f". on non-struct lvalue {struct!r}")
            layout = self.types.layout(struct)
            if e.field not in layout.fields:
                raise CompileError(f"struct {struct.name} has no field {e.field!r}")
            offset, ftype = layout.fields[e.field]
            return _ptr_add(base, Lit(offset)), ftype
        if isinstance(e, ast.Index):
            base, btype = self.expr(e.base)
            if not isinstance(btype, PointerType):
                raise CompileError(f"index of non-pointer {btype!r}")
            index, itype = self.expr(e.index)
            scale = self.types.size_of(btype.pointee)
            delta = BinOpExpr(BinOp.MUL, self.rvalue(index, itype), Lit(scale))
            return _ptr_add(base, delta), btype.pointee
        raise CompileError(f"not an lvalue: {e!r}")

    # -- expressions ------------------------------------------------------------

    def expr(self, e: ast.Expression) -> Tuple[Expr, CType]:
        em = self.em
        if isinstance(e, ast.IntLit):
            return Lit(e.value), INT
        if isinstance(e, ast.CharLit):
            return Lit(ord(e.value)), CHAR
        if isinstance(e, ast.NullLit):
            return Lit(0), PointerType(VOID)
        if isinstance(e, ast.StrLit):
            return self._string_literal(e.value), PointerType(CHAR)
        if isinstance(e, ast.Var):
            if e.name not in self.locals:
                raise CompileError(f"unknown identifier {e.name!r}")
            if e.name in self.slots:
                return self._load_or_decay(
                    PVar(self.slots[e.name]), self.locals[e.name]
                )
            return PVar(e.name), self.locals[e.name]
        if isinstance(e, ast.SizeofExpr):
            return Lit(self.types.size_of(e.type)), INT
        if isinstance(e, ast.Cast):
            value, vtype = self.expr(e.operand)
            return self.rvalue(value, vtype), e.type
        if isinstance(e, ast.SymbolicExpr):
            return self._symbolic(e), INT if e.type_name != "char" else CHAR
        if isinstance(e, ast.Unary):
            return self._unary(e)
        if isinstance(e, ast.Binary):
            return self._binary(e)
        if isinstance(e, (ast.Member, ast.Index)):
            pointer, target_type = self.lvalue(e)
            return self._load_or_decay(pointer, target_type)
        if isinstance(e, ast.CallExpr):
            return self._call(e)
        raise CompileError(f"unknown expression {e!r}")

    def _load_or_decay(self, pointer: Expr, t: CType) -> Tuple[Expr, CType]:
        """Load a scalar; arrays and structs decay to their address."""
        if isinstance(t, ArrayType):
            return pointer, PointerType(t.element)
        if isinstance(t, StructType):
            return pointer, PointerType(t)
        target = self.em.fresh_temp("ld")
        chunk = self.types.chunk_of(t)
        self.em.emit(ActionCall(target, "load", lst(Lit(chunk), pointer)))
        return PVar(target), t

    def _string_literal(self, text: str) -> Expr:
        em = self.em
        block = em.fresh_temp("strb")
        em.emit(USym(block, 0))
        pointer = em.fresh_temp("str")
        em.emit(ActionCall(pointer, "alloc", lst(PVar(block), len(text) + 1)))
        chunk = self.types.chunk_of(CHAR)
        for i, ch in enumerate(text + "\0"):
            em.emit(
                ActionCall(
                    em.fresh_temp(),
                    "store",
                    lst(Lit(chunk), _ptr_add(PVar(pointer), Lit(i)), ord(ch)),
                )
            )
        return PVar(pointer)

    def _symbolic(self, e: ast.SymbolicExpr) -> Expr:
        em = self.em
        target = em.fresh_temp("symb")
        em.emit(ISym(target, 0))
        x = PVar(target)
        if e.type_name is not None:
            self._assume(x.typeof().eq(Lit(GilType.NUMBER)))
            self._assume(UnOpExpr(UnOp.FLOOR, x).eq(x))
            if e.type_name == "char":
                self._assume(Lit(0).leq(x).and_(x.leq(Lit(255))))
            if e.type_name == "bool":
                self._assume(Lit(0).leq(x).and_(x.leq(Lit(1))))
        return x

    def _unary(self, e: ast.Unary) -> Tuple[Expr, CType]:
        if e.op == "-":
            value, vtype = self.expr(e.operand)
            return UnOpExpr(UnOp.NEG, self.rvalue(value, vtype)), INT
        if e.op == "!":
            return UnOpExpr(UnOp.NOT, self.condition(e.operand)), BOOL
        if e.op == "*":
            pointer, ptype = self.expr(e.operand)
            if not isinstance(ptype, PointerType):
                raise CompileError(f"dereference of non-pointer {ptype!r}")
            return self._load_or_decay(pointer, ptype.pointee)
        if e.op == "&":
            pointer, target_type = self.lvalue(e.operand)
            return pointer, PointerType(target_type)
        raise CompileError(f"unknown unary operator {e.op!r}")

    def _binary(self, e: ast.Binary) -> Tuple[Expr, CType]:
        if e.op in ("&&", "||"):
            return self._short_circuit(e), BOOL
        if e.op in ("==", "!=", "<", "<=", ">", ">="):
            return self._comparison(e), BOOL

        left, ltype = self.expr(e.left)
        right, rtype = self.expr(e.right)

        # Pointer arithmetic: scale by sizeof(pointee).
        if isinstance(ltype, PointerType) and e.op in ("+", "-"):
            if isinstance(rtype, PointerType):
                if e.op != "-":
                    raise CompileError("pointer + pointer")
                scale = self.types.size_of(ltype.pointee)
                diff = BinOpExpr(
                    BinOp.SUB, _ptr_offset(left), _ptr_offset(right)
                )
                return UnOpExpr(
                    UnOp.FLOOR, BinOpExpr(BinOp.DIV, diff, Lit(scale))
                ), INT
            scale = self.types.size_of(ltype.pointee)
            delta = BinOpExpr(BinOp.MUL, self.rvalue(right, rtype), Lit(scale))
            if e.op == "-":
                delta = UnOpExpr(UnOp.NEG, delta)
            return _ptr_add(left, delta), ltype

        table = {"+": BinOp.ADD, "-": BinOp.SUB, "*": BinOp.MUL,
                 "/": BinOp.DIV, "%": BinOp.MOD}
        if e.op in table:
            result = BinOpExpr(
                table[e.op], self.rvalue(left, ltype), self.rvalue(right, rtype)
            )
            if e.op == "/":
                # C integer division; floor semantics (deviates from C's
                # truncation toward zero for negative operands).
                result = UnOpExpr(UnOp.FLOOR, result)
            return result, INT
        raise CompileError(f"unknown binary operator {e.op!r}")

    def _comparison(self, e: ast.Binary) -> Expr:
        left, ltype = self.expr(e.left)
        right, rtype = self.expr(e.right)
        if is_pointer(ltype) or is_pointer(rtype):
            op = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
                  ">": "gt", ">=": "ge"}[e.op]
            target = self.em.fresh_temp("cmp")
            self.em.emit(
                ActionCall(target, "cmp_ptr", lst(op, left, right))
            )
            return PVar(target)
        lv, rv = self.rvalue(left, ltype), self.rvalue(right, rtype)
        if e.op == "==":
            return lv.eq(rv)
        if e.op == "!=":
            return lv.neq(rv)
        if e.op == "<":
            return lv.lt(rv)
        if e.op == "<=":
            return lv.leq(rv)
        if e.op == ">":
            return rv.lt(lv)
        return rv.leq(lv)

    def _short_circuit(self, e: ast.Binary) -> Expr:
        em = self.em
        target = em.fresh_temp("sc")
        left = self.condition(e.left)
        right_label, end = Label("sc_right"), Label("sc_end")
        if e.op == "&&":
            em.emit(IfGoto(left, right_label))
            em.emit(Assignment(target, Lit(False)))
            em.emit(Goto(end))
        else:
            em.emit(IfGoto(UnOpExpr(UnOp.NOT, left), right_label))
            em.emit(Assignment(target, Lit(True)))
            em.emit(Goto(end))
        em.mark(right_label)
        right = self.condition(e.right)
        em.emit(Assignment(target, right))
        em.mark(end)
        return PVar(target)

    def condition(self, e: ast.Expression) -> Expr:
        """Compile an expression used as a C truth value into a GIL boolean."""
        if isinstance(e, ast.Binary) and e.op in ("==", "!=", "<", "<=", ">", ">="):
            return self._comparison(e)
        if isinstance(e, ast.Binary) and e.op in ("&&", "||"):
            return self._short_circuit(e)
        if isinstance(e, ast.Unary) and e.op == "!":
            return UnOpExpr(UnOp.NOT, self.condition(e.operand))
        value, vtype = self.expr(e)
        if isinstance(vtype, BoolType):
            return value
        if isinstance(vtype, (IntType, CharType)):
            return value.neq(Lit(0))
        if is_pointer(vtype):
            target = self.em.fresh_temp("cmp")
            self.em.emit(ActionCall(target, "cmp_ptr", lst("ne", value, Lit(0))))
            return PVar(target)
        raise CompileError(f"type {vtype!r} is not a condition")

    def rvalue(self, value: Expr, vtype: CType) -> Expr:
        """Materialise internal booleans into C ints 0/1."""
        if not isinstance(vtype, BoolType):
            return value
        em = self.em
        target = em.fresh_temp("b2i")
        true_label, end = Label("b_true"), Label("b_end")
        em.emit(IfGoto(value, true_label))
        em.emit(Assignment(target, Lit(0)))
        em.emit(Goto(end))
        em.mark(true_label)
        em.emit(Assignment(target, Lit(1)))
        em.mark(end)
        return PVar(target)

    # -- calls ---------------------------------------------------------------

    def _call(self, e: ast.CallExpr) -> Tuple[Expr, CType]:
        em = self.em
        name = e.name
        if name == "malloc":
            (size_ast,) = e.args
            size, stype = self.expr(size_ast)
            block = em.fresh_temp("blk")
            em.emit(USym(block, 0))
            target = em.fresh_temp("ptr")
            em.emit(
                ActionCall(target, "alloc", lst(PVar(block), self.rvalue(size, stype)))
            )
            return PVar(target), PointerType(VOID)
        if name == "calloc":
            count_ast, size_ast = e.args
            count, ctype_ = self.expr(count_ast)
            size, stype = self.expr(size_ast)
            total = BinOpExpr(
                BinOp.MUL, self.rvalue(count, ctype_), self.rvalue(size, stype)
            )
            block = em.fresh_temp("blk")
            em.emit(USym(block, 0))
            target = em.fresh_temp("ptr")
            em.emit(ActionCall(target, "alloc", lst(PVar(block), total)))
            em.emit(
                ActionCall(em.fresh_temp(), "memset", lst(PVar(target), total, Lit(0)))
            )
            return PVar(target), PointerType(VOID)
        if name == "free":
            (ptr_ast,) = e.args
            pointer, _ = self.expr(ptr_ast)
            em.emit(ActionCall(em.fresh_temp(), "free", lst(pointer)))
            return Lit(0), VOID
        if name in ("memcpy", "memmove"):
            dst_ast, src_ast, n_ast = e.args
            dst, _ = self.expr(dst_ast)
            src, _ = self.expr(src_ast)
            n, ntype = self.expr(n_ast)
            em.emit(
                ActionCall(
                    em.fresh_temp(), "memcpy", lst(dst, src, self.rvalue(n, ntype))
                )
            )
            return dst, PointerType(VOID)
        if name == "memset":
            ptr_ast, value_ast, n_ast = e.args
            pointer, _ = self.expr(ptr_ast)
            value, vtype = self.expr(value_ast)
            n, ntype = self.expr(n_ast)
            em.emit(
                ActionCall(
                    em.fresh_temp(),
                    "memset",
                    lst(pointer, self.rvalue(n, ntype), self.rvalue(value, vtype)),
                )
            )
            return pointer, PointerType(VOID)
        if name == "block_size":
            (ptr_ast,) = e.args
            pointer, _ = self.expr(ptr_ast)
            target = em.fresh_temp("bnd")
            em.emit(ActionCall(target, "bounds", lst(pointer)))
            return PVar(target), INT
        if name not in self.sigs:
            raise CompileError(f"call to unknown function {name!r}")
        ret_type, param_types = self.sigs[name]
        if len(e.args) != len(param_types):
            raise CompileError(f"{name}: expected {len(param_types)} arguments")
        args = []
        for arg_ast in e.args:
            value, vtype = self.expr(arg_ast)
            args.append(self.rvalue(value, vtype))
        target = em.fresh_temp("ret")
        em.emit(Call(target, Lit(name), tuple(args)))
        return PVar(target), ret_type
