"""Parser for MiniC.

C-flavoured concrete syntax:

    struct Node { int value; struct Node *next; };

    struct Node *node_new(int v) {
      struct Node *n = (struct Node *) malloc(sizeof(struct Node));
      n->value = v;
      n->next = NULL;
      return n;
    }

    void test_node() {
      int x = symb_int();
      struct Node *n = node_new(x);
      assert(n->value == x);
      free(n);
    }

Types: ``int``, ``char``, ``void``, ``struct S``, any level of ``*``.
Statements: declarations (with optional initialiser and stack arrays
``int a[4];``), assignments (including ``*p = e``, ``p->f = e``,
``a[i] = e``, ``+=``-family, ``++``/``--``), ``if``/``else``, ``while``,
``for``, ``return``, ``break``, ``continue``, expression statements,
``assume``/``assert``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.frontend.lexer import ParseError, Token, TokenStream, tokenize
from repro.targets.c_like import ast
from repro.targets.c_like.ctypes import (
    CHAR,
    INT,
    VOID,
    CType,
    PointerType,
    StructType,
)

_KEYWORDS = {
    "struct", "int", "char", "void", "if", "else", "while", "for", "return",
    "break", "continue", "sizeof", "NULL", "assume", "assert",
}

_SYMB_TYPES = {
    "symb": None,
    "symb_int": "int",
    "symb_char": "char",
    "symb_bool": "bool",
}


def parse_program(source: str) -> ast.Program:
    ts = TokenStream(tokenize(source, char_literals=True))
    structs: List[ast.StructDef] = []
    functions: List[ast.FuncDef] = []
    while ts.current.kind != "eof":
        if ts.at("struct", kind="ident") and ts.peek(2).text == "{":
            structs.append(_parse_struct(ts))
        else:
            functions.append(_parse_function(ts))
    return ast.Program(tuple(structs), tuple(functions))


def _at_type(ts: TokenStream) -> bool:
    tok = ts.current
    return tok.kind == "ident" and tok.text in ("int", "char", "void", "struct")


def _parse_type(ts: TokenStream) -> CType:
    tok = ts.current
    if ts.accept("int", kind="ident"):
        base: CType = INT
    elif ts.accept("char", kind="ident"):
        base = CHAR
    elif ts.accept("void", kind="ident"):
        base = VOID
    elif ts.accept("struct", kind="ident"):
        name = ts.expect_kind("ident").text
        base = StructType(name)
    else:
        raise ParseError(f"expected a type, found {tok.text!r}", tok)
    while ts.accept("*"):
        base = PointerType(base)
    return base


def _parse_struct(ts: TokenStream) -> ast.StructDef:
    ts.expect("struct", kind="ident")
    name = ts.expect_kind("ident").text
    ts.expect("{")
    fields: List[Tuple[str, CType]] = []
    while not ts.at("}"):
        ftype = _parse_type(ts)
        fname = ts.expect_kind("ident").text
        if ts.accept("["):
            length = int(ts.expect_kind("number").text)
            ts.expect("]")
            from repro.targets.c_like.ctypes import ArrayType

            ftype = ArrayType(ftype, length)
        ts.expect(";")
        fields.append((fname, ftype))
    ts.expect("}")
    ts.expect(";")
    return ast.StructDef(name, tuple(fields))


def _parse_function(ts: TokenStream) -> ast.FuncDef:
    ret_type = _parse_type(ts)
    name = ts.expect_kind("ident").text
    ts.expect("(")
    params: List[ast.Param] = []
    if not ts.at(")"):
        if ts.at("void", kind="ident") and ts.peek(1).text == ")":
            ts.advance()
        else:
            params.append(_parse_param(ts))
            while ts.accept(","):
                params.append(_parse_param(ts))
    ts.expect(")")
    body = _parse_block(ts)
    return ast.FuncDef(ret_type, name, tuple(params), body)


def _parse_param(ts: TokenStream) -> ast.Param:
    ptype = _parse_type(ts)
    name = ts.expect_kind("ident").text
    return ast.Param(ptype, name)


def _parse_block(ts: TokenStream) -> Tuple[ast.Statement, ...]:
    ts.expect("{")
    stmts: List[ast.Statement] = []
    while not ts.at("}"):
        stmts.append(_parse_stmt(ts))
    ts.expect("}")
    return tuple(stmts)


def _parse_body_or_stmt(ts: TokenStream) -> Tuple[ast.Statement, ...]:
    if ts.at("{"):
        return _parse_block(ts)
    return (_parse_stmt(ts),)


def _parse_stmt(ts: TokenStream) -> ast.Statement:
    tok = ts.current
    if tok.kind == "ident" and tok.text in _KEYWORDS:
        if ts.at("if", kind="ident"):
            ts.advance()
            ts.expect("(")
            cond = _parse_expr(ts)
            ts.expect(")")
            then_body = _parse_body_or_stmt(ts)
            else_body: Tuple[ast.Statement, ...] = ()
            if ts.accept("else", kind="ident"):
                else_body = _parse_body_or_stmt(ts)
            return ast.IfStmt(cond, then_body, else_body)
        if ts.at("while", kind="ident"):
            ts.advance()
            ts.expect("(")
            cond = _parse_expr(ts)
            ts.expect(")")
            return ast.WhileStmt(cond, _parse_body_or_stmt(ts))
        if ts.at("for", kind="ident"):
            ts.advance()
            ts.expect("(")
            init = None if ts.at(";") else _parse_simple_stmt(ts)
            ts.expect(";")
            cond = None if ts.at(";") else _parse_expr(ts)
            ts.expect(";")
            step = None if ts.at(")") else _parse_simple_stmt(ts)
            ts.expect(")")
            return ast.ForStmt(init, cond, step, _parse_body_or_stmt(ts))
        if ts.at("return", kind="ident"):
            ts.advance()
            expr = None if ts.at(";") else _parse_expr(ts)
            ts.expect(";")
            return ast.ReturnStmt(expr)
        if ts.at("break", kind="ident"):
            ts.advance()
            ts.expect(";")
            return ast.BreakStmt()
        if ts.at("continue", kind="ident"):
            ts.advance()
            ts.expect(";")
            return ast.ContinueStmt()
        if ts.at("assume", kind="ident"):
            ts.advance()
            ts.expect("(")
            expr = _parse_expr(ts)
            ts.expect(")")
            ts.expect(";")
            return ast.AssumeStmt(expr)
        if ts.at("assert", kind="ident"):
            ts.advance()
            ts.expect("(")
            expr = _parse_expr(ts)
            ts.expect(")")
            ts.expect(";")
            return ast.AssertStmt(expr)
        if _at_type(ts):
            stmt = _parse_decl(ts)
            ts.expect(";")
            return stmt
        raise ParseError(f"unexpected keyword {tok.text!r}", tok)
    stmt = _parse_simple_stmt(ts)
    ts.expect(";")
    return stmt


def _parse_decl(ts: TokenStream) -> ast.Statement:
    decl_type = _parse_type(ts)
    name = ts.expect_kind("ident").text
    if ts.accept("["):
        length = int(ts.expect_kind("number").text)
        ts.expect("]")
        return ast.ArrayDecl(decl_type, name, length)
    init = None
    if ts.accept("="):
        init = _parse_expr(ts)
    return ast.Decl(decl_type, name, init)


def _parse_simple_stmt(ts: TokenStream) -> ast.Statement:
    if _at_type(ts):
        return _parse_decl(ts)
    tok = ts.current
    expr = _parse_expr(ts)
    for op, delta in (("++", "+"), ("--", "-")):
        if ts.accept(op):
            return ast.Assign(expr, ast.Binary(delta, expr, ast.IntLit(1)))
    for op in ("+=", "-=", "*=", "/=", "%="):
        if ts.accept(op):
            value = _parse_expr(ts)
            return ast.Assign(expr, ast.Binary(op[0], expr, value))
    if ts.accept("="):
        return ast.Assign(expr, _parse_expr(ts))
    return ast.ExprStmt(expr)


# -- expressions -------------------------------------------------------------------


def _parse_expr(ts: TokenStream) -> ast.Expression:
    return _parse_or(ts)


def _parse_or(ts: TokenStream) -> ast.Expression:
    left = _parse_and(ts)
    while ts.accept("||"):
        left = ast.Binary("||", left, _parse_and(ts))
    return left


def _parse_and(ts: TokenStream) -> ast.Expression:
    left = _parse_equality(ts)
    while ts.accept("&&"):
        left = ast.Binary("&&", left, _parse_equality(ts))
    return left


def _parse_equality(ts: TokenStream) -> ast.Expression:
    left = _parse_relational(ts)
    while True:
        if ts.accept("=="):
            left = ast.Binary("==", left, _parse_relational(ts))
        elif ts.accept("!="):
            left = ast.Binary("!=", left, _parse_relational(ts))
        else:
            return left


def _parse_relational(ts: TokenStream) -> ast.Expression:
    left = _parse_additive(ts)
    while True:
        matched = False
        for op in ("<=", ">=", "<", ">"):
            if ts.accept(op):
                left = ast.Binary(op, left, _parse_additive(ts))
                matched = True
                break
        if not matched:
            return left


def _parse_additive(ts: TokenStream) -> ast.Expression:
    left = _parse_multiplicative(ts)
    while True:
        if ts.accept("+"):
            left = ast.Binary("+", left, _parse_multiplicative(ts))
        elif ts.accept("-"):
            left = ast.Binary("-", left, _parse_multiplicative(ts))
        else:
            return left


def _parse_multiplicative(ts: TokenStream) -> ast.Expression:
    left = _parse_unary(ts)
    while True:
        if ts.accept("*"):
            left = ast.Binary("*", left, _parse_unary(ts))
        elif ts.accept("/"):
            left = ast.Binary("/", left, _parse_unary(ts))
        elif ts.accept("%"):
            left = ast.Binary("%", left, _parse_unary(ts))
        else:
            return left


def _parse_unary(ts: TokenStream) -> ast.Expression:
    if ts.accept("-"):
        return ast.Unary("-", _parse_unary(ts))
    if ts.accept("!"):
        return ast.Unary("!", _parse_unary(ts))
    if ts.accept("*"):
        return ast.Unary("*", _parse_unary(ts))
    if ts.accept("&"):
        return ast.Unary("&", _parse_unary(ts))
    if ts.at("sizeof", kind="ident"):
        ts.advance()
        ts.expect("(")
        t = _parse_type(ts)
        ts.expect(")")
        return ast.SizeofExpr(t)
    # Cast: '(' type ... ')'
    if ts.at("(") and ts.peek(1).kind == "ident" and ts.peek(1).text in (
        "int", "char", "void", "struct"
    ):
        ts.expect("(")
        t = _parse_type(ts)
        ts.expect(")")
        return ast.Cast(t, _parse_unary(ts))
    return _parse_postfix(ts)


def _parse_postfix(ts: TokenStream) -> ast.Expression:
    expr = _parse_primary(ts)
    while True:
        if ts.accept("->"):
            field = ts.expect_kind("ident").text
            expr = ast.Member(expr, field, arrow=True)
        elif ts.accept("."):
            field = ts.expect_kind("ident").text
            expr = ast.Member(expr, field, arrow=False)
        elif ts.accept("["):
            index = _parse_expr(ts)
            ts.expect("]")
            expr = ast.Index(expr, index)
        else:
            return expr


def _parse_primary(ts: TokenStream) -> ast.Expression:
    tok = ts.current
    if tok.kind == "number":
        ts.advance()
        value = tok.number_value
        if isinstance(value, float):
            raise ParseError("MiniC has no floating-point literals", tok)
        return ast.IntLit(value)
    if tok.kind == "string":
        ts.advance()
        return ast.StrLit(tok.text)
    if tok.kind == "char":
        ts.advance()
        if len(tok.text) != 1:
            raise ParseError("char literal must be a single character", tok)
        return ast.CharLit(tok.text)
    if ts.accept("NULL", kind="ident"):
        return ast.NullLit()
    if ts.accept("("):
        expr = _parse_expr(ts)
        ts.expect(")")
        return expr
    if tok.kind == "ident":
        if tok.text in _SYMB_TYPES:
            ts.advance()
            ts.expect("(")
            ts.expect(")")
            return ast.SymbolicExpr(_SYMB_TYPES[tok.text])
        if tok.text in _KEYWORDS:
            raise ParseError(f"unexpected keyword {tok.text!r}", tok)
        ts.advance()
        if ts.at("("):
            ts.expect("(")
            args: List[ast.Expression] = []
            if not ts.at(")"):
                args.append(_parse_expr(ts))
                while ts.accept(","):
                    args.append(_parse_expr(ts))
            ts.expect(")")
            return ast.CallExpr(tok.text, tuple(args))
        return ast.Var(tok.text)
    raise ParseError(f"unexpected token {tok.text!r}", tok)
