"""A reference big-step interpreter for MiniC (conformance oracle, E5).

Interprets the MiniC AST directly — no GIL involved — against the same
concrete memory model the compiled code runs on (as CompCert's reference
interpreter runs against the CompCert memory).  Differential agreement
between this interpreter and concrete GIL execution of the compiled
program is the compiler-trustworthiness evidence of §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gil.values import Symbol, Value
from repro.state.interface import MemErr, MemOk
from repro.targets.c_like import ast
from repro.targets.c_like.compiler import UNINIT, _collect_addressed
from repro.targets.c_like.ctypes import (
    CHAR,
    INT,
    VOID,
    ArrayType,
    CType,
    PointerType,
    StructType,
    TypeTable,
    is_pointer,
)
from repro.targets.c_like.memory import CConcreteMemory, CMemory


@dataclass
class InterpResult:
    """Final outcome of a concrete MiniC run."""

    kind: str  # "normal" | "error" | "vanish"
    value: Value = 0


class CRuntimeError(Exception):
    """Raised by the concrete interpreter on a runtime fault."""

    def __init__(self, value) -> None:
        self.value = value


class _Return(Exception):
    def __init__(self, value: Value) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Vanish(Exception):
    pass


@dataclass
class _Slot:
    """An addressed local living in memory: its slot pointer and type."""

    pointer: object
    type: CType


class CInterpreter:
    """Direct interpreter over the MiniC AST."""

    def __init__(self, symb_values: Optional[Sequence[Value]] = None) -> None:
        self._symb_values: List[Value] = list(symb_values or [])
        self._memory_model = CConcreteMemory()
        self._memory: CMemory = self._memory_model.initial()
        self._alloc_count = 0
        self.types = TypeTable()
        self.functions: Dict[str, ast.FuncDef] = {}

    def run(self, program: ast.Program, entry: str, args: Sequence[Value] = ()) -> InterpResult:
        for struct in program.structs:
            self.types.define_struct(struct.name, list(struct.fields))
        self.functions = {f.name: f for f in program.functions}
        if entry not in self.functions:
            raise ValueError(f"unknown function {entry!r}")
        try:
            value = self._call_function(self.functions[entry], list(args))
        except CRuntimeError as exc:
            return InterpResult("error", exc.value)
        except _Vanish:
            return InterpResult("vanish")
        return InterpResult("normal", value)

    # -- memory helpers -------------------------------------------------------

    def _action(self, action: str, value):
        branches = self._memory_model.execute(action, self._memory, value)
        assert len(branches) == 1
        branch = branches[0]
        if isinstance(branch, MemErr):
            raise CRuntimeError(branch.value)
        assert isinstance(branch, MemOk)
        self._memory = branch.memory
        return branch.value

    def _fresh_block(self) -> Symbol:
        loc = Symbol(f"cblk_{self._alloc_count}")
        self._alloc_count += 1
        return loc

    def _malloc(self, size: int):
        return self._action("alloc", (self._fresh_block(), size))

    # -- functions -------------------------------------------------------------

    def _call_function(self, func: ast.FuncDef, args: List[Value]) -> Value:
        if len(args) != len(func.params):
            raise CRuntimeError(f"{func.name}: arity mismatch")
        addressed = _collect_addressed(func)
        env: Dict[str, object] = {}
        for p, arg in zip(func.params, args):
            if p.name in addressed:
                env[p.name] = self._new_slot(p.type, arg)
            else:
                env[p.name] = (arg, p.type)
        env["__addressed__"] = addressed
        try:
            for stmt in func.body:
                self._stmt(env, stmt)
        except _Return as ret:
            return ret.value
        return 0

    # -- statements --------------------------------------------------------------

    def _new_slot(self, t: CType, init=None) -> _Slot:
        pointer = self._malloc(self.types.size_of(t))
        if init is not None:
            self._action("store", (self.types.chunk_of(t), pointer, init))
        return _Slot(pointer, t)

    def _stmt(self, env, stmt: ast.Statement) -> None:
        if isinstance(stmt, ast.Decl):
            if stmt.name in env.get("__addressed__", ()):
                init = None
                if stmt.init is not None:
                    init, _ = self._expr(env, stmt.init)
                env[stmt.name] = self._new_slot(stmt.type, init)
                return
            if stmt.init is not None:
                value, _ = self._expr(env, stmt.init)
            else:
                value = UNINIT
            env[stmt.name] = (value, stmt.type)
            return
        if isinstance(stmt, ast.ArrayDecl):
            size = self.types.size_of(stmt.element_type) * stmt.length
            ptr = self._malloc(size)
            env[stmt.name] = (ptr, PointerType(stmt.element_type))
            return
        if isinstance(stmt, ast.Assign):
            value, vtype = self._expr(env, stmt.value)
            if isinstance(stmt.target, ast.Var):
                if stmt.target.name not in env:
                    raise CRuntimeError(f"undeclared {stmt.target.name!r}")
                binding = env[stmt.target.name]
                if isinstance(binding, _Slot):
                    self._action(
                        "store",
                        (self.types.chunk_of(binding.type), binding.pointer, value),
                    )
                    return
                _, ttype = binding
                env[stmt.target.name] = (value, ttype)
                return
            pointer, ttype = self._lvalue(env, stmt.target)
            chunk = self.types.chunk_of(ttype)
            self._action("store", (chunk, pointer, value))
            return
        if isinstance(stmt, ast.IfStmt):
            body = stmt.then_body if self._cond(env, stmt.cond) else stmt.else_body
            for s in body:
                self._stmt(env, s)
            return
        if isinstance(stmt, ast.WhileStmt):
            while self._cond(env, stmt.cond):
                try:
                    for s in stmt.body:
                        self._stmt(env, s)
                except _Break:
                    return
                except _Continue:
                    continue
            return
        if isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._stmt(env, stmt.init)
            while stmt.cond is None or self._cond(env, stmt.cond):
                try:
                    for s in stmt.body:
                        self._stmt(env, s)
                except _Break:
                    return
                except _Continue:
                    pass
                if stmt.step is not None:
                    self._stmt(env, stmt.step)
            return
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.expr is None:
                raise _Return(0)
            value, _ = self._expr(env, stmt.expr)
            raise _Return(value)
        if isinstance(stmt, ast.BreakStmt):
            raise _Break()
        if isinstance(stmt, ast.ContinueStmt):
            raise _Continue()
        if isinstance(stmt, ast.ExprStmt):
            self._expr(env, stmt.expr)
            return
        if isinstance(stmt, ast.AssumeStmt):
            if not self._cond(env, stmt.expr):
                raise _Vanish()
            return
        if isinstance(stmt, ast.AssertStmt):
            if not self._cond(env, stmt.expr):
                raise CRuntimeError(("assertion-failure", repr(stmt.expr)))
            return
        raise TypeError(f"unknown statement {stmt!r}")

    # -- lvalues ---------------------------------------------------------------

    def _lvalue(self, env, e: ast.Expression) -> Tuple[Value, CType]:
        if isinstance(e, ast.Var):
            binding = env.get(e.name)
            if isinstance(binding, _Slot):
                return binding.pointer, binding.type
            raise CRuntimeError(f"cannot take the address of {e.name!r}")
        if isinstance(e, ast.Unary) and e.op == "*":
            pointer, ptype = self._expr(env, e.operand)
            return pointer, ptype.pointee
        if isinstance(e, ast.Member):
            if e.arrow:
                base, btype = self._expr(env, e.obj)
                struct = btype.pointee
            else:
                base, struct = self._lvalue(env, e.obj)
            layout = self.types.layout(struct)
            offset, ftype = layout.fields[e.field]
            return self._ptr_add(base, offset), ftype
        if isinstance(e, ast.Index):
            base, btype = self._expr(env, e.base)
            index, _ = self._expr(env, e.index)
            scale = self.types.size_of(btype.pointee)
            return self._ptr_add(base, int(index) * scale), btype.pointee
        raise CRuntimeError(f"not an lvalue: {e!r}")

    @staticmethod
    def _ptr_add(pointer, delta: int):
        if not isinstance(pointer, tuple):
            raise CRuntimeError(("null-dereference",))
        return (pointer[0], pointer[1] + delta)

    # -- expressions --------------------------------------------------------------

    def _expr(self, env, e: ast.Expression) -> Tuple[Value, CType]:
        if isinstance(e, ast.IntLit):
            return e.value, INT
        if isinstance(e, ast.CharLit):
            return ord(e.value), CHAR
        if isinstance(e, ast.NullLit):
            return 0, PointerType(VOID)
        if isinstance(e, ast.StrLit):
            ptr = self._malloc(len(e.value) + 1)
            chunk = self.types.chunk_of(CHAR)
            for i, ch in enumerate(e.value + "\0"):
                self._action("store", (chunk, self._ptr_add(ptr, i), ord(ch)))
            return ptr, PointerType(CHAR)
        if isinstance(e, ast.Var):
            if e.name not in env:
                raise CRuntimeError(f"unknown identifier {e.name!r}")
            binding = env[e.name]
            if isinstance(binding, _Slot):
                return self._load_or_decay(binding.pointer, binding.type)
            return binding
        if isinstance(e, ast.SizeofExpr):
            return self.types.size_of(e.type), INT
        if isinstance(e, ast.Cast):
            value, _ = self._expr(env, e.operand)
            return value, e.type
        if isinstance(e, ast.SymbolicExpr):
            return self._symbolic(e)
        if isinstance(e, ast.Unary):
            return self._unary(env, e)
        if isinstance(e, ast.Binary):
            return self._binary(env, e)
        if isinstance(e, (ast.Member, ast.Index)):
            pointer, ttype = self._lvalue(env, e)
            return self._load_or_decay(pointer, ttype)
        if isinstance(e, ast.CallExpr):
            return self._call(env, e)
        raise TypeError(f"unknown expression {e!r}")

    def _load_or_decay(self, pointer, t: CType) -> Tuple[Value, CType]:
        if isinstance(t, ArrayType):
            return pointer, PointerType(t.element)
        if isinstance(t, StructType):
            return pointer, PointerType(t)
        chunk = self.types.chunk_of(t)
        return self._action("load", (chunk, pointer)), t

    def _symbolic(self, e: ast.SymbolicExpr) -> Tuple[Value, CType]:
        if not self._symb_values:
            raise ValueError("interpreter ran out of symb() input values")
        value = self._symb_values.pop(0)
        if e.type_name is not None:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise _Vanish()
            if float(value) != int(value):
                raise _Vanish()
            value = int(value)
            if e.type_name == "char" and not 0 <= value <= 255:
                raise _Vanish()
            if e.type_name == "bool" and not 0 <= value <= 1:
                raise _Vanish()
        return value, CHAR if e.type_name == "char" else INT

    def _unary(self, env, e: ast.Unary) -> Tuple[Value, CType]:
        if e.op == "-":
            value, _ = self._expr(env, e.operand)
            return -self._int(value, "-"), INT
        if e.op == "!":
            return (0 if self._cond(env, e.operand) else 1), INT
        if e.op == "*":
            pointer, ptype = self._expr(env, e.operand)
            return self._load_or_decay(pointer, ptype.pointee)
        if e.op == "&":
            pointer, ttype = self._lvalue(env, e.operand)
            return pointer, PointerType(ttype)
        raise CRuntimeError(f"unknown unary {e.op!r}")

    def _binary(self, env, e: ast.Binary) -> Tuple[Value, CType]:
        if e.op == "&&":
            result = self._cond(env, e.left) and self._cond(env, e.right)
            return (1 if result else 0), INT
        if e.op == "||":
            result = self._cond(env, e.left) or self._cond(env, e.right)
            return (1 if result else 0), INT
        if e.op in ("==", "!=", "<", "<=", ">", ">="):
            return (1 if self._comparison(env, e) else 0), INT

        left, ltype = self._expr(env, e.left)
        right, rtype = self._expr(env, e.right)
        if isinstance(ltype, PointerType) and e.op in ("+", "-"):
            if isinstance(rtype, PointerType):
                scale = self.types.size_of(ltype.pointee)
                return (left[1] - right[1]) // scale, INT
            scale = self.types.size_of(ltype.pointee)
            delta = int(self._int(right, e.op)) * scale
            return self._ptr_add(left, delta if e.op == "+" else -delta), ltype
        lv, rv = self._int(left, e.op), self._int(right, e.op)
        if e.op == "+":
            return lv + rv, INT
        if e.op == "-":
            return lv - rv, INT
        if e.op == "*":
            return lv * rv, INT
        if e.op == "/":
            if rv == 0:
                raise CRuntimeError("eval-error: division by zero")
            return lv // rv, INT  # floor semantics, as compiled code
        if e.op == "%":
            if rv == 0:
                raise CRuntimeError("eval-error: modulo by zero")
            return lv % rv, INT
        raise CRuntimeError(f"unknown binary {e.op!r}")

    def _comparison(self, env, e: ast.Binary) -> bool:
        left, ltype = self._expr(env, e.left)
        right, rtype = self._expr(env, e.right)
        if is_pointer(ltype) or is_pointer(rtype):
            op = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
                  ">": "gt", ">=": "ge"}[e.op]
            return bool(self._action("cmp_ptr", (op, left, right)))
        lv, rv = self._int(left, e.op), self._int(right, e.op)
        return {
            "==": lv == rv, "!=": lv != rv, "<": lv < rv,
            "<=": lv <= rv, ">": lv > rv, ">=": lv >= rv,
        }[e.op]

    def _cond(self, env, e: ast.Expression) -> bool:
        if isinstance(e, ast.Binary) and e.op in ("==", "!=", "<", "<=", ">", ">="):
            return self._comparison(env, e)
        if isinstance(e, ast.Binary) and e.op == "&&":
            return self._cond(env, e.left) and self._cond(env, e.right)
        if isinstance(e, ast.Binary) and e.op == "||":
            return self._cond(env, e.left) or self._cond(env, e.right)
        if isinstance(e, ast.Unary) and e.op == "!":
            return not self._cond(env, e.operand)
        value, vtype = self._expr(env, e)
        if is_pointer(vtype):
            return bool(self._action("cmp_ptr", ("ne", value, 0)))
        return self._int(value, "condition") != 0

    @staticmethod
    def _int(value, op: str):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise CRuntimeError(f"eval-error: {op}: expected an int, got {value!r}")
        return int(value)

    # -- calls ----------------------------------------------------------------

    def _call(self, env, e: ast.CallExpr) -> Tuple[Value, CType]:
        name = e.name
        if name == "malloc":
            size, _ = self._expr(env, e.args[0])
            return self._malloc(int(size)), PointerType(VOID)
        if name == "calloc":
            count, _ = self._expr(env, e.args[0])
            size, _ = self._expr(env, e.args[1])
            total = int(count) * int(size)
            ptr = self._malloc(total)
            self._action("memset", (ptr, total, 0))
            return ptr, PointerType(VOID)
        if name == "free":
            ptr, _ = self._expr(env, e.args[0])
            self._action("free", (ptr,))
            return 0, VOID
        if name in ("memcpy", "memmove"):
            dst, _ = self._expr(env, e.args[0])
            src, _ = self._expr(env, e.args[1])
            n, _ = self._expr(env, e.args[2])
            self._action("memcpy", (dst, src, int(n)))
            return dst, PointerType(VOID)
        if name == "memset":
            ptr, _ = self._expr(env, e.args[0])
            value, _ = self._expr(env, e.args[1])
            n, _ = self._expr(env, e.args[2])
            self._action("memset", (ptr, int(n), value))
            return ptr, PointerType(VOID)
        if name == "block_size":
            ptr, _ = self._expr(env, e.args[0])
            return self._action("bounds", (ptr,)), INT
        if name not in self.functions:
            raise CRuntimeError(f"unknown function {name!r}")
        args = [self._expr(env, a)[0] for a in e.args]
        func = self.functions[name]
        value = self._call_function(func, args)
        return value, func.ret_type
