"""MiniC memory models as a memlib composition (paper §4.2).

CompCert-style memory via :class:`~repro.memlib.blockoffset.BlockOffset`:
a collection of separated blocks, each an array of byte-sized cells;
pointers are block-offset pairs ``[l, off]``.  A cell holds either
``undef`` (uninitialised) or a *value fragment* ``[v, k, n, tag]`` — the
k-th of n bytes of value ``v`` encoded with chunk type ``tag`` (the
CompCertS unified treatment the paper adopts for both the concrete and
symbolic models).

Loads and stores go through chunks ``[size, align, type]`` and check
bounds, permissions, alignment, and decodability in the order of the
paper's [SLoad - Valid Access] rule; pointer comparison is the
``cmp_ptr`` action with the §4.2 undefined-behaviour error branches
(different blocks, freed blocks).  Symbolic offsets are concretised by
branching over the feasible concrete offsets of the (concrete-sized)
block; the paper shares this limitation ("we do not reason about
allocation of symbolic size").

This module brands the part with the MiniC memory classes and re-exports
the block/permission vocabulary the rest of Gillian-C uses, plus the
interpretation function I_C for the soundness harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gil.ops import EvalError, evaluate
from repro.gil.values import Symbol, Value
from repro.memlib.blockoffset import (
    ACTIONS,
    Block,
    BlockMem,
    BlockOffset,
    BlockSpec,
    Fragment,
    SymBlock,
    SymBlockMem,
)
from repro.memlib.core import MemFault, PartConcreteModel, PartSymbolicModel
from repro.memlib.permissions import (
    PERM_FREEABLE,
    PERM_NONE,
    PERM_READABLE,
    PERM_WRITABLE,
)

#: Historical name for the fault exception shared helpers raise.
CMemoryError = MemFault


class CMemory(BlockMem):
    """Concrete C memory: a sorted map from block symbols to blocks."""


class SymCMemory(SymBlockMem):
    """Symbolic C memory: blocks whose cells hold value expressions."""


#: The MiniC composition: one block/offset part branded with the C
#: memory classes (paper §4.2's eight actions).
C_PART = BlockOffset(
    BlockSpec(concrete_mem=CMemory, symbolic_mem=SymCMemory, name="C")
)


class CConcreteMemory(PartConcreteModel):
    """The concrete MiniC memory (CompCert-style)."""

    part = C_PART


class CSymbolicMemory(PartSymbolicModel):
    """The symbolic MiniC memory.

    Blocks are literal symbols (allocated by ``uSym``); offsets may be
    symbolic and are concretised by branching over feasible values, each
    branch learning ``offset = o``; infeasible and out-of-bounds cases
    are separated with learned conditions per [SLoad - Valid Access].
    """

    part = C_PART


# -- interpretation I_C ----------------------------------------------------------


class InterpretationError(Exception):
    """Raised when a symbolic memory has no concrete interpretation."""

    pass


def interpret_memory(env: Dict[str, Value], memory: SymCMemory) -> CMemory:
    """I_C(ε, µ̂): interpret every cell fragment's value expression."""
    blocks: Dict[Symbol, Block] = {}
    for loc, block in memory.blocks:
        cells: List[Optional[Fragment]] = []
        for cell in block.cells:
            if cell is None:
                cells.append(None)
                continue
            value_expr, k, n, tag = cell
            try:
                value = evaluate(value_expr, lvar_env=env)
            except EvalError as exc:
                raise InterpretationError(str(exc)) from exc
            cells.append((_concretise_value(value), k, n, tag))
        blocks[loc] = Block(block.size, block.perm, tuple(cells))
    return CMemory.of(blocks)


def _concretise_value(value: Value) -> Value:
    """Interpretation of a fragment value (already a concrete value)."""
    return value
