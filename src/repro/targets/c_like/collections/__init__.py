"""Collections-C-style MiniC suites (the paper's Table 2 workloads)."""
