"""Symbolic test suites for the Collections-C-style MiniC library (Table 2).

One suite per Table 2 row with the paper's test counts (#T column:
array 22, deque 34, list 37, pqueue 2, queue 4, rbuf 3, slist 38,
stack 2, treetbl 13, treeset 6 — 161 in total), plus an extra ``hash``
suite mirroring §4.2's hashing-bug discovery (outside Table 2, as in the
paper).

Tests expected to fail — each re-detecting one of the paper's findings —
are listed in :data:`KNOWN_BUG_TESTS`:

* ``test_array_add_triggers_expand`` — finding 1 (off-by-one overflow);
* ``test_slist_node_before_lookup`` — finding 2 (UB pointer comparison);
* ``test_array_compare_freed_pointers`` — finding 3 (bug in the concrete
  test suite: comparing freed pointers);
* ``test_rbuf_allocation_is_exact`` — finding 4 (ring-buffer
  over-allocation);
* ``test_hash_distinguishes_strings`` — finding 5 (string hashing bug).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.targets.c_like.collections.library import HASH, module_source

_ARRAY_TESTS = r"""
void test_new_is_empty() {
  struct Array *a = array_new(4);
  assert(array_size(a) == 0);
  array_destroy(a);
}

void test_add_get() {
  struct Array *a = array_new(4);
  int x = symb_int();
  array_add(a, x);
  assert(array_get(a, 0) == x);
  assert(array_size(a) == 1);
  array_destroy(a);
}

void test_add_two_order() {
  struct Array *a = array_new(4);
  int x = symb_int();
  array_add(a, x);
  array_add(a, 7);
  assert(array_get(a, 0) == x);
  assert(array_get(a, 1) == 7);
  array_destroy(a);
}

void test_get_checked_in_range() {
  struct Array *a = array_new(4);
  array_add(a, 1);
  array_add(a, 2);
  int i = symb_int();
  assume(0 <= i && i < 2);
  int out = 0;
  assert(array_get_checked(a, i, &out));
  assert(out == i + 1);
  array_destroy(a);
}

void test_get_checked_out_of_range() {
  struct Array *a = array_new(4);
  array_add(a, 1);
  int i = symb_int();
  assume(i < 0 || i >= 1);
  int out = 0;
  assert(!array_get_checked(a, i, &out));
  array_destroy(a);
}

void test_set_in_range() {
  struct Array *a = array_new(4);
  array_add(a, 1);
  int v = symb_int();
  assert(array_set(a, 0, v));
  assert(array_get(a, 0) == v);
  array_destroy(a);
}

void test_set_out_of_range_rejected() {
  struct Array *a = array_new(4);
  array_add(a, 1);
  assert(!array_set(a, 1, 9));
  assert(!array_set(a, 0 - 1, 9));
  array_destroy(a);
}

void test_index_of_found() {
  struct Array *a = array_new(4);
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  array_add(a, x);
  array_add(a, y);
  assert(array_index_of(a, y) == 1);
  array_destroy(a);
}

void test_index_of_first_match() {
  struct Array *a = array_new(4);
  int x = symb_int();
  array_add(a, x);
  array_add(a, x);
  assert(array_index_of(a, x) == 0);
  array_destroy(a);
}

void test_index_of_missing() {
  struct Array *a = array_new(4);
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  array_add(a, x);
  assert(array_index_of(a, y) == 0 - 1);
  assert(!array_contains(a, y));
  array_destroy(a);
}

void test_contains() {
  struct Array *a = array_new(4);
  int x = symb_int();
  array_add(a, x);
  assert(array_contains(a, x));
  array_destroy(a);
}

void test_remove_at_front() {
  struct Array *a = array_new(4);
  int x = symb_int();
  array_add(a, x);
  array_add(a, 2);
  assert(array_remove_at(a, 0));
  assert(array_size(a) == 1);
  assert(array_get(a, 0) == 2);
  array_destroy(a);
}

void test_remove_at_back() {
  struct Array *a = array_new(4);
  array_add(a, 1);
  int x = symb_int();
  array_add(a, x);
  assert(array_remove_at(a, 1));
  assert(array_size(a) == 1);
  assert(array_get(a, 0) == 1);
  array_destroy(a);
}

void test_remove_at_middle_shifts() {
  struct Array *a = array_new(4);
  array_add(a, 1);
  int x = symb_int();
  array_add(a, x);
  array_add(a, 3);
  assert(array_remove_at(a, 1));
  assert(array_get(a, 0) == 1);
  assert(array_get(a, 1) == 3);
  array_destroy(a);
}

void test_remove_at_out_of_range() {
  struct Array *a = array_new(4);
  array_add(a, 1);
  assert(!array_remove_at(a, 5));
  assert(array_size(a) == 1);
  array_destroy(a);
}

void test_symbolic_index_remove() {
  struct Array *a = array_new(4);
  array_add(a, 10);
  array_add(a, 20);
  array_add(a, 30);
  int i = symb_int();
  assume(0 <= i && i < 3);
  assert(array_remove_at(a, i));
  assert(array_size(a) == 2);
  assert(!array_contains(a, (i + 1) * 10));
  array_destroy(a);
}

void test_fill_to_capacity() {
  struct Array *a = array_new(3);
  array_add(a, 1);
  array_add(a, 2);
  array_add(a, 3);
  assert(array_size(a) == 3);
  assert(array_get(a, 2) == 3);
  array_destroy(a);
}

void test_array_add_triggers_expand() {
  // Detects planted finding 1: adding past the capacity must expand the
  // buffer, but the off-by-one check writes one slot past it first.
  struct Array *a = array_new(2);
  array_add(a, 1);
  array_add(a, 2);
  array_add(a, 3);
  assert(array_size(a) == 3);
  assert(array_get(a, 2) == 3);
  array_destroy(a);
}

void test_expand_preserves_contents() {
  struct Array *a = array_new(4);
  array_add(a, 1);
  array_add(a, 2);
  array_expand(a);
  assert(array_get(a, 0) == 1);
  assert(array_get(a, 1) == 2);
  assert(array_size(a) == 2);
  array_destroy(a);
}

void test_array_compare_freed_pointers() {
  // Mirrors finding 3: the upstream concrete test suite compared freed
  // pointers, itself undefined behaviour.
  struct Array *a = array_new(2);
  int *old_buffer = a->buffer;
  array_expand(a);
  assert(old_buffer != a->buffer);   // UB: old_buffer was freed
  array_destroy(a);
}

void test_destroy_then_use_is_caught() {
  struct Array *a = array_new(2);
  array_add(a, 1);
  int *buf = a->buffer;
  array_destroy(a);
  int probe = symb_int();
  assume(probe == 0);
  if (probe == 1) {
    // Unreachable: guarded use after destroy must not be reported.
    buf[0] = 1;
  }
  assert(probe == 0);
}

void test_two_arrays_independent() {
  struct Array *a = array_new(2);
  struct Array *b = array_new(2);
  int x = symb_int();
  array_add(a, x);
  array_add(b, x + 1);
  assert(array_get(a, 0) == x);
  assert(array_get(b, 0) == x + 1);
  array_destroy(a);
  array_destroy(b);
}
"""

_DEQUE_TESTS = r"""
void test_new_empty() {
  struct Deque *d = deque_new(4);
  assert(deque_size(d) == 0);
  deque_destroy(d);
}

void test_add_last_one() {
  struct Deque *d = deque_new(4);
  int x = symb_int();
  deque_add_last(d, x);
  int out = 0;
  assert(deque_get_first(d, &out));
  assert(out == x);
  deque_destroy(d);
}

void test_add_first_one() {
  struct Deque *d = deque_new(4);
  int x = symb_int();
  deque_add_first(d, x);
  int out = 0;
  assert(deque_get_last(d, &out));
  assert(out == x);
  deque_destroy(d);
}

void test_add_last_order() {
  struct Deque *d = deque_new(4);
  deque_add_last(d, 1);
  deque_add_last(d, 2);
  int out = 0;
  deque_get_first(d, &out);
  assert(out == 1);
  deque_get_last(d, &out);
  assert(out == 2);
  deque_destroy(d);
}

void test_add_first_order() {
  struct Deque *d = deque_new(4);
  deque_add_first(d, 1);
  deque_add_first(d, 2);
  int out = 0;
  deque_get_first(d, &out);
  assert(out == 2);
  deque_get_last(d, &out);
  assert(out == 1);
  deque_destroy(d);
}

void test_mixed_ends() {
  struct Deque *d = deque_new(4);
  int x = symb_int();
  deque_add_last(d, x);
  deque_add_first(d, 0);
  deque_add_last(d, 9);
  int out = 0;
  deque_get(d, 0, &out);
  assert(out == 0);
  deque_get(d, 1, &out);
  assert(out == x);
  deque_get(d, 2, &out);
  assert(out == 9);
  deque_destroy(d);
}

void test_remove_first() {
  struct Deque *d = deque_new(4);
  int x = symb_int();
  deque_add_last(d, x);
  deque_add_last(d, 5);
  int out = 0;
  assert(deque_remove_first(d, &out));
  assert(out == x);
  assert(deque_size(d) == 1);
  deque_destroy(d);
}

void test_remove_last() {
  struct Deque *d = deque_new(4);
  deque_add_last(d, 5);
  int x = symb_int();
  deque_add_last(d, x);
  int out = 0;
  assert(deque_remove_last(d, &out));
  assert(out == x);
  assert(deque_size(d) == 1);
  deque_destroy(d);
}

void test_remove_first_empty() {
  struct Deque *d = deque_new(4);
  int out = 0;
  assert(!deque_remove_first(d, &out));
  deque_destroy(d);
}

void test_remove_last_empty() {
  struct Deque *d = deque_new(4);
  int out = 0;
  assert(!deque_remove_last(d, &out));
  deque_destroy(d);
}

void test_get_first_empty() {
  struct Deque *d = deque_new(4);
  int out = 0;
  assert(!deque_get_first(d, &out));
  deque_destroy(d);
}

void test_get_last_empty() {
  struct Deque *d = deque_new(4);
  int out = 0;
  assert(!deque_get_last(d, &out));
  deque_destroy(d);
}

void test_get_out_of_range() {
  struct Deque *d = deque_new(4);
  deque_add_last(d, 1);
  int i = symb_int();
  assume(i < 0 || i >= 1);
  int out = 0;
  assert(!deque_get(d, i, &out));
  deque_destroy(d);
}

void test_wraparound_first() {
  struct Deque *d = deque_new(3);
  deque_add_last(d, 1);
  deque_add_last(d, 2);
  int out = 0;
  deque_remove_first(d, &out);
  deque_add_last(d, 3);
  deque_add_last(d, 4);       // wraps around the circular buffer
  deque_get(d, 0, &out);
  assert(out == 2);
  deque_get(d, 2, &out);
  assert(out == 4);
  deque_destroy(d);
}

void test_wraparound_add_first() {
  struct Deque *d = deque_new(3);
  int x = symb_int();
  deque_add_first(d, x);       // first moves to capacity-1
  int out = 0;
  deque_get(d, 0, &out);
  assert(out == x);
  deque_add_first(d, 7);
  deque_get(d, 0, &out);
  assert(out == 7);
  deque_destroy(d);
}

void test_expand_on_full() {
  struct Deque *d = deque_new(2);
  deque_add_last(d, 1);
  deque_add_last(d, 2);
  deque_add_last(d, 3);        // triggers expansion
  assert(deque_size(d) == 3);
  int out = 0;
  deque_get(d, 2, &out);
  assert(out == 3);
  deque_destroy(d);
}

void test_expand_preserves_wrapped() {
  struct Deque *d = deque_new(2);
  deque_add_last(d, 1);
  deque_add_last(d, 2);
  int out = 0;
  deque_remove_first(d, &out);
  deque_add_last(d, 3);        // wrapped: physical order [3, 2]
  deque_add_last(d, 4);        // expansion must linearise
  deque_get(d, 0, &out);
  assert(out == 2);
  deque_get(d, 1, &out);
  assert(out == 3);
  deque_get(d, 2, &out);
  assert(out == 4);
  deque_destroy(d);
}

void test_size_tracks_both_ends() {
  struct Deque *d = deque_new(4);
  deque_add_first(d, 1);
  deque_add_last(d, 2);
  assert(deque_size(d) == 2);
  int out = 0;
  deque_remove_first(d, &out);
  assert(deque_size(d) == 1);
  deque_remove_last(d, &out);
  assert(deque_size(d) == 0);
  deque_destroy(d);
}

void test_fifo_through() {
  struct Deque *d = deque_new(2);
  int x = symb_int();
  int y = symb_int();
  deque_add_last(d, x);
  deque_add_last(d, y);
  int a = 0;
  int b = 0;
  deque_remove_first(d, &a);
  deque_remove_first(d, &b);
  assert(a == x && b == y);
  deque_destroy(d);
}

void test_lifo_through() {
  struct Deque *d = deque_new(2);
  int x = symb_int();
  int y = symb_int();
  deque_add_last(d, x);
  deque_add_last(d, y);
  int a = 0;
  int b = 0;
  deque_remove_last(d, &a);
  deque_remove_last(d, &b);
  assert(a == y && b == x);
  deque_destroy(d);
}

void test_symbolic_count_fill() {
  struct Deque *d = deque_new(4);
  int n = symb_int();
  assume(0 <= n && n <= 3);
  for (int i = 0; i < n; i++) {
    deque_add_last(d, i);
  }
  assert(deque_size(d) == n);
  deque_destroy(d);
}

void test_drain_refill() {
  struct Deque *d = deque_new(2);
  deque_add_last(d, 1);
  int out = 0;
  deque_remove_first(d, &out);
  assert(deque_size(d) == 0);
  int x = symb_int();
  deque_add_first(d, x);
  deque_get_first(d, &out);
  assert(out == x);
  deque_destroy(d);
}

void test_get_symbolic_index() {
  struct Deque *d = deque_new(4);
  deque_add_last(d, 10);
  deque_add_last(d, 20);
  deque_add_last(d, 30);
  int i = symb_int();
  assume(0 <= i && i < 3);
  int out = 0;
  assert(deque_get(d, i, &out));
  assert(out == (i + 1) * 10);
  deque_destroy(d);
}

void test_alternating_ends() {
  struct Deque *d = deque_new(4);
  deque_add_first(d, 2);
  deque_add_last(d, 3);
  deque_add_first(d, 1);
  deque_add_last(d, 4);
  int out = 0;
  for (int i = 0; i < 4; i++) {
    deque_remove_first(d, &out);
    assert(out == i + 1);
  }
  deque_destroy(d);
}

void test_remove_until_empty_then_reject() {
  struct Deque *d = deque_new(2);
  deque_add_last(d, 1);
  int out = 0;
  assert(deque_remove_last(d, &out));
  assert(!deque_remove_last(d, &out));
  assert(!deque_remove_first(d, &out));
  deque_destroy(d);
}

void test_first_last_same_single() {
  struct Deque *d = deque_new(4);
  int x = symb_int();
  deque_add_first(d, x);
  int a = 0;
  int b = 0;
  deque_get_first(d, &a);
  deque_get_last(d, &b);
  assert(a == b);
  deque_destroy(d);
}

void test_capacity_one() {
  struct Deque *d = deque_new(1);
  deque_add_last(d, 5);
  assert(deque_size(d) == 1);
  deque_add_last(d, 6);   // expand from capacity 1
  assert(deque_size(d) == 2);
  int out = 0;
  deque_get(d, 0, &out);
  assert(out == 5);
  deque_destroy(d);
}

void test_two_deques_independent() {
  struct Deque *a = deque_new(2);
  struct Deque *b = deque_new(2);
  int x = symb_int();
  deque_add_last(a, x);
  deque_add_last(b, x + 1);
  int out = 0;
  deque_get_first(a, &out);
  assert(out == x);
  deque_get_first(b, &out);
  assert(out == x + 1);
  deque_destroy(a);
  deque_destroy(b);
}

void test_interior_get_after_wrap() {
  struct Deque *d = deque_new(3);
  deque_add_last(d, 1);
  deque_add_last(d, 2);
  deque_add_last(d, 3);
  int out = 0;
  deque_remove_first(d, &out);
  deque_add_last(d, 4);
  int i = symb_int();
  assume(0 <= i && i < 3);
  assert(deque_get(d, i, &out));
  assert(out == i + 2);
  deque_destroy(d);
}

void test_remove_first_returns_each_in_turn() {
  struct Deque *d = deque_new(4);
  int n = symb_int();
  assume(1 <= n && n <= 3);
  for (int i = 0; i < n; i++) {
    deque_add_last(d, i * 2);
  }
  int out = 0;
  for (int i = 0; i < n; i++) {
    assert(deque_remove_first(d, &out));
    assert(out == i * 2);
  }
  assert(deque_size(d) == 0);
  deque_destroy(d);
}

void test_add_first_then_remove_last() {
  struct Deque *d = deque_new(4);
  int x = symb_int();
  deque_add_first(d, x);
  deque_add_first(d, 1);
  int out = 0;
  assert(deque_remove_last(d, &out));
  assert(out == x);
  deque_destroy(d);
}

void test_expand_from_wrapped_add_first() {
  struct Deque *d = deque_new(2);
  deque_add_first(d, 2);
  deque_add_first(d, 1);    // physical [2->idx1, 1->idx1-1 wraps]
  deque_add_last(d, 3);     // expand
  int out = 0;
  deque_get(d, 0, &out);
  assert(out == 1);
  deque_get(d, 1, &out);
  assert(out == 2);
  deque_get(d, 2, &out);
  assert(out == 3);
  deque_destroy(d);
}

void test_get_negative_index() {
  struct Deque *d = deque_new(2);
  deque_add_last(d, 1);
  int out = 0;
  assert(!deque_get(d, 0 - 1, &out));
  deque_destroy(d);
}

void test_symbolic_value_roundtrip() {
  struct Deque *d = deque_new(2);
  int x = symb_int();
  int y = symb_int();
  deque_add_last(d, x);
  deque_add_first(d, y);
  int out = 0;
  deque_get(d, 0, &out);
  assert(out == y);
  deque_get(d, 1, &out);
  assert(out == x);
  deque_destroy(d);
}
"""

_LIST_TESTS = r"""
void test_new_empty() {
  struct List *l = list_new();
  assert(list_size(l) == 0);
  list_destroy(l);
}

void test_add_last_single() {
  struct List *l = list_new();
  int x = symb_int();
  list_add_last(l, x);
  int out = 0;
  assert(list_get(l, 0, &out));
  assert(out == x);
  list_destroy(l);
}

void test_add_first_single() {
  struct List *l = list_new();
  int x = symb_int();
  list_add_first(l, x);
  int out = 0;
  assert(list_get(l, 0, &out));
  assert(out == x);
  assert(list_size(l) == 1);
  list_destroy(l);
}

void test_add_last_order() {
  struct List *l = list_new();
  list_add_last(l, 1);
  list_add_last(l, 2);
  list_add_last(l, 3);
  int out = 0;
  for (int i = 0; i < 3; i++) {
    list_get(l, i, &out);
    assert(out == i + 1);
  }
  list_destroy(l);
}

void test_add_first_reverses() {
  struct List *l = list_new();
  list_add_first(l, 3);
  list_add_first(l, 2);
  list_add_first(l, 1);
  int out = 0;
  for (int i = 0; i < 3; i++) {
    list_get(l, i, &out);
    assert(out == i + 1);
  }
  list_destroy(l);
}

void test_head_prev_is_null() {
  struct List *l = list_new();
  list_add_last(l, 1);
  list_add_last(l, 2);
  assert(l->head->prev == NULL);
  assert(l->tail->next == NULL);
  list_destroy(l);
}

void test_links_consistent() {
  struct List *l = list_new();
  int x = symb_int();
  list_add_last(l, 1);
  list_add_last(l, x);
  list_add_last(l, 3);
  assert(l->head->next->prev == l->head);
  assert(l->tail->prev->next == l->tail);
  assert(l->head->next->value == x);
  list_destroy(l);
}

void test_get_out_of_range() {
  struct List *l = list_new();
  list_add_last(l, 1);
  int i = symb_int();
  assume(i < 0 || i >= 1);
  int out = 0;
  assert(!list_get(l, i, &out));
  list_destroy(l);
}

void test_get_symbolic_index() {
  struct List *l = list_new();
  list_add_last(l, 10);
  list_add_last(l, 20);
  list_add_last(l, 30);
  int i = symb_int();
  assume(0 <= i && i < 3);
  int out = 0;
  assert(list_get(l, i, &out));
  assert(out == (i + 1) * 10);
  list_destroy(l);
}

void test_index_of_found() {
  struct List *l = list_new();
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  list_add_last(l, x);
  list_add_last(l, y);
  assert(list_index_of(l, y) == 1);
  list_destroy(l);
}

void test_index_of_first_occurrence() {
  struct List *l = list_new();
  int x = symb_int();
  list_add_last(l, x);
  list_add_last(l, x);
  assert(list_index_of(l, x) == 0);
  list_destroy(l);
}

void test_index_of_missing() {
  struct List *l = list_new();
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  list_add_last(l, x);
  assert(list_index_of(l, y) == 0 - 1);
  list_destroy(l);
}

void test_contains() {
  struct List *l = list_new();
  int x = symb_int();
  list_add_last(l, x);
  assert(list_contains(l, x));
  list_destroy(l);
}

void test_remove_only_element() {
  struct List *l = list_new();
  int x = symb_int();
  list_add_last(l, x);
  assert(list_remove(l, x));
  assert(list_size(l) == 0);
  assert(l->head == NULL && l->tail == NULL);
  list_destroy(l);
}

void test_remove_head() {
  struct List *l = list_new();
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  list_add_last(l, x);
  list_add_last(l, y);
  assert(list_remove(l, x));
  int out = 0;
  list_get(l, 0, &out);
  assert(out == y);
  assert(l->head->prev == NULL);
  list_destroy(l);
}

void test_remove_tail() {
  struct List *l = list_new();
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  list_add_last(l, x);
  list_add_last(l, y);
  assert(list_remove(l, y));
  assert(l->tail->value == x);
  assert(l->tail->next == NULL);
  list_destroy(l);
}

void test_remove_middle_relinks() {
  struct List *l = list_new();
  list_add_last(l, 1);
  int x = symb_int();
  assume(x != 1 && x != 3);
  list_add_last(l, x);
  list_add_last(l, 3);
  assert(list_remove(l, x));
  assert(l->head->next == l->tail);
  assert(l->tail->prev == l->head);
  assert(list_size(l) == 2);
  list_destroy(l);
}

void test_remove_missing() {
  struct List *l = list_new();
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  list_add_last(l, x);
  assert(!list_remove(l, y));
  assert(list_size(l) == 1);
  list_destroy(l);
}

void test_remove_first_fn() {
  struct List *l = list_new();
  int x = symb_int();
  list_add_last(l, x);
  list_add_last(l, 9);
  int out = 0;
  assert(list_remove_first(l, &out));
  assert(out == x);
  assert(list_size(l) == 1);
  list_destroy(l);
}

void test_remove_last_fn() {
  struct List *l = list_new();
  list_add_last(l, 9);
  int x = symb_int();
  list_add_last(l, x);
  int out = 0;
  assert(list_remove_last(l, &out));
  assert(out == x);
  assert(list_size(l) == 1);
  list_destroy(l);
}

void test_remove_first_empty() {
  struct List *l = list_new();
  int out = 0;
  assert(!list_remove_first(l, &out));
  list_destroy(l);
}

void test_remove_last_empty() {
  struct List *l = list_new();
  int out = 0;
  assert(!list_remove_last(l, &out));
  list_destroy(l);
}

void test_remove_first_until_empty() {
  struct List *l = list_new();
  int n = symb_int();
  assume(1 <= n && n <= 3);
  for (int i = 0; i < n; i++) {
    list_add_last(l, i);
  }
  int out = 0;
  for (int i = 0; i < n; i++) {
    assert(list_remove_first(l, &out));
    assert(out == i);
  }
  assert(l->head == NULL && l->tail == NULL);
  list_destroy(l);
}

void test_remove_last_until_empty() {
  struct List *l = list_new();
  list_add_last(l, 1);
  list_add_last(l, 2);
  int out = 0;
  assert(list_remove_last(l, &out));
  assert(out == 2);
  assert(list_remove_last(l, &out));
  assert(out == 1);
  assert(!list_remove_last(l, &out));
  list_destroy(l);
}

void test_node_at_walks() {
  struct List *l = list_new();
  int x = symb_int();
  list_add_last(l, 5);
  list_add_last(l, x);
  struct DNode *n = list_node_at(l, 1);
  assert(n != NULL);
  assert(n->value == x);
  list_destroy(l);
}

void test_node_at_out_of_range_null() {
  struct List *l = list_new();
  list_add_last(l, 5);
  assert(list_node_at(l, 2) == NULL);
  assert(list_node_at(l, 0 - 1) == NULL);
  list_destroy(l);
}

void test_size_after_mixed_ops() {
  struct List *l = list_new();
  list_add_last(l, 1);
  list_add_first(l, 0);
  list_add_last(l, 2);
  assert(list_size(l) == 3);
  list_remove(l, 1);
  assert(list_size(l) == 2);
  list_destroy(l);
}

void test_symbolic_membership_paths() {
  struct List *l = list_new();
  int x = symb_int();
  assume(0 <= x && x <= 2);
  list_add_last(l, 0);
  list_add_last(l, 1);
  list_add_last(l, 2);
  assert(list_contains(l, x));
  assert(list_remove(l, x));
  assert(!list_contains(l, x));
  assert(list_size(l) == 2);
  list_destroy(l);
}

void test_add_after_drain() {
  struct List *l = list_new();
  list_add_last(l, 1);
  int out = 0;
  list_remove_first(l, &out);
  int x = symb_int();
  list_add_first(l, x);
  assert(l->head == l->tail);
  assert(l->head->value == x);
  list_destroy(l);
}

void test_interleaved_add_remove() {
  struct List *l = list_new();
  int x = symb_int();
  list_add_last(l, x);
  int out = 0;
  list_remove_first(l, &out);
  list_add_last(l, x + 1);
  list_add_last(l, x + 2);
  list_remove_last(l, &out);
  assert(out == x + 2);
  assert(list_size(l) == 1);
  list_get(l, 0, &out);
  assert(out == x + 1);
  list_destroy(l);
}

void test_two_lists_share_values() {
  struct List *a = list_new();
  struct List *b = list_new();
  int x = symb_int();
  list_add_last(a, x);
  list_add_last(b, x);
  assert(list_remove(a, x));
  assert(list_contains(b, x));
  list_destroy(a);
  list_destroy(b);
}

void test_duplicate_values_removed_one_at_a_time() {
  struct List *l = list_new();
  int x = symb_int();
  list_add_last(l, x);
  list_add_last(l, x);
  assert(list_remove(l, x));
  assert(list_contains(l, x));
  assert(list_remove(l, x));
  assert(!list_contains(l, x));
  list_destroy(l);
}

void test_head_tail_after_remove_middle() {
  struct List *l = list_new();
  list_add_last(l, 1);
  list_add_last(l, 2);
  list_add_last(l, 3);
  list_remove(l, 2);
  assert(l->head->value == 1);
  assert(l->tail->value == 3);
  int out = 0;
  assert(list_get(l, 1, &out));
  assert(out == 3);
  list_destroy(l);
}

void test_get_writes_through_pointer() {
  struct List *l = list_new();
  int x = symb_int();
  list_add_last(l, x);
  int out = 12345;
  assert(list_get(l, 0, &out));
  assert(out == x);
  list_destroy(l);
}

void test_index_of_each_position() {
  struct List *l = list_new();
  list_add_last(l, 10);
  list_add_last(l, 11);
  list_add_last(l, 12);
  int k = symb_int();
  assume(0 <= k && k <= 2);
  assert(list_index_of(l, 10 + k) == k);
  list_destroy(l);
}

void test_contains_negative_values() {
  struct List *l = list_new();
  int x = symb_int();
  assume(-3 <= x && x <= 0 - 1);
  list_add_last(l, x);
  assert(list_contains(l, x));
  assert(!list_contains(l, 0 - x));
  list_destroy(l);
}

void test_remove_by_symbolic_value_keeps_links() {
  struct List *l = list_new();
  int x = symb_int();
  assume(x == 1 || x == 2 || x == 3);
  list_add_last(l, 1);
  list_add_last(l, 2);
  list_add_last(l, 3);
  assert(list_remove(l, x));
  assert(list_size(l) == 2);
  struct DNode *n = l->head;
  while (n->next != NULL) {
    assert(n->next->prev == n);
    n = n->next;
  }
  assert(n == l->tail);
  list_destroy(l);
}
"""

_SLIST_TESTS = r"""
void test_new_empty() {
  struct SList *l = slist_new();
  assert(slist_size(l) == 0);
  assert(l->head == NULL && l->tail == NULL);
  slist_destroy(l);
}

void test_add_single() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add(l, x);
  int out = 0;
  assert(slist_get(l, 0, &out));
  assert(out == x);
  slist_destroy(l);
}

void test_add_first_single() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add_first(l, x);
  assert(l->head == l->tail);
  assert(l->head->value == x);
  slist_destroy(l);
}

void test_add_order() {
  struct SList *l = slist_new();
  slist_add(l, 1);
  slist_add(l, 2);
  slist_add(l, 3);
  int out = 0;
  for (int i = 0; i < 3; i++) {
    slist_get(l, i, &out);
    assert(out == i + 1);
  }
  slist_destroy(l);
}

void test_add_first_order() {
  struct SList *l = slist_new();
  slist_add_first(l, 3);
  slist_add_first(l, 2);
  slist_add_first(l, 1);
  int out = 0;
  for (int i = 0; i < 3; i++) {
    slist_get(l, i, &out);
    assert(out == i + 1);
  }
  slist_destroy(l);
}

void test_add_first_then_add() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add_first(l, x);
  slist_add(l, 9);
  assert(l->head->value == x);
  assert(l->tail->value == 9);
  assert(slist_size(l) == 2);
  slist_destroy(l);
}

void test_tail_is_last_added() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add(l, 1);
  slist_add(l, x);
  assert(l->tail->value == x);
  assert(l->tail->next == NULL);
  slist_destroy(l);
}

void test_get_out_of_range() {
  struct SList *l = slist_new();
  slist_add(l, 1);
  int i = symb_int();
  assume(i < 0 || i >= 1);
  int out = 0;
  assert(!slist_get(l, i, &out));
  slist_destroy(l);
}

void test_get_symbolic_index() {
  struct SList *l = slist_new();
  slist_add(l, 10);
  slist_add(l, 20);
  slist_add(l, 30);
  int i = symb_int();
  assume(0 <= i && i < 3);
  int out = 0;
  assert(slist_get(l, i, &out));
  assert(out == (i + 1) * 10);
  slist_destroy(l);
}

void test_index_of_found() {
  struct SList *l = slist_new();
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  slist_add(l, x);
  slist_add(l, y);
  assert(slist_index_of(l, y) == 1);
  slist_destroy(l);
}

void test_index_of_missing() {
  struct SList *l = slist_new();
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  slist_add(l, x);
  assert(slist_index_of(l, y) == 0 - 1);
  slist_destroy(l);
}

void test_index_of_duplicate_first() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add(l, x);
  slist_add(l, x);
  assert(slist_index_of(l, x) == 0);
  slist_destroy(l);
}

void test_contains() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add(l, x);
  assert(slist_contains(l, x));
  assert(slist_size(l) == 1);
  slist_destroy(l);
}

void test_contains_after_remove() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add(l, x);
  slist_remove(l, x);
  assert(!slist_contains(l, x));
  slist_destroy(l);
}

void test_remove_only() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add(l, x);
  assert(slist_remove(l, x));
  assert(l->head == NULL && l->tail == NULL);
  assert(slist_size(l) == 0);
  slist_destroy(l);
}

void test_remove_head() {
  struct SList *l = slist_new();
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  slist_add(l, x);
  slist_add(l, y);
  assert(slist_remove(l, x));
  assert(l->head->value == y);
  slist_destroy(l);
}

void test_remove_tail_updates_tail() {
  struct SList *l = slist_new();
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  slist_add(l, x);
  slist_add(l, y);
  assert(slist_remove(l, y));
  assert(l->tail->value == x);
  assert(l->tail->next == NULL);
  slist_destroy(l);
}

void test_remove_middle() {
  struct SList *l = slist_new();
  slist_add(l, 1);
  int x = symb_int();
  assume(x != 1 && x != 3);
  slist_add(l, x);
  slist_add(l, 3);
  assert(slist_remove(l, x));
  int out = 0;
  slist_get(l, 1, &out);
  assert(out == 3);
  assert(slist_size(l) == 2);
  slist_destroy(l);
}

void test_remove_missing() {
  struct SList *l = slist_new();
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  slist_add(l, x);
  assert(!slist_remove(l, y));
  assert(slist_size(l) == 1);
  slist_destroy(l);
}

void test_remove_first_fn() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add(l, x);
  slist_add(l, 2);
  int out = 0;
  assert(slist_remove_first(l, &out));
  assert(out == x);
  assert(slist_size(l) == 1);
  slist_destroy(l);
}

void test_remove_first_empty() {
  struct SList *l = slist_new();
  int out = 0;
  assert(!slist_remove_first(l, &out));
  slist_destroy(l);
}

void test_remove_first_until_empty() {
  struct SList *l = slist_new();
  int n = symb_int();
  assume(1 <= n && n <= 3);
  for (int i = 0; i < n; i++) {
    slist_add(l, i * 3);
  }
  int out = 0;
  for (int i = 0; i < n; i++) {
    assert(slist_remove_first(l, &out));
    assert(out == i * 3);
  }
  assert(l->tail == NULL);
  slist_destroy(l);
}

void test_slist_node_before_lookup() {
  // Detects planted finding 2: slist_node_before compares node pointers
  // from different malloc blocks with <, which is undefined behaviour.
  struct SList *l = slist_new();
  slist_add(l, 1);
  slist_add(l, 2);
  slist_add(l, 3);
  struct SNode *third = l->head->next->next;
  struct SNode *before = slist_node_before(l, third);
  assert(before == l->head->next);
  slist_destroy(l);
}

void test_symbolic_membership() {
  struct SList *l = slist_new();
  int x = symb_int();
  assume(0 <= x && x <= 2);
  slist_add(l, 0);
  slist_add(l, 1);
  slist_add(l, 2);
  assert(slist_contains(l, x));
  slist_destroy(l);
}

void test_remove_symbolic_each_position() {
  struct SList *l = slist_new();
  int x = symb_int();
  assume(x == 0 || x == 1 || x == 2);
  slist_add(l, 0);
  slist_add(l, 1);
  slist_add(l, 2);
  assert(slist_remove(l, x));
  assert(slist_size(l) == 2);
  assert(!slist_contains(l, x));
  slist_destroy(l);
}

void test_add_after_drain() {
  struct SList *l = slist_new();
  slist_add(l, 1);
  int out = 0;
  slist_remove_first(l, &out);
  int x = symb_int();
  slist_add(l, x);
  assert(l->head == l->tail);
  assert(l->head->value == x);
  slist_destroy(l);
}

void test_duplicates_counted_in_size() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add(l, x);
  slist_add(l, x);
  slist_add(l, x);
  assert(slist_size(l) == 3);
  slist_remove(l, x);
  assert(slist_size(l) == 2);
  slist_destroy(l);
}

void test_head_next_chain() {
  struct SList *l = slist_new();
  slist_add(l, 1);
  slist_add(l, 2);
  assert(l->head->next == l->tail);
  assert(l->head->next->next == NULL);
  slist_destroy(l);
}

void test_two_lists_independent() {
  struct SList *a = slist_new();
  struct SList *b = slist_new();
  int x = symb_int();
  slist_add(a, x);
  slist_add(b, x + 1);
  assert(slist_contains(a, x));
  assert(!slist_contains(a, x + 1));
  assert(slist_contains(b, x + 1));
  slist_destroy(a);
  slist_destroy(b);
}

void test_get_each_concrete_position() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add(l, x);
  slist_add(l, x + 1);
  slist_add(l, x + 2);
  int out = 0;
  slist_get(l, 2, &out);
  assert(out == x + 2);
  slist_get(l, 1, &out);
  assert(out == x + 1);
  slist_destroy(l);
}

void test_remove_then_tail_append() {
  struct SList *l = slist_new();
  slist_add(l, 1);
  slist_add(l, 2);
  slist_remove(l, 2);       // removes tail
  slist_add(l, 3);          // append must follow the new tail
  int out = 0;
  assert(slist_get(l, 1, &out));
  assert(out == 3);
  assert(slist_size(l) == 2);
  slist_destroy(l);
}

void test_add_first_after_remove_all() {
  struct SList *l = slist_new();
  slist_add(l, 9);
  slist_remove(l, 9);
  slist_add_first(l, 4);
  assert(l->tail->value == 4);
  slist_destroy(l);
}

void test_index_of_positionally() {
  struct SList *l = slist_new();
  slist_add(l, 100);
  slist_add(l, 101);
  slist_add(l, 102);
  int k = symb_int();
  assume(0 <= k && k <= 2);
  assert(slist_index_of(l, 100 + k) == k);
  slist_destroy(l);
}

void test_size_nonnegative_invariant() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add(l, x);
  slist_remove(l, x);
  int out = 0;
  slist_remove_first(l, &out);   // no-op on empty
  assert(slist_size(l) == 0);
  slist_destroy(l);
}

void test_remove_first_writes_out() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add_first(l, x);
  int out = 999;
  assert(slist_remove_first(l, &out));
  assert(out == x);
  slist_destroy(l);
}

void test_interleaved_ops() {
  struct SList *l = slist_new();
  int x = symb_int();
  slist_add(l, x);
  slist_add_first(l, x - 1);
  slist_add(l, x + 1);
  assert(slist_size(l) == 3);
  assert(slist_index_of(l, x) == 1);
  slist_remove(l, x - 1);
  assert(slist_index_of(l, x) == 0);
  slist_destroy(l);
}

void test_add_many_then_index() {
  struct SList *l = slist_new();
  int n = symb_int();
  assume(1 <= n && n <= 3);
  for (int i = 0; i < n; i++) {
    slist_add(l, 7 * i);
  }
  assert(slist_index_of(l, 7 * (n - 1)) == n - 1);
  slist_destroy(l);
}

void test_node_structs_are_separate_allocations() {
  struct SList *l = slist_new();
  slist_add(l, 1);
  slist_add(l, 2);
  assert(l->head != l->tail);
  l->head->value = 9;
  assert(l->tail->value == 2);
  slist_destroy(l);
}
"""

_PQUEUE_TESTS = r"""
void test_push_pop_sorted() {
  struct PQueue *pq = pqueue_new(4);
  int x = symb_int();
  int y = symb_int();
  assume(0 <= x && x <= 2 && 0 <= y && y <= 2);
  pqueue_push(pq, x);
  pqueue_push(pq, y);
  int a = 0;
  int b = 0;
  assert(pqueue_pop(pq, &a));
  assert(pqueue_pop(pq, &b));
  assert(a <= b);
  assert(pqueue_size(pq) == 0);
  pqueue_destroy(pq);
}

void test_peek_is_minimum() {
  struct PQueue *pq = pqueue_new(4);
  int x = symb_int();
  assume(-2 <= x && x <= 2);
  pqueue_push(pq, 0);
  pqueue_push(pq, x);
  pqueue_push(pq, 1);
  int top = 0;
  assert(pqueue_peek(pq, &top));
  assert(top <= 0 && top <= x && top <= 1);
  assert(pqueue_size(pq) == 3);
  pqueue_destroy(pq);
}
"""

_QUEUE_TESTS = r"""
void test_fifo() {
  struct Queue *q = queue_new(4);
  int x = symb_int();
  queue_enqueue(q, x);
  queue_enqueue(q, 2);
  int out = 0;
  assert(queue_poll(q, &out));
  assert(out == x);
  assert(queue_poll(q, &out));
  assert(out == 2);
  queue_destroy(q);
}

void test_peek_keeps() {
  struct Queue *q = queue_new(4);
  int x = symb_int();
  queue_enqueue(q, x);
  int out = 0;
  assert(queue_peek(q, &out));
  assert(out == x);
  assert(queue_size(q) == 1);
  queue_destroy(q);
}

void test_poll_empty() {
  struct Queue *q = queue_new(4);
  int out = 0;
  assert(!queue_poll(q, &out));
  assert(!queue_peek(q, &out));
  queue_destroy(q);
}

void test_grows_past_capacity() {
  struct Queue *q = queue_new(2);
  int n = symb_int();
  assume(1 <= n && n <= 4);
  for (int i = 0; i < n; i++) {
    queue_enqueue(q, i);
  }
  assert(queue_size(q) == n);
  int out = 0;
  assert(queue_poll(q, &out));
  assert(out == 0);
  queue_destroy(q);
}
"""

_RBUF_TESTS = r"""
void test_enqueue_dequeue() {
  struct RBuf *r = rbuf_new(3);
  int x = symb_int();
  rbuf_enqueue(r, x);
  rbuf_enqueue(r, 2);
  int out = 0;
  assert(rbuf_dequeue(r, &out));
  assert(out == x);
  assert(rbuf_size(r) == 1);
  rbuf_destroy(r);
}

void test_overwrites_oldest_when_full() {
  struct RBuf *r = rbuf_new(2);
  rbuf_enqueue(r, 1);
  rbuf_enqueue(r, 2);
  rbuf_enqueue(r, 3);   // overwrites 1
  int out = 0;
  assert(rbuf_dequeue(r, &out));
  assert(out == 2);
  assert(rbuf_dequeue(r, &out));
  assert(out == 3);
  assert(!rbuf_dequeue(r, &out));
  rbuf_destroy(r);
}

void test_rbuf_allocation_is_exact() {
  // Detects planted finding 4: the buffer is one element larger than the
  // capacity requires (behaviour correct, memory wasted).
  struct RBuf *r = rbuf_new(3);
  assert(block_size(r->buffer) == 3 * sizeof(int));
  rbuf_destroy(r);
}
"""

_STACK_TESTS = r"""
void test_lifo() {
  struct Stack *s = stack_new();
  int x = symb_int();
  stack_push(s, 1);
  stack_push(s, x);
  int out = 0;
  assert(stack_pop(s, &out));
  assert(out == x);
  assert(stack_pop(s, &out));
  assert(out == 1);
  assert(!stack_pop(s, &out));
  stack_destroy(s);
}

void test_peek_and_size() {
  struct Stack *s = stack_new();
  int x = symb_int();
  stack_push(s, x);
  int out = 0;
  assert(stack_peek(s, &out));
  assert(out == x);
  assert(stack_size(s) == 1);
  stack_destroy(s);
}
"""

_TREETBL_TESTS = r"""
void test_new_empty() {
  struct TreeTbl *t = treetbl_new();
  assert(treetbl_size(t) == 0);
  int out = 0;
  assert(!treetbl_min_key(t, &out));
  treetbl_destroy(t);
}

void test_add_get() {
  struct TreeTbl *t = treetbl_new();
  int k = symb_int();
  int v = symb_int();
  treetbl_add(t, k, v);
  int out = 0;
  assert(treetbl_get(t, k, &out));
  assert(out == v);
  treetbl_destroy(t);
}

void test_add_overwrites() {
  struct TreeTbl *t = treetbl_new();
  int k = symb_int();
  treetbl_add(t, k, 1);
  treetbl_add(t, k, 2);
  int out = 0;
  assert(treetbl_get(t, k, &out));
  assert(out == 2);
  assert(treetbl_size(t) == 1);
  treetbl_destroy(t);
}

void test_two_keys() {
  struct TreeTbl *t = treetbl_new();
  int k = symb_int();
  assume(0 <= k && k <= 4);
  assume(k != 2);
  treetbl_add(t, 2, 20);
  treetbl_add(t, k, 100);
  assert(treetbl_size(t) == 2);
  int out = 0;
  assert(treetbl_get(t, k, &out));
  assert(out == 100);
  assert(treetbl_get(t, 2, &out));
  assert(out == 20);
  treetbl_destroy(t);
}

void test_get_missing() {
  struct TreeTbl *t = treetbl_new();
  int k = symb_int();
  int j = symb_int();
  assume(k != j);
  treetbl_add(t, k, 1);
  int out = 0;
  assert(!treetbl_get(t, j, &out));
  assert(!treetbl_contains_key(t, j));
  treetbl_destroy(t);
}

void test_min_max() {
  struct TreeTbl *t = treetbl_new();
  int k = symb_int();
  assume(-3 <= k && k <= 3);
  treetbl_add(t, 0, 1);
  treetbl_add(t, k, 1);
  int lo = 0;
  int hi = 0;
  assert(treetbl_min_key(t, &lo));
  assert(treetbl_max_key(t, &hi));
  assert(lo <= k && lo <= 0);
  assert(k <= hi && 0 <= hi);
  treetbl_destroy(t);
}

void test_remove_leaf() {
  struct TreeTbl *t = treetbl_new();
  treetbl_add(t, 2, 1);
  int k = symb_int();
  assume(0 <= k && k <= 4 && k != 2);
  treetbl_add(t, k, 1);
  assert(treetbl_remove(t, k));
  assert(!treetbl_contains_key(t, k));
  assert(treetbl_contains_key(t, 2));
  assert(treetbl_size(t) == 1);
  treetbl_destroy(t);
}

void test_remove_root_single() {
  struct TreeTbl *t = treetbl_new();
  int k = symb_int();
  treetbl_add(t, k, 1);
  assert(treetbl_remove(t, k));
  assert(treetbl_size(t) == 0);
  assert(t->root == NULL);
  treetbl_destroy(t);
}

void test_remove_root_with_two_children() {
  struct TreeTbl *t = treetbl_new();
  treetbl_add(t, 2, 20);
  treetbl_add(t, 1, 10);
  treetbl_add(t, 4, 40);
  treetbl_add(t, 3, 30);
  assert(treetbl_remove(t, 2));
  assert(!treetbl_contains_key(t, 2));
  int out = 0;
  assert(treetbl_get(t, 3, &out));
  assert(out == 30);
  assert(treetbl_size(t) == 3);
  treetbl_destroy(t);
}

void test_remove_missing() {
  struct TreeTbl *t = treetbl_new();
  int k = symb_int();
  int j = symb_int();
  assume(k != j);
  treetbl_add(t, k, 1);
  assert(!treetbl_remove(t, j));
  assert(treetbl_size(t) == 1);
  treetbl_destroy(t);
}

void test_inorder_invariant_after_inserts() {
  struct TreeTbl *t = treetbl_new();
  int a = symb_int();
  int b = symb_int();
  assume(0 <= a && a <= 2 && 0 <= b && b <= 2);
  assume(a != b);
  treetbl_add(t, a, a);
  treetbl_add(t, b, b);
  int lo = 0;
  assert(treetbl_min_key(t, &lo));
  assert(lo <= a && lo <= b);
  assert(lo == a || lo == b);
  treetbl_destroy(t);
}

void test_remove_then_min_updates() {
  struct TreeTbl *t = treetbl_new();
  treetbl_add(t, 1, 1);
  treetbl_add(t, 2, 2);
  int lo = 0;
  treetbl_min_key(t, &lo);
  assert(lo == 1);
  treetbl_remove(t, 1);
  treetbl_min_key(t, &lo);
  assert(lo == 2);
  treetbl_destroy(t);
}

void test_symbolic_key_three_inserts() {
  struct TreeTbl *t = treetbl_new();
  int k = symb_int();
  assume(0 <= k && k <= 6);
  assume(k != 2 && k != 5);
  treetbl_add(t, 2, 0);
  treetbl_add(t, 5, 0);
  treetbl_add(t, k, 9);
  int out = 0;
  assert(treetbl_get(t, k, &out));
  assert(out == 9);
  assert(treetbl_size(t) == 3);
  treetbl_destroy(t);
}
"""

_TREESET_TESTS = r"""
void test_add_contains() {
  struct TreeSet *s = treeset_new();
  int x = symb_int();
  assert(treeset_add(s, x));
  assert(treeset_contains(s, x));
  assert(treeset_size(s) == 1);
  treeset_destroy(s);
}

void test_add_duplicate_rejected() {
  struct TreeSet *s = treeset_new();
  int x = symb_int();
  treeset_add(s, x);
  assert(!treeset_add(s, x));
  assert(treeset_size(s) == 1);
  treeset_destroy(s);
}

void test_remove() {
  struct TreeSet *s = treeset_new();
  int x = symb_int();
  treeset_add(s, x);
  assert(treeset_remove(s, x));
  assert(!treeset_contains(s, x));
  assert(treeset_size(s) == 0);
  treeset_destroy(s);
}

void test_remove_missing() {
  struct TreeSet *s = treeset_new();
  int x = symb_int();
  int y = symb_int();
  assume(x != y);
  treeset_add(s, x);
  assert(!treeset_remove(s, y));
  treeset_destroy(s);
}

void test_min() {
  struct TreeSet *s = treeset_new();
  int x = symb_int();
  assume(-2 <= x && x <= 2);
  treeset_add(s, 0);
  treeset_add(s, x);
  int lo = 0;
  assert(treeset_min(s, &lo));
  assert(lo <= 0 && lo <= x);
  treeset_destroy(s);
}

void test_two_members() {
  struct TreeSet *s = treeset_new();
  int x = symb_int();
  int y = symb_int();
  assume(0 <= x && x <= 1 && 0 <= y && y <= 1);
  treeset_add(s, x);
  treeset_add(s, y);
  if (x == y) { assert(treeset_size(s) == 1); }
  else { assert(treeset_size(s) == 2); }
  treeset_destroy(s);
}
"""

_HASH_TESTS = r"""
void test_hash_deterministic() {
  int h1 = str_hash("key");
  int h2 = str_hash("key");
  assert(h1 == h2);
}

void test_hash_distinguishes_strings() {
  // Detects planted finding 5: the hash never mixes beyond the first
  // character, so these two distinct keys collide.
  int h1 = str_hash("ab");
  int h2 = str_hash("ac");
  assert(h1 != h2);
}
"""

_RAW_SUITES: Dict[str, str] = {
    "array": _ARRAY_TESTS,
    "deque": _DEQUE_TESTS,
    "list": _LIST_TESTS,
    "pqueue": _PQUEUE_TESTS,
    "queue": _QUEUE_TESTS,
    "rbuf": _RBUF_TESTS,
    "slist": _SLIST_TESTS,
    "stack": _STACK_TESTS,
    "treetbl": _TREETBL_TESTS,
    "treeset": _TREESET_TESTS,
    "hash": _HASH_TESTS,
}

#: Tests expected to fail — one per §4.2 finding.
KNOWN_BUG_TESTS = {
    "test_array_add_triggers_expand",
    "test_array_compare_freed_pointers",
    "test_slist_node_before_lookup",
    "test_rbuf_allocation_is_exact",
    "test_hash_distinguishes_strings",
}


def _test_names(source: str) -> List[str]:
    names = []
    for line in source.splitlines():
        line = line.strip()
        if line.startswith("void test_") or line.startswith("int test_"):
            names.append(line.split()[1].split("(")[0])
    return names


def suite(name: str) -> Tuple[str, List[str]]:
    """(full MiniC source, test entry points) for one Table 2 row."""
    if name == "hash":
        source = HASH + "\n" + _RAW_SUITES[name]
    else:
        source = module_source(name) + "\n" + _RAW_SUITES[name]
    return source, _test_names(_RAW_SUITES[name])


def suite_names(include_hash: bool = False) -> List[str]:
    names = [n for n in sorted(_RAW_SUITES) if n != "hash"]
    if include_hash:
        names.append("hash")
    return names


def expected_test_counts() -> Dict[str, int]:
    """The paper's Table 2 #T column."""
    return {
        "array": 22, "deque": 34, "list": 37, "pqueue": 2, "queue": 4,
        "rbuf": 3, "slist": 38, "stack": 2, "treetbl": 13, "treeset": 6,
    }
