"""A Collections-C-style data-structure library written in MiniC.

The paper evaluates Gillian-C on Collections-C (§4.2, Table 2), "a
real-world data-structure library for C" with "arrays, lists, treetables,
hashtables, ring buffers and queues", using "C-specific constructs and
idioms, such as structures and pointer arithmetic".  This module ports
the same ten structures (the Table 2 rows) to MiniC: array, deque, list,
pqueue, queue, rbuf, slist, stack, treetbl, treeset.  Elements are
``int`` (Collections-C is ``void*``-generic; MiniC keeps the memory
behaviour — struct layout, pointer arithmetic, malloc/free discipline —
which is what the analysis exercises).

The §4.2 findings are reproduced as planted defects of the same classes:

1. ``array_add``: an off-by-one in the expansion check writes one slot
   past the buffer — the paper's "buffer overflow bug in the
   implementation of dynamic arrays, caused by an off-by-one index";
2. ``slist_node_before``: relational comparison of pointers into
   different blocks — "usage of undefined behaviours (pointer
   comparison, in particular)";
3. a concrete test that compares freed pointers —
   "several bugs in the concrete test suite: in particular, comparing
   freed pointers" (see suites);
4. ``rbuf_new`` over-allocates by one element with otherwise correct
   behaviour — "over-allocation in the ring-buffer data structure, but
   with correct behaviour of the associated functions";
5. ``str_hash``: the hash loop never advances, so every string hashes
   alike — "a bug in the string hashing function ... that could lead to
   performance loss".

The treetable is a plain BST rather than Collections-C's red-black tree
(same interface and complexity class for the suite's small inputs);
hashtables are omitted exactly as in the paper ("our first-order solver
cannot reason about hash functions, we are not able to test the hashtbl
and hashset data structures"), except for the hash function itself.
"""

from __future__ import annotations

from typing import Dict

# -- dynamic array (planted bug 1: off-by-one expansion check) --------------------

ARRAY = r"""
struct Array {
  int size;
  int capacity;
  int *buffer;
};

struct Array *array_new(int capacity) {
  struct Array *a = (struct Array *) malloc(sizeof(struct Array));
  a->size = 0;
  a->capacity = capacity;
  a->buffer = (int *) malloc(capacity * sizeof(int));
  return a;
}

int array_expand(struct Array *a) {
  int new_capacity = a->capacity * 2;
  int *new_buffer = (int *) malloc(new_capacity * sizeof(int));
  memcpy(new_buffer, a->buffer, a->size * sizeof(int));
  free(a->buffer);
  a->buffer = new_buffer;
  a->capacity = new_capacity;
  return 1;
}

int array_add(struct Array *a, int value) {
  // PLANTED BUG (paper finding 1): the expansion check is off by one —
  // when size == capacity, the write below lands one past the buffer.
  if (a->size > a->capacity) {
    array_expand(a);
  }
  a->buffer[a->size] = value;
  a->size = a->size + 1;
  return 1;
}

int array_get(struct Array *a, int index) {
  return a->buffer[index];
}

int array_get_checked(struct Array *a, int index, int *out) {
  if (index < 0 || index >= a->size) { return 0; }
  *out = a->buffer[index];
  return 1;
}

int array_set(struct Array *a, int index, int value) {
  if (index < 0 || index >= a->size) { return 0; }
  a->buffer[index] = value;
  return 1;
}

int array_index_of(struct Array *a, int value) {
  int i = 0;
  while (i < a->size) {
    if (a->buffer[i] == value) { return i; }
    i = i + 1;
  }
  return 0 - 1;
}

int array_contains(struct Array *a, int value) {
  return array_index_of(a, value) >= 0;
}

int array_remove_at(struct Array *a, int index) {
  if (index < 0 || index >= a->size) { return 0; }
  int i = index;
  while (i < a->size - 1) {
    a->buffer[i] = a->buffer[i + 1];
    i = i + 1;
  }
  a->size = a->size - 1;
  return 1;
}

int array_size(struct Array *a) {
  return a->size;
}

void array_destroy(struct Array *a) {
  free(a->buffer);
  free(a);
}
"""

# -- singly linked list (planted bug 2: UB pointer comparison) ---------------------

SLIST = r"""
struct SNode {
  int value;
  struct SNode *next;
};

struct SList {
  struct SNode *head;
  struct SNode *tail;
  int size;
};

struct SList *slist_new() {
  struct SList *l = (struct SList *) malloc(sizeof(struct SList));
  l->head = NULL;
  l->tail = NULL;
  l->size = 0;
  return l;
}

int slist_add(struct SList *l, int value) {
  struct SNode *n = (struct SNode *) malloc(sizeof(struct SNode));
  n->value = value;
  n->next = NULL;
  if (l->head == NULL) {
    l->head = n;
    l->tail = n;
  } else {
    l->tail->next = n;
    l->tail = n;
  }
  l->size = l->size + 1;
  return 1;
}

int slist_add_first(struct SList *l, int value) {
  struct SNode *n = (struct SNode *) malloc(sizeof(struct SNode));
  n->value = value;
  n->next = l->head;
  l->head = n;
  if (l->tail == NULL) { l->tail = n; }
  l->size = l->size + 1;
  return 1;
}

int slist_get(struct SList *l, int index, int *out) {
  if (index < 0 || index >= l->size) { return 0; }
  struct SNode *n = l->head;
  int i = 0;
  while (i < index) {
    n = n->next;
    i = i + 1;
  }
  *out = n->value;
  return 1;
}

int slist_index_of(struct SList *l, int value) {
  struct SNode *n = l->head;
  int i = 0;
  while (n != NULL) {
    if (n->value == value) { return i; }
    n = n->next;
    i = i + 1;
  }
  return 0 - 1;
}

int slist_contains(struct SList *l, int value) {
  return slist_index_of(l, value) >= 0;
}

struct SNode *slist_node_before(struct SList *l, struct SNode *node) {
  // PLANTED BUG (paper finding 2): comparing pointers into different
  // blocks with < is C undefined behaviour; compilers may assume the
  // comparison never happens and miscompile the search.
  struct SNode *n = l->head;
  while (n != NULL) {
    if (n->next != NULL && n->next < node && node < n->next->next) {
      return n;
    }
    if (n->next == node) { return n; }
    n = n->next;
  }
  return NULL;
}

int slist_remove(struct SList *l, int value) {
  struct SNode *prev = NULL;
  struct SNode *n = l->head;
  while (n != NULL) {
    if (n->value == value) {
      if (prev == NULL) {
        l->head = n->next;
      } else {
        prev->next = n->next;
      }
      if (n == l->tail) { l->tail = prev; }
      l->size = l->size - 1;
      free(n);
      return 1;
    }
    prev = n;
    n = n->next;
  }
  return 0;
}

int slist_remove_first(struct SList *l, int *out) {
  if (l->head == NULL) { return 0; }
  struct SNode *n = l->head;
  *out = n->value;
  l->head = n->next;
  if (l->head == NULL) { l->tail = NULL; }
  l->size = l->size - 1;
  free(n);
  return 1;
}

int slist_size(struct SList *l) {
  return l->size;
}

void slist_destroy(struct SList *l) {
  struct SNode *n = l->head;
  while (n != NULL) {
    struct SNode *next = n->next;
    free(n);
    n = next;
  }
  free(l);
}
"""

# -- doubly linked list ---------------------------------------------------------------

LIST = r"""
struct DNode {
  int value;
  struct DNode *next;
  struct DNode *prev;
};

struct List {
  struct DNode *head;
  struct DNode *tail;
  int size;
};

struct List *list_new() {
  struct List *l = (struct List *) malloc(sizeof(struct List));
  l->head = NULL;
  l->tail = NULL;
  l->size = 0;
  return l;
}

int list_add_last(struct List *l, int value) {
  struct DNode *n = (struct DNode *) malloc(sizeof(struct DNode));
  n->value = value;
  n->next = NULL;
  n->prev = l->tail;
  if (l->tail == NULL) {
    l->head = n;
  } else {
    l->tail->next = n;
  }
  l->tail = n;
  l->size = l->size + 1;
  return 1;
}

int list_add_first(struct List *l, int value) {
  struct DNode *n = (struct DNode *) malloc(sizeof(struct DNode));
  n->value = value;
  n->prev = NULL;
  n->next = l->head;
  if (l->head == NULL) {
    l->tail = n;
  } else {
    l->head->prev = n;
  }
  l->head = n;
  l->size = l->size + 1;
  return 1;
}

struct DNode *list_node_at(struct List *l, int index) {
  if (index < 0 || index >= l->size) { return NULL; }
  struct DNode *n = l->head;
  int i = 0;
  while (i < index) {
    n = n->next;
    i = i + 1;
  }
  return n;
}

int list_get(struct List *l, int index, int *out) {
  struct DNode *n = list_node_at(l, index);
  if (n == NULL) { return 0; }
  *out = n->value;
  return 1;
}

int list_index_of(struct List *l, int value) {
  struct DNode *n = l->head;
  int i = 0;
  while (n != NULL) {
    if (n->value == value) { return i; }
    n = n->next;
    i = i + 1;
  }
  return 0 - 1;
}

int list_contains(struct List *l, int value) {
  return list_index_of(l, value) >= 0;
}

int list_remove_node(struct List *l, struct DNode *n) {
  if (n->prev == NULL) {
    l->head = n->next;
  } else {
    n->prev->next = n->next;
  }
  if (n->next == NULL) {
    l->tail = n->prev;
  } else {
    n->next->prev = n->prev;
  }
  l->size = l->size - 1;
  free(n);
  return 1;
}

int list_remove(struct List *l, int value) {
  struct DNode *n = l->head;
  while (n != NULL) {
    if (n->value == value) {
      return list_remove_node(l, n);
    }
    n = n->next;
  }
  return 0;
}

int list_remove_first(struct List *l, int *out) {
  if (l->head == NULL) { return 0; }
  *out = l->head->value;
  return list_remove_node(l, l->head);
}

int list_remove_last(struct List *l, int *out) {
  if (l->tail == NULL) { return 0; }
  *out = l->tail->value;
  return list_remove_node(l, l->tail);
}

int list_size(struct List *l) {
  return l->size;
}

void list_destroy(struct List *l) {
  struct DNode *n = l->head;
  while (n != NULL) {
    struct DNode *next = n->next;
    free(n);
    n = next;
  }
  free(l);
}
"""

# -- deque (circular buffer) -------------------------------------------------------------

DEQUE = r"""
struct Deque {
  int *buffer;
  int capacity;
  int first;
  int size;
};

struct Deque *deque_new(int capacity) {
  struct Deque *d = (struct Deque *) malloc(sizeof(struct Deque));
  d->buffer = (int *) malloc(capacity * sizeof(int));
  d->capacity = capacity;
  d->first = 0;
  d->size = 0;
  return d;
}

int deque_expand(struct Deque *d) {
  int new_capacity = d->capacity * 2;
  int *new_buffer = (int *) malloc(new_capacity * sizeof(int));
  int i = 0;
  while (i < d->size) {
    new_buffer[i] = d->buffer[(d->first + i) % d->capacity];
    i = i + 1;
  }
  free(d->buffer);
  d->buffer = new_buffer;
  d->capacity = new_capacity;
  d->first = 0;
  return 1;
}

int deque_add_last(struct Deque *d, int value) {
  if (d->size >= d->capacity) {
    deque_expand(d);
  }
  d->buffer[(d->first + d->size) % d->capacity] = value;
  d->size = d->size + 1;
  return 1;
}

int deque_add_first(struct Deque *d, int value) {
  if (d->size >= d->capacity) {
    deque_expand(d);
  }
  d->first = (d->first + d->capacity - 1) % d->capacity;
  d->buffer[d->first] = value;
  d->size = d->size + 1;
  return 1;
}

int deque_remove_first(struct Deque *d, int *out) {
  if (d->size == 0) { return 0; }
  *out = d->buffer[d->first];
  d->first = (d->first + 1) % d->capacity;
  d->size = d->size - 1;
  return 1;
}

int deque_remove_last(struct Deque *d, int *out) {
  if (d->size == 0) { return 0; }
  *out = d->buffer[(d->first + d->size - 1) % d->capacity];
  d->size = d->size - 1;
  return 1;
}

int deque_get_first(struct Deque *d, int *out) {
  if (d->size == 0) { return 0; }
  *out = d->buffer[d->first];
  return 1;
}

int deque_get_last(struct Deque *d, int *out) {
  if (d->size == 0) { return 0; }
  *out = d->buffer[(d->first + d->size - 1) % d->capacity];
  return 1;
}

int deque_get(struct Deque *d, int index, int *out) {
  if (index < 0 || index >= d->size) { return 0; }
  *out = d->buffer[(d->first + index) % d->capacity];
  return 1;
}

int deque_size(struct Deque *d) {
  return d->size;
}

void deque_destroy(struct Deque *d) {
  free(d->buffer);
  free(d);
}
"""

# -- queue and stack -------------------------------------------------------------------

QUEUE = r"""
struct Queue {
  struct Deque *deque;
};

struct Queue *queue_new(int capacity) {
  struct Queue *q = (struct Queue *) malloc(sizeof(struct Queue));
  q->deque = deque_new(capacity);
  return q;
}

int queue_enqueue(struct Queue *q, int value) {
  return deque_add_last(q->deque, value);
}

int queue_poll(struct Queue *q, int *out) {
  return deque_remove_first(q->deque, out);
}

int queue_peek(struct Queue *q, int *out) {
  return deque_get_first(q->deque, out);
}

int queue_size(struct Queue *q) {
  return deque_size(q->deque);
}

void queue_destroy(struct Queue *q) {
  deque_destroy(q->deque);
  free(q);
}
"""

STACK = r"""
struct Stack {
  struct SList *list;
};

struct Stack *stack_new() {
  struct Stack *s = (struct Stack *) malloc(sizeof(struct Stack));
  s->list = slist_new();
  return s;
}

int stack_push(struct Stack *s, int value) {
  return slist_add_first(s->list, value);
}

int stack_pop(struct Stack *s, int *out) {
  return slist_remove_first(s->list, out);
}

int stack_peek(struct Stack *s, int *out) {
  return slist_get(s->list, 0, out);
}

int stack_size(struct Stack *s) {
  return slist_size(s->list);
}

void stack_destroy(struct Stack *s) {
  slist_destroy(s->list);
  free(s);
}
"""

# -- priority queue (binary min-heap) --------------------------------------------------

PQUEUE = r"""
struct PQueue {
  int *buffer;
  int capacity;
  int size;
};

struct PQueue *pqueue_new(int capacity) {
  struct PQueue *pq = (struct PQueue *) malloc(sizeof(struct PQueue));
  pq->buffer = (int *) malloc(capacity * sizeof(int));
  pq->capacity = capacity;
  pq->size = 0;
  return pq;
}

int pqueue_swap(struct PQueue *pq, int i, int j) {
  int tmp = pq->buffer[i];
  pq->buffer[i] = pq->buffer[j];
  pq->buffer[j] = tmp;
  return 1;
}

int pqueue_push(struct PQueue *pq, int value) {
  if (pq->size >= pq->capacity) { return 0; }
  pq->buffer[pq->size] = value;
  int i = pq->size;
  pq->size = pq->size + 1;
  while (i > 0) {
    int parent = (i - 1) / 2;
    if (pq->buffer[i] < pq->buffer[parent]) {
      pqueue_swap(pq, i, parent);
      i = parent;
    } else {
      break;
    }
  }
  return 1;
}

int pqueue_pop(struct PQueue *pq, int *out) {
  if (pq->size == 0) { return 0; }
  *out = pq->buffer[0];
  pq->size = pq->size - 1;
  pq->buffer[0] = pq->buffer[pq->size];
  int i = 0;
  while (1) {
    int left = 2 * i + 1;
    int right = 2 * i + 2;
    int smallest = i;
    if (left < pq->size && pq->buffer[left] < pq->buffer[smallest]) {
      smallest = left;
    }
    if (right < pq->size && pq->buffer[right] < pq->buffer[smallest]) {
      smallest = right;
    }
    if (smallest == i) { break; }
    pqueue_swap(pq, i, smallest);
    i = smallest;
  }
  return 1;
}

int pqueue_peek(struct PQueue *pq, int *out) {
  if (pq->size == 0) { return 0; }
  *out = pq->buffer[0];
  return 1;
}

int pqueue_size(struct PQueue *pq) {
  return pq->size;
}

void pqueue_destroy(struct PQueue *pq) {
  free(pq->buffer);
  free(pq);
}
"""

# -- ring buffer (planted bug 4: over-allocation, behaviour correct) --------------------

RBUF = r"""
struct RBuf {
  int *buffer;
  int capacity;
  int head;
  int size;
};

struct RBuf *rbuf_new(int capacity) {
  struct RBuf *r = (struct RBuf *) malloc(sizeof(struct RBuf));
  // PLANTED BUG (paper finding 4): one element more than needed is
  // allocated; every operation stays correct, memory is simply wasted.
  r->buffer = (int *) malloc((capacity + 1) * sizeof(int));
  r->capacity = capacity;
  r->head = 0;
  r->size = 0;
  return r;
}

int rbuf_enqueue(struct RBuf *r, int value) {
  int index = (r->head + r->size) % r->capacity;
  r->buffer[index] = value;
  if (r->size < r->capacity) {
    r->size = r->size + 1;
  } else {
    r->head = (r->head + 1) % r->capacity;
  }
  return 1;
}

int rbuf_dequeue(struct RBuf *r, int *out) {
  if (r->size == 0) { return 0; }
  *out = r->buffer[r->head];
  r->head = (r->head + 1) % r->capacity;
  r->size = r->size - 1;
  return 1;
}

int rbuf_size(struct RBuf *r) {
  return r->size;
}

void rbuf_destroy(struct RBuf *r) {
  free(r->buffer);
  free(r);
}
"""

# -- treetable (BST-based ordered map) and treeset --------------------------------------

TREETBL = r"""
struct TNode {
  int key;
  int value;
  struct TNode *left;
  struct TNode *right;
};

struct TreeTbl {
  struct TNode *root;
  int size;
};

struct TreeTbl *treetbl_new() {
  struct TreeTbl *t = (struct TreeTbl *) malloc(sizeof(struct TreeTbl));
  t->root = NULL;
  t->size = 0;
  return t;
}

int treetbl_add(struct TreeTbl *t, int key, int value) {
  struct TNode *n = (struct TNode *) malloc(sizeof(struct TNode));
  n->key = key;
  n->value = value;
  n->left = NULL;
  n->right = NULL;
  if (t->root == NULL) {
    t->root = n;
    t->size = t->size + 1;
    return 1;
  }
  struct TNode *current = t->root;
  while (1) {
    if (key == current->key) {
      current->value = value;
      free(n);
      return 1;
    }
    if (key < current->key) {
      if (current->left == NULL) {
        current->left = n;
        t->size = t->size + 1;
        return 1;
      }
      current = current->left;
    } else {
      if (current->right == NULL) {
        current->right = n;
        t->size = t->size + 1;
        return 1;
      }
      current = current->right;
    }
  }
  return 0;
}

int treetbl_get(struct TreeTbl *t, int key, int *out) {
  struct TNode *current = t->root;
  while (current != NULL) {
    if (key == current->key) {
      *out = current->value;
      return 1;
    }
    if (key < current->key) {
      current = current->left;
    } else {
      current = current->right;
    }
  }
  return 0;
}

int treetbl_contains_key(struct TreeTbl *t, int key) {
  int tmp = 0;
  return treetbl_get(t, key, &tmp);
}

int treetbl_min_key(struct TreeTbl *t, int *out) {
  if (t->root == NULL) { return 0; }
  struct TNode *current = t->root;
  while (current->left != NULL) {
    current = current->left;
  }
  *out = current->key;
  return 1;
}

int treetbl_max_key(struct TreeTbl *t, int *out) {
  if (t->root == NULL) { return 0; }
  struct TNode *current = t->root;
  while (current->right != NULL) {
    current = current->right;
  }
  *out = current->key;
  return 1;
}

struct TNode *treetbl_detach_min(struct TNode *parent, struct TNode *node) {
  while (node->left != NULL) {
    parent = node;
    node = node->left;
  }
  if (parent->left == node) {
    parent->left = node->right;
  } else {
    parent->right = node->right;
  }
  return node;
}

int treetbl_remove(struct TreeTbl *t, int key) {
  struct TNode *parent = NULL;
  struct TNode *current = t->root;
  while (current != NULL) {
    if (key == current->key) {
      if (current->left != NULL && current->right != NULL) {
        if (current->right->left == NULL) {
          current->key = current->right->key;
          current->value = current->right->value;
          struct TNode *dead = current->right;
          current->right = current->right->right;
          free(dead);
        } else {
          struct TNode *min = treetbl_detach_min(current, current->right);
          current->key = min->key;
          current->value = min->value;
          free(min);
        }
      } else {
        struct TNode *child = current->left;
        if (child == NULL) { child = current->right; }
        if (parent == NULL) {
          t->root = child;
        } else if (parent->left == current) {
          parent->left = child;
        } else {
          parent->right = child;
        }
        free(current);
      }
      t->size = t->size - 1;
      return 1;
    }
    parent = current;
    if (key < current->key) {
      current = current->left;
    } else {
      current = current->right;
    }
  }
  return 0;
}

int treetbl_size(struct TreeTbl *t) {
  return t->size;
}

void treetbl_destroy_node(struct TNode *n) {
  if (n == NULL) { return; }
  treetbl_destroy_node(n->left);
  treetbl_destroy_node(n->right);
  free(n);
}

void treetbl_destroy(struct TreeTbl *t) {
  treetbl_destroy_node(t->root);
  free(t);
}
"""

TREESET = r"""
struct TreeSet {
  struct TreeTbl *table;
};

struct TreeSet *treeset_new() {
  struct TreeSet *s = (struct TreeSet *) malloc(sizeof(struct TreeSet));
  s->table = treetbl_new();
  return s;
}

int treeset_add(struct TreeSet *s, int value) {
  if (treetbl_contains_key(s->table, value)) { return 0; }
  return treetbl_add(s->table, value, 1);
}

int treeset_contains(struct TreeSet *s, int value) {
  return treetbl_contains_key(s->table, value);
}

int treeset_remove(struct TreeSet *s, int value) {
  return treetbl_remove(s->table, value);
}

int treeset_size(struct TreeSet *s) {
  return treetbl_size(s->table);
}

int treeset_min(struct TreeSet *s, int *out) {
  return treetbl_min_key(s->table, out);
}

void treeset_destroy(struct TreeSet *s) {
  treetbl_destroy(s->table);
  free(s);
}
"""

# -- string hashing (planted bug 5) ------------------------------------------------------

HASH = r"""
int str_hash(char *s) {
  int hash = 5381;
  int i = 0;
  while (s[i] != 0) {
    // PLANTED BUG (paper finding 5): the hash never mixes the character
    // in — every string of the same first character collides, degrading
    // hashtable performance (behaviour stays functionally correct).
    hash = hash * 33 + s[0];
    i = i + 1;
  }
  return hash;
}
"""

#: Module sources keyed by Table 2 row name.
MODULES: Dict[str, str] = {
    "array": ARRAY,
    "deque": DEQUE,
    "list": LIST,
    "pqueue": PQUEUE,
    "queue": QUEUE,
    "rbuf": RBUF,
    "slist": SLIST,
    "stack": STACK,
    "treetbl": TREETBL,
    "treeset": TREESET,
}

DEPS: Dict[str, tuple] = {
    "array": (),
    "deque": (),
    "list": (),
    "pqueue": (),
    "queue": ("deque",),
    "rbuf": (),
    "slist": (),
    "stack": ("slist",),
    "treetbl": (),
    "treeset": ("treetbl",),
}


def module_source(name: str) -> str:
    parts = []
    for dep in DEPS[name]:
        parts.append(MODULES[dep])
    parts.append(MODULES[name])
    return "\n".join(parts)


def full_library() -> str:
    order = ["array", "deque", "list", "pqueue", "slist", "queue", "rbuf",
             "stack", "treetbl", "treeset"]
    return "\n".join(MODULES[m] for m in order) + "\n" + HASH
