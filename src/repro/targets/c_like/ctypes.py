"""MiniC types and data layout (paper §4.2).

CompCert-style layout: values are stored in memory as sequences of
byte-sized memory values, addressed by (block, offset).  Loads and stores
go through *memory chunks* ``[size, align, type]`` indicating the size,
alignment, and type of the access.

Scalar sizes: ``char`` 1 byte, ``int`` 4 bytes (also ``bool``), pointers
8 bytes.  Struct fields are laid out in declaration order with natural
alignment padding, as a C compiler would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class CType:
    """Base class for MiniC types."""

    __slots__ = ()


@dataclass(frozen=True)
class IntType(CType):
    """int (4 bytes) — also used for bool results."""

    def __repr__(self) -> str:
        return "int"


@dataclass(frozen=True)
class CharType(CType):
    """char (1 byte)."""

    def __repr__(self) -> str:
        return "char"


@dataclass(frozen=True)
class VoidType(CType):
    """void — only valid behind a pointer or as a return type."""

    def __repr__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(CType):
    """Pointer to ``pointee``."""

    pointee: CType

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


@dataclass(frozen=True)
class StructType(CType):
    """A named struct type; its field layout lives in the TypeTable."""

    name: str

    def __repr__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class ArrayType(CType):
    """A fixed-size local/struct array; decays to a pointer in expressions."""

    element: CType
    length: int

    def __repr__(self) -> str:
        return f"{self.element!r}[{self.length}]"


INT = IntType()
CHAR = CharType()
VOID = VoidType()


@dataclass
class StructLayout:
    """Computed field offsets, total size, and alignment of a struct."""

    name: str
    #: field name → (offset, type)
    fields: Dict[str, Tuple[int, CType]]
    size: int
    align: int


@dataclass
class TypeTable:
    """Struct layouts and size/alignment computation."""

    structs: Dict[str, StructLayout] = field(default_factory=dict)

    def define_struct(self, name: str, fields: List[Tuple[str, CType]]) -> StructLayout:
        if name in self.structs:
            raise TypeError(f"struct {name} redefined")
        offset = 0
        max_align = 1
        table: Dict[str, Tuple[int, CType]] = {}
        for fname, ftype in fields:
            align = self.align_of(ftype)
            size = self.size_of(ftype)
            offset = _round_up(offset, align)
            table[fname] = (offset, ftype)
            offset += size
            max_align = max(max_align, align)
        layout = StructLayout(name, table, _round_up(offset, max_align), max_align)
        self.structs[name] = layout
        return layout

    def layout(self, t: StructType) -> StructLayout:
        if t.name not in self.structs:
            raise TypeError(f"unknown struct {t.name}")
        return self.structs[t.name]

    def size_of(self, t: CType) -> int:
        if isinstance(t, IntType):
            return 4
        if isinstance(t, CharType):
            return 1
        if isinstance(t, PointerType):
            return 8
        if isinstance(t, StructType):
            return self.layout(t).size
        if isinstance(t, ArrayType):
            return self.size_of(t.element) * t.length
        if isinstance(t, VoidType):
            raise TypeError("void has no size")
        raise TypeError(f"unknown type {t!r}")

    def align_of(self, t: CType) -> int:
        if isinstance(t, (IntType,)):
            return 4
        if isinstance(t, CharType):
            return 1
        if isinstance(t, PointerType):
            return 8
        if isinstance(t, StructType):
            return self.layout(t).align
        if isinstance(t, ArrayType):
            return self.align_of(t.element)
        raise TypeError(f"unknown type {t!r}")

    def chunk_of(self, t: CType) -> Tuple[int, int, str]:
        """The memory chunk ``[size, align, type]`` for a scalar access."""
        if isinstance(t, IntType):
            return (4, 4, "int32")
        if isinstance(t, CharType):
            return (1, 1, "int8")
        if isinstance(t, PointerType):
            return (8, 8, "ptr")
        raise TypeError(f"no scalar chunk for {t!r}")


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def is_pointer(t: CType) -> bool:
    return isinstance(t, (PointerType, ArrayType))


def is_scalar(t: CType) -> bool:
    return isinstance(t, (IntType, CharType, PointerType))
