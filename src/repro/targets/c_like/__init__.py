"""The MiniC instantiation of Gillian (Gillian-C, paper §4.2)."""

from __future__ import annotations

from repro.gil.syntax import Prog
from repro.targets.language import Language
from repro.targets.c_like.compiler import compile_source
from repro.targets.c_like.memory import (
    CConcreteMemory,
    CSymbolicMemory,
    interpret_memory,
)

#: MiniC implementations of the supported C standard library functions
#: (paper §4.2: "we have implemented only calloc, free, malloc, memcpy,
#: memmove, memset, and strcmp").  malloc/calloc/free/memcpy/memmove/
#: memset are compiler built-ins backed by memory actions; strcmp and
#: strlen are ordinary MiniC code prepended to every program.
RUNTIME = r"""
int strlen(char *s) {
  int n = 0;
  while (s[n] != 0) {
    n = n + 1;
  }
  return n;
}

int strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] != 0 && b[i] != 0) {
    if (a[i] < b[i]) { return -1; }
    if (b[i] < a[i]) { return 1; }
    i = i + 1;
  }
  if (a[i] == 0 && b[i] == 0) { return 0; }
  if (a[i] == 0) { return -1; }
  return 1;
}
"""


class MiniCLanguage(Language):
    """Gillian-C: block/offset memory with byte-granular contents."""

    name = "minic"

    def compile(self, source: str) -> Prog:
        return compile_source(RUNTIME + source)

    def concrete_memory(self) -> CConcreteMemory:
        return CConcreteMemory()

    def symbolic_memory(self) -> CSymbolicMemory:
        return CSymbolicMemory()

    def interpretation(self):
        return interpret_memory


__all__ = ["MiniCLanguage"]
