"""MiniC abstract syntax (paper §4.2).

MiniC is the ISO-C-like target language of the Gillian-C reproduction:
structs, heap pointers with block/offset semantics, pointer arithmetic,
``malloc``/``calloc``/``free``/``memcpy``/``memset``, string literals as
char arrays.  Matching the paper's Gillian-C limitations: no symbolic-size
allocation, no concurrency, mathematical integer arithmetic (arithmetic
UB is not modelled), and no address-of on scalar locals (locals live in
GIL registers; Collections-C-style code keeps data on the heap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.targets.c_like.ctypes import CType


class Node:
    """Base class for all MiniC AST nodes."""

    __slots__ = ()


class Expression(Node):
    """Base class for MiniC expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class IntLit(Expression):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class CharLit(Expression):
    """Character literal, e.g. ``'a'``."""

    value: str  # single character


@dataclass(frozen=True)
class StrLit(Expression):
    """String literal."""

    value: str


@dataclass(frozen=True)
class NullLit(Expression):
    """The ``NULL`` pointer literal."""

    pass


@dataclass(frozen=True)
class Var(Expression):
    """Variable reference."""

    name: str


@dataclass(frozen=True)
class Unary(Expression):
    """Unary operator application."""

    op: str  # "-" | "!" | "*" | "&"
    operand: Expression


@dataclass(frozen=True)
class Binary(Expression):
    """Binary operator application."""

    op: str  # + - * / % == != < <= > >= && ||
    left: Expression
    right: Expression


@dataclass(frozen=True)
class CallExpr(Expression):
    """``name(args)`` — call of a top-level function or builtin."""

    name: str
    args: Tuple[Expression, ...]


@dataclass(frozen=True)
class Member(Expression):
    """obj.field or ptr->field."""

    obj: Expression
    field: str
    arrow: bool


@dataclass(frozen=True)
class Index(Expression):
    """``base[index]`` subscript."""

    base: Expression
    index: Expression


@dataclass(frozen=True)
class SizeofExpr(Expression):
    """``sizeof(T)``."""

    type: CType


@dataclass(frozen=True)
class Cast(Expression):
    """``(T) operand`` cast."""

    type: CType
    operand: Expression


@dataclass(frozen=True)
class SymbolicExpr(Expression):
    """A fresh symbolic input of the given type."""

    type_name: Optional[str]  # None | "int" | "char" | "bool"


class Statement(Node):
    """Base class for MiniC statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Decl(Statement):
    """``T name = init;`` — variable declaration."""

    type: CType
    name: str
    init: Optional[Expression]


@dataclass(frozen=True)
class ArrayDecl(Statement):
    """T name[n]; — a stack array, modelled as a fresh block."""

    element_type: CType
    name: str
    length: int


@dataclass(frozen=True)
class Assign(Statement):
    """``target = value;`` — target is a variable, deref, member, or index."""

    target: Expression  # Var | Unary("*") | Member | Index
    value: Expression


@dataclass(frozen=True)
class IfStmt(Statement):
    """``if (cond) { ... } else { ... }``."""

    cond: Expression
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...]


@dataclass(frozen=True)
class WhileStmt(Statement):
    """``while (cond) { ... }``."""

    cond: Expression
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ForStmt(Statement):
    """``for (init; cond; step) { ... }``."""

    init: Optional[Statement]
    cond: Optional[Expression]
    step: Optional[Statement]
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ReturnStmt(Statement):
    """``return e;``."""

    expr: Optional[Expression]


@dataclass(frozen=True)
class BreakStmt(Statement):
    """``break;``."""

    pass


@dataclass(frozen=True)
class ContinueStmt(Statement):
    """``continue;``."""

    pass


@dataclass(frozen=True)
class ExprStmt(Statement):
    """An expression evaluated for its side effects."""

    expr: Expression


@dataclass(frozen=True)
class AssumeStmt(Statement):
    """``assume(e);`` — prune paths where ``e`` is false."""

    expr: Expression


@dataclass(frozen=True)
class AssertStmt(Statement):
    """``assert(e);`` — flag paths where ``e`` can be false."""

    expr: Expression


@dataclass(frozen=True)
class Param(Node):
    """A formal parameter: type and name."""

    type: CType
    name: str


@dataclass(frozen=True)
class FuncDef(Node):
    """A function definition."""

    ret_type: CType
    name: str
    params: Tuple[Param, ...]
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class StructDef(Node):
    """A struct definition: name and ordered fields."""

    name: str
    fields: Tuple[Tuple[str, CType], ...]


@dataclass(frozen=True)
class Program(Node):
    """A complete MiniC translation unit."""

    structs: Tuple[StructDef, ...]
    functions: Tuple[FuncDef, ...]
