"""MiniC abstract syntax (paper §4.2).

MiniC is the ISO-C-like target language of the Gillian-C reproduction:
structs, heap pointers with block/offset semantics, pointer arithmetic,
``malloc``/``calloc``/``free``/``memcpy``/``memset``, string literals as
char arrays.  Matching the paper's Gillian-C limitations: no symbolic-size
allocation, no concurrency, mathematical integer arithmetic (arithmetic
UB is not modelled), and no address-of on scalar locals (locals live in
GIL registers; Collections-C-style code keeps data on the heap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.targets.c_like.ctypes import CType


class Node:
    __slots__ = ()


class Expression(Node):
    __slots__ = ()


@dataclass(frozen=True)
class IntLit(Expression):
    value: int


@dataclass(frozen=True)
class CharLit(Expression):
    value: str  # single character


@dataclass(frozen=True)
class StrLit(Expression):
    value: str


@dataclass(frozen=True)
class NullLit(Expression):
    pass


@dataclass(frozen=True)
class Var(Expression):
    name: str


@dataclass(frozen=True)
class Unary(Expression):
    op: str  # "-" | "!" | "*" | "&"
    operand: Expression


@dataclass(frozen=True)
class Binary(Expression):
    op: str  # + - * / % == != < <= > >= && ||
    left: Expression
    right: Expression


@dataclass(frozen=True)
class CallExpr(Expression):
    name: str
    args: Tuple[Expression, ...]


@dataclass(frozen=True)
class Member(Expression):
    """obj.field or ptr->field."""

    obj: Expression
    field: str
    arrow: bool


@dataclass(frozen=True)
class Index(Expression):
    base: Expression
    index: Expression


@dataclass(frozen=True)
class SizeofExpr(Expression):
    type: CType


@dataclass(frozen=True)
class Cast(Expression):
    type: CType
    operand: Expression


@dataclass(frozen=True)
class SymbolicExpr(Expression):
    type_name: Optional[str]  # None | "int" | "char" | "bool"


class Statement(Node):
    __slots__ = ()


@dataclass(frozen=True)
class Decl(Statement):
    type: CType
    name: str
    init: Optional[Expression]


@dataclass(frozen=True)
class ArrayDecl(Statement):
    """T name[n]; — a stack array, modelled as a fresh block."""

    element_type: CType
    name: str
    length: int


@dataclass(frozen=True)
class Assign(Statement):
    target: Expression  # Var | Unary("*") | Member | Index
    value: Expression


@dataclass(frozen=True)
class IfStmt(Statement):
    cond: Expression
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...]


@dataclass(frozen=True)
class WhileStmt(Statement):
    cond: Expression
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ForStmt(Statement):
    init: Optional[Statement]
    cond: Optional[Expression]
    step: Optional[Statement]
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ReturnStmt(Statement):
    expr: Optional[Expression]


@dataclass(frozen=True)
class BreakStmt(Statement):
    pass


@dataclass(frozen=True)
class ContinueStmt(Statement):
    pass


@dataclass(frozen=True)
class ExprStmt(Statement):
    expr: Expression


@dataclass(frozen=True)
class AssumeStmt(Statement):
    expr: Expression


@dataclass(frozen=True)
class AssertStmt(Statement):
    expr: Expression


@dataclass(frozen=True)
class Param(Node):
    type: CType
    name: str


@dataclass(frozen=True)
class FuncDef(Node):
    ret_type: CType
    name: str
    params: Tuple[Param, ...]
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class StructDef(Node):
    name: str
    fields: Tuple[Tuple[str, CType], ...]


@dataclass(frozen=True)
class Program(Node):
    structs: Tuple[StructDef, ...]
    functions: Tuple[FuncDef, ...]
