"""The MiniJS-to-GIL compiler (paper §4.1).

Follows the JaVerT methodology the paper inherits: the TL memory model is
preserved (the compiler only emits the eight JS actions), TL control flow
is trivially compiled to GIL conditional gotos, and JS-specific dynamic
behaviour (``+`` overloading, ``typeof``) is compiled to explicit GIL
branching / internal GIL procedures, the way JaVerT compiles ES5's
internal functions to JSIL.

Highlights:

* object/array literals compile to ``uSym`` + ``initObj`` + ``setProp``
  (fresh locations come from Gillian's built-in allocator, §2.2);
* ``o[e]`` compiles to ``getProp`` with a *symbolic* property expression —
  the source of the JS memory model's branching;
* ``a + b`` dispatches at run time on the type of ``a`` (number addition
  vs string concatenation);
* ``&&``/``||`` short-circuit via gotos; ``c ? a : b`` likewise;
* ``typeof`` calls the internal procedure ``__js_typeof`` (emitted into
  every compiled program), returning JS type names.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.frontend.emitter import Emitter, Label
from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
    Vanish,
    allocate_sites,
)
from repro.gil.values import GilType
from repro.logic.expr import (
    BinOp,
    BinOpExpr,
    Expr,
    Lit,
    PVar,
    UnOp,
    UnOpExpr,
    lst,
)
from repro.targets.js_like import ast
from repro.targets.js_like.memory import JSNULL, UNDEFINED

ACTIONS = frozenset(
    {
        "initObj",
        "dispose",
        "getProp",
        "setProp",
        "delProp",
        "hasProp",
        "getMetadata",
        "setMetadata",
    }
)


class CompileError(Exception):
    """Raised when MiniJS source cannot be lowered to GIL."""

    pass


_SYMB_TYPE = {
    "number": GilType.NUMBER,
    "int": GilType.NUMBER,
    "string": GilType.STRING,
    "bool": GilType.BOOLEAN,
}

#: Built-in global functions compiled inline to GIL operators.
_INLINE_UNARY = {
    "floor": UnOp.FLOOR,
    "strlen": UnOp.STRLEN,
    "str_of": UnOp.TOSTRING,
    "num_of": UnOp.TONUMBER,
}
_INLINE_BINARY = {
    "char_at": BinOp.SNTH,
    "min_of": BinOp.MIN,
    "max_of": BinOp.MAX,
}


def compile_source(source: str) -> Prog:
    from repro.targets.js_like.parser import parse_program

    return compile_program(parse_program(source))


def compile_program(program: ast.Program) -> Prog:
    function_names = {f.name for f in program.functions}
    prog = Prog()
    for func in program.functions:
        compiler = _FunctionCompiler(function_names)
        prog.add(compiler.compile(func))
    prog.add(_make_js_typeof())
    return allocate_sites(prog)


def _collect_locals(func: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set(func.params)

    def visit_stmt(stmt: ast.Statement) -> None:
        if isinstance(stmt, (ast.VarDecl, ast.AssignVar)):
            names.add(stmt.name)
        for attr in ("then_body", "else_body", "body"):
            for sub in getattr(stmt, attr, ()):
                visit_stmt(sub)
        if isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                visit_stmt(stmt.init)
            if stmt.step is not None:
                visit_stmt(stmt.step)

    for stmt in func.body:
        visit_stmt(stmt)
    return names


class _FunctionCompiler:
    def __init__(self, function_names: Set[str]) -> None:
        self.function_names = function_names
        self.em = Emitter()
        self.locals: Set[str] = set()
        # (break_label, continue_label) stack for loops.
        self.loop_stack: List[Tuple[Label, Label]] = []

    def compile(self, func: ast.FunctionDef) -> Proc:
        self.locals = _collect_locals(func)
        for stmt in func.body:
            self.stmt(stmt)
        self.em.emit(Return(Lit(UNDEFINED)))
        return Proc(func.name, func.params, self.em.finish())

    # -- statements -----------------------------------------------------------

    def stmt(self, stmt: ast.Statement) -> None:
        em = self.em
        if isinstance(stmt, ast.VarDecl):
            value = self.expr(stmt.init) if stmt.init is not None else Lit(UNDEFINED)
            em.emit(Assignment(stmt.name, value))
            return
        if isinstance(stmt, ast.AssignVar):
            em.emit(Assignment(stmt.name, self.expr(stmt.value)))
            return
        if isinstance(stmt, ast.AssignMember):
            obj = self.expr(stmt.obj)
            prop = self.expr(stmt.prop)
            value = self.expr(stmt.value)
            em.emit(ActionCall(em.fresh_temp(), "setProp", lst(obj, prop, value)))
            return
        if isinstance(stmt, ast.DeleteStmt):
            obj = self.expr(stmt.obj)
            prop = self.expr(stmt.prop)
            em.emit(ActionCall(em.fresh_temp(), "delProp", lst(obj, prop)))
            return
        if isinstance(stmt, ast.ExprStmt):
            self.expr(stmt.expr)
            return
        if isinstance(stmt, ast.IfStmt):
            then_label, end_label = Label("then"), Label("endif")
            cond = self.expr(stmt.cond)
            em.emit(IfGoto(cond, then_label))
            for s in stmt.else_body:
                self.stmt(s)
            em.emit(Goto(end_label))
            em.mark(then_label)
            for s in stmt.then_body:
                self.stmt(s)
            em.mark(end_label)
            return
        if isinstance(stmt, ast.WhileStmt):
            start, body_label, end = Label("loop"), Label("lbody"), Label("endloop")
            em.mark(start)
            cond = self.expr(stmt.cond)
            em.emit(IfGoto(cond, body_label))
            em.emit(Goto(end))
            em.mark(body_label)
            self.loop_stack.append((end, start))
            for s in stmt.body:
                self.stmt(s)
            self.loop_stack.pop()
            em.emit(Goto(start))
            em.mark(end)
            return
        if isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self.stmt(stmt.init)
            start, body_label, step_label, end = (
                Label("for"),
                Label("fbody"),
                Label("fstep"),
                Label("endfor"),
            )
            em.mark(start)
            if stmt.cond is not None:
                cond = self.expr(stmt.cond)
                em.emit(IfGoto(cond, body_label))
                em.emit(Goto(end))
                em.mark(body_label)
            # continue jumps to the step, not the condition.
            self.loop_stack.append((end, step_label))
            for s in stmt.body:
                self.stmt(s)
            self.loop_stack.pop()
            em.mark(step_label)
            if stmt.step is not None:
                self.stmt(stmt.step)
            em.emit(Goto(start))
            em.mark(end)
            return
        if isinstance(stmt, ast.ReturnStmt):
            value = self.expr(stmt.expr) if stmt.expr is not None else Lit(UNDEFINED)
            em.emit(Return(value))
            return
        if isinstance(stmt, ast.BreakStmt):
            if not self.loop_stack:
                raise CompileError("break outside a loop")
            em.emit(Goto(self.loop_stack[-1][0]))
            return
        if isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise CompileError("continue outside a loop")
            em.emit(Goto(self.loop_stack[-1][1]))
            return
        if isinstance(stmt, ast.AssumeStmt):
            self._assume(self.expr(stmt.expr))
            return
        if isinstance(stmt, ast.AssertStmt):
            ok = Label("assert_ok")
            cond = self.expr(stmt.expr)
            self.em.emit(IfGoto(cond, ok))
            self.em.emit(Fail(lst("assertion-failure", repr(stmt.expr))))
            self.em.mark(ok)
            return
        raise CompileError(f"unknown statement {stmt!r}")

    def _assume(self, condition: Expr) -> None:
        ok = Label("assume_ok")
        self.em.emit(IfGoto(condition, ok))
        self.em.emit(Vanish())
        self.em.mark(ok)

    # -- expressions ------------------------------------------------------------

    def expr(self, e: ast.Expression) -> Expr:
        """Compile an expression; effectful parts go through fresh temps."""
        em = self.em
        if isinstance(e, ast.Literal):
            return Lit(e.value)
        if isinstance(e, ast.Undefined):
            return Lit(UNDEFINED)
        if isinstance(e, ast.NullLit):
            return Lit(JSNULL)
        if isinstance(e, ast.Var):
            if e.name in self.locals:
                return PVar(e.name)
            if e.name in self.function_names:
                return Lit(e.name)  # by-name function value
            raise CompileError(f"unknown identifier {e.name!r}")
        if isinstance(e, ast.FuncRef):
            return Lit(e.name)
        if isinstance(e, ast.ObjectLit):
            return self._object_literal(e)
        if isinstance(e, ast.ArrayLit):
            return self._array_literal(e)
        if isinstance(e, ast.Member):
            obj = self.expr(e.obj)
            prop = self.expr(e.prop)
            target = em.fresh_temp("get")
            em.emit(ActionCall(target, "getProp", lst(obj, prop)))
            return PVar(target)
        if isinstance(e, ast.CallExpr):
            return self._call(e)
        if isinstance(e, ast.Unary):
            return self._unary(e)
        if isinstance(e, ast.Binary):
            return self._binary(e)
        if isinstance(e, ast.Conditional):
            return self._conditional(e)
        if isinstance(e, ast.SymbolicExpr):
            return self._symbolic(e)
        raise CompileError(f"unknown expression {e!r}")

    def _object_literal(self, e: ast.ObjectLit) -> Expr:
        em = self.em
        target = em.fresh_temp("obj")
        em.emit(USym(target, 0))
        em.emit(
            ActionCall(em.fresh_temp(), "initObj", lst(PVar(target), "Object"))
        )
        for prop, value in e.props:
            compiled = self.expr(value)
            em.emit(
                ActionCall(
                    em.fresh_temp(), "setProp", lst(PVar(target), prop, compiled)
                )
            )
        return PVar(target)

    def _array_literal(self, e: ast.ArrayLit) -> Expr:
        em = self.em
        target = em.fresh_temp("arr")
        em.emit(USym(target, 0))
        em.emit(ActionCall(em.fresh_temp(), "initObj", lst(PVar(target), "Array")))
        for i, item in enumerate(e.items):
            compiled = self.expr(item)
            em.emit(
                ActionCall(em.fresh_temp(), "setProp", lst(PVar(target), i, compiled))
            )
        em.emit(
            ActionCall(
                em.fresh_temp(), "setProp", lst(PVar(target), "length", len(e.items))
            )
        )
        return PVar(target)

    def _call(self, e: ast.CallExpr) -> Expr:
        em = self.em
        # Inline builtins.
        if isinstance(e.callee, ast.Var) and e.callee.name not in self.locals:
            name = e.callee.name
            if name in _INLINE_UNARY:
                (arg,) = [self.expr(a) for a in e.args]
                return UnOpExpr(_INLINE_UNARY[name], arg)
            if name in _INLINE_BINARY:
                a, b = [self.expr(a) for a in e.args]
                return BinOpExpr(_INLINE_BINARY[name], a, b)
            if name == "dispose":
                (arg,) = [self.expr(a) for a in e.args]
                em.emit(ActionCall(em.fresh_temp(), "dispose", lst(arg)))
                return Lit(UNDEFINED)
            if name == "has_prop":
                obj, prop = [self.expr(a) for a in e.args]
                target = em.fresh_temp("has")
                em.emit(ActionCall(target, "hasProp", lst(obj, prop)))
                return PVar(target)
        callee = self.expr(e.callee)
        args = tuple(self.expr(a) for a in e.args)
        target = em.fresh_temp("ret")
        em.emit(Call(target, callee, args))
        return PVar(target)

    def _unary(self, e: ast.Unary) -> Expr:
        operand = self.expr(e.operand)
        if e.op == "-":
            return UnOpExpr(UnOp.NEG, operand)
        if e.op == "!":
            return UnOpExpr(UnOp.NOT, operand)
        if e.op == "typeof":
            target = self.em.fresh_temp("ty")
            self.em.emit(Call(target, Lit("__js_typeof"), (operand,)))
            return PVar(target)
        raise CompileError(f"unknown unary operator {e.op!r}")

    def _binary(self, e: ast.Binary) -> Expr:
        em = self.em
        if e.op == "&&" or e.op == "||":
            return self._short_circuit(e)
        left = self.expr(e.left)
        right = self.expr(e.right)
        if e.op == "+":
            return self._plus(left, right)
        table = {
            "-": BinOp.SUB,
            "*": BinOp.MUL,
            "/": BinOp.DIV,
            "%": BinOp.MOD,
            "===": BinOp.EQ,
            "<": BinOp.LT,
            "<=": BinOp.LEQ,
        }
        if e.op in table:
            return BinOpExpr(table[e.op], left, right)
        if e.op == "!==":
            return UnOpExpr(UnOp.NOT, BinOpExpr(BinOp.EQ, left, right))
        if e.op == ">":
            return BinOpExpr(BinOp.LT, right, left)
        if e.op == ">=":
            return BinOpExpr(BinOp.LEQ, right, left)
        raise CompileError(f"unknown binary operator {e.op!r}")

    def _plus(self, left: Expr, right: Expr) -> Expr:
        """JS ``+``: string concatenation when the left operand is a
        string, numeric addition otherwise — dispatched at run time."""
        if isinstance(left, Lit):
            if isinstance(left.value, str):
                return BinOpExpr(BinOp.SCONCAT, left, right)
            if isinstance(left.value, (int, float)):
                return BinOpExpr(BinOp.ADD, left, right)
        em = self.em
        target = em.fresh_temp("plus")
        is_str, end = Label("plus_str"), Label("plus_end")
        em.emit(IfGoto(left.typeof().eq(Lit(GilType.STRING)), is_str))
        em.emit(Assignment(target, BinOpExpr(BinOp.ADD, left, right)))
        em.emit(Goto(end))
        em.mark(is_str)
        em.emit(Assignment(target, BinOpExpr(BinOp.SCONCAT, left, right)))
        em.mark(end)
        return PVar(target)

    def _short_circuit(self, e: ast.Binary) -> Expr:
        em = self.em
        target = em.fresh_temp("sc")
        left = self.expr(e.left)
        right_label, end = Label("sc_right"), Label("sc_end")
        if e.op == "&&":
            em.emit(IfGoto(left, right_label))
            em.emit(Assignment(target, Lit(False)))
            em.emit(Goto(end))
        else:  # ||
            em.emit(IfGoto(UnOpExpr(UnOp.NOT, left), right_label))
            em.emit(Assignment(target, Lit(True)))
            em.emit(Goto(end))
        em.mark(right_label)
        right = self.expr(e.right)
        em.emit(Assignment(target, right))
        em.mark(end)
        return PVar(target)

    def _conditional(self, e: ast.Conditional) -> Expr:
        em = self.em
        target = em.fresh_temp("cond")
        then_label, end = Label("cond_then"), Label("cond_end")
        cond = self.expr(e.cond)
        em.emit(IfGoto(cond, then_label))
        else_value = self.expr(e.else_expr)
        em.emit(Assignment(target, else_value))
        em.emit(Goto(end))
        em.mark(then_label)
        then_value = self.expr(e.then_expr)
        em.emit(Assignment(target, then_value))
        em.mark(end)
        return PVar(target)

    def _symbolic(self, e: ast.SymbolicExpr) -> Expr:
        em = self.em
        target = em.fresh_temp("symb")
        em.emit(ISym(target, 0))
        if e.type_name is not None:
            gil_type = _SYMB_TYPE[e.type_name]
            self._assume(PVar(target).typeof().eq(Lit(gil_type)))
            if e.type_name == "int":
                self._assume(UnOpExpr(UnOp.FLOOR, PVar(target)).eq(PVar(target)))
        return PVar(target)


def _make_js_typeof() -> Proc:
    """The internal GIL procedure implementing JS ``typeof``."""
    em = Emitter()
    v = PVar("v")
    cases = [
        (GilType.NUMBER, "number"),
        (GilType.STRING, "string"),
        (GilType.BOOLEAN, "boolean"),
    ]
    labels = [Label(f"ty_{name}") for _, name in cases]
    undef_label = Label("ty_undef")
    for (gil_type, _), label in zip(cases, labels):
        em.emit(IfGoto(v.typeof().eq(Lit(gil_type)), label))
    em.emit(IfGoto(v.eq(Lit(UNDEFINED)), undef_label))
    em.emit(Return(Lit("object")))
    for (_, name), label in zip(cases, labels):
        em.mark(label)
        em.emit(Return(Lit(name)))
    em.mark(undef_label)
    em.emit(Return(Lit("undefined")))
    return Proc("__js_typeof", ("v",), em.finish())
