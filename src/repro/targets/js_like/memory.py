"""MiniJS concrete and symbolic memory models (paper §4.1).

A JS memory is a pair of a heap and a metadata table.  Concretely, the
heap maps object locations (uninterpreted symbols) and property names
(strings or numbers) to values; symbolically, *both* the location and the
property name are logical expressions — JavaScript has dynamic property
access, which is exactly what makes this model branch (paper's
[SGetProp - Branch - Found] rule).

The model has the paper's eight actions:

    initObj, dispose, getProp, setProp, delProp, hasProp,
    getMetadata, setMetadata

JS-faithful behaviours encoded here:

* reading an *absent* property of an existing object yields ``undefined``
  (an uninterpreted symbol, paper §2.1) — not an error;
* ``delete`` of an absent property is a no-op;
* any action on a non-object (``undefined``, ``null``, a number…) or on a
  disposed object is an error branch, which surfaces as a GIL error —
  this is how type errors like ``null.x`` are detected without asserts.

The JS constants ``undefined`` and ``null`` are the uninterpreted symbols
:data:`UNDEFINED` and :data:`JSNULL`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.gil.ops import EvalError, evaluate
from repro.gil.values import Symbol, Value, values_equal
from repro.logic.expr import Expr, Lit, lst
from repro.logic.simplify import simplify
from repro.state.interface import (
    ConcreteMemoryModel,
    MemErr,
    MemOk,
    SymbolicMemoryModel,
    SymMemErr,
    SymMemOk,
)

ACTIONS = frozenset(
    {
        "initObj",
        "dispose",
        "getProp",
        "setProp",
        "delProp",
        "hasProp",
        "getMetadata",
        "setMetadata",
    }
)

#: The JavaScript ``undefined`` and ``null`` constants (paper §2.1:
#: "uninterpreted symbols are used to represent instantiation-specific
#: constants (e.g., the JavaScript undefined and null)").
UNDEFINED = Symbol("undefined")
JSNULL = Symbol("null")


# -- concrete -------------------------------------------------------------------


@dataclass(frozen=True)
class JSObjectC:
    """A concrete object: metadata value + ordered property table."""

    metadata: Value
    props: Tuple[Tuple[Value, Value], ...] = ()

    def get(self, key: Value) -> Optional[Value]:
        for k, v in self.props:
            if values_equal(k, key):
                return v
        return None

    def set(self, key: Value, value: Value) -> "JSObjectC":
        out = []
        replaced = False
        for k, v in self.props:
            if values_equal(k, key):
                out.append((k, value))
                replaced = True
            else:
                out.append((k, v))
        if not replaced:
            out.append((key, value))
        return JSObjectC(self.metadata, tuple(out))

    def delete(self, key: Value) -> "JSObjectC":
        return JSObjectC(
            self.metadata,
            tuple((k, v) for k, v in self.props if not values_equal(k, key)),
        )


@dataclass(frozen=True)
class JSMemory:
    """Concrete JS memory: location → object record (None once disposed)."""

    objects: Tuple[Tuple[Symbol, Optional[JSObjectC]], ...] = ()

    def as_dict(self) -> Dict[Symbol, Optional[JSObjectC]]:
        return dict(self.objects)

    @staticmethod
    def of(objects: Dict[Symbol, Optional[JSObjectC]]) -> "JSMemory":
        return JSMemory(tuple(sorted(objects.items(), key=lambda kv: kv[0].name)))


class JSConcreteMemory(ConcreteMemoryModel):
    """The concrete JS object-heap memory model."""

    @property
    def actions(self) -> frozenset:
        return ACTIONS

    def initial(self) -> JSMemory:
        return JSMemory()

    def execute(self, action: str, memory: JSMemory, value: Value) -> List:
        objects = memory.as_dict()
        if action == "initObj":
            loc, metadata = value
            self._check_loc(loc)
            if loc in objects:
                raise EvalError(f"initObj: location {loc!r} already allocated")
            objects[loc] = JSObjectC(metadata)
            return [MemOk(JSMemory.of(objects), loc)]

        if action == "dispose":
            (loc,) = value
            obj, err = self._resolve(objects, loc)
            if err:
                return [MemErr(err)]
            objects[loc] = None
            return [MemOk(JSMemory.of(objects), True)]

        if action == "getProp":
            loc, key = value
            obj, err = self._resolve(objects, loc)
            if err:
                return [MemErr(err)]
            found = obj.get(key)
            return [MemOk(memory, found if found is not None else UNDEFINED)]

        if action == "setProp":
            loc, key, new_value = value
            obj, err = self._resolve(objects, loc)
            if err:
                return [MemErr(err)]
            objects[loc] = obj.set(key, new_value)
            return [MemOk(JSMemory.of(objects), new_value)]

        if action == "delProp":
            loc, key = value
            obj, err = self._resolve(objects, loc)
            if err:
                return [MemErr(err)]
            objects[loc] = obj.delete(key)
            return [MemOk(JSMemory.of(objects), True)]

        if action == "hasProp":
            loc, key = value
            obj, err = self._resolve(objects, loc)
            if err:
                return [MemErr(err)]
            return [MemOk(memory, obj.get(key) is not None)]

        if action == "getMetadata":
            (loc,) = value
            obj, err = self._resolve(objects, loc)
            if err:
                return [MemErr(err)]
            return [MemOk(memory, obj.metadata)]

        if action == "setMetadata":
            loc, metadata = value
            obj, err = self._resolve(objects, loc)
            if err:
                return [MemErr(err)]
            objects[loc] = JSObjectC(metadata, obj.props)
            return [MemOk(JSMemory.of(objects), metadata)]

        raise ValueError(f"unknown JS action {action!r}")

    @staticmethod
    def _check_loc(loc: Value) -> None:
        if not isinstance(loc, Symbol):
            raise EvalError(f"not an object location: {loc!r}")

    @staticmethod
    def _resolve(objects, loc: Value):
        """Find a live object; error value otherwise (JS TypeError-like)."""
        if not isinstance(loc, Symbol) or loc not in objects:
            return None, ("type-error-not-an-object", loc)
        obj = objects[loc]
        if obj is None:
            return None, ("use-after-dispose", loc)
        return obj, None


# -- symbolic -------------------------------------------------------------------


@dataclass(frozen=True)
class JSObjectS:
    """A symbolic object: metadata expression + property table with
    logical-expression keys (dynamic property names)."""

    metadata: Expr
    props: Tuple[Tuple[Expr, Expr], ...] = ()


@dataclass(frozen=True)
class SymJSMemory:
    """Symbolic JS heap: locations and property tables as expressions."""

    objects: Tuple[Tuple[Expr, Optional[JSObjectS]], ...] = ()

    def as_dict(self) -> Dict[Expr, Optional[JSObjectS]]:
        return dict(self.objects)

    def with_object(
        self, loc: Expr, obj: Optional[JSObjectS]
    ) -> "SymJSMemory":
        """This heap with ``loc`` bound to ``obj`` (replace or append),
        preserving insertion order exactly as a dict round-trip would —
        in one O(B) pass with no intermediate dict."""
        objects = self.objects
        for i, (k, _v) in enumerate(objects):
            if k == loc:
                return SymJSMemory(objects[:i] + ((loc, obj),) + objects[i + 1:])
        return SymJSMemory(objects + ((loc, obj),))

    @staticmethod
    def of(objects: Dict[Expr, Optional[JSObjectS]]) -> "SymJSMemory":
        return SymJSMemory(tuple(objects.items()))


class JSSymbolicMemory(SymbolicMemoryModel):
    """The symbolic JS object-heap memory model."""

    @property
    def actions(self) -> frozenset:
        return ACTIONS

    def initial(self) -> SymJSMemory:
        return SymJSMemory()

    def execute(self, action: str, memory: SymJSMemory, expr: Expr, pc, solver) -> List:
        args = _unpack_list(expr)
        if action == "initObj":
            loc, metadata = args
            if any(k == loc for k, _v in memory.objects):
                raise EvalError(f"initObj: location {loc!r} already allocated")
            return [SymMemOk(memory.with_object(loc, JSObjectS(metadata)), loc)]

        loc = args[0]
        branches: List = []
        for resolved_loc, obj, learned in self._resolve(memory, loc, pc, solver):
            if obj is None:
                # Error branch: not an object / disposed.
                branches.append(
                    SymMemErr(lst("type-error-not-an-object", loc), learned)
                )
                continue
            if obj == "disposed":
                branches.append(SymMemErr(lst("use-after-dispose", loc), learned))
                continue
            branches.extend(
                self._on_object(
                    action, memory, resolved_loc, obj, args, learned, pc, solver
                )
            )
        return branches

    # -- location resolution -----------------------------------------------

    def _resolve(self, memory: SymJSMemory, loc: Expr, pc, solver):
        """Branch over the objects ``loc`` may denote.

        Yields (resolved location key, object | "disposed" | None, learned).
        In whole-program symbolic testing locations are literal symbols, so
        the equalities fold and exactly one branch survives; the general
        branching mirrors [SGetProp - Branch] nonetheless.
        """
        out = []
        miss: List[Expr] = []
        for obj_loc, obj in memory.objects:
            eq = simplify(loc.eq(obj_loc))
            if eq == Lit(False):
                continue
            tag = "disposed" if obj is None else obj
            if eq == Lit(True):
                return [(obj_loc, tag, ())]
            if solver.is_sat(pc.conjoin(eq)):
                out.append((obj_loc, tag, (eq,)))
            miss.append(simplify(loc.neq(obj_loc)))
        if not any(c == Lit(False) for c in miss):
            learned = tuple(c for c in miss if c != Lit(True))
            if not learned or solver.is_sat(pc.conjoin_all(learned)):
                out.append((loc, None, learned))
        return out

    # -- per-object actions ---------------------------------------------------

    def _on_object(
        self, action, memory, loc, obj: JSObjectS, args, learned0, pc, solver
    ) -> List:
        def update(new_obj: Optional[JSObjectS]) -> SymJSMemory:
            return memory.with_object(loc, new_obj)

        if action == "dispose":
            return [SymMemOk(update(None), Lit(True), learned0)]
        if action == "getMetadata":
            return [SymMemOk(memory, obj.metadata, learned0)]
        if action == "setMetadata":
            metadata = args[1]
            return [SymMemOk(update(JSObjectS(metadata, obj.props)), metadata, learned0)]

        key = args[1]
        if action == "getProp":
            return self._match_prop(
                memory, obj, key, learned0, pc, solver,
                on_match=lambda i, v, learned: SymMemOk(memory, v, learned),
                on_absent=lambda learned: SymMemOk(memory, Lit(UNDEFINED), learned),
            )
        if action == "hasProp":
            return self._match_prop(
                memory, obj, key, learned0, pc, solver,
                on_match=lambda i, v, learned: SymMemOk(memory, Lit(True), learned),
                on_absent=lambda learned: SymMemOk(memory, Lit(False), learned),
            )
        if action == "setProp":
            new_value = args[2]

            def set_at(i, _v, learned):
                props = list(obj.props)
                props[i] = (props[i][0], new_value)
                return SymMemOk(
                    update(JSObjectS(obj.metadata, tuple(props))), new_value, learned
                )

            def set_fresh(learned):
                props = obj.props + ((key, new_value),)
                return SymMemOk(
                    update(JSObjectS(obj.metadata, props)), new_value, learned
                )

            return self._match_prop(
                memory, obj, key, learned0, pc, solver,
                on_match=set_at, on_absent=set_fresh,
            )
        if action == "delProp":
            def del_at(i, _v, learned):
                props = obj.props[:i] + obj.props[i + 1:]
                return SymMemOk(
                    update(JSObjectS(obj.metadata, props)), Lit(True), learned
                )

            return self._match_prop(
                memory, obj, key, learned0, pc, solver,
                on_match=del_at,
                on_absent=lambda learned: SymMemOk(memory, Lit(True), learned),
            )
        raise ValueError(f"unknown JS action {action!r}")

    @staticmethod
    def _match_prop(memory, obj, key, learned0, pc, solver, on_match, on_absent):
        """The [SGetProp]-style branch over an object's property table."""
        branches: List = []
        miss: List[Expr] = []
        for i, (prop_key, prop_value) in enumerate(obj.props):
            eq = simplify(key.eq(prop_key))
            if eq == Lit(False):
                continue
            if eq == Lit(True):
                return branches + [on_match(i, prop_value, learned0)]
            learned = learned0 + (eq,)
            if solver.is_sat(pc.conjoin_all(learned)):
                branches.append(on_match(i, prop_value, learned))
            miss.append(simplify(key.neq(prop_key)))
        if not any(c == Lit(False) for c in miss):
            learned = learned0 + tuple(c for c in miss if c != Lit(True))
            if not learned or solver.is_sat(pc.conjoin_all(learned)):
                branches.append(on_absent(learned))
        return branches


# -- interpretation I_JS --------------------------------------------------------


class InterpretationError(Exception):
    """Raised when a symbolic heap has no concrete interpretation."""

    pass


def interpret_memory(env: Dict[str, Value], memory: SymJSMemory) -> JSMemory:
    """I_JS(ε, µ̂): interpret locations, metadata, and property tables."""
    objects: Dict[Symbol, Optional[JSObjectC]] = {}
    for loc_expr, obj in memory.objects:
        loc = evaluate(loc_expr, lvar_env=env)
        if not isinstance(loc, Symbol):
            raise InterpretationError(f"location {loc_expr!r} → non-symbol {loc!r}")
        if loc in objects:
            raise InterpretationError(f"location collision at {loc!r}")
        if obj is None:
            objects[loc] = None
            continue
        metadata = evaluate(obj.metadata, lvar_env=env)
        props: List[Tuple[Value, Value]] = []
        seen_keys: List[Value] = []
        for key_expr, value_expr in obj.props:
            key = evaluate(key_expr, lvar_env=env)
            if any(values_equal(key, k) for k in seen_keys):
                raise InterpretationError(f"property collision at {loc!r}.{key!r}")
            seen_keys.append(key)
            props.append((key, evaluate(value_expr, lvar_env=env)))
        objects[loc] = JSObjectC(metadata, tuple(props))
    return JSMemory.of(objects)


def _unpack_list(expr: Expr) -> List[Expr]:
    from repro.logic.expr import EList

    if isinstance(expr, EList):
        return list(expr.items)
    if isinstance(expr, Lit) and isinstance(expr.value, tuple):
        return [Lit(v) for v in expr.value]
    raise EvalError(f"action argument is not a list: {expr!r}")
