"""MiniJS memory models as a memlib composition (paper §4.1).

A JS memory is a freeable store of object records, each a metadata slot
plus an extensible property table.  Concretely, the heap maps object
locations (uninterpreted symbols) and property names (strings or
numbers) to values; symbolically, *both* the location and the property
name are logical expressions — JavaScript has dynamic property access,
which is exactly what makes this model branch (paper's
[SGetProp - Branch - Found] rule).

The composition expression is the whole model::

    Freeable(RecordProduct(MetadataTable(), PropTable(...)), spec)

yielding the paper's eight actions:

    initObj, dispose, getProp, setProp, delProp, hasProp,
    getMetadata, setMetadata

JS-faithful behaviours encoded in the spec:

* reading an *absent* property of an existing object yields ``undefined``
  (an uninterpreted symbol, paper §2.1) — not an error;
* ``delete`` of an absent property is a no-op;
* any action on a non-object (``undefined``, ``null``, a number…) or on a
  disposed object is an error branch, which surfaces as a GIL error —
  this is how type errors like ``null.x`` are detected without asserts.

The JS constants ``undefined`` and ``null`` are the uninterpreted symbols
:data:`UNDEFINED` and :data:`JSNULL`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gil.ops import evaluate
from repro.gil.values import Symbol, Value, values_equal
from repro.logic.expr import Expr
from repro.memlib.core import PartConcreteModel, PartSymbolicModel
from repro.memlib.freeable import (
    Freeable,
    FreeableSpec,
    Record,
    RecordProduct,
    StoreMem,
    SymStoreMem,
)
from repro.memlib.metadata import MetadataTable
from repro.memlib.proptable import PropTable, PropTableSpec

ACTIONS = frozenset(
    {
        "initObj",
        "dispose",
        "getProp",
        "setProp",
        "delProp",
        "hasProp",
        "getMetadata",
        "setMetadata",
    }
)

#: The JavaScript ``undefined`` and ``null`` constants (paper §2.1:
#: "uninterpreted symbols are used to represent instantiation-specific
#: constants (e.g., the JavaScript undefined and null)").
UNDEFINED = Symbol("undefined")
JSNULL = Symbol("null")


class JSObjectC(Record):
    """A concrete object: metadata value + ordered property table."""


class JSObjectS(Record):
    """A symbolic object: metadata expression + property table with
    logical-expression keys (dynamic property names)."""


class JSMemory(StoreMem):
    """Concrete JS memory: location → object record (None once disposed)."""

    @property
    def objects(self) -> Tuple[Tuple[Symbol, Optional[JSObjectC]], ...]:
        """The store entries under their historical JS name."""
        return self.entries


class SymJSMemory(SymStoreMem):
    """Symbolic JS heap: locations and property tables as expressions."""

    @property
    def objects(self) -> Tuple[Tuple[Expr, Optional[JSObjectS]], ...]:
        """The store entries under their historical JS name."""
        return self.entries

    def with_object(self, loc: Expr, obj: Optional[JSObjectS]) -> "SymJSMemory":
        """This heap with ``loc`` bound to ``obj`` (replace or append)."""
        return self.with_entry(loc, obj)


#: The MiniJS composition: a freeable store of metadata × property-table
#: records (paper §4.1's eight actions fall out of the product).
JS_PART = Freeable(
    RecordProduct(
        MetadataTable(),
        PropTable(PropTableSpec(absent_value=UNDEFINED)),
    ),
    FreeableSpec(
        name="JS",
        concrete_mem=JSMemory,
        symbolic_mem=SymJSMemory,
        concrete_record_cls=JSObjectC,
        symbolic_record_cls=JSObjectS,
    ),
)


class JSConcreteMemory(PartConcreteModel):
    """The concrete JS object-heap memory model."""

    part = JS_PART


class JSSymbolicMemory(PartSymbolicModel):
    """The symbolic JS object-heap memory model."""

    part = JS_PART


# -- interpretation I_JS --------------------------------------------------------


class InterpretationError(Exception):
    """Raised when a symbolic heap has no concrete interpretation."""

    pass


def interpret_memory(env: Dict[str, Value], memory: SymJSMemory) -> JSMemory:
    """I_JS(ε, µ̂): interpret locations, metadata, and property tables."""
    objects: Dict[Symbol, Optional[JSObjectC]] = {}
    for loc_expr, obj in memory.entries:
        loc = evaluate(loc_expr, lvar_env=env)
        if not isinstance(loc, Symbol):
            raise InterpretationError(f"location {loc_expr!r} → non-symbol {loc!r}")
        if loc in objects:
            raise InterpretationError(f"location collision at {loc!r}")
        if obj is None:
            objects[loc] = None
            continue
        metadata = evaluate(obj.metadata, lvar_env=env)
        props: List[Tuple[Value, Value]] = []
        seen_keys: List[Value] = []
        for key_expr, value_expr in obj.props:
            key = evaluate(key_expr, lvar_env=env)
            if any(values_equal(key, k) for k in seen_keys):
                raise InterpretationError(f"property collision at {loc!r}.{key!r}")
            seen_keys.append(key)
            props.append((key, evaluate(value_expr, lvar_env=env)))
        objects[loc] = JSObjectC(metadata, tuple(props))
    return JSMemory.of(objects)
