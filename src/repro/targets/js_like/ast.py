"""MiniJS abstract syntax.

MiniJS is the ES5-Strict-like target language of the Gillian-JS
reproduction (paper §4.1).  It keeps the features that make the JavaScript
memory model interesting — extensible objects, *dynamic* property access
``o[e]``, object metadata, property deletion, functions as first-class
(by-name) values — and drops what the evaluation does not need
(prototypes, closures, ``this``, coercions beyond ``+`` dispatch).
Deviations from full JS are catalogued in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class Node:
    __slots__ = ()


# -- expressions ---------------------------------------------------------------


class Expression(Node):
    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    value: object  # number | str | bool | "null"/"undefined" markers handled below


@dataclass(frozen=True)
class Undefined(Expression):
    pass


@dataclass(frozen=True)
class NullLit(Expression):
    pass


@dataclass(frozen=True)
class Var(Expression):
    name: str


@dataclass(frozen=True)
class FuncRef(Expression):
    """A bare reference to a top-level function (a by-name function value)."""

    name: str


@dataclass(frozen=True)
class ObjectLit(Expression):
    props: Tuple[Tuple[str, Expression], ...]


@dataclass(frozen=True)
class ArrayLit(Expression):
    items: Tuple[Expression, ...]


@dataclass(frozen=True)
class Member(Expression):
    """o.p (static) or o[e] (dynamic): prop is an Expression either way."""

    obj: Expression
    prop: Expression


@dataclass(frozen=True)
class CallExpr(Expression):
    """f(args) — callee is an expression (identifier, variable, member)."""

    callee: Expression
    args: Tuple[Expression, ...]


@dataclass(frozen=True)
class Unary(Expression):
    op: str  # "-" | "!" | "typeof"
    operand: Expression


@dataclass(frozen=True)
class Binary(Expression):
    op: str  # + - * / % === !== < <= > >= && ||
    left: Expression
    right: Expression


@dataclass(frozen=True)
class Conditional(Expression):
    """c ? a : b"""

    cond: Expression
    then_expr: Expression
    else_expr: Expression


@dataclass(frozen=True)
class SymbolicExpr(Expression):
    """symb() / symb_number() / symb_int() / symb_string() / symb_bool()."""

    type_name: Optional[str]


# -- statements ----------------------------------------------------------------


class Statement(Node):
    __slots__ = ()


@dataclass(frozen=True)
class VarDecl(Statement):
    name: str
    init: Optional[Expression]


@dataclass(frozen=True)
class AssignVar(Statement):
    name: str
    value: Expression


@dataclass(frozen=True)
class AssignMember(Statement):
    obj: Expression
    prop: Expression
    value: Expression


@dataclass(frozen=True)
class DeleteStmt(Statement):
    obj: Expression
    prop: Expression


@dataclass(frozen=True)
class ExprStmt(Statement):
    expr: Expression


@dataclass(frozen=True)
class IfStmt(Statement):
    cond: Expression
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...]


@dataclass(frozen=True)
class WhileStmt(Statement):
    cond: Expression
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ForStmt(Statement):
    init: Optional[Statement]
    cond: Optional[Expression]
    step: Optional[Statement]
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ReturnStmt(Statement):
    expr: Optional[Expression]


@dataclass(frozen=True)
class BreakStmt(Statement):
    pass


@dataclass(frozen=True)
class ContinueStmt(Statement):
    pass


@dataclass(frozen=True)
class AssumeStmt(Statement):
    expr: Expression


@dataclass(frozen=True)
class AssertStmt(Statement):
    expr: Expression


# -- program -------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionDef(Node):
    name: str
    params: Tuple[str, ...]
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class Program(Node):
    functions: Tuple[FunctionDef, ...]
