"""MiniJS abstract syntax.

MiniJS is the ES5-Strict-like target language of the Gillian-JS
reproduction (paper §4.1).  It keeps the features that make the JavaScript
memory model interesting — extensible objects, *dynamic* property access
``o[e]``, object metadata, property deletion, functions as first-class
(by-name) values — and drops what the evaluation does not need
(prototypes, closures, ``this``, coercions beyond ``+`` dispatch).
Deviations from full JS are catalogued in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class Node:
    """Base class for all MiniJS AST nodes."""

    __slots__ = ()


# -- expressions ---------------------------------------------------------------


class Expression(Node):
    """Base class for MiniJS expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """Number, string, or boolean literal."""

    value: object  # number | str | bool | "null"/"undefined" markers handled below


@dataclass(frozen=True)
class Undefined(Expression):
    """The ``undefined`` literal."""

    pass


@dataclass(frozen=True)
class NullLit(Expression):
    """The ``null`` literal."""

    pass


@dataclass(frozen=True)
class Var(Expression):
    """Variable reference."""

    name: str


@dataclass(frozen=True)
class FuncRef(Expression):
    """A bare reference to a top-level function (a by-name function value)."""

    name: str


@dataclass(frozen=True)
class ObjectLit(Expression):
    """``{p1: e1, ...}`` object literal."""

    props: Tuple[Tuple[str, Expression], ...]


@dataclass(frozen=True)
class ArrayLit(Expression):
    """``[e1, ..., en]`` array literal."""

    items: Tuple[Expression, ...]


@dataclass(frozen=True)
class Member(Expression):
    """o.p (static) or o[e] (dynamic): prop is an Expression either way."""

    obj: Expression
    prop: Expression


@dataclass(frozen=True)
class CallExpr(Expression):
    """f(args) — callee is an expression (identifier, variable, member)."""

    callee: Expression
    args: Tuple[Expression, ...]


@dataclass(frozen=True)
class Unary(Expression):
    """Unary operator application."""

    op: str  # "-" | "!" | "typeof"
    operand: Expression


@dataclass(frozen=True)
class Binary(Expression):
    """Binary operator application."""

    op: str  # + - * / % === !== < <= > >= && ||
    left: Expression
    right: Expression


@dataclass(frozen=True)
class Conditional(Expression):
    """c ? a : b"""

    cond: Expression
    then_expr: Expression
    else_expr: Expression


@dataclass(frozen=True)
class SymbolicExpr(Expression):
    """symb() / symb_number() / symb_int() / symb_string() / symb_bool()."""

    type_name: Optional[str]


# -- statements ----------------------------------------------------------------


class Statement(Node):
    """Base class for MiniJS statements."""

    __slots__ = ()


@dataclass(frozen=True)
class VarDecl(Statement):
    """``var name = init;``."""

    name: str
    init: Optional[Expression]


@dataclass(frozen=True)
class AssignVar(Statement):
    """``name = value;``."""

    name: str
    value: Expression


@dataclass(frozen=True)
class AssignMember(Statement):
    """``o.p = value;`` / ``o[e] = value;``."""

    obj: Expression
    prop: Expression
    value: Expression


@dataclass(frozen=True)
class DeleteStmt(Statement):
    """``delete o.p;`` / ``delete o[e];``."""

    obj: Expression
    prop: Expression


@dataclass(frozen=True)
class ExprStmt(Statement):
    """An expression evaluated for its side effects."""

    expr: Expression


@dataclass(frozen=True)
class IfStmt(Statement):
    """``if (cond) { ... } else { ... }``."""

    cond: Expression
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...]


@dataclass(frozen=True)
class WhileStmt(Statement):
    """``while (cond) { ... }``."""

    cond: Expression
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ForStmt(Statement):
    """``for (init; cond; step) { ... }``."""

    init: Optional[Statement]
    cond: Optional[Expression]
    step: Optional[Statement]
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ReturnStmt(Statement):
    """``return e;``."""

    expr: Optional[Expression]


@dataclass(frozen=True)
class BreakStmt(Statement):
    """``break;``."""

    pass


@dataclass(frozen=True)
class ContinueStmt(Statement):
    """``continue;``."""

    pass


@dataclass(frozen=True)
class AssumeStmt(Statement):
    """``assume(e);`` — prune paths where ``e`` is false."""

    expr: Expression


@dataclass(frozen=True)
class AssertStmt(Statement):
    """``assert(e);`` — flag paths where ``e`` can be false."""

    expr: Expression


# -- program -------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionDef(Node):
    """A top-level function definition."""

    name: str
    params: Tuple[str, ...]
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class Program(Node):
    """A complete MiniJS program."""

    functions: Tuple[FunctionDef, ...]
