"""The MiniJS instantiation of Gillian (Gillian-JS, paper §4.1)."""

from __future__ import annotations

from repro.gil.syntax import Prog
from repro.targets.language import Language
from repro.targets.js_like.compiler import compile_source
from repro.targets.js_like.memory import (
    JSConcreteMemory,
    JSSymbolicMemory,
    interpret_memory,
)


class MiniJSLanguage(Language):
    """Gillian-JS: dynamic extensible objects with metadata."""

    name = "minijs"

    def compile(self, source: str) -> Prog:
        return compile_source(source)

    def concrete_memory(self) -> JSConcreteMemory:
        return JSConcreteMemory()

    def symbolic_memory(self) -> JSSymbolicMemory:
        return JSSymbolicMemory()

    def interpretation(self):
        return interpret_memory


__all__ = ["MiniJSLanguage"]
