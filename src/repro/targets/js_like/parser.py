"""Parser for MiniJS.

JavaScript-flavoured concrete syntax:

    function bag_add(bag, item) {
      var count = bag_count(bag, item);
      bag.data[item] = count + 1;
      bag.size = bag.size + 1;
      return true;
    }

    function test_add() {
      var bag = { data: {}, size: 0 };
      var x = symb_number();
      bag_add(bag, x);
      assert(bag.size === 1);
    }

Supported statements: ``var``, assignments (including ``+=``, ``-=``,
``++``, ``--`` and member targets), ``if``/``else``, ``while``, ``for``,
``return``, ``break``, ``continue``, ``delete o[p]``, expression
statements, ``assume(e)``, ``assert(e)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend.lexer import ParseError, Token, TokenStream, tokenize
from repro.targets.js_like import ast

_KEYWORDS = {
    "function", "var", "if", "else", "while", "for", "return", "break",
    "continue", "delete", "true", "false", "null", "undefined", "typeof",
    "assume", "assert",
}

_SYMB_TYPES = {
    "symb": None,
    "symb_number": "number",
    "symb_int": "int",
    "symb_string": "string",
    "symb_bool": "bool",
}


def parse_program(source: str) -> ast.Program:
    ts = TokenStream(tokenize(source))
    functions: List[ast.FunctionDef] = []
    while ts.current.kind != "eof":
        functions.append(_parse_function(ts))
    return ast.Program(tuple(functions))


def _parse_function(ts: TokenStream) -> ast.FunctionDef:
    ts.expect("function", kind="ident")
    name = ts.expect_kind("ident").text
    ts.expect("(")
    params: List[str] = []
    if not ts.at(")"):
        params.append(ts.expect_kind("ident").text)
        while ts.accept(","):
            params.append(ts.expect_kind("ident").text)
    ts.expect(")")
    body = _parse_block(ts)
    return ast.FunctionDef(name, tuple(params), body)


def _parse_block(ts: TokenStream) -> Tuple[ast.Statement, ...]:
    ts.expect("{")
    stmts: List[ast.Statement] = []
    while not ts.at("}"):
        stmts.append(_parse_stmt(ts))
    ts.expect("}")
    return tuple(stmts)


def _parse_body_or_stmt(ts: TokenStream) -> Tuple[ast.Statement, ...]:
    if ts.at("{"):
        return _parse_block(ts)
    return (_parse_stmt(ts),)


def _parse_stmt(ts: TokenStream) -> ast.Statement:
    tok = ts.current

    if tok.kind == "ident" and tok.text in _KEYWORDS:
        if ts.accept("var", kind="ident"):
            name = ts.expect_kind("ident").text
            init = None
            if ts.accept("="):
                init = _parse_expr(ts)
            ts.expect(";")
            return ast.VarDecl(name, init)
        if ts.accept("if", kind="ident"):
            ts.expect("(")
            cond = _parse_expr(ts)
            ts.expect(")")
            then_body = _parse_body_or_stmt(ts)
            else_body: Tuple[ast.Statement, ...] = ()
            if ts.accept("else", kind="ident"):
                else_body = _parse_body_or_stmt(ts)
            return ast.IfStmt(cond, then_body, else_body)
        if ts.accept("while", kind="ident"):
            ts.expect("(")
            cond = _parse_expr(ts)
            ts.expect(")")
            return ast.WhileStmt(cond, _parse_body_or_stmt(ts))
        if ts.accept("for", kind="ident"):
            ts.expect("(")
            init: Optional[ast.Statement] = None
            if not ts.at(";"):
                init = _parse_simple_stmt(ts)
            ts.expect(";")
            cond: Optional[ast.Expression] = None
            if not ts.at(";"):
                cond = _parse_expr(ts)
            ts.expect(";")
            step: Optional[ast.Statement] = None
            if not ts.at(")"):
                step = _parse_simple_stmt(ts)
            ts.expect(")")
            return ast.ForStmt(init, cond, step, _parse_body_or_stmt(ts))
        if ts.accept("return", kind="ident"):
            expr = None
            if not ts.at(";"):
                expr = _parse_expr(ts)
            ts.expect(";")
            return ast.ReturnStmt(expr)
        if ts.accept("break", kind="ident"):
            ts.expect(";")
            return ast.BreakStmt()
        if ts.accept("continue", kind="ident"):
            ts.expect(";")
            return ast.ContinueStmt()
        if ts.accept("delete", kind="ident"):
            target = _parse_unary(ts)
            if not isinstance(target, ast.Member):
                raise ParseError("delete target must be a property access", tok)
            ts.expect(";")
            return ast.DeleteStmt(target.obj, target.prop)
        if ts.accept("assume", kind="ident"):
            ts.expect("(")
            expr = _parse_expr(ts)
            ts.expect(")")
            ts.expect(";")
            return ast.AssumeStmt(expr)
        if ts.accept("assert", kind="ident"):
            ts.expect("(")
            expr = _parse_expr(ts)
            ts.expect(")")
            ts.expect(";")
            return ast.AssertStmt(expr)
        raise ParseError(f"unexpected keyword {tok.text!r}", tok)

    stmt = _parse_simple_stmt(ts)
    ts.expect(";")
    return stmt


def _parse_simple_stmt(ts: TokenStream) -> ast.Statement:
    """An assignment / var / increment / expression statement (no ';')."""
    tok = ts.current
    if ts.accept("var", kind="ident"):
        name = ts.expect_kind("ident").text
        init = None
        if ts.accept("="):
            init = _parse_expr(ts)
        return ast.VarDecl(name, init)

    expr = _parse_expr(ts)

    # Increment / decrement: x++ / x-- / o.p++ …
    for op, delta in (("++", "+"), ("--", "-")):
        if ts.accept(op):
            return _make_assign(tok, expr, ast.Binary(delta, expr, ast.Literal(1)))
    # Compound assignment.
    for op in ("+=", "-=", "*=", "/=", "%="):
        if ts.accept(op):
            value = _parse_expr(ts)
            return _make_assign(tok, expr, ast.Binary(op[0], expr, value))
    if ts.accept("="):
        value = _parse_expr(ts)
        return _make_assign(tok, expr, value)
    return ast.ExprStmt(expr)


def _make_assign(tok: Token, target: ast.Expression, value: ast.Expression) -> ast.Statement:
    if isinstance(target, ast.Var):
        return ast.AssignVar(target.name, value)
    if isinstance(target, ast.Member):
        return ast.AssignMember(target.obj, target.prop, value)
    raise ParseError("invalid assignment target", tok)


# -- expressions ----------------------------------------------------------------

def _parse_expr(ts: TokenStream) -> ast.Expression:
    return _parse_conditional(ts)


def _parse_conditional(ts: TokenStream) -> ast.Expression:
    cond = _parse_or(ts)
    if ts.accept("?"):
        then_expr = _parse_expr(ts)
        ts.expect(":")
        else_expr = _parse_expr(ts)
        return ast.Conditional(cond, then_expr, else_expr)
    return cond


def _parse_or(ts: TokenStream) -> ast.Expression:
    left = _parse_and(ts)
    while ts.accept("||"):
        left = ast.Binary("||", left, _parse_and(ts))
    return left


def _parse_and(ts: TokenStream) -> ast.Expression:
    left = _parse_equality(ts)
    while ts.accept("&&"):
        left = ast.Binary("&&", left, _parse_equality(ts))
    return left


def _parse_equality(ts: TokenStream) -> ast.Expression:
    left = _parse_relational(ts)
    while True:
        if ts.accept("==="):
            left = ast.Binary("===", left, _parse_relational(ts))
        elif ts.accept("!=="):
            left = ast.Binary("!==", left, _parse_relational(ts))
        else:
            return left


def _parse_relational(ts: TokenStream) -> ast.Expression:
    left = _parse_additive(ts)
    while True:
        matched = False
        for op in ("<=", ">=", "<", ">"):
            if ts.accept(op):
                left = ast.Binary(op, left, _parse_additive(ts))
                matched = True
                break
        if not matched:
            return left


def _parse_additive(ts: TokenStream) -> ast.Expression:
    left = _parse_multiplicative(ts)
    while True:
        if ts.at("+") :
            # Don't swallow '+=' (handled at statement level) — lexer
            # already splits '+=' as one token, so plain '+' is safe.
            ts.advance()
            left = ast.Binary("+", left, _parse_multiplicative(ts))
        elif ts.at("-"):
            ts.advance()
            left = ast.Binary("-", left, _parse_multiplicative(ts))
        else:
            return left


def _parse_multiplicative(ts: TokenStream) -> ast.Expression:
    left = _parse_unary(ts)
    while True:
        if ts.accept("*"):
            left = ast.Binary("*", left, _parse_unary(ts))
        elif ts.accept("/"):
            left = ast.Binary("/", left, _parse_unary(ts))
        elif ts.accept("%"):
            left = ast.Binary("%", left, _parse_unary(ts))
        else:
            return left


def _parse_unary(ts: TokenStream) -> ast.Expression:
    if ts.accept("-"):
        return ast.Unary("-", _parse_unary(ts))
    if ts.accept("!"):
        return ast.Unary("!", _parse_unary(ts))
    if ts.at("typeof", kind="ident"):
        ts.advance()
        return ast.Unary("typeof", _parse_unary(ts))
    return _parse_postfix(ts)


def _parse_postfix(ts: TokenStream) -> ast.Expression:
    expr = _parse_primary(ts)
    while True:
        if ts.accept("."):
            prop = ts.expect_kind("ident").text
            expr = ast.Member(expr, ast.Literal(prop))
        elif ts.accept("["):
            prop = _parse_expr(ts)
            ts.expect("]")
            expr = ast.Member(expr, prop)
        elif ts.at("("):
            ts.expect("(")
            args: List[ast.Expression] = []
            if not ts.at(")"):
                args.append(_parse_expr(ts))
                while ts.accept(","):
                    args.append(_parse_expr(ts))
            ts.expect(")")
            expr = ast.CallExpr(expr, tuple(args))
        else:
            return expr


def _parse_primary(ts: TokenStream) -> ast.Expression:
    tok = ts.current
    if tok.kind == "number":
        ts.advance()
        return ast.Literal(tok.number_value)
    if tok.kind == "string":
        ts.advance()
        return ast.Literal(tok.text)
    if ts.accept("true", kind="ident"):
        return ast.Literal(True)
    if ts.accept("false", kind="ident"):
        return ast.Literal(False)
    if ts.accept("null", kind="ident"):
        return ast.NullLit()
    if ts.accept("undefined", kind="ident"):
        return ast.Undefined()
    if ts.accept("("):
        expr = _parse_expr(ts)
        ts.expect(")")
        return expr
    if ts.at("{"):
        ts.expect("{")
        props: List[Tuple[str, ast.Expression]] = []
        if not ts.at("}"):
            props.append(_parse_object_prop(ts))
            while ts.accept(","):
                props.append(_parse_object_prop(ts))
        ts.expect("}")
        return ast.ObjectLit(tuple(props))
    if ts.at("["):
        ts.expect("[")
        items: List[ast.Expression] = []
        if not ts.at("]"):
            items.append(_parse_expr(ts))
            while ts.accept(","):
                items.append(_parse_expr(ts))
        ts.expect("]")
        return ast.ArrayLit(tuple(items))
    if tok.kind == "ident":
        if tok.text in _SYMB_TYPES:
            ts.advance()
            ts.expect("(")
            ts.expect(")")
            return ast.SymbolicExpr(_SYMB_TYPES[tok.text])
        if tok.text in _KEYWORDS:
            raise ParseError(f"unexpected keyword {tok.text!r}", tok)
        ts.advance()
        return ast.Var(tok.text)
    raise ParseError(f"unexpected token {tok.text!r}", tok)


def _parse_object_prop(ts: TokenStream) -> Tuple[str, ast.Expression]:
    tok = ts.current
    if tok.kind not in ("ident", "string", "number"):
        raise ParseError("expected a property name", tok)
    ts.advance()
    ts.expect(":")
    return tok.text, _parse_expr(ts)
