"""A Buckets.js-style data-structure library written in MiniJS.

The paper evaluates Gillian-JS on Buckets.js (§4.1, Table 1), a
self-contained JavaScript data-structure library implementing "linked
lists, sets, multi-sets, maps, queues and stacks".  Buckets.js itself is
method-based ES5; MiniJS has no ``this``, so the same structures are
written in function style (``llist_add(list, x)`` instead of
``list.add(x)``), which preserves what the evaluation exercises: dynamic
objects, dynamic property keys (dictionaries prefix keys, as Buckets
does), comparator functions passed as (by-name) function values, loops
and aliasing.

One module string per Table 1 row: array, bag, bst, dict, heap, llist,
mdict, pqueue, queue, set, stack.
"""

from __future__ import annotations

# -- shared helpers -------------------------------------------------------------

PRELUDE = r"""
function default_compare(a, b) {
  if (a < b) { return -1; }
  if (b < a) { return 1; }
  return 0;
}
"""

# -- arrays: helper functions over JS array-objects ------------------------------

ARRAYS = r"""
function arr_new() {
  return { length: 0 };
}

function arr_push(a, item) {
  a[a.length] = item;
  a.length = a.length + 1;
  return true;
}

function arr_get(a, i) {
  if (i < 0 || i >= a.length) { return undefined; }
  return a[i];
}

function arr_set(a, i, item) {
  if (i < 0 || i >= a.length) { return false; }
  a[i] = item;
  return true;
}

function arr_index_of(a, item) {
  var i = 0;
  while (i < a.length) {
    if (a[i] === item) { return i; }
    i = i + 1;
  }
  return -1;
}

function arr_last_index_of(a, item) {
  var i = a.length - 1;
  while (i >= 0) {
    if (a[i] === item) { return i; }
    i = i - 1;
  }
  return -1;
}

function arr_contains(a, item) {
  return arr_index_of(a, item) >= 0;
}

function arr_frequency(a, item) {
  var count = 0;
  for (var i = 0; i < a.length; i++) {
    if (a[i] === item) { count = count + 1; }
  }
  return count;
}

function arr_remove_at(a, i) {
  if (i < 0 || i >= a.length) { return undefined; }
  var removed = a[i];
  for (var j = i; j < a.length - 1; j++) {
    a[j] = a[j + 1];
  }
  delete a[a.length - 1];
  a.length = a.length - 1;
  return removed;
}

function arr_remove(a, item) {
  var i = arr_index_of(a, item);
  if (i < 0) { return false; }
  arr_remove_at(a, i);
  return true;
}

function arr_insert_at(a, i, item) {
  if (i < 0 || i > a.length) { return false; }
  for (var j = a.length; j > i; j--) {
    a[j] = a[j - 1];
  }
  a[i] = item;
  a.length = a.length + 1;
  return true;
}

function arr_swap(a, i, j) {
  if (i < 0 || i >= a.length || j < 0 || j >= a.length) { return false; }
  var tmp = a[i];
  a[i] = a[j];
  a[j] = tmp;
  return true;
}

function arr_equals(a, b) {
  if (a.length !== b.length) { return false; }
  for (var i = 0; i < a.length; i++) {
    if (a[i] !== b[i]) { return false; }
  }
  return true;
}

function arr_copy(a) {
  var out = arr_new();
  for (var i = 0; i < a.length; i++) {
    arr_push(out, a[i]);
  }
  return out;
}
"""

# -- linked list ------------------------------------------------------------------

LLIST = r"""
function llist_new() {
  return { first: null, last: null, size: 0 };
}

function llist_add(list, item) {
  var node = { element: item, next: null };
  if (list.first === null) {
    list.first = node;
    list.last = node;
  } else {
    list.last.next = node;
    list.last = node;
  }
  list.size = list.size + 1;
  return true;
}

function llist_add_first(list, item) {
  var node = { element: item, next: list.first };
  list.first = node;
  if (list.last === null) { list.last = node; }
  list.size = list.size + 1;
  return true;
}

function llist_node_at(list, index) {
  if (index < 0 || index >= list.size) { return null; }
  var node = list.first;
  for (var i = 0; i < index; i++) {
    node = node.next;
  }
  return node;
}

function llist_element_at(list, index) {
  var node = llist_node_at(list, index);
  if (node === null) { return undefined; }
  return node.element;
}

function llist_index_of(list, item) {
  var node = list.first;
  var i = 0;
  while (node !== null) {
    if (node.element === item) { return i; }
    node = node.next;
    i = i + 1;
  }
  return -1;
}

function llist_contains(list, item) {
  return llist_index_of(list, item) >= 0;
}

function llist_remove(list, item) {
  var prev = null;
  var node = list.first;
  while (node !== null) {
    if (node.element === item) {
      if (prev === null) {
        list.first = node.next;
      } else {
        prev.next = node.next;
      }
      if (node === list.last) { list.last = prev; }
      list.size = list.size - 1;
      return true;
    }
    prev = node;
    node = node.next;
  }
  return false;
}

function llist_first(list) {
  if (list.first === null) { return undefined; }
  return list.first.element;
}

function llist_last(list) {
  if (list.last === null) { return undefined; }
  return list.last.element;
}

function llist_is_empty(list) {
  return list.size === 0;
}

function llist_reverse(list) {
  // KNOWN BUG (kept to mirror the second Buckets.js defect the paper's
  // suite re-detects): the last pointer is not updated, so an add after
  // a reverse appends after a stale node and corrupts the list.
  var prev = null;
  var node = list.first;
  while (node !== null) {
    var next = node.next;
    node.next = prev;
    prev = node;
    node = next;
  }
  list.first = prev;
  return true;
}

function llist_to_array(list) {
  var out = arr_new();
  var node = list.first;
  while (node !== null) {
    arr_push(out, node.element);
    node = node.next;
  }
  return out;
}
"""

# -- stack and queue (over linked lists) --------------------------------------------

STACK = r"""
function stack_new() {
  return { list: llist_new() };
}

function stack_push(s, item) {
  return llist_add_first(s.list, item);
}

function stack_pop(s) {
  if (s.list.size === 0) { return undefined; }
  var top = llist_first(s.list);
  llist_remove(s.list, top);
  return top;
}

function stack_peek(s) {
  return llist_first(s.list);
}

function stack_size(s) {
  return s.list.size;
}

function stack_is_empty(s) {
  return s.list.size === 0;
}
"""

QUEUE = r"""
function queue_new() {
  return { list: llist_new() };
}

function queue_enqueue(q, item) {
  return llist_add(q.list, item);
}

function queue_dequeue(q) {
  if (q.list.size === 0) { return undefined; }
  var front = llist_first(q.list);
  var node = q.list.first;
  q.list.first = node.next;
  if (q.list.first === null) { q.list.last = null; }
  q.list.size = q.list.size - 1;
  return front;
}

function queue_peek(q) {
  return llist_first(q.list);
}

function queue_size(q) {
  return q.list.size;
}

function queue_is_empty(q) {
  return q.list.size === 0;
}
"""

# -- dictionary (dynamic property keys, Buckets-style '$' prefixing) ------------------

DICT = r"""
function dict_new() {
  return { table: {}, keys: arr_new(), nElements: 0 };
}

function dict_key(k) {
  return "$" + k;
}

function dict_set(d, k, v) {
  var pk = dict_key(k);
  var had = has_prop(d.table, pk);
  var previous = undefined;
  if (had) {
    previous = d.table[pk];
  } else {
    d.nElements = d.nElements + 1;
    arr_push(d.keys, k);
  }
  d.table[pk] = v;
  return previous;
}

function dict_get(d, k) {
  return d.table[dict_key(k)];
}

function dict_contains_key(d, k) {
  return has_prop(d.table, dict_key(k));
}

function dict_remove(d, k) {
  var pk = dict_key(k);
  if (!has_prop(d.table, pk)) { return undefined; }
  var previous = d.table[pk];
  delete d.table[pk];
  d.nElements = d.nElements - 1;
  arr_remove(d.keys, k);
  return previous;
}

function dict_size(d) {
  return d.nElements;
}

function dict_is_empty(d) {
  return d.nElements === 0;
}

function dict_keys(d) {
  return arr_copy(d.keys);
}
"""

# -- multi-dictionary (dict of arrays) -------------------------------------------------

MDICT = r"""
function mdict_new() {
  return { dict: dict_new() };
}

function mdict_set(md, k, v) {
  var bucket = dict_get(md.dict, k);
  if (bucket === undefined) {
    bucket = arr_new();
    dict_set(md.dict, k, bucket);
  }
  arr_push(bucket, v);
  return true;
}

function mdict_get(md, k) {
  var bucket = dict_get(md.dict, k);
  if (bucket === undefined) { return arr_new(); }
  return bucket;
}

function mdict_remove_value(md, k, v) {
  // KNOWN BUG (kept to mirror the Buckets.js defect re-detected by the
  // paper's suite): removing the last value leaves an empty bucket
  // behind, so mdict_contains_key keeps answering true for the key.
  var bucket = dict_get(md.dict, k);
  if (bucket === undefined) { return false; }
  var removed = arr_remove(bucket, v);
  return removed;
}

function mdict_remove_key(md, k) {
  var bucket = dict_get(md.dict, k);
  if (bucket === undefined) { return false; }
  dict_remove(md.dict, k);
  return true;
}

function mdict_contains_key(md, k) {
  return dict_contains_key(md.dict, k);
}

function mdict_size(md) {
  return dict_size(md.dict);
}
"""

# -- bag (multiset) ---------------------------------------------------------------------

BAG = r"""
function bag_new() {
  return { dict: dict_new(), nElements: 0 };
}

function bag_add(bag, item) {
  return bag_add_n(bag, item, 1);
}

function bag_add_n(bag, item, n) {
  if (n <= 0) { return false; }
  var count = dict_get(bag.dict, item);
  if (count === undefined) {
    dict_set(bag.dict, item, n);
  } else {
    dict_set(bag.dict, item, count + n);
  }
  bag.nElements = bag.nElements + n;
  return true;
}

function bag_count(bag, item) {
  var count = dict_get(bag.dict, item);
  if (count === undefined) { return 0; }
  return count;
}

function bag_contains(bag, item) {
  return bag_count(bag, item) > 0;
}

function bag_remove(bag, item) {
  var count = dict_get(bag.dict, item);
  if (count === undefined) { return false; }
  if (count === 1) {
    dict_remove(bag.dict, item);
  } else {
    dict_set(bag.dict, item, count - 1);
  }
  bag.nElements = bag.nElements - 1;
  return true;
}

function bag_size(bag) {
  return bag.nElements;
}

function bag_is_empty(bag) {
  return bag.nElements === 0;
}
"""

# -- set -----------------------------------------------------------------------------

SET = r"""
function set_new() {
  return { dict: dict_new() };
}

function set_add(s, item) {
  if (dict_contains_key(s.dict, item)) { return false; }
  dict_set(s.dict, item, item);
  return true;
}

function set_contains(s, item) {
  return dict_contains_key(s.dict, item);
}

function set_remove(s, item) {
  if (!dict_contains_key(s.dict, item)) { return false; }
  dict_remove(s.dict, item);
  return true;
}

function set_size(s) {
  return dict_size(s.dict);
}

function set_is_empty(s) {
  return dict_size(s.dict) === 0;
}

function set_to_array(s) {
  return dict_keys(s.dict);
}

function set_union(a, b) {
  var out = set_new();
  var ka = set_to_array(a);
  for (var i = 0; i < ka.length; i++) { set_add(out, ka[i]); }
  var kb = set_to_array(b);
  for (var j = 0; j < kb.length; j++) { set_add(out, kb[j]); }
  return out;
}

function set_intersection(a, b) {
  var out = set_new();
  var ka = set_to_array(a);
  for (var i = 0; i < ka.length; i++) {
    if (set_contains(b, ka[i])) { set_add(out, ka[i]); }
  }
  return out;
}

function set_is_subset_of(a, b) {
  var ka = set_to_array(a);
  for (var i = 0; i < ka.length; i++) {
    if (!set_contains(b, ka[i])) { return false; }
  }
  return true;
}
"""

# -- binary search tree -----------------------------------------------------------------

BST = r"""
function bst_new(compare) {
  return { root: null, nElements: 0, compare: compare };
}

function bst_insert(tree, item) {
  var node = { element: item, left: null, right: null };
  if (tree.root === null) {
    tree.root = node;
    tree.nElements = tree.nElements + 1;
    return true;
  }
  var cmp = tree.compare;
  var current = tree.root;
  while (true) {
    var c = cmp(item, current.element);
    if (c === 0) { return false; }
    if (c < 0) {
      if (current.left === null) {
        current.left = node;
        tree.nElements = tree.nElements + 1;
        return true;
      }
      current = current.left;
    } else {
      if (current.right === null) {
        current.right = node;
        tree.nElements = tree.nElements + 1;
        return true;
      }
      current = current.right;
    }
  }
}

function bst_contains(tree, item) {
  var cmp = tree.compare;
  var current = tree.root;
  while (current !== null) {
    var c = cmp(item, current.element);
    if (c === 0) { return true; }
    if (c < 0) { current = current.left; } else { current = current.right; }
  }
  return false;
}

function bst_minimum(tree) {
  if (tree.root === null) { return undefined; }
  var current = tree.root;
  while (current.left !== null) { current = current.left; }
  return current.element;
}

function bst_maximum(tree) {
  if (tree.root === null) { return undefined; }
  var current = tree.root;
  while (current.right !== null) { current = current.right; }
  return current.element;
}

function bst_size(tree) {
  return tree.nElements;
}

function bst_inorder_collect(node, out) {
  if (node === null) { return out; }
  bst_inorder_collect(node.left, out);
  arr_push(out, node.element);
  bst_inorder_collect(node.right, out);
  return out;
}

function bst_to_array(tree) {
  return bst_inorder_collect(tree.root, arr_new());
}

function bst_remove_min_node(parent, node) {
  while (node.left !== null) {
    parent = node;
    node = node.left;
  }
  if (parent.left === node) {
    parent.left = node.right;
  } else {
    parent.right = node.right;
  }
  return node.element;
}

function bst_remove(tree, item) {
  var cmp = tree.compare;
  var parent = null;
  var current = tree.root;
  while (current !== null) {
    var c = cmp(item, current.element);
    if (c === 0) {
      if (current.left !== null && current.right !== null) {
        if (current.right.left === null) {
          current.element = current.right.element;
          current.right = current.right.right;
        } else {
          current.element = bst_remove_min_node(current, current.right);
        }
      } else {
        var child = current.left;
        if (child === null) { child = current.right; }
        if (parent === null) {
          tree.root = child;
        } else if (parent.left === current) {
          parent.left = child;
        } else {
          parent.right = child;
        }
      }
      tree.nElements = tree.nElements - 1;
      return true;
    }
    parent = current;
    if (c < 0) { current = current.left; } else { current = current.right; }
  }
  return false;
}
"""

# -- binary heap and priority queue -----------------------------------------------------

HEAP = r"""
function heap_new(compare) {
  return { data: arr_new(), compare: compare };
}

function heap_size(h) {
  return h.data.length;
}

function heap_is_empty(h) {
  return h.data.length === 0;
}

function heap_peek(h) {
  if (h.data.length === 0) { return undefined; }
  return h.data[0];
}

function heap_sift_up(h, index) {
  var cmp = h.compare;
  while (index > 0) {
    var parent = floor((index - 1) / 2);
    if (cmp(h.data[index], h.data[parent]) < 0) {
      arr_swap(h.data, index, parent);
      index = parent;
    } else {
      return true;
    }
  }
  return true;
}

function heap_sift_down(h, index) {
  var cmp = h.compare;
  var n = h.data.length;
  while (true) {
    var left = 2 * index + 1;
    var right = 2 * index + 2;
    var smallest = index;
    if (left < n && cmp(h.data[left], h.data[smallest]) < 0) { smallest = left; }
    if (right < n && cmp(h.data[right], h.data[smallest]) < 0) { smallest = right; }
    if (smallest === index) { return true; }
    arr_swap(h.data, index, smallest);
    index = smallest;
  }
}

function heap_add(h, item) {
  arr_push(h.data, item);
  heap_sift_up(h, h.data.length - 1);
  return true;
}

function heap_remove_root(h) {
  if (h.data.length === 0) { return undefined; }
  var root = h.data[0];
  var last = arr_remove_at(h.data, h.data.length - 1);
  if (h.data.length > 0) {
    h.data[0] = last;
    heap_sift_down(h, 0);
  }
  return root;
}
"""

PQUEUE = r"""
function pq_compare(a, b) {
  // A priority queue dequeues the *highest* priority first: invert.
  return default_compare(b.priority, a.priority);
}

function pqueue_new() {
  return { heap: heap_new(pq_compare) };
}

function pqueue_enqueue(pq, item, priority) {
  return heap_add(pq.heap, { element: item, priority: priority });
}

function pqueue_dequeue(pq) {
  var entry = heap_remove_root(pq.heap);
  if (entry === undefined) { return undefined; }
  return entry.element;
}

function pqueue_peek(pq) {
  var entry = heap_peek(pq.heap);
  if (entry === undefined) { return undefined; }
  return entry.element;
}

function pqueue_size(pq) {
  return heap_size(pq.heap);
}

function pqueue_is_empty(pq) {
  return heap_size(pq.heap) === 0;
}
"""

#: Module sources keyed by Table 1 row name.
MODULES = {
    "array": ARRAYS,
    "bag": BAG,
    "bst": BST,
    "dict": DICT,
    "heap": HEAP,
    "llist": LLIST,
    "mdict": MDICT,
    "pqueue": PQUEUE,
    "queue": QUEUE,
    "set": SET,
    "stack": STACK,
}

#: Dependencies between modules (a module's source needs these first).
DEPS = {
    "array": (),
    "llist": ("array",),
    "stack": ("array", "llist"),
    "queue": ("array", "llist"),
    "dict": ("array",),
    "mdict": ("array", "dict"),
    "bag": ("array", "dict"),
    "set": ("array", "dict"),
    "bst": ("array",),
    "heap": ("array",),
    "pqueue": ("array", "heap"),
}


def module_source(name: str) -> str:
    """The full MiniJS source for a module, with prelude and dependencies."""
    parts = [PRELUDE]
    for dep in DEPS[name]:
        parts.append(MODULES[dep])
    parts.append(MODULES[name])
    return "\n".join(parts)


def full_library() -> str:
    """The whole library in dependency order."""
    order = ["array", "llist", "stack", "queue", "dict", "mdict", "bag",
             "set", "bst", "heap", "pqueue"]
    return "\n".join([PRELUDE] + [MODULES[m] for m in order])
