"""Buckets-style MiniJS suites (the paper's Table 1 workloads)."""
