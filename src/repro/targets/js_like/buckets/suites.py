"""Symbolic test suites for the Buckets-style MiniJS library (Table 1).

One suite per Table 1 row, with the same number of symbolic tests per
structure as the paper reports (#T column: array 9, bag 7, bst 11,
dict 7, heap 4, llist 9, mdict 6, pqueue 5, queue 6, set 6, stack 4 —
74 in total).  The tests are "purposefully written to cover multiple
execution traces" (§4.1): inputs are symbolic, so each test explores many
paths.

Two tests intentionally re-detect the two known library bugs (mirroring
the paper: "our testing ... was able to detect the two bugs found in our
previous work"): ``test_mdict_remove_last_value_removes_key`` and
``test_llist_add_after_reverse``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.targets.js_like.buckets.library import module_source

# Each suite: row name → (list of test function names, test source).

_ARRAY_TESTS = r"""
function test_push_get() {
  var a = arr_new();
  var x = symb_number();
  arr_push(a, x);
  arr_push(a, 2);
  assert(a.length === 2);
  assert(arr_get(a, 0) === x);
  assert(arr_get(a, 1) === 2);
}

function test_get_out_of_bounds() {
  var a = arr_new();
  arr_push(a, 1);
  var i = symb_int();
  assume(i < 0 || i >= 1);
  assert(arr_get(a, i) === undefined);
}

function test_index_of() {
  var a = arr_new();
  var x = symb_number();
  var y = symb_number();
  assume(x !== y);
  arr_push(a, x);
  arr_push(a, y);
  assert(arr_index_of(a, x) === 0);
  assert(arr_index_of(a, y) === 1);
}

function test_last_index_of() {
  var a = arr_new();
  var x = symb_number();
  arr_push(a, x);
  arr_push(a, x);
  assert(arr_last_index_of(a, x) === 1);
  assert(arr_index_of(a, x) === 0);
}

function test_contains_frequency() {
  var a = arr_new();
  var x = symb_number();
  var y = symb_number();
  arr_push(a, x);
  arr_push(a, y);
  assert(arr_contains(a, x));
  var f = arr_frequency(a, x);
  if (x === y) { assert(f === 2); } else { assert(f === 1); }
}

function test_remove_at_shifts() {
  var a = arr_new();
  arr_push(a, 10);
  var x = symb_number();
  arr_push(a, x);
  arr_push(a, 30);
  var removed = arr_remove_at(a, 1);
  assert(removed === x);
  assert(a.length === 2);
  assert(arr_get(a, 0) === 10);
  assert(arr_get(a, 1) === 30);
}

function test_insert_at() {
  var a = arr_new();
  arr_push(a, 1);
  arr_push(a, 3);
  var x = symb_number();
  var ok = arr_insert_at(a, 1, x);
  assert(ok);
  assert(a.length === 3);
  assert(arr_get(a, 1) === x);
  assert(arr_get(a, 2) === 3);
}

function test_swap_and_equals() {
  var a = arr_new();
  var x = symb_number();
  var y = symb_number();
  arr_push(a, x); arr_push(a, y);
  var b = arr_copy(a);
  arr_swap(a, 0, 1);
  assert(arr_get(a, 0) === y);
  assert(arr_get(a, 1) === x);
  if (x === y) { assert(arr_equals(a, b)); }
}

function test_remove_value() {
  var a = arr_new();
  var x = symb_number();
  var y = symb_number();
  assume(x !== y);
  arr_push(a, x); arr_push(a, y);
  assert(arr_remove(a, x));
  assert(a.length === 1);
  assert(!arr_contains(a, x));
  assert(arr_contains(a, y));
}
"""

_BAG_TESTS = r"""
function test_add_count() {
  var b = bag_new();
  var x = symb_number();
  bag_add(b, x);
  bag_add(b, x);
  assert(bag_count(b, x) === 2);
  assert(bag_size(b) === 2);
}

function test_add_distinct() {
  var b = bag_new();
  var x = symb_number();
  var y = symb_number();
  bag_add(b, x);
  bag_add(b, y);
  if (x === y) { assert(bag_count(b, x) === 2); }
  else { assert(bag_count(b, x) === 1 && bag_count(b, y) === 1); }
  assert(bag_size(b) === 2);
}

function test_add_n() {
  var b = bag_new();
  var n = symb_int();
  assume(1 <= n && n <= 3);
  bag_add_n(b, "item", n);
  assert(bag_count(b, "item") === n);
  assert(bag_size(b) === n);
}

function test_add_nonpositive_rejected() {
  var b = bag_new();
  var n = symb_int();
  assume(n <= 0);
  var ok = bag_add_n(b, "item", n);
  assert(!ok);
  assert(bag_size(b) === 0);
}

function test_remove_decrements() {
  var b = bag_new();
  var x = symb_number();
  bag_add(b, x);
  bag_add(b, x);
  assert(bag_remove(b, x));
  assert(bag_count(b, x) === 1);
  assert(bag_remove(b, x));
  assert(bag_count(b, x) === 0);
  assert(!bag_contains(b, x));
  assert(bag_is_empty(b));
}

function test_remove_absent() {
  var b = bag_new();
  var x = symb_number();
  var y = symb_number();
  assume(x !== y);
  bag_add(b, x);
  assert(!bag_remove(b, y));
  assert(bag_size(b) === 1);
}

function test_contains() {
  var b = bag_new();
  var x = symb_string();
  bag_add(b, x);
  assert(bag_contains(b, x));
  assert(!bag_is_empty(b));
}
"""

_BST_TESTS = r"""
function test_insert_contains() {
  var t = bst_new(default_compare);
  var x = symb_int();
  assume(0 <= x && x <= 2);
  bst_insert(t, 1);
  bst_insert(t, x);
  assert(bst_contains(t, x));
  assert(bst_contains(t, 1));
}

function test_insert_duplicate() {
  var t = bst_new(default_compare);
  var x = symb_number();
  assert(bst_insert(t, x));
  assert(!bst_insert(t, x));
  assert(bst_size(t) === 1);
}

function test_size() {
  var t = bst_new(default_compare);
  var x = symb_int();
  var y = symb_int();
  assume(0 <= x && x <= 1 && 0 <= y && y <= 1);
  bst_insert(t, x);
  bst_insert(t, y);
  if (x === y) { assert(bst_size(t) === 1); }
  else { assert(bst_size(t) === 2); }
}

function test_minimum() {
  var t = bst_new(default_compare);
  var x = symb_int();
  assume(-2 <= x && x <= 2);
  bst_insert(t, 0);
  bst_insert(t, x);
  var m = bst_minimum(t);
  assert(m <= 0 && m <= x);
  assert(m === 0 || m === x);
}

function test_maximum() {
  var t = bst_new(default_compare);
  var x = symb_int();
  assume(-2 <= x && x <= 2);
  bst_insert(t, 0);
  bst_insert(t, x);
  var m = bst_maximum(t);
  assert(0 <= m && x <= m);
}

function test_inorder_sorted() {
  var t = bst_new(default_compare);
  var x = symb_int();
  var y = symb_int();
  assume(0 <= x && x <= 2 && 0 <= y && y <= 2);
  assume(x !== y);
  bst_insert(t, x);
  bst_insert(t, y);
  var a = bst_to_array(t);
  assert(a.length === 2);
  assert(arr_get(a, 0) < arr_get(a, 1));
}

function test_empty_tree() {
  var t = bst_new(default_compare);
  assert(bst_size(t) === 0);
  assert(bst_minimum(t) === undefined);
  assert(bst_maximum(t) === undefined);
  assert(!bst_contains(t, 1));
}

function test_remove_leaf() {
  var t = bst_new(default_compare);
  bst_insert(t, 2);
  var x = symb_int();
  assume(0 <= x && x <= 4);
  assume(x !== 2);
  bst_insert(t, x);
  assert(bst_remove(t, x));
  assert(!bst_contains(t, x));
  assert(bst_contains(t, 2));
  assert(bst_size(t) === 1);
}

function test_remove_root() {
  var t = bst_new(default_compare);
  var x = symb_int();
  assume(0 <= x && x <= 4);
  assume(x !== 2);
  bst_insert(t, 2);
  bst_insert(t, x);
  assert(bst_remove(t, 2));
  assert(!bst_contains(t, 2));
  assert(bst_contains(t, x));
}

function test_remove_absent() {
  var t = bst_new(default_compare);
  var x = symb_int();
  var y = symb_int();
  assume(x !== y);
  bst_insert(t, x);
  assert(!bst_remove(t, y));
  assert(bst_size(t) === 1);
}

function test_remove_node_with_two_children() {
  var t = bst_new(default_compare);
  bst_insert(t, 2);
  bst_insert(t, 1);
  bst_insert(t, 4);
  bst_insert(t, 3);
  assert(bst_remove(t, 2));
  var a = bst_to_array(t);
  assert(a.length === 3);
  assert(arr_get(a, 0) === 1);
  assert(arr_get(a, 1) === 3);
  assert(arr_get(a, 2) === 4);
}
"""

_DICT_TESTS = r"""
function test_set_get() {
  var d = dict_new();
  var k = symb_string();
  var v = symb_number();
  dict_set(d, k, v);
  assert(dict_get(d, k) === v);
  assert(dict_size(d) === 1);
}

function test_set_overwrites() {
  var d = dict_new();
  var k = symb_string();
  dict_set(d, k, 1);
  var previous = dict_set(d, k, 2);
  assert(previous === 1);
  assert(dict_get(d, k) === 2);
  assert(dict_size(d) === 1);
}

function test_two_keys() {
  var d = dict_new();
  var k1 = symb_string();
  var k2 = symb_string();
  assume(k1 !== k2);
  dict_set(d, k1, 1);
  dict_set(d, k2, 2);
  assert(dict_size(d) === 2);
  assert(dict_get(d, k1) === 1);
  assert(dict_get(d, k2) === 2);
}

function test_missing_key_undefined() {
  var d = dict_new();
  var k1 = symb_string();
  var k2 = symb_string();
  assume(k1 !== k2);
  dict_set(d, k1, 1);
  assert(dict_get(d, k2) === undefined);
  assert(!dict_contains_key(d, k2));
}

function test_remove() {
  var d = dict_new();
  var k = symb_string();
  dict_set(d, k, 42);
  var removed = dict_remove(d, k);
  assert(removed === 42);
  assert(dict_size(d) === 0);
  assert(!dict_contains_key(d, k));
  assert(dict_is_empty(d));
}

function test_remove_absent() {
  var d = dict_new();
  var k = symb_string();
  assert(dict_remove(d, k) === undefined);
  assert(dict_size(d) === 0);
}

function test_keys() {
  var d = dict_new();
  var k1 = symb_string();
  var k2 = symb_string();
  assume(k1 !== k2);
  dict_set(d, k1, 1);
  dict_set(d, k2, 2);
  var ks = dict_keys(d);
  assert(ks.length === 2);
  assert(arr_contains(ks, k1));
  assert(arr_contains(ks, k2));
}
"""

_HEAP_TESTS = r"""
function test_add_peek() {
  var h = heap_new(default_compare);
  var x = symb_int();
  assume(-2 <= x && x <= 2);
  heap_add(h, 0);
  heap_add(h, x);
  var top = heap_peek(h);
  assert(top <= 0 && top <= x);
  assert(heap_size(h) === 2);
}

function test_remove_root_order() {
  var h = heap_new(default_compare);
  var x = symb_int();
  var y = symb_int();
  assume(0 <= x && x <= 2 && 0 <= y && y <= 2);
  heap_add(h, x);
  heap_add(h, y);
  var a = heap_remove_root(h);
  var b = heap_remove_root(h);
  assert(a <= b);
  assert(heap_is_empty(h));
}

function test_empty_heap() {
  var h = heap_new(default_compare);
  assert(heap_peek(h) === undefined);
  assert(heap_remove_root(h) === undefined);
  assert(heap_size(h) === 0);
}

function test_three_elements_min_at_root() {
  var h = heap_new(default_compare);
  var x = symb_int();
  assume(-1 <= x && x <= 1);
  heap_add(h, 1);
  heap_add(h, x);
  heap_add(h, 0);
  var top = heap_peek(h);
  assert(top <= 0 && top <= x);
  assert(heap_size(h) === 3);
}
"""

_LLIST_TESTS = r"""
function test_add_size_order() {
  var l = llist_new();
  var x = symb_number();
  llist_add(l, x);
  llist_add(l, 2);
  assert(l.size === 2);
  assert(llist_element_at(l, 0) === x);
  assert(llist_element_at(l, 1) === 2);
}

function test_add_first() {
  var l = llist_new();
  var x = symb_number();
  llist_add(l, 1);
  llist_add_first(l, x);
  assert(llist_first(l) === x);
  assert(llist_last(l) === 1);
  assert(l.size === 2);
}

function test_index_of() {
  var l = llist_new();
  var x = symb_number();
  var y = symb_number();
  assume(x !== y);
  llist_add(l, x);
  llist_add(l, y);
  assert(llist_index_of(l, y) === 1);
  assert(llist_contains(l, x));
}

function test_element_at_out_of_range() {
  var l = llist_new();
  llist_add(l, 1);
  var i = symb_int();
  assume(i < 0 || i >= 1);
  assert(llist_element_at(l, i) === undefined);
}

function test_remove_first_element() {
  var l = llist_new();
  var x = symb_number();
  var y = symb_number();
  assume(x !== y);
  llist_add(l, x);
  llist_add(l, y);
  assert(llist_remove(l, x));
  assert(l.size === 1);
  assert(llist_first(l) === y);
  assert(llist_last(l) === y);
}

function test_remove_last_element_updates_last() {
  var l = llist_new();
  var x = symb_number();
  var y = symb_number();
  assume(x !== y);
  llist_add(l, x);
  llist_add(l, y);
  assert(llist_remove(l, y));
  assert(llist_last(l) === x);
  llist_add(l, 99);
  assert(llist_last(l) === 99);
  assert(llist_element_at(l, 1) === 99);
}

function test_remove_absent() {
  var l = llist_new();
  var x = symb_number();
  var y = symb_number();
  assume(x !== y);
  llist_add(l, x);
  assert(!llist_remove(l, y));
  assert(l.size === 1);
}

function test_reverse_order() {
  var l = llist_new();
  var x = symb_number();
  llist_add(l, x);
  llist_add(l, 2);
  llist_add(l, 3);
  llist_reverse(l);
  assert(llist_element_at(l, 0) === 3);
  assert(llist_element_at(l, 1) === 2);
  assert(llist_element_at(l, 2) === x);
}

function test_llist_add_after_reverse() {
  // Detects the known reverse bug: the last pointer goes stale.
  var l = llist_new();
  var x = symb_number();
  llist_add(l, x);
  llist_add(l, 2);
  llist_reverse(l);
  llist_add(l, 3);
  assert(l.size === 3);
  assert(llist_element_at(l, 2) === 3);
  assert(llist_last(l) === 3);
}
"""

_MDICT_TESTS = r"""
function test_set_get_multi() {
  var md = mdict_new();
  var k = symb_string();
  mdict_set(md, k, 1);
  mdict_set(md, k, 2);
  var vs = mdict_get(md, k);
  assert(vs.length === 2);
  assert(arr_get(vs, 0) === 1);
  assert(arr_get(vs, 1) === 2);
}

function test_get_absent_is_empty() {
  var md = mdict_new();
  var k = symb_string();
  var vs = mdict_get(md, k);
  assert(vs.length === 0);
  assert(!mdict_contains_key(md, k));
}

function test_two_keys() {
  var md = mdict_new();
  var k1 = symb_string();
  var k2 = symb_string();
  assume(k1 !== k2);
  mdict_set(md, k1, 1);
  mdict_set(md, k2, 2);
  assert(mdict_size(md) === 2);
  assert(mdict_get(md, k1).length === 1);
}

function test_remove_value() {
  var md = mdict_new();
  var k = symb_string();
  mdict_set(md, k, 1);
  mdict_set(md, k, 2);
  assert(mdict_remove_value(md, k, 1));
  var vs = mdict_get(md, k);
  assert(vs.length === 1);
  assert(arr_get(vs, 0) === 2);
}

function test_mdict_remove_last_value_removes_key() {
  // Detects the known multi-dictionary bug: removing the last value
  // must remove the key, but an empty bucket is left behind.
  var md = mdict_new();
  var k = symb_string();
  mdict_set(md, k, 7);
  assert(mdict_remove_value(md, k, 7));
  assert(!mdict_contains_key(md, k));
}

function test_remove_key() {
  var md = mdict_new();
  var k = symb_string();
  mdict_set(md, k, 1);
  mdict_set(md, k, 2);
  assert(mdict_remove_key(md, k));
  assert(!mdict_contains_key(md, k));
  assert(mdict_size(md) === 0);
}
"""

_PQUEUE_TESTS = r"""
function test_enqueue_dequeue_priority() {
  var pq = pqueue_new();
  var p = symb_int();
  assume(0 <= p && p <= 2);
  pqueue_enqueue(pq, "low", 1);
  pqueue_enqueue(pq, "sym", p);
  var first = pqueue_dequeue(pq);
  if (p > 1) { assert(first === "sym"); }
  if (p < 1) { assert(first === "low"); }
}

function test_peek_highest() {
  var pq = pqueue_new();
  pqueue_enqueue(pq, "a", 1);
  pqueue_enqueue(pq, "b", 5);
  assert(pqueue_peek(pq) === "b");
  assert(pqueue_size(pq) === 2);
}

function test_empty() {
  var pq = pqueue_new();
  assert(pqueue_dequeue(pq) === undefined);
  assert(pqueue_peek(pq) === undefined);
  assert(pqueue_is_empty(pq));
}

function test_dequeue_all_sorted() {
  var pq = pqueue_new();
  var p = symb_int();
  assume(0 <= p && p <= 4);
  pqueue_enqueue(pq, 2, 2);
  pqueue_enqueue(pq, p, p);
  pqueue_enqueue(pq, 3, 3);
  var a = pqueue_dequeue(pq);
  var b = pqueue_dequeue(pq);
  var c = pqueue_dequeue(pq);
  assert(b <= a);
  assert(c <= b);
  assert(pqueue_is_empty(pq));
}

function test_size_tracks() {
  var pq = pqueue_new();
  var p = symb_int();
  pqueue_enqueue(pq, "x", p);
  assert(pqueue_size(pq) === 1);
  pqueue_dequeue(pq);
  assert(pqueue_size(pq) === 0);
}
"""

_QUEUE_TESTS = r"""
function test_fifo_order() {
  var q = queue_new();
  var x = symb_number();
  queue_enqueue(q, x);
  queue_enqueue(q, 2);
  assert(queue_dequeue(q) === x);
  assert(queue_dequeue(q) === 2);
  assert(queue_is_empty(q));
}

function test_peek_does_not_remove() {
  var q = queue_new();
  var x = symb_number();
  queue_enqueue(q, x);
  assert(queue_peek(q) === x);
  assert(queue_size(q) === 1);
}

function test_dequeue_empty() {
  var q = queue_new();
  assert(queue_dequeue(q) === undefined);
  assert(queue_peek(q) === undefined);
}

function test_interleaved() {
  var q = queue_new();
  var x = symb_number();
  queue_enqueue(q, 1);
  assert(queue_dequeue(q) === 1);
  queue_enqueue(q, x);
  queue_enqueue(q, 3);
  assert(queue_dequeue(q) === x);
  assert(queue_size(q) === 1);
}

function test_size_counts() {
  var q = queue_new();
  var n = symb_int();
  assume(0 <= n && n <= 3);
  for (var i = 0; i < n; i++) {
    queue_enqueue(q, i);
  }
  assert(queue_size(q) === n);
}

function test_drain_after_refill() {
  var q = queue_new();
  queue_enqueue(q, 1);
  queue_dequeue(q);
  assert(queue_is_empty(q));
  queue_enqueue(q, 2);
  assert(queue_peek(q) === 2);
  assert(queue_dequeue(q) === 2);
}
"""

_SET_TESTS = r"""
function test_add_contains() {
  var s = set_new();
  var x = symb_number();
  assert(set_add(s, x));
  assert(set_contains(s, x));
  assert(set_size(s) === 1);
}

function test_add_duplicate() {
  var s = set_new();
  var x = symb_number();
  set_add(s, x);
  assert(!set_add(s, x));
  assert(set_size(s) === 1);
}

function test_remove() {
  var s = set_new();
  var x = symb_number();
  set_add(s, x);
  assert(set_remove(s, x));
  assert(!set_contains(s, x));
  assert(set_is_empty(s));
  assert(!set_remove(s, x));
}

function test_union() {
  var a = set_new();
  var b = set_new();
  var x = symb_int();
  var y = symb_int();
  assume(0 <= x && x <= 1 && 0 <= y && y <= 1);
  set_add(a, x);
  set_add(b, y);
  var u = set_union(a, b);
  assert(set_contains(u, x));
  assert(set_contains(u, y));
  if (x === y) { assert(set_size(u) === 1); }
  else { assert(set_size(u) === 2); }
}

function test_intersection() {
  var a = set_new();
  var b = set_new();
  var x = symb_int();
  var y = symb_int();
  assume(0 <= x && x <= 1 && 0 <= y && y <= 1);
  set_add(a, x);
  set_add(b, y);
  var inter = set_intersection(a, b);
  if (x === y) { assert(set_contains(inter, x) && set_size(inter) === 1); }
  else { assert(set_size(inter) === 0); }
}

function test_subset() {
  var a = set_new();
  var b = set_new();
  var x = symb_int();
  assume(0 <= x && x <= 1);
  set_add(a, x);
  set_add(b, 0);
  set_add(b, 1);
  assert(set_is_subset_of(a, b));
  assert(!set_is_subset_of(b, a));
}
"""

_STACK_TESTS = r"""
function test_lifo_order() {
  var s = stack_new();
  var x = symb_number();
  stack_push(s, 1);
  stack_push(s, x);
  assert(stack_pop(s) === x);
  assert(stack_pop(s) === 1);
  assert(stack_is_empty(s));
}

function test_peek() {
  var s = stack_new();
  var x = symb_number();
  stack_push(s, x);
  assert(stack_peek(s) === x);
  assert(stack_size(s) === 1);
}

function test_pop_empty() {
  var s = stack_new();
  assert(stack_pop(s) === undefined);
  assert(stack_peek(s) === undefined);
}

function test_push_pop_push() {
  var s = stack_new();
  var x = symb_number();
  var y = symb_number();
  stack_push(s, x);
  assert(stack_pop(s) === x);
  stack_push(s, y);
  stack_push(s, x);
  assert(stack_size(s) === 2);
  assert(stack_pop(s) === x);
  assert(stack_peek(s) === y);
}
"""

_RAW_SUITES: Dict[str, str] = {
    "array": _ARRAY_TESTS,
    "bag": _BAG_TESTS,
    "bst": _BST_TESTS,
    "dict": _DICT_TESTS,
    "heap": _HEAP_TESTS,
    "llist": _LLIST_TESTS,
    "mdict": _MDICT_TESTS,
    "pqueue": _PQUEUE_TESTS,
    "queue": _QUEUE_TESTS,
    "set": _SET_TESTS,
    "stack": _STACK_TESTS,
}

#: Tests that are *expected to fail*: they re-detect the two known
#: Buckets.js bugs, mirroring the paper's finding.
KNOWN_BUG_TESTS = {
    "test_llist_add_after_reverse",
    "test_mdict_remove_last_value_removes_key",
}


def _test_names(source: str) -> List[str]:
    names = []
    for line in source.splitlines():
        line = line.strip()
        if line.startswith("function test_"):
            names.append(line[len("function "):].split("(")[0])
    return names


def suite(name: str) -> Tuple[str, List[str]]:
    """(full MiniJS source, test entry points) for one Table 1 row."""
    source = module_source(name) + "\n" + _RAW_SUITES[name]
    return source, _test_names(_RAW_SUITES[name])


def suite_names() -> List[str]:
    return sorted(_RAW_SUITES)


def expected_test_counts() -> Dict[str, int]:
    """The paper's Table 1 #T column."""
    return {
        "array": 9, "bag": 7, "bst": 11, "dict": 7, "heap": 4, "llist": 9,
        "mdict": 6, "pqueue": 5, "queue": 6, "set": 6, "stack": 4,
    }
