"""A reference big-step interpreter for MiniJS (conformance oracle, E5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gil.values import GilType, Symbol, Value, type_of, values_equal
from repro.targets.js_like import ast
from repro.targets.js_like.memory import JSNULL, UNDEFINED


@dataclass
class InterpResult:
    """Final outcome of a concrete MiniJS run."""

    kind: str  # "normal" | "error" | "vanish"
    value: Value = UNDEFINED


class JSError(Exception):
    """Raised by the concrete interpreter for a thrown JS error value."""

    def __init__(self, value) -> None:
        self.value = value


class _Return(Exception):
    def __init__(self, value: Value) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Vanish(Exception):
    pass


@dataclass
class _Object:
    metadata: Value
    props: List[Tuple[Value, Value]] = field(default_factory=list)
    alive: bool = True

    def get(self, key: Value) -> Optional[Value]:
        for k, v in self.props:
            if values_equal(k, key):
                return v
        return None

    def set(self, key: Value, value: Value) -> None:
        for i, (k, _) in enumerate(self.props):
            if values_equal(k, key):
                self.props[i] = (k, value)
                return
        self.props.append((key, value))

    def delete(self, key: Value) -> None:
        self.props = [(k, v) for k, v in self.props if not values_equal(k, key)]


class JSInterpreter:
    """Direct interpreter over the MiniJS AST."""

    def __init__(self, symb_values: Optional[Sequence[Value]] = None) -> None:
        self._symb_values: List[Value] = list(symb_values or [])
        self._heap: Dict[Symbol, _Object] = {}
        self._alloc_count = 0

    def run(self, program: ast.Program, entry: str, args: Sequence[Value] = ()) -> InterpResult:
        functions = {f.name: f for f in program.functions}
        if entry not in functions:
            raise ValueError(f"unknown function {entry!r}")
        try:
            value = self._call_function(functions, functions[entry], list(args))
        except JSError as exc:
            return InterpResult("error", exc.value)
        except _Vanish:
            return InterpResult("vanish")
        return InterpResult("normal", value)

    # -- helpers -----------------------------------------------------------

    def _alloc(self, metadata: Value) -> Symbol:
        loc = Symbol(f"jsobj_{self._alloc_count}")
        self._alloc_count += 1
        self._heap[loc] = _Object(metadata)
        return loc

    def _object(self, value: Value) -> _Object:
        if not isinstance(value, Symbol) or value not in self._heap:
            raise JSError(("type-error-not-an-object", value))
        obj = self._heap[value]
        if not obj.alive:
            raise JSError(("use-after-dispose", value))
        return obj

    def _call_function(self, functions, func: ast.FunctionDef, args: List[Value]) -> Value:
        if len(args) != len(func.params):
            raise JSError(f"{func.name}: arity mismatch")
        env: Dict[str, Value] = dict(zip(func.params, args))
        try:
            for stmt in func.body:
                self._stmt(functions, env, stmt)
        except _Return as ret:
            return ret.value
        return UNDEFINED

    # -- statements ----------------------------------------------------------

    def _stmt(self, functions, env: Dict[str, Value], stmt: ast.Statement) -> None:
        if isinstance(stmt, ast.VarDecl):
            env[stmt.name] = (
                self._expr(functions, env, stmt.init)
                if stmt.init is not None
                else UNDEFINED
            )
            return
        if isinstance(stmt, ast.AssignVar):
            env[stmt.name] = self._expr(functions, env, stmt.value)
            return
        if isinstance(stmt, ast.AssignMember):
            obj = self._object(self._expr(functions, env, stmt.obj))
            key = self._expr(functions, env, stmt.prop)
            obj.set(key, self._expr(functions, env, stmt.value))
            return
        if isinstance(stmt, ast.DeleteStmt):
            obj = self._object(self._expr(functions, env, stmt.obj))
            obj.delete(self._expr(functions, env, stmt.prop))
            return
        if isinstance(stmt, ast.ExprStmt):
            self._expr(functions, env, stmt.expr)
            return
        if isinstance(stmt, ast.IfStmt):
            cond = self._bool(self._expr(functions, env, stmt.cond), "if")
            for s in stmt.then_body if cond else stmt.else_body:
                self._stmt(functions, env, s)
            return
        if isinstance(stmt, ast.WhileStmt):
            while self._bool(self._expr(functions, env, stmt.cond), "while"):
                try:
                    for s in stmt.body:
                        self._stmt(functions, env, s)
                except _Break:
                    return
                except _Continue:
                    continue
            return
        if isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._stmt(functions, env, stmt.init)
            while (
                stmt.cond is None
                or self._bool(self._expr(functions, env, stmt.cond), "for")
            ):
                try:
                    for s in stmt.body:
                        self._stmt(functions, env, s)
                except _Break:
                    return
                except _Continue:
                    pass
                if stmt.step is not None:
                    self._stmt(functions, env, stmt.step)
            return
        if isinstance(stmt, ast.ReturnStmt):
            raise _Return(
                self._expr(functions, env, stmt.expr)
                if stmt.expr is not None
                else UNDEFINED
            )
        if isinstance(stmt, ast.BreakStmt):
            raise _Break()
        if isinstance(stmt, ast.ContinueStmt):
            raise _Continue()
        if isinstance(stmt, ast.AssumeStmt):
            if self._expr(functions, env, stmt.expr) is not True:
                raise _Vanish()
            return
        if isinstance(stmt, ast.AssertStmt):
            if self._expr(functions, env, stmt.expr) is not True:
                raise JSError(("assertion-failure", repr(stmt.expr)))
            return
        raise TypeError(f"unknown statement {stmt!r}")

    # -- expressions -----------------------------------------------------------

    def _expr(self, functions, env: Dict[str, Value], e: ast.Expression) -> Value:
        if isinstance(e, ast.Literal):
            return e.value
        if isinstance(e, ast.Undefined):
            return UNDEFINED
        if isinstance(e, ast.NullLit):
            return JSNULL
        if isinstance(e, ast.Var):
            if e.name in env:
                return env[e.name]
            if e.name in functions:
                return e.name
            raise JSError(f"unknown identifier {e.name!r}")
        if isinstance(e, ast.FuncRef):
            return e.name
        if isinstance(e, ast.ObjectLit):
            loc = self._alloc("Object")
            for prop, value in e.props:
                self._heap[loc].set(prop, self._expr(functions, env, value))
            return loc
        if isinstance(e, ast.ArrayLit):
            loc = self._alloc("Array")
            for i, item in enumerate(e.items):
                self._heap[loc].set(i, self._expr(functions, env, item))
            self._heap[loc].set("length", len(e.items))
            return loc
        if isinstance(e, ast.Member):
            obj = self._object(self._expr(functions, env, e.obj))
            found = obj.get(self._expr(functions, env, e.prop))
            return found if found is not None else UNDEFINED
        if isinstance(e, ast.CallExpr):
            return self._call_expr(functions, env, e)
        if isinstance(e, ast.Unary):
            return self._unary(functions, env, e)
        if isinstance(e, ast.Binary):
            return self._binary(functions, env, e)
        if isinstance(e, ast.Conditional):
            if self._bool(self._expr(functions, env, e.cond), "?:"):
                return self._expr(functions, env, e.then_expr)
            return self._expr(functions, env, e.else_expr)
        if isinstance(e, ast.SymbolicExpr):
            return self._symbolic(e)
        raise TypeError(f"unknown expression {e!r}")

    def _call_expr(self, functions, env, e: ast.CallExpr) -> Value:
        import math

        if isinstance(e.callee, ast.Var) and e.callee.name not in env:
            name = e.callee.name
            args = [self._expr(functions, env, a) for a in e.args]
            if name == "floor":
                return math.floor(self._num(args[0], "floor"))
            if name == "strlen":
                return len(self._str(args[0], "strlen"))
            if name == "str_of":
                n = self._num(args[0], "str_of")
                return str(int(n)) if float(n).is_integer() else str(n)
            if name == "num_of":
                s = self._str(args[0], "num_of")
                try:
                    return float(s) if "." in s else int(s)
                except ValueError:
                    raise JSError(f"num_of: {s!r}")
            if name == "char_at":
                s = self._str(args[0], "char_at")
                i = int(self._num(args[1], "char_at"))
                if not 0 <= i < len(s):
                    raise JSError(f"char_at: index {i} out of range")
                return s[i]
            if name in ("min_of", "max_of"):
                a, b = self._num(args[0], name), self._num(args[1], name)
                return min(a, b) if name == "min_of" else max(a, b)
            if name == "dispose":
                obj = self._object(args[0])
                obj.alive = False
                return UNDEFINED
            if name == "has_prop":
                obj = self._object(args[0])
                return obj.get(args[1]) is not None
            if name in functions:
                return self._call_function(functions, functions[name], args)
            raise JSError(f"unknown function {name!r}")
        callee = self._expr(functions, env, e.callee)
        args = [self._expr(functions, env, a) for a in e.args]
        if not isinstance(callee, str) or callee not in functions:
            raise JSError(("type-error-not-a-function", callee))
        return self._call_function(functions, functions[callee], args)

    def _unary(self, functions, env, e: ast.Unary) -> Value:
        operand = self._expr(functions, env, e.operand)
        if e.op == "-":
            return -self._num(operand, "-")
        if e.op == "!":
            return not self._bool(operand, "!")
        if e.op == "typeof":
            t = type_of(operand) if not isinstance(operand, Symbol) else None
            if isinstance(operand, Symbol):
                return "undefined" if operand == UNDEFINED else "object"
            return {
                GilType.NUMBER: "number",
                GilType.STRING: "string",
                GilType.BOOLEAN: "boolean",
            }.get(t, "object")
        raise JSError(f"unknown unary {e.op!r}")

    def _binary(self, functions, env, e: ast.Binary) -> Value:
        if e.op == "&&":
            left = self._bool(self._expr(functions, env, e.left), "&&")
            if not left:
                return False
            return self._bool(self._expr(functions, env, e.right), "&&")
        if e.op == "||":
            left = self._bool(self._expr(functions, env, e.left), "||")
            if left:
                return True
            return self._bool(self._expr(functions, env, e.right), "||")
        left = self._expr(functions, env, e.left)
        right = self._expr(functions, env, e.right)
        if e.op == "+":
            if isinstance(left, str):
                return left + self._str(right, "+")
            return self._norm(self._num(left, "+") + self._num(right, "+"))
        if e.op == "-":
            return self._norm(self._num(left, "-") - self._num(right, "-"))
        if e.op == "*":
            return self._norm(self._num(left, "*") * self._num(right, "*"))
        if e.op == "/":
            d = self._num(right, "/")
            if d == 0:
                raise JSError("/: division by zero")
            n = self._num(left, "/")
            if isinstance(n, int) and isinstance(d, int) and n % d == 0:
                return n // d
            return self._norm(n / d)
        if e.op == "%":
            d = int(self._num(right, "%"))
            if d == 0:
                raise JSError("%: modulo by zero")
            return int(self._num(left, "%")) % d
        if e.op == "===":
            return values_equal(left, right)
        if e.op == "!==":
            return not values_equal(left, right)
        if e.op in ("<", "<=", ">", ">="):
            ln, rn = self._comparable(left, right, e.op)
            return {"<": ln < rn, "<=": ln <= rn, ">": ln > rn, ">=": ln >= rn}[e.op]
        raise JSError(f"unknown binary {e.op!r}")

    def _symbolic(self, e: ast.SymbolicExpr) -> Value:
        if not self._symb_values:
            raise ValueError("interpreter ran out of symb() input values")
        value = self._symb_values.pop(0)
        if e.type_name is not None:
            expected = {
                "number": GilType.NUMBER,
                "int": GilType.NUMBER,
                "string": GilType.STRING,
                "bool": GilType.BOOLEAN,
            }[e.type_name]
            if type_of(value) is not expected:
                raise _Vanish()
            if e.type_name == "int" and float(value) != int(value):
                raise _Vanish()
        return value

    # -- coercion guards -------------------------------------------------------

    @staticmethod
    def _norm(x):
        if isinstance(x, float) and x.is_integer() and abs(x) < 2**53:
            return int(x)
        return x

    @staticmethod
    def _num(v: Value, op: str):
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise JSError(f"eval-error: {op}: expected a number, got {v!r}")
        return v

    @staticmethod
    def _str(v: Value, op: str) -> str:
        if not isinstance(v, str):
            raise JSError(f"eval-error: {op}: expected a string, got {v!r}")
        return v

    @staticmethod
    def _bool(v: Value, op: str) -> bool:
        if not isinstance(v, bool):
            raise JSError(f"eval-error: {op}: expected a boolean, got {v!r}")
        return v

    def _comparable(self, left: Value, right: Value, op: str):
        if isinstance(left, str) and isinstance(right, str):
            return left, right
        return self._num(left, op), self._num(right, op)
