"""The target-language (TL) instantiation interface (paper §1, §4.3).

To instantiate Gillian to a new TL, a tool developer provides:

1. a trusted **compiler** from the TL to GIL (:meth:`Language.compile`);
2. **concrete and symbolic memory models** in terms of the TL's actions
   (:meth:`Language.concrete_memory` / :meth:`Language.symbolic_memory`);
3. optionally, a **memory interpretation function** relating the two
   (:meth:`Language.interpretation`), which the soundness harness uses to
   check the MA-RS/MA-RC properties (paper Def. 3.7) empirically.

The three instantiations in :mod:`repro.targets` (While, MiniJS, MiniC)
implement this interface.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.gil.syntax import Prog
from repro.state.interface import ConcreteMemoryModel, SymbolicMemoryModel


class Language(abc.ABC):
    """A Gillian instantiation: compiler + memory models."""

    #: Short name used in reports ("while", "minijs", "minic").
    name: str = "?"

    @abc.abstractmethod
    def compile(self, source: str) -> Prog:
        """Compile TL source text to a GIL program."""

    @abc.abstractmethod
    def concrete_memory(self) -> ConcreteMemoryModel:
        """A fresh concrete memory model instance."""

    @abc.abstractmethod
    def symbolic_memory(self) -> SymbolicMemoryModel:
        """A fresh symbolic memory model instance."""

    def interpretation(self) -> Optional[Callable]:
        """The memory interpretation function I(ε, µ̂) → µ, if provided.

        Takes a logical environment (a mapping from logical-variable names
        to concrete values) and a symbolic memory, and produces the
        concrete memory it denotes.  Used by the soundness test harness.
        """
        return None
