"""A reference big-step interpreter for While.

Used by the conformance tests (E5): the GIL compiler is "trusted" in the
paper's sense because concrete execution of the compiled GIL program is
differentially tested against this direct source-level interpreter, the
same methodology JaVerT applies with Test262 (paper §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gil.ops import EvalError, evaluate
from repro.gil.values import NULL, GilType, Symbol, Value, type_of
from repro.targets.while_lang import ast


@dataclass
class InterpResult:
    """Final outcome of a concrete While run."""

    kind: str  # "normal" | "error" | "vanish"
    value: Value = NULL


class _Return(Exception):
    def __init__(self, value: Value) -> None:
        self.value = value


class _Fail(Exception):
    def __init__(self, value: Value) -> None:
        self.value = value


class _Vanish(Exception):
    pass


_SYMB_EXPECTED_TYPE = {
    "number": GilType.NUMBER,
    "int": GilType.NUMBER,
    "string": GilType.STRING,
    "bool": GilType.BOOLEAN,
}


class WhileInterpreter:
    """Direct interpreter over the While AST."""

    def __init__(self, symb_values: Optional[Sequence[Value]] = None) -> None:
        # Values consumed, in order, by symb()/symb_number()/… statements,
        # making "concrete-with-inputs" runs reproducible.
        self._symb_values: List[Value] = list(symb_values or [])
        self._heap: Dict[Tuple[Symbol, str], Value] = {}
        self._alloc_count = 0

    def run(self, program: ast.Program, entry: str, args: Sequence[Value] = ()) -> InterpResult:
        procs = {p.name: p for p in program.procs}
        if entry not in procs:
            raise ValueError(f"unknown procedure {entry!r}")
        try:
            value = self._call(procs, procs[entry], list(args))
        except _Fail as exc:
            return InterpResult("error", exc.value)
        except _Vanish:
            return InterpResult("vanish")
        except EvalError as exc:
            return InterpResult("error", f"eval-error: {exc}")
        return InterpResult("normal", value)

    # -- internals ----------------------------------------------------------

    def _call(self, procs, proc: ast.ProcDef, args: List[Value]) -> Value:
        if len(args) != len(proc.params):
            raise _Fail(f"{proc.name}: arity mismatch")
        store: Dict[str, Value] = dict(zip(proc.params, args))
        try:
            for stmt in proc.body:
                self._exec(procs, store, stmt)
        except _Return as ret:
            return ret.value
        return NULL

    def _exec(self, procs, store: Dict[str, Value], stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Skip):
            return
        if isinstance(stmt, ast.Assign):
            store[stmt.target] = evaluate(stmt.expr, pvar_env=store)
            return
        if isinstance(stmt, ast.If):
            cond = evaluate(stmt.condition, pvar_env=store)
            if not isinstance(cond, bool):
                raise EvalError(f"if: condition is not a boolean: {cond!r}")
            body = stmt.then_body if cond else stmt.else_body
            for s in body:
                self._exec(procs, store, s)
            return
        if isinstance(stmt, ast.While):
            while True:
                cond = evaluate(stmt.condition, pvar_env=store)
                if not isinstance(cond, bool):
                    raise EvalError(f"while: condition is not a boolean: {cond!r}")
                if not cond:
                    return
                for s in stmt.body:
                    self._exec(procs, store, s)
        if isinstance(stmt, ast.CallStmt):
            if stmt.func not in procs:
                raise _Fail(f"call to unknown procedure {stmt.func!r}")
            args = [evaluate(a, pvar_env=store) for a in stmt.args]
            store[stmt.target] = self._call(procs, procs[stmt.func], args)
            return
        if isinstance(stmt, ast.ReturnStmt):
            raise _Return(evaluate(stmt.expr, pvar_env=store))
        if isinstance(stmt, ast.Assume):
            if evaluate(stmt.expr, pvar_env=store) is not True:
                raise _Vanish()
            return
        if isinstance(stmt, ast.Assert):
            if evaluate(stmt.expr, pvar_env=store) is not True:
                raise _Fail(("assertion-failure", repr(stmt.expr)))
            return
        if isinstance(stmt, ast.New):
            loc = Symbol(f"obj_{self._alloc_count}")
            self._alloc_count += 1
            for prop, expr in stmt.props:
                self._heap[(loc, prop)] = evaluate(expr, pvar_env=store)
            store[stmt.target] = loc
            return
        if isinstance(stmt, ast.Dispose):
            loc = self._loc(evaluate(stmt.expr, pvar_env=store))
            cells = [k for k in self._heap if k[0] == loc]
            if not cells:
                raise _Fail(("missing-object", loc))
            for k in cells:
                del self._heap[k]
            return
        if isinstance(stmt, ast.Lookup):
            loc = self._loc(evaluate(stmt.obj, pvar_env=store))
            if (loc, stmt.prop) not in self._heap:
                raise _Fail(("missing-property", loc, stmt.prop))
            store[stmt.target] = self._heap[(loc, stmt.prop)]
            return
        if isinstance(stmt, ast.Mutate):
            loc = self._loc(evaluate(stmt.obj, pvar_env=store))
            self._heap[(loc, stmt.prop)] = evaluate(stmt.value, pvar_env=store)
            return
        if isinstance(stmt, ast.SymbolicInput):
            if not self._symb_values:
                raise ValueError("interpreter ran out of symb() input values")
            value = self._symb_values.pop(0)
            if stmt.type_name is not None:
                expected = _SYMB_EXPECTED_TYPE[stmt.type_name]
                if type_of(value) is not expected:
                    raise _Vanish()
                if stmt.type_name == "int" and float(value) != int(value):
                    raise _Vanish()
            store[stmt.target] = value
            return
        raise TypeError(f"unknown While statement {stmt!r}")

    @staticmethod
    def _loc(value: Value) -> Symbol:
        if not isinstance(value, Symbol):
            raise EvalError(f"not an object location: {value!r}")
        return value
