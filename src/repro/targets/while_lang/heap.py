"""A *freeable* While heap, built from combinators in a few lines.

The memlib payoff demo: the While memory of :mod:`.memory` silently
recycles disposed locations (dispose removes the cells, so a later
lookup reports ``missing-object``).  This fourth memory keeps a
tombstone instead — dispose marks the store entry freed, so touching a
disposed object is a distinguishable ``use-after-dispose`` error branch,
exactly like MiniJS — without writing a single branching loop:

* a :class:`~repro.memlib.proptable.PropTable` configured with the
  While-style absent policy (absent lookup is a ``missing-property``
  error, solver consulted like Figure 3's [S-Lookup]);
* wrapped in a :class:`~repro.memlib.freeable.Freeable` store with no
  explicit alloc — ``setProp`` implicitly creates the record, the way
  While's ``mutate`` conjures cells (``create_on_absent``);
* renamed so the part answers While's compiled action names
  (``lookup``/``mutate``), letting every existing While program — and
  the differential fuzzer's generated corpus — run unchanged.

``tools/fingerprint.py --arms heap`` drives this model with the same
seeded fuzzer programs as the While arm and pins its branch structure.
"""

from __future__ import annotations

from repro.gil.syntax import Prog
from repro.logic.expr import Lit
from repro.memlib.core import PartConcreteModel, PartSymbolicModel, rename
from repro.memlib.freeable import Freeable, FreeableSpec, Record
from repro.memlib.proptable import PropTable, PropTableSpec
from repro.targets.language import Language
from repro.targets.while_lang.compiler import compile_source

#: The whole model: Freeable(PropTable) under While's action names.
HEAP_PART = rename(
    Freeable(
        PropTable(
            PropTableSpec(
                absent_get_error="missing-property",
                keep_prior_on_hit=False,
                sat_check_on_empty_absent=True,
            )
        ),
        FreeableSpec(
            alloc_action=None,
            not_object_error="missing-object",
            disposed_error="use-after-dispose",
            name="While-heap",
            create_on_absent=frozenset({"setProp"}),
            concrete_empty_record=Record(0),
            symbolic_empty_record=Record(Lit(0)),
        ),
    ),
    {"lookup": "getProp", "mutate": "setProp"},
)


class WhileHeapConcreteMemory(PartConcreteModel):
    """The concrete freeable While heap."""

    part = HEAP_PART


class WhileHeapSymbolicMemory(PartSymbolicModel):
    """The symbolic freeable While heap."""

    part = HEAP_PART


class WhileHeapLanguage(Language):
    """While source over the freeable heap: same compiler, new memory."""

    name = "while-heap"

    def compile(self, source: str) -> Prog:
        """Compile While source with the standard While compiler."""
        return compile_source(source)

    def concrete_memory(self) -> WhileHeapConcreteMemory:
        """A fresh concrete freeable-heap model."""
        return WhileHeapConcreteMemory()

    def symbolic_memory(self) -> WhileHeapSymbolicMemory:
        """A fresh symbolic freeable-heap model."""
        return WhileHeapSymbolicMemory()


__all__ = [
    "HEAP_PART",
    "WhileHeapConcreteMemory",
    "WhileHeapSymbolicMemory",
    "WhileHeapLanguage",
]
