"""While-language abstract syntax (paper §2.2).

    s ::= x := e | if (e) {s} else {s} | while (e) {s} | s1; s2
        | x := f(e...) | return e | assume e | assert e
        | x := {p1: e1, ..., pn: en} | dispose e | x := e.p | e.p := e'

plus ``skip`` and the symbolic-input forms ``x := symb()``,
``x := symb_number()``, ``x := symb_string()``, ``x := symb_bool()``
used to write symbolic tests (paper §1: "standard symbolic unit tests,
with symbolic inputs").

Expressions are shared with GIL (paper §2.2: "we assume that the
semantics of expressions and the variable store coincide for While and
GIL"), so statement nodes hold :class:`repro.logic.expr.Expr` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.logic.expr import Expr


class Stmt:
    """Base class for While statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Skip(Stmt):
    """``skip``."""

    pass


@dataclass(frozen=True)
class Assign(Stmt):
    """``x := e``."""

    target: str
    expr: Expr


@dataclass(frozen=True)
class If(Stmt):
    """``if e { ... } else { ... }``."""

    condition: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class While(Stmt):
    """``while e { ... }``."""

    condition: Expr
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class CallStmt(Stmt):
    """x := f(e1, ..., en) — static function call."""

    target: str
    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class ReturnStmt(Stmt):
    """``return e``."""

    expr: Expr


@dataclass(frozen=True)
class Assume(Stmt):
    """``assume(e)`` — prune paths where ``e`` is false."""

    expr: Expr


@dataclass(frozen=True)
class Assert(Stmt):
    """``assert(e)`` — flag paths where ``e`` can be false."""

    expr: Expr


@dataclass(frozen=True)
class New(Stmt):
    """x := {p1: e1, ..., pn: en} — object creation with static properties."""

    target: str
    props: Tuple[Tuple[str, Expr], ...]


@dataclass(frozen=True)
class Dispose(Stmt):
    """``dispose(e)`` — free the object at location ``e``."""

    expr: Expr


@dataclass(frozen=True)
class Lookup(Stmt):
    """x := e.p"""

    target: str
    obj: Expr
    prop: str


@dataclass(frozen=True)
class Mutate(Stmt):
    """e.p := e'"""

    obj: Expr
    prop: str
    value: Expr


@dataclass(frozen=True)
class SymbolicInput(Stmt):
    """x := symb() / symb_number() / symb_string() / symb_bool()."""

    target: str
    type_name: Optional[str]  # None | "number" | "string" | "bool"


@dataclass(frozen=True)
class ProcDef:
    """A procedure definition."""

    name: str
    params: Tuple[str, ...]
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Program:
    """A complete While program."""

    procs: Tuple[ProcDef, ...]
