"""Parser for the While language (paper §2.2).

Concrete syntax (statements end in ``;``, blocks are braced):

    proc sum(xs) {
      i := 0; total := 0;
      while (i < len(xs)) { total := total + nth(xs, i); i := i + 1; }
      return total;
    }

    proc main() {
      n := symb_number();
      assume(0 <= n);
      o := { count: n, name: "box" };
      c := o.count;
      assert(c = n);
      return null;
    }

Expression builtins: ``len``, ``slen``, ``typeof``, ``nth``, ``snth``,
``hd``, ``tl``, ``str``, ``num``, ``floor``, ``min``, ``max``; list
literals ``[e1, ..., en]``; equality is ``=`` (with ``!=`` sugar).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.frontend.lexer import ParseError, Token, TokenStream, tokenize
from repro.gil.values import NULL
from repro.logic.expr import (
    BinOp,
    BinOpExpr,
    EList,
    Expr,
    Lit,
    PVar,
    UnOp,
    UnOpExpr,
)
from repro.targets.while_lang.ast import (
    Assert,
    Assign,
    Assume,
    CallStmt,
    Dispose,
    If,
    Lookup,
    Mutate,
    New,
    ProcDef,
    Program,
    ReturnStmt,
    Skip,
    Stmt,
    SymbolicInput,
    While,
)

_KEYWORDS = {
    "proc", "if", "else", "while", "return", "assume", "assert", "dispose",
    "skip", "true", "false", "null", "and", "or", "not",
    "symb", "symb_number", "symb_int", "symb_string", "symb_bool",
}

_BUILTIN_UNARY = {
    "len": UnOp.LSTLEN,
    "slen": UnOp.STRLEN,
    "typeof": UnOp.TYPEOF,
    "hd": UnOp.HEAD,
    "tl": UnOp.TAIL,
    "str": UnOp.TOSTRING,
    "num": UnOp.TONUMBER,
    "floor": UnOp.FLOOR,
}

_BUILTIN_BINARY = {
    "nth": BinOp.LNTH,
    "snth": BinOp.SNTH,
    "min": BinOp.MIN,
    "max": BinOp.MAX,
    "cons": BinOp.LCONS,
}

_SYMB_TYPES = {
    "symb": None,
    "symb_number": "number",
    "symb_int": "int",
    "symb_string": "string",
    "symb_bool": "bool",
}


def parse_program(source: str) -> Program:
    ts = TokenStream(tokenize(source))
    procs = []
    while ts.current.kind != "eof":
        procs.append(_parse_proc(ts))
    return Program(tuple(procs))


def _parse_proc(ts: TokenStream) -> ProcDef:
    ts.expect("proc", kind="ident")
    name = ts.expect_kind("ident").text
    ts.expect("(")
    params: List[str] = []
    if not ts.at(")"):
        params.append(ts.expect_kind("ident").text)
        while ts.accept(","):
            params.append(ts.expect_kind("ident").text)
    ts.expect(")")
    body = _parse_block(ts)
    return ProcDef(name, tuple(params), body)


def _parse_block(ts: TokenStream) -> Tuple[Stmt, ...]:
    ts.expect("{")
    stmts: List[Stmt] = []
    while not ts.at("}"):
        stmts.append(_parse_stmt(ts))
    ts.expect("}")
    return tuple(stmts)


def _parse_stmt(ts: TokenStream) -> Stmt:
    tok = ts.current
    if tok.kind == "ident" and tok.text in _KEYWORDS:
        if ts.accept("skip", kind="ident"):
            ts.expect(";")
            return Skip()
        if ts.accept("if", kind="ident"):
            ts.expect("(")
            cond = _parse_expr(ts)
            ts.expect(")")
            then_body = _parse_block(ts)
            else_body: Tuple[Stmt, ...] = ()
            if ts.accept("else", kind="ident"):
                else_body = _parse_block(ts)
            return If(cond, then_body, else_body)
        if ts.accept("while", kind="ident"):
            ts.expect("(")
            cond = _parse_expr(ts)
            ts.expect(")")
            body = _parse_block(ts)
            return While(cond, body)
        if ts.accept("return", kind="ident"):
            expr = _parse_expr(ts)
            ts.expect(";")
            return ReturnStmt(expr)
        if ts.accept("assume", kind="ident"):
            ts.expect("(")
            expr = _parse_expr(ts)
            ts.expect(")")
            ts.expect(";")
            return Assume(expr)
        if ts.accept("assert", kind="ident"):
            ts.expect("(")
            expr = _parse_expr(ts)
            ts.expect(")")
            ts.expect(";")
            return Assert(expr)
        if ts.accept("dispose", kind="ident"):
            ts.expect("(")
            expr = _parse_expr(ts)
            ts.expect(")")
            ts.expect(";")
            return Dispose(expr)
        raise ParseError(f"unexpected keyword {tok.text!r}", tok)

    # Assignment-like statements: x := ... | e.p := e'
    expr = _parse_expr(ts)
    if ts.at("."):
        ts.expect(".")
        prop = ts.expect_kind("ident").text
        ts.expect(":=")
        value = _parse_expr(ts)
        ts.expect(";")
        return Mutate(expr, prop, value)
    if not isinstance(expr, PVar):
        raise ParseError("expected a statement", tok)
    target = expr.name
    ts.expect(":=")
    stmt = _parse_rhs(ts, target)
    ts.expect(";")
    return stmt


def _parse_rhs(ts: TokenStream, target: str) -> Stmt:
    tok = ts.current
    # Object creation: x := { p: e, ... }
    if ts.at("{"):
        ts.expect("{")
        props: List[Tuple[str, Expr]] = []
        if not ts.at("}"):
            props.append(_parse_prop(ts))
            while ts.accept(","):
                props.append(_parse_prop(ts))
        ts.expect("}")
        return New(target, tuple(props))
    # Symbolic input: x := symb_number();
    if tok.kind == "ident" and tok.text in _SYMB_TYPES:
        ts.advance()
        ts.expect("(")
        ts.expect(")")
        return SymbolicInput(target, _SYMB_TYPES[tok.text])
    # Static call: x := f(e, ...) — an identifier applied but not a builtin.
    if (
        tok.kind == "ident"
        and tok.text not in _KEYWORDS
        and tok.text not in _BUILTIN_UNARY
        and tok.text not in _BUILTIN_BINARY
        and ts.peek(1).kind == "punct"
        and ts.peek(1).text == "("
    ):
        func = ts.advance().text
        ts.expect("(")
        args: List[Expr] = []
        if not ts.at(")"):
            args.append(_parse_expr(ts))
            while ts.accept(","):
                args.append(_parse_expr(ts))
        ts.expect(")")
        return CallStmt(target, func, tuple(args))
    # Property lookup: x := e.p — or a plain expression assignment.
    expr = _parse_expr(ts)
    if ts.at("."):
        ts.expect(".")
        prop = ts.expect_kind("ident").text
        return Lookup(target, expr, prop)
    return Assign(target, expr)


def _parse_prop(ts: TokenStream) -> Tuple[str, Expr]:
    name_tok = ts.current
    if name_tok.kind not in ("ident", "string"):
        raise ParseError("expected a property name", name_tok)
    ts.advance()
    ts.expect(":")
    return name_tok.text, _parse_expr(ts)


# -- expressions --------------------------------------------------------------


def _parse_expr(ts: TokenStream) -> Expr:
    return _parse_or(ts)


def _parse_or(ts: TokenStream) -> Expr:
    left = _parse_and(ts)
    while ts.at("or", kind="ident"):
        ts.advance()
        left = BinOpExpr(BinOp.OR, left, _parse_and(ts))
    return left


def _parse_and(ts: TokenStream) -> Expr:
    left = _parse_comparison(ts)
    while ts.at("and", kind="ident"):
        ts.advance()
        left = BinOpExpr(BinOp.AND, left, _parse_comparison(ts))
    return left


def _parse_comparison(ts: TokenStream) -> Expr:
    left = _parse_additive(ts)
    while True:
        if ts.accept("="):
            left = BinOpExpr(BinOp.EQ, left, _parse_additive(ts))
        elif ts.accept("!="):
            left = UnOpExpr(UnOp.NOT, BinOpExpr(BinOp.EQ, left, _parse_additive(ts)))
        elif ts.accept("<="):
            left = BinOpExpr(BinOp.LEQ, left, _parse_additive(ts))
        elif ts.accept("<"):
            left = BinOpExpr(BinOp.LT, left, _parse_additive(ts))
        elif ts.accept(">="):
            left = BinOpExpr(BinOp.LEQ, _parse_additive(ts), left)
        elif ts.accept(">"):
            left = BinOpExpr(BinOp.LT, _parse_additive(ts), left)
        else:
            return left


def _parse_additive(ts: TokenStream) -> Expr:
    left = _parse_multiplicative(ts)
    while True:
        if ts.accept("++"):
            left = BinOpExpr(BinOp.SCONCAT, left, _parse_multiplicative(ts))
        elif ts.accept("+"):
            left = BinOpExpr(BinOp.ADD, left, _parse_multiplicative(ts))
        elif ts.accept("-"):
            left = BinOpExpr(BinOp.SUB, left, _parse_multiplicative(ts))
        else:
            return left


def _parse_multiplicative(ts: TokenStream) -> Expr:
    left = _parse_unary(ts)
    while True:
        if ts.accept("*"):
            left = BinOpExpr(BinOp.MUL, left, _parse_unary(ts))
        elif ts.accept("/"):
            left = BinOpExpr(BinOp.DIV, left, _parse_unary(ts))
        elif ts.accept("%"):
            left = BinOpExpr(BinOp.MOD, left, _parse_unary(ts))
        else:
            return left


def _parse_unary(ts: TokenStream) -> Expr:
    if ts.accept("-"):
        return UnOpExpr(UnOp.NEG, _parse_unary(ts))
    if ts.at("not", kind="ident"):
        ts.advance()
        return UnOpExpr(UnOp.NOT, _parse_unary(ts))
    return _parse_primary(ts)


def _parse_primary(ts: TokenStream) -> Expr:
    tok = ts.current
    if tok.kind == "number":
        ts.advance()
        return Lit(tok.number_value)
    if tok.kind == "string":
        ts.advance()
        return Lit(tok.text)
    if ts.accept("true", kind="ident"):
        return Lit(True)
    if ts.accept("false", kind="ident"):
        return Lit(False)
    if ts.accept("null", kind="ident"):
        return Lit(NULL)
    if ts.accept("("):
        expr = _parse_expr(ts)
        ts.expect(")")
        return expr
    if ts.accept("["):
        items: List[Expr] = []
        if not ts.at("]"):
            items.append(_parse_expr(ts))
            while ts.accept(","):
                items.append(_parse_expr(ts))
        ts.expect("]")
        return EList(tuple(items))
    if tok.kind == "ident":
        if tok.text in _BUILTIN_UNARY:
            ts.advance()
            ts.expect("(")
            operand = _parse_expr(ts)
            ts.expect(")")
            return UnOpExpr(_BUILTIN_UNARY[tok.text], operand)
        if tok.text in _BUILTIN_BINARY:
            ts.advance()
            ts.expect("(")
            left = _parse_expr(ts)
            ts.expect(",")
            right = _parse_expr(ts)
            ts.expect(")")
            return BinOpExpr(_BUILTIN_BINARY[tok.text], left, right)
        if tok.text in _KEYWORDS:
            raise ParseError(f"unexpected keyword {tok.text!r}", tok)
        ts.advance()
        return PVar(tok.text)
    raise ParseError(f"unexpected token {tok.text!r}", tok)
