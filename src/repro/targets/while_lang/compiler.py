"""The While-to-GIL compiler (paper §2.2, Figure 2).

Each statement form compiles exactly as in the paper:

* ``assume e``  →  ``ifgoto e +2; vanish``
* ``assert e``  →  ``ifgoto e +2; fail e``
* ``x := {p̄: ē}`` →  ``x := uSym; mutate([x, pi, ei])…``
* ``x := e.p``  →  ``x := lookup([e, p])``
* control flow becomes conditional gotos (labels resolved by the shared
  :class:`repro.frontend.emitter.Emitter`).

Symbolic inputs ``x := symb_number()`` compile to ``x := iSym`` followed
by the assume-pattern on ``typeof x`` — interpreted symbols are the
logical variables of classical symbolic execution (paper §2.1).
"""

from __future__ import annotations

from repro.frontend.emitter import Emitter, Label
from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
    Vanish,
    allocate_sites,
)
from repro.gil.values import NULL, GilType
from repro.logic.expr import Expr, Lit, PVar, lst
from repro.targets.while_lang import ast

#: The set of While actions A_W (paper §2.2).
ACTIONS = frozenset({"lookup", "mutate", "dispose"})

_SYMB_TYPE = {
    "number": GilType.NUMBER,
    "int": GilType.NUMBER,
    "string": GilType.STRING,
    "bool": GilType.BOOLEAN,
}


def compile_program(program: ast.Program) -> Prog:
    prog = Prog()
    for proc_def in program.procs:
        prog.add(_compile_proc(proc_def))
    return allocate_sites(prog)


def compile_source(source: str) -> Prog:
    from repro.targets.while_lang.parser import parse_program

    return compile_program(parse_program(source))


def _compile_proc(proc_def: ast.ProcDef) -> Proc:
    em = Emitter()
    for stmt in proc_def.body:
        _compile_stmt(em, stmt)
    # A procedure that falls off the end returns null.
    em.emit(Return(Lit(NULL)))
    return Proc(proc_def.name, proc_def.params, em.finish())


def _compile_stmt(em: Emitter, stmt: ast.Stmt) -> None:
    if isinstance(stmt, ast.Skip):
        return

    if isinstance(stmt, ast.Assign):
        em.emit(Assignment(stmt.target, stmt.expr))
        return

    if isinstance(stmt, ast.New):
        em.emit(USym(stmt.target, 0))
        for prop, expr in stmt.props:
            em.emit(
                ActionCall(
                    em.fresh_temp(),
                    "mutate",
                    lst(PVar(stmt.target), prop, expr),
                )
            )
        return

    if isinstance(stmt, ast.Lookup):
        em.emit(ActionCall(stmt.target, "lookup", lst(stmt.obj, stmt.prop)))
        return

    if isinstance(stmt, ast.Mutate):
        em.emit(
            ActionCall(em.fresh_temp(), "mutate", lst(stmt.obj, stmt.prop, stmt.value))
        )
        return

    if isinstance(stmt, ast.Dispose):
        em.emit(ActionCall(em.fresh_temp(), "dispose", lst(stmt.expr)))
        return

    if isinstance(stmt, ast.If):
        then_label, end_label = Label("then"), Label("endif")
        em.emit(IfGoto(stmt.condition, then_label))
        for s in stmt.else_body:
            _compile_stmt(em, s)
        em.emit(Goto(end_label))
        em.mark(then_label)
        for s in stmt.then_body:
            _compile_stmt(em, s)
        em.mark(end_label)
        return

    if isinstance(stmt, ast.While):
        start_label, body_label, end_label = Label("loop"), Label("body"), Label("endloop")
        em.mark(start_label)
        em.emit(IfGoto(stmt.condition, body_label))
        em.emit(Goto(end_label))
        em.mark(body_label)
        for s in stmt.body:
            _compile_stmt(em, s)
        em.emit(Goto(start_label))
        em.mark(end_label)
        return

    if isinstance(stmt, ast.CallStmt):
        em.emit(Call(stmt.target, Lit(stmt.func), stmt.args))
        return

    if isinstance(stmt, ast.ReturnStmt):
        em.emit(Return(stmt.expr))
        return

    if isinstance(stmt, ast.Assume):
        _emit_assume(em, stmt.expr)
        return

    if isinstance(stmt, ast.Assert):
        ok = Label("assert_ok")
        em.emit(IfGoto(stmt.expr, ok))
        em.emit(Fail(lst("assertion-failure", repr(stmt.expr))))
        em.mark(ok)
        return

    if isinstance(stmt, ast.SymbolicInput):
        em.emit(ISym(stmt.target, 0))
        if stmt.type_name is not None:
            gil_type = _SYMB_TYPE[stmt.type_name]
            _emit_assume(em, PVar(stmt.target).typeof().eq(Lit(gil_type)))
        if stmt.type_name == "int":
            from repro.logic.expr import UnOp, UnOpExpr

            x = PVar(stmt.target)
            _emit_assume(em, UnOpExpr(UnOp.FLOOR, x).eq(x))
        return

    raise TypeError(f"unknown While statement {stmt!r}")


def _emit_assume(em: Emitter, condition: Expr) -> None:
    """Fig. 2 [Assume]: ``ifgoto e +2; vanish``."""
    ok = Label("assume_ok")
    em.emit(IfGoto(condition, ok))
    em.emit(Vanish())
    em.mark(ok)
