"""While memory models as a memlib composition (paper §2.4, Figure 3).

Concrete memories ``µ : U × S ⇀ V`` map (location symbol, property name)
cells to values.  Symbolic memories ``µ̂ : Ê × S ⇀ Ê`` map (location
*expression*, property name) cells to value expressions — property names
stay concrete because While objects have static properties.

Both models are one composition expression: a
:class:`~repro.memlib.pmap.PMap` branded with the While error wording.
The part implements the Figure 3 rules — [S-Lookup] branches on every
location potentially equal to the looked-up one under π,
[S-Mutate-Present]/[S-Mutate-Absent] likewise, ``dispose`` expands every
aliasing pattern — and its error branches (missing property, missing
object) surface as ``SymMemErr``, which the interpreter turns into GIL
errors ``E(v)``; this is how use-after-dispose is caught.

The module also defines the While memory interpretation function I_W
(paper §3.3), used by the soundness harness.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.gil.ops import evaluate
from repro.gil.values import Symbol, Value
from repro.logic.expr import Expr
from repro.memlib.core import PartConcreteModel, PartSymbolicModel
from repro.memlib.pmap import MapMem, PMap, PMapSpec, SymMapMem

ACTIONS = frozenset({"lookup", "mutate", "dispose"})


class WhileMemory(MapMem):
    """An immutable concrete While memory: cells (ς, p) ↦ v."""


class SymWhileMemory(SymMapMem):
    """An immutable symbolic While memory: cells (ê, p) ↦ ê′."""


#: The While composition: a single labelled partial map (Figure 3).
WHILE_PART = PMap(
    PMapSpec(
        concrete_mem=WhileMemory,
        symbolic_mem=SymWhileMemory,
        label_error="While property names must be concrete strings",
        name="While",
    )
)


class WhileConcreteMemory(PartConcreteModel):
    """ea for A_W = {lookup, mutate, dispose} (Figure 3, left column)."""

    part = WHILE_PART


class WhileSymbolicMemory(PartSymbolicModel):
    """êa for A_W (Figure 3, right column), with error branches."""

    part = WHILE_PART


# -- interpretation I_W (paper §3.3) ------------------------------------------


class InterpretationError(Exception):
    """The symbolic memory has no concrete counterpart under ε."""


def interpret_memory(env: Dict[str, Value], memory: SymWhileMemory) -> WhileMemory:
    """I_W(ε, µ̂): interpret every cell; fail on non-locations or collisions.

    The paper defines I_W cell-wise with disjoint union (⊎); a collision
    between two cells whose locations ε identifies means ε is not a model
    of the memory's implicit disjointness, so interpretation is undefined.
    """
    cells: Dict[Tuple[Symbol, str], Value] = {}
    for (loc_expr, prop), value_expr in memory.cells:
        loc = evaluate(loc_expr, lvar_env=env)
        if not isinstance(loc, Symbol):
            raise InterpretationError(f"location {loc_expr!r} maps to non-symbol {loc!r}")
        value = evaluate(value_expr, lvar_env=env)
        if (loc, prop) in cells:
            raise InterpretationError(f"cell collision at ({loc!r}, {prop!r})")
        cells[(loc, prop)] = value
    return WhileMemory.of(cells)
