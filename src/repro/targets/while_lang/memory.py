"""While concrete and symbolic memory models (paper §2.4, Figure 3).

Concrete memories ``µ : U × S ⇀ V`` map (location symbol, property name)
cells to values.  Symbolic memories ``µ̂ : Ê × S ⇀ Ê`` map (location
*expression*, property name) cells to value expressions — property names
stay concrete because While objects have static properties.

The symbolic rules follow Figure 3:

* [S-Lookup] branches on every location potentially equal to the
  looked-up one under π, passing the learned equality back to the state;
* [S-Mutate-Present]/[S-Mutate-Absent] likewise; the absent branch learns
  that the location differs from every location that defines the
  property;
* the error branches (no rule applies — missing property, missing
  object) surface as :class:`SymMemErr`, which the interpreter turns into
  GIL errors ``E(v)``; this is how use-after-dispose is caught.

The module also defines the While memory interpretation function I_W
(paper §3.3), used by the soundness harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.gil.ops import EvalError, evaluate
from repro.gil.values import Symbol, Value
from repro.logic.expr import Expr, Lit
from repro.logic.simplify import simplify
from repro.state.interface import (
    ConcreteMemoryModel,
    MemErr,
    MemOk,
    SymbolicMemoryModel,
    SymMemErr,
    SymMemOk,
)

ACTIONS = frozenset({"lookup", "mutate", "dispose"})


# -- concrete -----------------------------------------------------------------


@dataclass(frozen=True)
class WhileMemory:
    """An immutable concrete While memory: cells (ς, p) ↦ v."""

    cells: Tuple[Tuple[Tuple[Symbol, str], Value], ...] = ()

    def as_dict(self) -> Dict[Tuple[Symbol, str], Value]:
        return dict(self.cells)

    @staticmethod
    def of(cells: Dict[Tuple[Symbol, str], Value]) -> "WhileMemory":
        return WhileMemory(tuple(sorted(cells.items(), key=lambda kv: (kv[0][0].name, kv[0][1]))))


class WhileConcreteMemory(ConcreteMemoryModel):
    """ea for A_W = {lookup, mutate, dispose} (Figure 3, left column)."""

    @property
    def actions(self) -> frozenset:
        return ACTIONS

    def initial(self) -> WhileMemory:
        return WhileMemory()

    def execute(self, action: str, memory: WhileMemory, value: Value) -> List:
        cells = memory.as_dict()
        if action == "lookup":
            loc, prop = self._loc_prop(value)
            if (loc, prop) in cells:
                return [MemOk(memory, cells[(loc, prop)])]
            return [MemErr(("missing-property", loc, prop))]
        if action == "mutate":
            loc, prop, new_value = value
            self._check_loc(loc)
            cells[(loc, str(prop))] = new_value
            return [MemOk(WhileMemory.of(cells), new_value)]
        if action == "dispose":
            (loc,) = value
            self._check_loc(loc)
            remaining = {k: v for k, v in cells.items() if k[0] != loc}
            if len(remaining) == len(cells):
                return [MemErr(("missing-object", loc))]
            return [MemOk(WhileMemory.of(remaining), True)]
        raise ValueError(f"unknown While action {action!r}")

    @staticmethod
    def _loc_prop(value: Value) -> Tuple[Symbol, str]:
        loc, prop = value
        WhileConcreteMemory._check_loc(loc)
        return loc, str(prop)

    @staticmethod
    def _check_loc(loc: Value) -> None:
        if not isinstance(loc, Symbol):
            raise EvalError(f"not an object location: {loc!r}")


# -- symbolic -----------------------------------------------------------------


@dataclass(frozen=True)
class SymWhileMemory:
    """An immutable symbolic While memory: cells (ê, p) ↦ ê′."""

    cells: Tuple[Tuple[Tuple[Expr, str], Expr], ...] = ()

    def as_dict(self) -> Dict[Tuple[Expr, str], Expr]:
        return dict(self.cells)

    @staticmethod
    def of(cells: Dict[Tuple[Expr, str], Expr]) -> "SymWhileMemory":
        return SymWhileMemory(tuple(cells.items()))

    def locations(self) -> List[Expr]:
        """Distinct location expressions in the memory, in cell order."""
        seen: List[Expr] = []
        for (loc, _prop), _ in self.cells:
            if loc not in seen:
                seen.append(loc)
        return seen


class WhileSymbolicMemory(SymbolicMemoryModel):
    """êa for A_W (Figure 3, right column), with error branches."""

    @property
    def actions(self) -> frozenset:
        return ACTIONS

    def initial(self) -> SymWhileMemory:
        return SymWhileMemory()

    def execute(self, action: str, memory: SymWhileMemory, expr: Expr, pc, solver) -> List:
        args = _unpack_list(expr)
        if action == "lookup":
            loc, prop = args[0], _prop_name(args[1])
            return self._lookup(memory, loc, prop, pc, solver)
        if action == "mutate":
            loc, prop, new_value = args[0], _prop_name(args[1]), args[2]
            return self._mutate(memory, loc, prop, new_value, pc, solver)
        if action == "dispose":
            return self._dispose(memory, args[0], pc, solver)
        raise ValueError(f"unknown While action {action!r}")

    # [S-Lookup]
    def _lookup(self, memory: SymWhileMemory, loc: Expr, prop: str, pc, solver) -> List:
        branches: List = []
        miss_conditions: List[Expr] = []
        for (cell_loc, cell_prop), cell_value in memory.cells:
            if cell_prop != prop:
                continue
            eq = simplify(loc.eq(cell_loc))
            if eq == Lit(False):
                continue
            if eq == Lit(True):
                return [SymMemOk(memory, cell_value)]
            if solver.is_sat(pc.conjoin(eq)):
                branches.append(SymMemOk(memory, cell_value, (eq,)))
            miss_conditions.append(simplify(loc.neq(cell_loc)))
        # Error branch: the location matches no cell defining the property.
        if not any(c == Lit(False) for c in miss_conditions):
            miss = tuple(c for c in miss_conditions if c != Lit(True))
            if solver.is_sat(pc.conjoin_all(miss)):
                branches.append(
                    SymMemErr(_err("missing-property", loc, prop), miss)
                )
        return branches

    # [S-Mutate-Present] / [S-Mutate-Absent]
    def _mutate(
        self, memory: SymWhileMemory, loc: Expr, prop: str, new_value: Expr, pc, solver
    ) -> List:
        branches: List = []
        absent_conditions: List[Expr] = []
        for (cell_loc, cell_prop), _ in memory.cells:
            if cell_prop != prop:
                continue
            eq = simplify(loc.eq(cell_loc))
            if eq == Lit(False):
                continue
            cells = memory.as_dict()
            cells[(cell_loc, prop)] = new_value
            updated = SymWhileMemory.of(cells)
            if eq == Lit(True):
                return [SymMemOk(updated, new_value)]
            if solver.is_sat(pc.conjoin(eq)):
                branches.append(SymMemOk(updated, new_value, (eq,)))
            absent_conditions.append(simplify(loc.neq(cell_loc)))
        # Absent branch: π′ = the location defines no cell for this property.
        if not any(c == Lit(False) for c in absent_conditions):
            learned = tuple(c for c in absent_conditions if c != Lit(True))
            if solver.is_sat(pc.conjoin_all(learned)):
                cells = memory.as_dict()
                cells[(loc, prop)] = new_value
                branches.append(SymMemOk(SymWhileMemory.of(cells), new_value, learned))
        return branches

    def _dispose(self, memory: SymWhileMemory, loc: Expr, pc, solver) -> List:
        """Dispose branches over *every* aliasing pattern.

        A disposed location may alias several location expressions in the
        memory (cells under different properties can legitimately share a
        location), so each known location independently contributes an
        "aliases / does not alias" case.  Cases are pruned against the
        path condition as they are built.
        """
        # Each case: (kept cells, learned conditions, matched-any-location).
        cases: List = [(memory.as_dict(), [], False)]
        for known_loc in memory.locations():
            eq = simplify(loc.eq(known_loc))
            next_cases: List = []
            for cells, learned, matched in cases:
                if eq == Lit(True):
                    removed = {c: v for c, v in cells.items() if c[0] != known_loc}
                    next_cases.append((removed, learned, True))
                    continue
                if eq == Lit(False):
                    next_cases.append((cells, learned, matched))
                    continue
                # alias case
                alias_learned = learned + [eq]
                if solver.is_sat(pc.conjoin_all(alias_learned)):
                    removed = {c: v for c, v in cells.items() if c[0] != known_loc}
                    next_cases.append((removed, alias_learned, True))
                # non-alias case
                diseq = simplify(loc.neq(known_loc))
                noalias_learned = learned + [diseq]
                if solver.is_sat(pc.conjoin_all(noalias_learned)):
                    next_cases.append((cells, noalias_learned, matched))
            cases = next_cases
        branches: List = []
        for cells, learned, matched in cases:
            learned_t = tuple(c for c in learned if c != Lit(True))
            if matched:
                branches.append(
                    SymMemOk(SymWhileMemory.of(cells), Lit(True), learned_t)
                )
            else:
                branches.append(SymMemErr(_err("missing-object", loc), learned_t))
        return branches


# -- interpretation I_W (paper §3.3) ------------------------------------------


class InterpretationError(Exception):
    """The symbolic memory has no concrete counterpart under ε."""


def interpret_memory(env: Dict[str, Value], memory: SymWhileMemory) -> WhileMemory:
    """I_W(ε, µ̂): interpret every cell; fail on non-locations or collisions.

    The paper defines I_W cell-wise with disjoint union (⊎); a collision
    between two cells whose locations ε identifies means ε is not a model
    of the memory's implicit disjointness, so interpretation is undefined.
    """
    cells: Dict[Tuple[Symbol, str], Value] = {}
    for (loc_expr, prop), value_expr in memory.cells:
        loc = evaluate(loc_expr, lvar_env=env)
        if not isinstance(loc, Symbol):
            raise InterpretationError(f"location {loc_expr!r} maps to non-symbol {loc!r}")
        value = evaluate(value_expr, lvar_env=env)
        if (loc, prop) in cells:
            raise InterpretationError(f"cell collision at ({loc!r}, {prop!r})")
        cells[(loc, prop)] = value
    return WhileMemory.of(cells)


# -- helpers ------------------------------------------------------------------


def _unpack_list(expr: Expr) -> List[Expr]:
    """View an action argument as a list of item expressions."""
    from repro.logic.expr import EList

    if isinstance(expr, EList):
        return list(expr.items)
    if isinstance(expr, Lit) and isinstance(expr.value, tuple):
        return [Lit(v) for v in expr.value]
    raise EvalError(f"action argument is not a list: {expr!r}")


def _prop_name(expr: Expr) -> str:
    if isinstance(expr, Lit) and isinstance(expr.value, str):
        return expr.value
    raise EvalError(f"While property names must be concrete strings: {expr!r}")


def _err(tag: str, loc: Expr, prop: Optional[str] = None) -> Expr:
    from repro.logic.expr import lst

    if prop is None:
        return lst(tag, loc)
    return lst(tag, loc, prop)
