"""The While instantiation of Gillian (paper §2.2, §2.4, §3.3)."""

from __future__ import annotations

from repro.gil.syntax import Prog
from repro.targets.language import Language
from repro.targets.while_lang.compiler import compile_source
from repro.targets.while_lang.memory import (
    WhileConcreteMemory,
    WhileSymbolicMemory,
    interpret_memory,
)


class WhileLanguage(Language):
    """Gillian-While: the paper's running example, end to end."""

    name = "while"

    def compile(self, source: str) -> Prog:
        return compile_source(source)

    def concrete_memory(self) -> WhileConcreteMemory:
        return WhileConcreteMemory()

    def symbolic_memory(self) -> WhileSymbolicMemory:
        return WhileSymbolicMemory()

    def interpretation(self):
        return interpret_memory


__all__ = ["WhileLanguage"]
