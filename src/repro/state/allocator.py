"""Allocators (paper Def. 2.2, §3.2).

An allocator ``AL = ⟨|AL|, Y, alloc⟩`` draws fresh values from an
allocation range, keyed by *allocation site* (the program point of the
``uSym_j``/``iSym_j`` command).  An allocation record ξ keeps, per site,
how many values that site has produced; the n-th allocation at site j is
the deterministic name ``{prefix}_{j}_{n}``.  Determinism is what makes
*restriction* (Def. 3.3) and concrete *replay* of symbolic traces work:
re-running the same trace allocates the same names.

* The symbolic allocator draws uninterpreted symbols from ``U`` for
  ``uSym`` and fresh logical variables from ``X̂`` for ``iSym``.
* The concrete allocator draws uninterpreted symbols for ``uSym`` and an
  *arbitrary value* for ``iSym`` — arbitrary is resolved either by a
  default (0) or by a *script*: the logical environment ε of a
  counter-model, which directs replay (paper §3.2, allocator
  interpretation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from repro.gil.values import Symbol, Value
from repro.logic.expr import LVar


@dataclass(frozen=True)
class AllocRecord:
    """An allocation record ξ: per-site next-index counters (immutable)."""

    counters: Tuple[Tuple[int, int], ...] = ()

    def count(self, site: int) -> int:
        for s, n in self.counters:
            if s == site:
                return n
        return 0

    def bump(self, site: int) -> Tuple["AllocRecord", int]:
        """Allocate the next index at ``site``; returns (ξ', index)."""
        counters = dict(self.counters)
        idx = counters.get(site, 0)
        counters[site] = idx + 1
        return AllocRecord(tuple(sorted(counters.items()))), idx

    # -- restriction (paper Def. 3.1 / 3.3) --------------------------------

    def restrict(self, other: "AllocRecord") -> "AllocRecord":
        """ξ₁ ⇃ξ₂ — adopt the *further along* counter per site.

        Restriction strengthens ξ₁ with the information of ξ₂: sites that
        ξ₂ has already allocated from are marked allocated in the result,
        so a restricted replay makes exactly the same fresh choices.
        """
        merged = dict(self.counters)
        for s, n in other.counters:
            merged[s] = max(merged.get(s, 0), n)
        return AllocRecord(tuple(sorted(merged.items())))

    def precedes(self, other: "AllocRecord") -> bool:
        """The induced pre-order ⊑: self ⊑ other iff self ⇃other = self."""
        return self.restrict(other) == self


def usym_name(site: int, idx: int, namespace: str = "") -> str:
    if namespace:
        return f"loc_{namespace}_{site}_{idx}"
    return f"loc_{site}_{idx}"


def isym_name(site: int, idx: int, namespace: str = "") -> str:
    if namespace:
        return f"val_{namespace}_{site}_{idx}"
    return f"val_{site}_{idx}"


@dataclass
class SymbolicAllocator:
    """Allocates uninterpreted symbols and fresh logical variables.

    ``namespace`` partitions the allocation range |AL| (Def. 2.2): two
    allocators with distinct namespaces draw from provably disjoint name
    sets, so explorations seeded from the *same* root state can run side
    by side without their fresh symbols colliding.  The parallel explorer
    does not need this for frontier sharding — allocation records are
    threaded through per-path states, so shard subtrees are already
    disjoint in the Def. 2.2/3.3 restriction sense and must keep the
    namespace-free names for sequential/parallel outcome equality — but
    clients that fan independent runs out of one initial state (e.g.
    concolic restarts) split the namespace per shard via :meth:`split`.
    """

    namespace: str = ""

    def split(self, shard: int) -> "SymbolicAllocator":
        """A shard-scoped allocator with a disjoint site namespace."""
        base = f"{self.namespace}." if self.namespace else ""
        return SymbolicAllocator(namespace=f"{base}w{shard}")

    def alloc_usym(self, record: AllocRecord, site: int) -> Tuple[AllocRecord, Symbol]:
        record, idx = record.bump(site)
        return record, Symbol(usym_name(site, idx, self.namespace))

    def alloc_isym(self, record: AllocRecord, site: int) -> Tuple[AllocRecord, LVar]:
        record, idx = record.bump(site)
        return record, LVar(isym_name(site, idx, self.namespace))


@dataclass
class ConcreteAllocator:
    """Allocates symbols concretely; ``iSym`` picks an arbitrary value.

    ``script`` maps logical-variable *names* (as produced by
    :func:`isym_name`) to concrete values — supplying the counter-model ε
    makes a concrete run follow the corresponding symbolic trace, which is
    how the testing harness confirms reported bugs (Thm. 3.6).

    ``namespace`` mirrors :class:`SymbolicAllocator.namespace`: a replay
    of a namespaced symbolic run must allocate the same names so the
    script keys line up.
    """

    script: Mapping[str, Value] = field(default_factory=dict)
    default_value: Value = 0
    namespace: str = ""

    def split(self, shard: int) -> "ConcreteAllocator":
        """A shard-scoped allocator with a disjoint site namespace."""
        base = f"{self.namespace}." if self.namespace else ""
        return ConcreteAllocator(
            script=self.script,
            default_value=self.default_value,
            namespace=f"{base}w{shard}",
        )

    def alloc_usym(self, record: AllocRecord, site: int) -> Tuple[AllocRecord, Symbol]:
        record, idx = record.bump(site)
        return record, Symbol(usym_name(site, idx, self.namespace))

    def alloc_isym(self, record: AllocRecord, site: int) -> Tuple[AllocRecord, Value]:
        record, idx = record.bump(site)
        name = isym_name(site, idx, self.namespace)
        value = self.script.get(name, self.default_value)
        return record, value


def interpret_record(record: AllocRecord) -> AllocRecord:
    """Allocator interpretation I_AL (paper Def. 3.8).

    Symbolic and concrete allocation records share their representation —
    both count per-site allocations — so the interpretation is the
    identity on records; only the *values* differ (the logical environment
    maps ``val_j_n`` logical variables to the concrete picks).
    """
    return record
