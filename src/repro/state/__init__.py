"""State models: allocators and the concrete/symbolic state constructors
(paper Defs. 2.2, 2.5, 2.6)."""

from repro.state.allocator import (
    AllocRecord,
    ConcreteAllocator,
    SymbolicAllocator,
    isym_name,
    usym_name,
)
from repro.state.concrete import ConcreteState, ConcreteStateModel
from repro.state.interface import (
    ConcreteMemoryModel,
    MemErr,
    MemOk,
    StateErr,
    StateOk,
    SymbolicMemoryModel,
    SymMemErr,
    SymMemOk,
)
from repro.state.symbolic import SymbolicState, SymbolicStateModel

__all__ = [
    "AllocRecord", "ConcreteAllocator", "ConcreteMemoryModel",
    "ConcreteState", "ConcreteStateModel", "MemErr", "MemOk", "StateErr",
    "StateOk", "SymMemErr", "SymMemOk", "SymbolicAllocator",
    "SymbolicMemoryModel", "SymbolicState", "SymbolicStateModel",
    "isym_name", "usym_name",
]
