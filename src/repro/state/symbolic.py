"""The symbolic state constructor SSC (paper Def. 2.6).

Lifts a symbolic memory model to a symbolic state model: states are
quadruples ⟨µ̂, ρ̂, ξ, π⟩ of a symbolic memory, a symbolic store (program
variables to logical expressions), an allocation record, and a path
condition.  ``assume`` strengthens π when satisfiable; memory actions
conjoin their learned branching conditions onto π (paper §2.3).

This module also implements *state restriction* (paper Def. 3.2):
``σ₁ ⇃σ₂`` conjoins σ₂'s path condition onto σ₁'s and merges allocation
records — the generalisation of "strengthening the initial state with the
final path condition" used in classical symbolic-execution soundness.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Tuple

from repro.logic.expr import Expr, Lit, UnOp, UnOpExpr, substitute_pvars
from repro.logic.pathcond import PathCondition
from repro.logic.simplify import Simplifier
from repro.logic.solver import SatResult, Solver, UnknownAbort
from repro.state.allocator import AllocRecord, SymbolicAllocator
from repro.state.interface import (
    StateErr,
    StateOk,
    SymbolicMemoryModel,
    SymMemErr,
    SymMemOk,
)


@dataclass(frozen=True)
class SymbolicState:
    """σ̂ = ⟨µ̂, ρ̂, ξ, π⟩."""

    memory: object
    store: Mapping[str, Expr]
    alloc: AllocRecord
    pc: PathCondition

    def with_store(self, store: Mapping[str, Expr]) -> "SymbolicState":
        return SymbolicState(
            self.memory, MappingProxyType(dict(store)), self.alloc, self.pc
        )

    def bind(self, x: str, e: Expr) -> "SymbolicState":
        store = dict(self.store)
        store[x] = e
        return SymbolicState(self.memory, MappingProxyType(store), self.alloc, self.pc)

    def with_pc(self, pc: PathCondition) -> "SymbolicState":
        return SymbolicState(self.memory, self.store, self.alloc, pc)

    def __reduce__(self):
        # The store is a MappingProxyType (not picklable); ship it as a
        # sorted item tuple and re-wrap on load.  Sorting makes the wire
        # form canonical, so equal states pickle to equal payloads
        # regardless of store insertion order.
        return (
            _rebuild_symbolic_state,
            (self.memory, tuple(sorted(self.store.items())), self.alloc, self.pc),
        )

    # -- restriction (paper Defs. 3.1/3.2) ----------------------------------

    def restrict(self, other: "SymbolicState") -> "SymbolicState":
        """σ₁ ⇃σ₂ ≜ ⟨µ̂₁, ρ̂₁, ξ₁ ⇃ξ₂, π₁ ∧ π₂⟩ (paper Def. 3.9)."""
        return SymbolicState(
            self.memory,
            self.store,
            self.alloc.restrict(other.alloc),
            self.pc.extend(other.pc),
        )

    def precedes(self, other: "SymbolicState") -> bool:
        """The induced pre-order ⊑ (syntactic approximation).

        ``self ⊑ other`` iff restricting self by other gains nothing —
        here checked syntactically on path conditions and allocator
        records, which suffices for the monotonicity property tests.
        """
        return self.pc.implies_syntactically(other.pc) and self.alloc.precedes(
            other.alloc
        )


def _rebuild_symbolic_state(memory, store_items, alloc, pc) -> SymbolicState:
    """Unpickle helper: re-wrap the store in a MappingProxyType."""
    return SymbolicState(memory, MappingProxyType(dict(store_items)), alloc, pc)


@dataclass
class Degradation:
    """Running unknown-policy counters for one state model.

    The explorer snapshots these per step (like the solver stats) so a
    run's :class:`~repro.engine.results.Incompleteness` ledger attributes
    every degraded branch decision to the step that made it.
    """

    unknown_pruned: int = 0
    unknown_assumed: int = 0

    def snapshot(self) -> Tuple[int, int]:
        return (self.unknown_pruned, self.unknown_assumed)


#: Valid ``unknown_policy`` values (see :meth:`SymbolicStateModel._admit`).
UNKNOWN_POLICIES = ("assume-sat", "prune", "abort")


class SymbolicStateModel:
    """SSC_AL(M̂): the state model over a symbolic memory model."""

    symbolic = True

    def __init__(
        self,
        memory_model: SymbolicMemoryModel,
        solver: Optional[Solver] = None,
        allocator: Optional[SymbolicAllocator] = None,
        simplifier: Optional[Simplifier] = None,
        unknown_policy: str = "assume-sat",
    ) -> None:
        if unknown_policy not in UNKNOWN_POLICIES:
            raise ValueError(
                f"unknown_policy must be one of {UNKNOWN_POLICIES}, "
                f"got {unknown_policy!r}"
            )
        self.memory_model = memory_model
        self.solver = solver if solver is not None else Solver()
        self.allocator = allocator if allocator is not None else SymbolicAllocator()
        self.simplifier = (
            simplifier if simplifier is not None else self.solver.simplifier
        )
        self.unknown_policy = unknown_policy
        self.degradation = Degradation()

    def _admit(self, pc: PathCondition) -> bool:
        """Whether a strengthened π keeps its path alive.

        SAT admits, UNSAT drops; UNKNOWN (the solver ran out of its
        per-query step budget, or a fault forced a timeout) is decided by
        ``unknown_policy``:

        * ``"assume-sat"`` (default) — keep the branch.  Preserves the
          relative-completeness direction (no feasible path is dropped)
          at the cost of possibly exploring infeasible ones, so a bug
          report must be confirmed by a concrete model (Theorem 3.6's
          counter-model replay) before it is trusted.
        * ``"prune"`` — drop the branch.  Keeps every surviving path
          genuinely feasible but may miss bugs behind hard constraints.
        * ``"abort"`` — raise :class:`~repro.logic.solver.UnknownAbort`;
          the explorer stops the run with reason ``"unknown-abort"``.

        Accounting: ``prune`` and ``abort`` act (and count) on *every*
        UNKNOWN.  Under ``assume-sat``, only UNKNOWNs whose cause was a
        timeout (step budget or injected fault) count as
        ``unknown_assumed`` — assuming SAT on the solver's baseline
        incomplete-search UNKNOWN is the documented ``is_sat``
        over-approximation that exists without any budget, visible via
        solver stats and ``SolverUnknownEvent`` rather than degradation
        counters.
        """
        verdict = self.solver.check(pc)
        return self._admit_verdict(pc, verdict, self.solver.last_timed_out)

    def _admit_verdict(
        self, pc: PathCondition, verdict: SatResult, timed_out: bool
    ) -> bool:
        """Fold one already-obtained verdict through the UNKNOWN policy.

        The batched admission sites (:meth:`branch_on`,
        :meth:`execute_action`) obtain sibling verdicts in a single
        :meth:`~repro.logic.solver.Solver.check_batch` pass and apply the
        policy per sibling here; ``timed_out`` carries the per-query
        provenance that ``solver.last_timed_out`` holds in the
        sequential flow.
        """
        if verdict is SatResult.SAT:
            return True
        if verdict is SatResult.UNSAT:
            return False
        if self.unknown_policy == "prune":
            self.degradation.unknown_pruned += 1
            return False
        if self.unknown_policy == "abort":
            raise UnknownAbort(
                f"feasibility UNKNOWN for {len(pc)}-conjunct path condition "
                f"under unknown_policy='abort'"
            )
        if timed_out:
            self.degradation.unknown_assumed += 1
        return True

    # -- construction -------------------------------------------------------

    def initial_state(
        self, memory: object = None, pc: Optional[PathCondition] = None
    ) -> SymbolicState:
        if memory is None:
            memory = self.memory_model.initial()
        return SymbolicState(
            memory,
            MappingProxyType({}),
            AllocRecord(),
            pc if pc is not None else PathCondition.true(),
        )

    # -- proper actions (paper Def. 2.6) ------------------------------------

    def eval_expr(self, state: SymbolicState, e: Expr) -> Expr:
        """[EvalExpr]: substitute the store and simplify (paper §2.3)."""
        return self.simplifier.simplify(substitute_pvars(e, state.store))

    def set_var(self, state: SymbolicState, x: str, e: Expr) -> SymbolicState:
        return state.bind(x, e)

    def get_store(self, state: SymbolicState) -> Dict[str, Expr]:
        return dict(state.store)

    def set_store(
        self, state: SymbolicState, store: Mapping[str, Expr]
    ) -> SymbolicState:
        return state.with_store(store)

    def assume(self, state: SymbolicState, e: Expr) -> List[SymbolicState]:
        """Strengthen π with ê if satisfiable, else drop the path."""
        e = self.simplifier.simplify(e)
        if e == Lit(False):
            return []
        pc = state.pc.conjoin(e)
        if pc is state.pc:
            # No new conjuncts: π ∧ ê ≡ π, already admitted on this path.
            return [state]
        if not self._admit(pc):
            return []
        return [state.with_pc(pc)]

    def branch_on(
        self, state: SymbolicState, cond: Expr
    ) -> List[Tuple[SymbolicState, bool]]:
        """The two conditional-goto rules: branch when both π ∧ ê and
        π ∧ ¬ê are satisfiable (paper §2.3, [Assume] discussion).

        The two arms are siblings of one branch point, so their
        feasibility is decided in a single
        :meth:`~repro.logic.solver.Solver.check_batch` pass that
        resolves the parent prefix once and solves each guard as a
        delta against the shared context.
        """
        arms: List[Tuple[bool, Optional[PathCondition]]] = []
        pending: List[PathCondition] = []
        for taken, guard in (
            (True, cond),
            (False, UnOpExpr(UnOp.NOT, cond)),
        ):
            g = self.simplifier.simplify(guard)
            if g == Lit(False):
                continue
            pc = state.pc.conjoin(g)
            if pc is not state.pc:
                pending.append(pc)
            arms.append((taken, pc))
        verdicts = iter(self.solver.check_batch(pending))
        out: List[Tuple[SymbolicState, bool]] = []
        for taken, pc in arms:
            if pc is state.pc:
                # No new conjuncts: π ∧ ê ≡ π, already admitted.
                out.append((state, taken))
            else:
                verdict, timed_out = next(verdicts)
                if self._admit_verdict(pc, verdict, timed_out):
                    out.append((state.with_pc(pc), taken))
        return out

    def fresh_usym(self, state: SymbolicState, site: int):
        record, sym = self.allocator.alloc_usym(state.alloc, site)
        return (
            SymbolicState(state.memory, state.store, record, state.pc),
            Lit(sym),
        )

    def fresh_isym(self, state: SymbolicState, site: int):
        record, lvar = self.allocator.alloc_isym(state.alloc, site)
        return SymbolicState(state.memory, state.store, record, state.pc), lvar

    # -- memory actions ------------------------------------------------------

    def execute_action(
        self, state: SymbolicState, action: str, arg: Expr
    ) -> List:
        """Lift symbolic memory branches, conjoining learned conditions and
        discarding unsatisfiable branches (paper Def. 2.6, [Action]).

        The branches of one action are siblings of one branch point, so
        their learned-condition feasibilities are decided in a single
        :meth:`~repro.logic.solver.Solver.check_batch` pass, like
        :meth:`branch_on`.
        """
        branches = self.memory_model.execute(
            action, state.memory, arg, state.pc, self.solver
        )
        staged = []
        pending: List[PathCondition] = []
        for branch in branches:
            if not isinstance(branch, (SymMemOk, SymMemErr)):  # pragma: no cover
                raise TypeError(f"bad symbolic branch {branch!r}")
            pc = state.pc.conjoin_all(branch.learned)
            if pc is not state.pc:
                pending.append(pc)
            staged.append((branch, pc))
        verdicts = iter(self.solver.check_batch(pending))
        out = []
        for branch, pc in staged:
            if pc is not state.pc:
                verdict, timed_out = next(verdicts)
                if not self._admit_verdict(pc, verdict, timed_out):
                    continue
            if isinstance(branch, SymMemOk):
                new_state = SymbolicState(branch.memory, state.store, state.alloc, pc)
                out.append(StateOk(new_state, branch.expr))
            else:
                out.append(StateErr(state.with_pc(pc), branch.expr))
        return out
