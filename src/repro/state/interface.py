"""State and memory model interfaces (paper Defs. 2.1, 2.3, 2.4).

A *memory model* exposes a set of actions and an action execution
function.  Concrete actions map a memory and a value to a set of
(memory, value) branches; symbolic actions additionally take and return
path-condition information:

    ea  : A → |M| → V  ⇀ ℘(|M| × V)                       (concrete)
    êa  : A → |M̂| → Ê → Π ⇀ ℘(|M̂| × Ê × Π)                (symbolic)

Branches are :class:`MemOk`/:class:`MemErr` (concrete) and
:class:`SymMemOk`/:class:`SymMemErr` (symbolic).  Error branches model
executions on which *no successful action rule applies* — e.g. a C load
outside block bounds — and are turned into GIL error outcomes ``E(v)`` by
the interpreter; this is how the symbolic testing tools detect
memory-safety bugs without user assertions.

A *state model* (paper Def. 2.1) packages a memory model with GIL's
built-in store handling, allocator, and (symbolically) path conditions;
see :mod:`repro.state.concrete` and :mod:`repro.state.symbolic` for the
two constructors of Defs. 2.5/2.6.  The GIL interpreter talks to state
models through the *proper actions* — ``setVar``, ``setStore``,
``getStore``, ``eval_e``, ``assume``, ``uSym``, ``iSym`` — realised here
as methods, plus :meth:`execute_action` for the memory actions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generic, List, Tuple, TypeVar, Union

from repro.gil.values import Value
from repro.logic.expr import Expr

# -- memory action branches ---------------------------------------------------


@dataclass(frozen=True)
class MemOk:
    """A successful concrete action branch: (µ′, v′)."""

    memory: object
    value: Value


@dataclass(frozen=True)
class MemErr:
    """A failing concrete action branch (memory fault, UB, ...)."""

    value: Value


@dataclass(frozen=True)
class SymMemOk:
    """A successful symbolic action branch: (µ̂′, ê′, π′).

    ``learned`` is the branching condition π′ the action passes back to
    the state, which conjoins it onto the path condition (paper §2.3,
    [Action]).
    """

    memory: object
    expr: Expr
    learned: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class SymMemErr:
    """A failing symbolic action branch, guarded by ``learned``."""

    expr: Expr
    learned: Tuple[Expr, ...] = ()


#: What a concrete action execution may branch to.
ConcreteBranch = Union[MemOk, MemErr]

#: What a symbolic action execution may branch to.
SymbolicBranch = Union[SymMemOk, SymMemErr]


# -- memory models -----------------------------------------------------------


class ConcreteMemoryModel(abc.ABC):
    """A concrete memory model M = ⟨|M|, A, ea⟩ (paper Def. 2.3).

    Memories must be treated as immutable: ``execute`` returns fresh
    memories and never mutates its argument.
    """

    @property
    @abc.abstractmethod
    def actions(self) -> frozenset:
        """The action names A this model understands."""

    @abc.abstractmethod
    def initial(self) -> object:
        """The empty memory."""

    @abc.abstractmethod
    def execute(
        self, action: str, memory: object, value: Value
    ) -> List[ConcreteBranch]:
        """``µ.α(v) ⇝ (µ′, v′)`` — a list of MemOk/MemErr branches."""


class SymbolicMemoryModel(abc.ABC):
    """A symbolic memory model M̂ = ⟨|M̂|, A, êa⟩ (paper Def. 2.4)."""

    @property
    @abc.abstractmethod
    def actions(self) -> frozenset:
        """The action names A this model understands."""

    @abc.abstractmethod
    def initial(self) -> object:
        """The empty symbolic memory."""

    @abc.abstractmethod
    def execute(
        self, action: str, memory: object, expr: Expr, pc, solver
    ) -> List[SymbolicBranch]:
        """``µ̂.α(ê, π) ⇝ (µ̂′, ê′, π′)`` — a list of SymMemOk/SymMemErr.

        ``pc`` is the current path condition (:class:`PathCondition`);
        ``solver`` decides satisfiability of candidate branch conditions.
        Implementations must only emit branches whose learned condition is
        compatible with ``pc`` (they typically call ``solver.is_sat``).
        """


# -- state action branches ----------------------------------------------------

S = TypeVar("S")
V = TypeVar("V")


@dataclass(frozen=True)
class StateOk(Generic[S, V]):
    """A successful action branch: successor ``state`` and result ``value``."""

    state: S
    value: V


@dataclass(frozen=True)
class StateErr(Generic[S, V]):
    """An action branch that raises a GIL error outcome ``E(value)``."""

    state: S
    value: V
